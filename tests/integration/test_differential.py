"""System-level differential testing: all three datapaths must agree.

The reference interpreter defines the semantics; ESWITCH's compiled
datapath and the OVS cache hierarchy must both reproduce it packet for
packet — including across cache warm-up, template fallbacks, and
decomposition. This is the strongest correctness statement in the repo.
"""

import random

from hypothesis import given, settings

import strategies as sts

from repro.core import CompileConfig, ESwitch
from repro.ovs import OvsSwitch
from repro.traffic.nfpa import DirectSwitch
from repro.usecases import firewall, gateway, l2, l3, loadbalancer


def clone_pipeline(factory):
    return factory()


def run_all(factory, packets, es_config=None):
    """Process the same packets through ES / OVS / reference; compare."""
    es = ESwitch.from_pipeline(factory(), config=es_config or CompileConfig())
    ovs = OvsSwitch(factory())
    ref = DirectSwitch(factory())
    for i, pkt in enumerate(packets):
        a = es.process(pkt.copy()).summary()
        b = ovs.process(pkt.copy()).summary()
        c = ref.process(pkt.copy()).summary()
        assert a == c, f"ESWITCH diverged from reference on packet {i}: {a} != {c}"
        assert b == c, f"OVS diverged from reference on packet {i}: {b} != {c}"


class TestUseCaseDifferential:
    def test_l2(self):
        _, macs = l2.build(64)
        flows = l2.traffic(macs, 32)
        run_all(lambda: l2.build(64)[0], [flows[i] for i in range(32)] * 2)

    def test_l3(self):
        _, fib = l3.build(150)
        flows = l3.traffic(fib, 40)
        run_all(lambda: l3.build(150)[0], [flows[i] for i in range(40)] * 2)

    def test_load_balancer_decomposed(self):
        flows = loadbalancer.traffic(12, 60)
        run_all(lambda: loadbalancer.build_single_table(12),
                [flows[i] for i in range(60)])

    def test_load_balancer_linked_list(self):
        flows = loadbalancer.traffic(12, 60)
        run_all(lambda: loadbalancer.build_single_table(12),
                [flows[i] for i in range(60)],
                es_config=CompileConfig(decompose=False))

    def test_gateway(self):
        _, fib = gateway.build(n_ce=4, users_per_ce=5, n_prefixes=200)
        flows = gateway.traffic(fib, 30, n_ce=4, users_per_ce=5)
        run_all(lambda: gateway.build(n_ce=4, users_per_ce=5, n_prefixes=200)[0],
                [flows[i] for i in range(30)] * 2)

    def test_firewall_both_forms(self):
        rng = random.Random(77)
        pkts = [sts.random_packet(rng) for _ in range(60)]
        run_all(firewall.build_single_stage, pkts)
        run_all(firewall.build_multi_stage, pkts)


class TestPropertyDifferential:
    @settings(max_examples=50, deadline=None)
    @given(sts.pipelines(max_tables=3), sts.packets(), sts.packets(), sts.packets())
    def test_random_pipelines(self, pipeline, p1, p2, p3):
        """Random pipelines, repeated packets (exercises warm caches)."""
        es = ESwitch.from_pipeline(pipeline)
        ovs = OvsSwitch(pipeline)
        packets = [p1, p2, p3, p1.copy(), p2.copy()]
        for pkt in packets:
            expected = pipeline.process(pkt.copy()).summary()
            assert es.process(pkt.copy()).summary() == expected
            assert ovs.process(pkt.copy()).summary() == expected

    @settings(max_examples=25, deadline=None)
    @given(sts.pipelines(max_tables=2), sts.packets())
    def test_packet_mutation_identical(self, pipeline, pkt):
        """Not just the verdict: the egress packet bytes must be identical
        (set-field rewrites applied the same way everywhere)."""
        es_pkt, ovs_pkt, ref_pkt = pkt.copy(), pkt.copy(), pkt.copy()
        ESwitch.from_pipeline(pipeline).process(es_pkt)
        OvsSwitch(pipeline).process(ovs_pkt)
        pipeline.process(ref_pkt)
        assert bytes(es_pkt.data) == bytes(ref_pkt.data)
        assert bytes(ovs_pkt.data) == bytes(ref_pkt.data)


class TestCachedPathDifferential:
    def test_ovs_levels_agree_with_each_other(self):
        """The same flow processed via upcall, megaflow hit, and EMC hit
        must produce identical packets and verdicts every time."""
        _, fib = gateway.build(n_ce=2, users_per_ce=3, n_prefixes=100)
        flows = gateway.traffic(fib, 6, n_ce=2, users_per_ce=3)
        ovs = OvsSwitch(gateway.build(n_ce=2, users_per_ce=3, n_prefixes=100)[0])
        for i in range(len(flows)):
            results = []
            for _ in range(3):  # upcall, then EMC hits
                pkt = flows[i].copy()
                v = ovs.process(pkt)
                results.append((v.summary(), bytes(pkt.data)))
            assert results[0] == results[1] == results[2]
        assert ovs.stats.microflow_hits > 0  # the cached paths really ran
