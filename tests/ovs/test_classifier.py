"""Tests for the vswitchd TSS classifier vs the linear reference lookup."""

import random

from hypothesis import given, settings

import strategies as sts

from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.ovs.classifier import TssClassifier
from repro.ovs.flowkey import extract_key
from repro.packet.parser import parse


class TestSubtableGrouping:
    def test_one_subtable_per_mask_signature(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=3, actions=[Output(1)]))
        t.add(FlowEntry(Match(tcp_dst=443), priority=2, actions=[Output(2)]))
        t.add(FlowEntry(Match(ipv4_dst="10.0.0.0/8"), priority=1, actions=[Output(3)]))
        clf = TssClassifier(t)
        assert len(clf.subtables) == 2

    def test_lpm_table_groups_by_depth(self):
        t = FlowTable(0)
        for i, depth in enumerate((8, 16, 16, 24, 24, 24)):
            t.add(
                FlowEntry(
                    Match(ipv4_dst=(i << 24, ((1 << depth) - 1) << (32 - depth))),
                    priority=depth,
                    actions=[Output(1)],
                )
            )
        assert len(TssClassifier(t).subtables) == 3

    def test_priority_sorted_probing(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(in_port=1), priority=100, actions=[Output(1)]))
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(2)]))
        clf = TssClassifier(t)
        pkt = sts.PacketBuilder(in_port=1).eth().ipv4().tcp(dst_port=80).build()
        entry, probed = clf.lookup(extract_key(parse(pkt)))
        # Early exit: the high-priority in_port subtable matches first and
        # the tcp subtable (max priority 1) is never probed.
        assert entry is not None and entry.priority == 100
        assert len(probed) == 1

    def test_refresh_after_table_change(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        clf = TssClassifier(t)
        assert len(clf.subtables) == 1
        t.add(FlowEntry(Match(in_port=1), priority=2, actions=[Output(2)]))
        assert len(clf.subtables) == 2  # auto-refresh on version bump

    def test_same_mask_priority_conflict_keeps_best(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        t.add(FlowEntry(Match(tcp_dst=80), priority=9, actions=[Output(2)]))
        clf = TssClassifier(t)
        pkt = sts.PacketBuilder().eth().ipv4().tcp(dst_port=80).build()
        entry, _ = clf.lookup(extract_key(parse(pkt)))
        assert entry is not None and entry.priority == 9


class TestEquivalenceWithLinearLookup:
    @settings(max_examples=60, deadline=None)
    @given(sts.flow_tables(max_entries=10), sts.packets())
    def test_tss_matches_priority_scan(self, table, pkt):
        clf = TssClassifier(table)
        view = parse(pkt)
        key = extract_key(view)
        tss_entry, _ = clf.lookup(key)
        linear_entry = table.lookup(view)
        if linear_entry is None:
            assert tss_entry is None
        else:
            assert tss_entry is not None
            # Same priority; the exact entry may differ only if two
            # same-priority rules overlap, where either is a legal answer.
            assert tss_entry.priority == linear_entry.priority

    def test_randomized_bulk_equivalence(self):
        rng = random.Random(42)
        for _ in range(30):
            t = FlowTable(0)
            for _ in range(rng.randrange(1, 12)):
                fields = rng.sample(["in_port", "tcp_dst", "ipv4_dst", "ip_proto"],
                                    rng.randrange(0, 3))
                spec = {}
                for f in fields:
                    spec[f] = rng.choice(sts.FIELD_DOMAINS[f])
                t.add(FlowEntry(Match(**spec), priority=rng.randrange(0, 50),
                                actions=[Output(1)]))
            clf = TssClassifier(t)
            for _ in range(20):
                pkt = sts.random_packet(rng)
                view = parse(pkt)
                a, _ = clf.lookup(extract_key(view))
                b = t.lookup(view)
                assert (a is None) == (b is None)
                if a is not None and b is not None:
                    assert a.priority == b.priority
