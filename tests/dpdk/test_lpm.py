"""Tests for the DIR-24-8 LPM, including equivalence with a naive oracle."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dpdk.lpm import Dir24_8Lpm, LpmFullError


def naive_lpm(rules: dict, ip: int):
    """Oracle: scan all rules, pick the longest matching prefix."""
    best = None
    best_depth = 0
    for (prefix, depth), hop in rules.items():
        mask = ((1 << depth) - 1) << (32 - depth)
        if (ip & mask) == prefix and depth >= best_depth:
            best, best_depth = hop, depth
    return best


class TestBasics:
    def test_empty_lookup(self):
        assert Dir24_8Lpm(max_tbl8_groups=2).lookup(0x01020304) is None

    def test_short_prefix(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=2)
        lpm.add(0x0A000000, 8, 1)
        assert lpm.lookup(0x0A123456) == 1
        assert lpm.lookup(0x0B000000) is None

    def test_nested_prefixes(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=2)
        lpm.add(0x0A000000, 8, 1)
        lpm.add(0x0A010000, 16, 2)
        lpm.add(0x0A010100, 24, 3)
        assert lpm.lookup(0x0A020202) == 1
        assert lpm.lookup(0x0A01FF00) == 2
        assert lpm.lookup(0x0A010177) == 3

    def test_deep_prefix_uses_tbl8(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=2)
        lpm.add(0x0A010100, 24, 1)
        lpm.add(0x0A010180, 25, 2)
        assert lpm.lookup(0x0A010101) == 1
        assert lpm.lookup(0x0A0101C0) == 2
        # Deep lookup takes two memory accesses, shallow takes one.
        _, lines = lpm.lookup_traced(0x0A0101C0)
        assert len(lines) == 2
        lpm2 = Dir24_8Lpm(max_tbl8_groups=2)
        lpm2.add(0x0A010100, 24, 1)
        _, lines = lpm2.lookup_traced(0x0A010101)
        assert len(lines) == 1

    def test_host_route(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=2)
        lpm.add(0x0A010101, 32, 9)
        assert lpm.lookup(0x0A010101) == 9
        assert lpm.lookup(0x0A010102) is None

    def test_update_same_prefix(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=2)
        lpm.add(0x0A000000, 8, 1)
        lpm.add(0x0A000000, 8, 7)
        assert lpm.lookup(0x0A123456) == 7
        assert len(lpm) == 1

    def test_validation(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=1)
        with pytest.raises(ValueError):
            lpm.add(0, 0, 1)
        with pytest.raises(ValueError):
            lpm.add(0, 33, 1)
        with pytest.raises(ValueError):
            lpm.add(1 << 32, 8, 1)
        with pytest.raises(ValueError):
            lpm.add(0, 8, -1)

    def test_tbl8_exhaustion(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=1)
        lpm.add(0x0A010180, 25, 1)
        with pytest.raises(LpmFullError):
            lpm.add(0x0B010180, 25, 2)


class TestDelete:
    def test_delete_restores_parent(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=2)
        lpm.add(0x0A000000, 8, 1)
        lpm.add(0x0A010000, 16, 2)
        assert lpm.delete(0x0A010000, 16)
        assert lpm.lookup(0x0A010101) == 1

    def test_delete_without_parent_invalidates(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=2)
        lpm.add(0x0A010000, 16, 2)
        assert lpm.delete(0x0A010000, 16)
        assert lpm.lookup(0x0A010101) is None

    def test_delete_missing(self):
        assert not Dir24_8Lpm(max_tbl8_groups=2).delete(0x0A000000, 8)

    def test_delete_deep_recycles_group(self):
        lpm = Dir24_8Lpm(max_tbl8_groups=1)
        lpm.add(0x0A010180, 25, 1)
        assert lpm.delete(0x0A010180, 25)
        # The group must be free again for another deep prefix.
        lpm.add(0x0B010180, 25, 2)
        assert lpm.lookup(0x0B0101C0) == 2


class TestOracleEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_tables_match_oracle(self, seed):
        rng = random.Random(seed)
        lpm = Dir24_8Lpm(max_tbl8_groups=64)
        rules: dict = {}
        for _ in range(rng.randrange(1, 40)):
            depth = rng.choice([8, 12, 16, 20, 24, 26, 28, 32])
            prefix = rng.getrandbits(32) & (((1 << depth) - 1) << (32 - depth))
            hop = rng.randrange(16)
            lpm.add(prefix, depth, hop)
            rules[(prefix, depth)] = hop
        # Mix in some deletions.
        for key in list(rules):
            if rng.random() < 0.3:
                lpm.delete(*key)
                del rules[key]
        probes = [rng.getrandbits(32) for _ in range(200)]
        # Bias probes into rule ranges so hits actually occur.
        for (prefix, depth), _hop in list(rules.items())[:20]:
            probes.append(prefix | rng.getrandbits(32 - depth) if depth < 32 else prefix)
        for ip in probes:
            assert lpm.lookup(ip) == naive_lpm(rules, ip), f"ip={ip:#010x}"
