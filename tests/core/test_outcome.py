"""Tests for Outcome compilation from flow entries."""

from repro.core.outcome import miss_outcome, outcome_of
from repro.openflow.actions import Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.match import Match


class TestOutcomeOf:
    def test_apply_and_goto(self):
        e = FlowEntry(Match(), priority=1,
                      instructions=(ApplyActions([Output(3)]), GotoTable(9)))
        out = outcome_of(e)
        assert out.apply_actions == (Output(3),)
        assert out.goto == 9
        assert not out.is_miss
        assert out.entry is e

    def test_write_actions_accumulate(self):
        e = FlowEntry(
            Match(), priority=1,
            instructions=(WriteActions([Output(1)]), WriteActions([Output(2)])),
        )
        assert outcome_of(e).write_actions == (Output(1), Output(2))

    def test_clear_wipes_earlier_writes(self):
        e = FlowEntry(
            Match(), priority=1,
            instructions=(WriteActions([Output(1)]), ClearActions(),
                          WriteActions([Output(2)])),
        )
        out = outcome_of(e)
        assert out.clear_actions
        assert out.write_actions == (Output(2),)

    def test_metadata(self):
        e = FlowEntry(Match(), priority=1,
                      instructions=(WriteMetadata(value=0xAB, mask=0xFF),))
        assert outcome_of(e).metadata_write == (0xAB, 0xFF)

    def test_multiple_apply_merge(self):
        e = FlowEntry(
            Match(), priority=1,
            instructions=(ApplyActions([SetField("ipv4_dst", 1)]),
                          ApplyActions([Output(2)])),
        )
        assert outcome_of(e).apply_actions == (SetField("ipv4_dst", 1), Output(2))


class TestMissOutcome:
    def test_drop_policy(self):
        out = miss_outcome(FlowTable(0, miss_policy=TableMissPolicy.DROP))
        assert out.is_miss and not out.to_controller

    def test_controller_policy(self):
        out = miss_outcome(FlowTable(0, miss_policy=TableMissPolicy.CONTROLLER))
        assert out.is_miss and out.to_controller

    def test_repr(self):
        assert "controller" in repr(
            miss_outcome(FlowTable(0, miss_policy=TableMissPolicy.CONTROLLER))
        )
