"""Controller-side statistics collection (OFPMP_FLOW / OFPMP_TABLE).

Works against any switch in this repo: the statistics live on the logical
flow entries, which all three datapaths keep truthful (the compiled fast
path records per-outcome, the OVS caches attribute hits back through the
megaflow's ``stat_entries``, and the interpreter records directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline


class BurstStats:
    """Per-switch burst telemetry: how the IO driver fed the datapath.

    Every ``process_burst`` call records one burst here — count, size
    histogram, and the cycles the burst cost (when a cycle meter was
    attached). The numbers quantify the batching amortization Section 4.2
    credits for substrate throughput.

    Cycles accumulate **exactly**: floats are dyadic rationals, so the
    internal accumulator is a :class:`fractions.Fraction` and every
    ``record``/``merge`` is an exact rational add. That makes merging
    fully associative and order-independent — merge shard stats in any
    order (or any grouping) and the result is bit-identical — which is
    what the sharded engine's gather requires, and it also fixes the
    silent precision drift the old ``float +=`` accumulator suffered
    once a long run's total dwarfed a single burst's cost.
    """

    __slots__ = ("bursts", "packets", "_cycles", "histogram")

    def __init__(self) -> None:
        self.reset()

    def record(self, size: int, cycles: float = 0.0) -> None:
        """Account one burst of ``size`` packets costing ``cycles``."""
        self.bursts += 1
        self.packets += size
        self._cycles += Fraction(cycles)
        self.histogram[size] = self.histogram.get(size, 0) + 1

    @property
    def cycles(self) -> float:
        """Total cycles, correctly rounded from the exact rational sum."""
        return float(self._cycles)

    def merge(self, other: "BurstStats") -> "BurstStats":
        """Fold another shard's telemetry into this one (in place).

        Exact and therefore associative/commutative:
        ``a.merge(b).merge(c)`` equals ``a.merge(c).merge(b)`` equals
        merging ``b.merge(c)`` into ``a``, bit for bit.
        """
        self.bursts += other.bursts
        self.packets += other.packets
        self._cycles += other._cycles
        for size, count in other.histogram.items():
            self.histogram[size] = self.histogram.get(size, 0) + count
        return self

    @classmethod
    def merged(cls, shards: "Iterable[BurstStats]") -> "BurstStats":
        """A fresh, order-independent merge of many shards' telemetry."""
        out = cls()
        for stats in shards:
            out.merge(stats)
        return out

    @property
    def mean_burst_size(self) -> float:
        return self.packets / self.bursts if self.bursts else 0.0

    @property
    def cycles_per_burst(self) -> float:
        return self.cycles / self.bursts if self.bursts else 0.0

    def snapshot(self) -> dict:
        """A plain-dict view (for Measurement.extra / CLI reporting)."""
        return {
            "bursts": self.bursts,
            "packets": self.packets,
            "cycles": self.cycles,
            "mean_burst_size": self.mean_burst_size,
            "cycles_per_burst": self.cycles_per_burst,
            "histogram": dict(sorted(self.histogram.items())),
        }

    def reset(self) -> None:
        self.bursts = 0
        self.packets = 0
        self._cycles = Fraction(0)
        self.histogram: dict[int, int] = {}

    def __repr__(self) -> str:
        return (
            f"BurstStats(bursts={self.bursts}, packets={self.packets}, "
            f"mean={self.mean_burst_size:.1f})"
        )


def collect_burst_stats(switch) -> "BurstStats | None":
    """The switch's burst telemetry, if it has a burst driver (duck-typed)."""
    stats = getattr(switch, "burst_stats", None)
    return stats if isinstance(stats, BurstStats) else None


@dataclass(frozen=True)
class FlowStatsEntry:
    """One rule's statistics, as a flow-stats reply would carry them."""

    table_id: int
    priority: int
    match: Match
    packets: int
    bytes: int
    cookie: int


@dataclass(frozen=True)
class TableStats:
    """Per-table aggregate statistics."""

    table_id: int
    active_entries: int
    packets: int
    bytes: int


def collect_flow_stats(
    pipeline: Pipeline,
    table_id: "int | None" = None,
    match: "Match | None" = None,
    cookie: "int | None" = None,
) -> list[FlowStatsEntry]:
    """Flow statistics, optionally filtered.

    ``match`` filters like an OpenFlow stats request: a rule is reported
    when its match is *covered by* the filter (the filter is equal or more
    general).
    """
    out: list[FlowStatsEntry] = []
    for table in pipeline:
        if table_id is not None and table.table_id != table_id:
            continue
        for entry in table:
            if match is not None and not match.covers(entry.match):
                continue
            if cookie is not None and entry.cookie != cookie:
                continue
            out.append(
                FlowStatsEntry(
                    table_id=table.table_id,
                    priority=entry.priority,
                    match=entry.match,
                    packets=entry.counters.packets,
                    bytes=entry.counters.bytes,
                    cookie=entry.cookie,
                )
            )
    return out


def collect_table_stats(pipeline: Pipeline) -> list[TableStats]:
    out = []
    for table in pipeline:
        packets = sum(e.counters.packets for e in table)
        nbytes = sum(e.counters.bytes for e in table)
        out.append(
            TableStats(
                table_id=table.table_id,
                active_entries=len(table),
                packets=packets,
                bytes=nbytes,
            )
        )
    return out


def aggregate_stats(
    pipeline: Pipeline,
    table_id: "int | None" = None,
    match: "Match | None" = None,
) -> tuple[int, int, int]:
    """(flow count, packets, bytes) over the filtered rule set."""
    entries = collect_flow_stats(pipeline, table_id=table_id, match=match)
    return (
        len(entries),
        sum(e.packets for e in entries),
        sum(e.bytes for e in entries),
    )
