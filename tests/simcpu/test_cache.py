"""Tests for the cache-hierarchy simulator and meters."""

from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import CycleMeter, NULL_METER

TINY = Platform(
    name="tiny",
    freq_hz=1e9,
    l1_lines=2,
    l2_lines=4,
    l3_lines=8,
    lat_l1=1,
    lat_l2=10,
    lat_l3=100,
    lat_dram=1000,
)


class TestHierarchy:
    def test_cold_miss_costs_dram(self):
        c = CacheHierarchy(TINY)
        assert c.access("a") == 1000
        assert c.stats.dram_accesses == 1

    def test_warm_hit_costs_l1(self):
        c = CacheHierarchy(TINY)
        c.access("a")
        assert c.access("a") == 1
        assert c.stats.l1_hits == 1

    def test_l1_eviction_falls_to_l2(self):
        c = CacheHierarchy(TINY)
        c.access("a")
        c.access("b")
        c.access("c")  # evicts "a" from L1 (capacity 2)
        assert c.access("a") == 10
        assert c.stats.l2_hits == 1

    def test_l2_eviction_falls_to_l3(self):
        c = CacheHierarchy(TINY)
        for line in "abcde":
            c.access(line)  # 5 lines > l2 capacity 4
        assert c.access("a") == 100

    def test_lru_order(self):
        c = CacheHierarchy(TINY)
        c.access("a")
        c.access("b")
        c.access("a")  # refresh "a"
        c.access("c")  # evicts "b", not "a"
        assert c.access("a") == 1

    def test_working_set_in_l3(self):
        c = CacheHierarchy(TINY)
        lines = [f"x{i}" for i in range(8)]
        for _ in range(3):
            for line in lines:
                c.access(line)
        stats = c.stats
        # After warm-up rounds, no DRAM accesses: everything fits L3.
        assert stats.dram_accesses == 8  # only the cold pass

    def test_install_l3_models_ddio(self):
        c = CacheHierarchy(TINY)
        c.install_l3("pkt")
        assert c.access("pkt") == 100

    def test_clear(self):
        c = CacheHierarchy(TINY)
        c.access("a")
        c.clear()
        assert c.access("a") == 1000


class TestMeters:
    def test_null_meter_is_free(self):
        NULL_METER.charge(100)
        NULL_METER.touch("x")  # no exception, no state

    def test_cycle_meter_accumulates(self):
        m = CycleMeter(TINY)
        m.begin_packet()
        m.charge(5)
        m.touch("a")  # cold: 1000
        assert m.end_packet() == 1005
        m.begin_packet()
        m.charge(5)
        m.touch("a")  # warm: 1
        assert m.end_packet() == 6
        assert m.packets == 2
        assert m.mean_cycles_per_packet == (1005 + 6) / 2

    def test_pps_conversion_and_nic_cap(self):
        platform = Platform(
            name="capped", freq_hz=1e9, l1_lines=2, l2_lines=4, l3_lines=8,
            lat_l1=1, lat_l2=10, lat_l3=100, lat_dram=1000, nic_pps_limit=1000.0,
        )
        m = CycleMeter(platform)
        m.begin_packet()
        m.charge(10)
        m.end_packet()
        assert m.mean_pps() == 1000.0  # 1e8 uncapped, NIC-capped to 1000

    def test_history(self):
        m = CycleMeter(TINY)
        m.keep_history = True
        for cycles in (3, 7):
            m.begin_packet()
            m.charge(cycles)
            m.end_packet()
        assert m.packet_history == [3, 7]

    def test_reset(self):
        m = CycleMeter(TINY)
        m.begin_packet()
        m.touch("a")
        m.end_packet()
        m.reset()
        assert m.packets == 0 and m.total_cycles == 0
        m.begin_packet()
        assert m.touch("a") is None  # cold again after reset
        assert m.end_packet() == 1000


class TestPlatformNumbers:
    def test_table1_values(self):
        p = XEON_E5_2620
        assert p.freq_hz == 2.0e9
        assert p.lat_l1 == 4 and p.lat_l2 == 12 and p.lat_l3 == 29
        assert p.l1_lines == 512          # 32 KB
        assert p.l2_lines == 4096         # 256 KB
        assert p.l3_lines == 245760       # 15 MB

    def test_latency_accessor(self):
        assert XEON_E5_2620.latency(1) == 4
        assert XEON_E5_2620.latency(4) == XEON_E5_2620.lat_dram

    def test_pps(self):
        assert XEON_E5_2620.pps(200) == 1e7
