"""Tests for the Appendix's 3SAT → REGDECOMP reduction."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.theory.regdecomp import (
    AbstractTable,
    WILDCARD,
    brute_force_satisfiable,
    evaluate,
    is_regular,
    reduction_table,
    single_regular_equivalent,
    target_regular_table,
)


class TestAbstractTable:
    def test_first_match_semantics(self):
        t = AbstractTable(2, [((0, WILDCARD), True), ((WILDCARD, WILDCARD), False)])
        assert evaluate(t, (0, 1)) is True
        assert evaluate(t, (1, 1)) is False

    def test_no_catch_all_raises(self):
        t = AbstractTable(1, [((0,), True)])
        with pytest.raises(ValueError):
            evaluate(t, (1,))

    def test_bad_cell_rejected(self):
        with pytest.raises(ValueError):
            AbstractTable(1, [((2,), True)])

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            AbstractTable(2, [((0,), True)])
        t = AbstractTable(1, [((WILDCARD,), True)])
        with pytest.raises(ValueError):
            evaluate(t, (0, 1))


class TestRegularity:
    def test_target_table_regular(self):
        assert is_regular(target_regular_table(3))

    def test_two_column_table_not_regular(self):
        t = AbstractTable(2, [((0, 1), True), ((WILDCARD, WILDCARD), False)])
        assert not is_regular(t)

    def test_mid_table_catch_all_not_regular(self):
        t = AbstractTable(
            1, [((WILDCARD,), True), ((0,), False), ((WILDCARD,), False)]
        )
        assert not is_regular(t)


class TestPaperExample:
    """(X1 v ~X3 v X4) ^ (~X1 v X2 v X3), the Appendix's worked table."""

    CNF = [(1, -3, 4), (-1, 2, 3)]

    def test_table_rows(self):
        t = reduction_table(self.CNF, 4)
        assert t.rows[0][0] == (0, WILDCARD, 1, 0, 1)
        assert t.rows[1][0] == (1, 0, 0, WILDCARD, 1)
        assert t.rows[2][0] == (WILDCARD,) * 5
        assert [a for _c, a in t.rows] == [False, False, True]

    def test_table_computes_formula(self):
        t = reduction_table(self.CNF, 4)
        for bits in itertools.product((0, 1), repeat=4):
            expected = all(
                any((bits[abs(l) - 1] == 1) == (l > 0) for l in clause)
                for clause in self.CNF
            )
            assert evaluate(t, bits + (1,)) == expected

    def test_satisfiable_hence_not_equivalent(self):
        assert brute_force_satisfiable(self.CNF, 4)
        assert not single_regular_equivalent(reduction_table(self.CNF, 4), 4)


class TestReductionTheorem:
    def test_unsat_formula_is_equivalent(self):
        # (x1) ^ (~x1) is unsatisfiable (padded to 3 literals).
        cnf = [(1, 1, 1), (-1, -1, -1)]
        assert not brute_force_satisfiable(cnf, 1)
        assert single_regular_equivalent(reduction_table(cnf, 1), 1)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equivalence_iff_unsat(self, seed):
        """The Appendix's theorem, verified end to end on random CNFs."""
        rng = random.Random(seed)
        n_vars = rng.randrange(2, 6)
        n_clauses = rng.randrange(1, 6)
        cnf = []
        for _ in range(n_clauses):
            lits = rng.sample(range(1, n_vars + 1), min(3, n_vars))
            cnf.append(tuple(v if rng.random() < 0.5 else -v for v in lits))
        table = reduction_table(cnf, n_vars)
        assert single_regular_equivalent(table, n_vars) == (
            not brute_force_satisfiable(cnf, n_vars)
        )

    def test_literal_out_of_range(self):
        with pytest.raises(ValueError):
            reduction_table([(5,)], 3)
