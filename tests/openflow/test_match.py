"""Tests for Match: construction, evaluation, and relations."""

import pytest
from hypothesis import given

import strategies as sts

from repro.net.addresses import ip_to_int
from repro.openflow.match import Match
from repro.packet import PacketBuilder
from repro.packet.parser import parse


class TestConstruction:
    def test_string_specs(self):
        m = Match(ipv4_dst="192.0.2.0/24", eth_dst="02:00:00:00:00:01", tcp_dst=80)
        assert m.mask_of("ipv4_dst") == 0xFFFFFF00
        assert m.is_exact("tcp_dst")
        assert m.value_of("eth_dst") == 0x020000000001

    def test_value_canonicalized_under_mask(self):
        a = Match(ipv4_dst=("192.0.2.77", 0xFFFFFF00))
        b = Match(ipv4_dst=("192.0.2.0", 0xFFFFFF00))
        assert a == b
        assert hash(a) == hash(b)

    def test_zero_mask_dropped(self):
        assert Match(ipv4_dst=(123, 0)).is_catch_all

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            Match(no_such_field=1)

    def test_unmaskable_field_rejects_mask(self):
        with pytest.raises(ValueError):
            Match(tcp_dst=(80, 0xFF00))

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            Match(tcp_dst=1 << 16)

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            Match(ipv4_dst="10.0.0.0/33")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            Match(tcp_dst=True)

    def test_from_pairs(self):
        m = Match.from_pairs({"ipv4_src": (0x0A000000, 0xFF000000)})
        assert m.prefix_len("ipv4_src") == 8


class TestEvaluation:
    def pkt(self, **kw):
        return parse(PacketBuilder(in_port=kw.pop("in_port", 1)).eth()
                     .ipv4(src=kw.pop("src", "10.0.0.1"), dst=kw.pop("dst", "192.0.2.1"))
                     .tcp(dst_port=kw.pop("dport", 80)).build())

    def test_exact_hit_and_miss(self):
        m = Match(tcp_dst=80)
        assert m.matches(self.pkt())
        assert not m.matches(self.pkt(dport=443))

    def test_masked_hit(self):
        m = Match(ipv4_dst="192.0.2.0/24")
        assert m.matches(self.pkt(dst="192.0.2.200"))
        assert not m.matches(self.pkt(dst="192.0.3.1"))

    def test_absent_header_never_matches(self):
        m = Match(tcp_dst=80)
        udp = parse(PacketBuilder().eth().ipv4().udp(dst_port=80).build())
        assert not m.matches(udp)

    def test_catch_all_matches_everything(self):
        assert Match().matches(self.pkt())

    def test_matches_key(self):
        m = Match(ipv4_dst="192.0.2.0/24", tcp_dst=80)
        assert m.matches_key({"ipv4_dst": ip_to_int("192.0.2.5"), "tcp_dst": 80})
        assert not m.matches_key({"ipv4_dst": ip_to_int("192.0.2.5"), "tcp_dst": None})


class TestRelations:
    def test_covers(self):
        broad = Match(ipv4_dst="10.0.0.0/8")
        narrow = Match(ipv4_dst="10.1.0.0/16", tcp_dst=80)
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_catch_all_covers_all(self):
        assert Match().covers(Match(tcp_dst=80))

    def test_overlap_disjoint_values(self):
        assert not Match(tcp_dst=80).overlaps(Match(tcp_dst=443))

    def test_overlap_different_fields(self):
        assert Match(tcp_dst=80).overlaps(Match(ipv4_dst="10.0.0.0/8"))

    def test_without_and_extended(self):
        m = Match(ipv4_dst="10.0.0.0/8", tcp_dst=80)
        assert m.without("tcp_dst") == Match(ipv4_dst="10.0.0.0/8")
        assert Match().extended("tcp_dst", 80) == Match(tcp_dst=80)

    @given(sts.matches(), sts.matches())
    def test_covers_implies_overlaps(self, a, b):
        if a.covers(b):
            assert a.overlaps(b)

    @given(sts.matches(), sts.packets())
    def test_covers_semantics(self, m, pkt):
        # Anything a narrower match accepts, the covering match accepts.
        view = parse(pkt)
        narrower = m  # compare m with itself extended
        if m.fields:
            name = m.fields[0]
            if m.matches(view):
                assert m.covers(narrower)

    @given(sts.matches(), sts.matches(), sts.packets())
    def test_no_overlap_means_no_common_packet(self, a, b, pkt):
        if not a.overlaps(b):
            view = parse(pkt)
            assert not (a.matches(view) and b.matches(view))


class TestProtocolPrereqs:
    def test_required_protos_union(self):
        from repro.packet.parser import PROTO_IPV4, PROTO_TCP

        m = Match(ipv4_dst="10.0.0.0/8", tcp_dst=80)
        req = m.required_protos()
        assert req & PROTO_IPV4 and req & PROTO_TCP

    def test_repr_stable(self):
        m = Match(tcp_dst=80, ipv4_dst="10.0.0.0/8")
        assert "tcp_dst" in repr(m) and "ipv4_dst" in repr(m)
