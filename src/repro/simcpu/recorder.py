"""Meters: where datapaths charge cycles and report memory touches.

A :class:`Meter` receives two kinds of events while a datapath processes a
packet:

* ``charge(cycles)`` — fixed instruction-cost atoms;
* ``touch(line)`` — a memory access to an abstract cache line, whose
  latency depends on the cache hierarchy's current state.

:class:`NullMeter` ignores everything (functional runs, differential
tests); :class:`CycleMeter` drives a :class:`CacheHierarchy` and
accumulates per-packet and aggregate statistics (the measurement runs).
"""

from __future__ import annotations

from typing import Hashable

from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.platform import Platform


class Meter:
    """Interface; see :class:`NullMeter` and :class:`CycleMeter`."""

    def charge(self, cycles: float) -> None:
        raise NotImplementedError

    def touch(self, line: Hashable) -> None:
        raise NotImplementedError


class NullMeter(Meter):
    """A meter that costs (almost) nothing and records nothing."""

    __slots__ = ()

    def charge(self, cycles: float) -> None:
        pass

    def touch(self, line: Hashable) -> None:
        pass


#: Shared do-nothing meter for functional runs.
NULL_METER = NullMeter()


class CycleMeter(Meter):
    """Accumulates cycles against a simulated cache hierarchy.

    Usage per packet::

        meter.begin_packet()
        ...  # datapath charges and touches
        cycles = meter.end_packet()
    """

    def __init__(self, platform: Platform):
        self.platform = platform
        self.cache = CacheHierarchy(platform)
        self._factor = platform.cycle_factor
        self._packet_cycles = 0.0
        self.total_cycles = 0.0
        self.packets = 0
        self._packet_history: list[float] = []
        self.keep_history = False

    def begin_packet(self) -> None:
        """Open a packet's accounting window.

        Deliberately does **not** zero the accumulator: cycles charged
        between packets — per-burst IO framework cost, control-plane work
        at a burst boundary — attach to the *next* packet instead of
        vanishing. ``end_packet`` already resets the accumulator, so in a
        plain begin/end loop this is indistinguishable from a reset.
        """

    def end_packet(self) -> float:
        cycles = self._packet_cycles
        self.total_cycles += cycles
        self.packets += 1
        if self.keep_history:
            self._packet_history.append(cycles)
        self._packet_cycles = 0.0
        return cycles

    def charge(self, cycles: float) -> None:
        self._packet_cycles += cycles * self._factor

    def touch(self, line: Hashable) -> None:
        self._packet_cycles += self.cache.access(line)

    def touch_ddio(self, line: Hashable) -> None:
        """Packet-buffer access: the NIC DMAs the frame into L3 first."""
        self.cache.install_l3(line)
        self._packet_cycles += self.cache.access(line)

    def absorb(self, cycles: float, packets: int = 0, llc_misses: int = 0) -> None:
        """Fold another core's already-metered totals into this meter.

        The sharded engine's gather path: each shard meters on its own
        per-core :class:`CycleMeter` (private caches) and reports deltas;
        the caller-facing meter absorbs them **as-is** — no
        ``cycle_factor`` rescaling (the shard already applied it), no
        cache simulation (the misses happened on the shard's hierarchy,
        they are only tallied here for ``llc_misses_per_packet``).
        """
        self.total_cycles += cycles
        self.packets += packets
        self.cache.stats.accesses += llc_misses
        self.cache.stats.dram_accesses += llc_misses

    # -- results --------------------------------------------------------------

    @property
    def mean_cycles_per_packet(self) -> float:
        if not self.packets:
            return 0.0
        return self.total_cycles / self.packets

    @property
    def packet_history(self) -> list[float]:
        return list(self._packet_history)

    def mean_pps(self) -> float:
        """Packet rate implied by the mean per-packet cost (NIC-capped)."""
        mean = self.mean_cycles_per_packet
        if mean <= 0:
            return 0.0
        rate = self.platform.freq_hz / mean
        if self.platform.nic_pps_limit is not None:
            rate = min(rate, self.platform.nic_pps_limit)
        return rate

    def llc_misses_per_packet(self) -> float:
        if not self.packets:
            return 0.0
        return self.cache.stats.llc_misses / self.packets

    def reset(self) -> None:
        self.cache.clear()
        self._packet_cycles = 0.0
        self.total_cycles = 0.0
        self.packets = 0
        self._packet_history.clear()
