"""Fig. 11: L3 routing packet rate over 1/10/1K prefixes vs active flows.

ESWITCH compiles the routing table into the DIR-24-8 LPM template; OVS
covers prefixes with megaflows and degrades as the flow set diversifies.
"""

from figshared import FLOW_AXIS, fmt_flows, publish, render_table, sweep_flows
from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.usecases import l3

PREFIX_COUNTS = (1, 10, 1_000)
L3_FLOW_AXIS = FLOW_AXIS


def test_fig11_l3_packet_rate(benchmark):
    results = {}
    for n_prefixes in PREFIX_COUNTS:
        _p, fib = l3.build(n_prefixes)
        results[("ES", n_prefixes)] = sweep_flows(
            lambda: ESwitch.from_pipeline(l3.build(n_prefixes)[0]),
            lambda n: l3.traffic(fib, n),
            flow_counts=L3_FLOW_AXIS,
        )
        results[("OVS", n_prefixes)] = sweep_flows(
            lambda: OvsSwitch(l3.build(n_prefixes)[0]),
            lambda n: l3.traffic(fib, n),
            flow_counts=L3_FLOW_AXIS,
        )

    header = ["flows"] + [
        f"{sw}({n})" for sw in ("ES", "OVS") for n in PREFIX_COUNTS
    ]
    rows = []
    for i, n_flows in enumerate(L3_FLOW_AXIS):
        row = [fmt_flows(n_flows)]
        for sw in ("ES", "OVS"):
            for n in PREFIX_COUNTS:
                row.append(f"{results[(sw, n)][i][1].mpps:.2f}")
        rows.append(row)
    publish("fig11_l3", render_table("Fig. 11: L3 routing packet rate [Mpps]",
                                     header, rows))

    for n in PREFIX_COUNTS:
        es = [m.mpps for _f, m in results[("ES", n)]]
        ovs = [m.mpps for _f, m in results[("OVS", n)]]
        assert min(es) > max(es) / 2.5          # ES robust
        assert es[0] > 10                        # near line rate, small mixes
        assert all(e >= o * 0.95 for e, o in zip(es, ovs))
        assert ovs[-1] < ovs[0] / 2              # OVS collapse

    _p, fib = l3.build(1_000)
    sw = ESwitch.from_pipeline(l3.build(1_000)[0])
    flows = l3.traffic(fib, 64)
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 64].copy()))
