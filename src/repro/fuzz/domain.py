"""Shared fuzz vocabulary: fields, value pools, masks, packet synthesis.

This module is the single source of truth for the value domains both the
hypothesis strategies (``tests/strategies.py``) and the seeded fuzzer
(:mod:`repro.fuzz.gen`) draw from. Small, collision-rich pools make
rule/packet interactions likely; the fuzzer widens them with fully random
values and **arbitrary masks** so the generated ruleset space includes
the awkward corners the curated pools never reach.

:func:`packet_for_fields` is the inverse of a match: given a field
constraint map it synthesizes a frame that satisfies every constraint
(off-mask bits randomized), which is how the traffic generator biases
bursts toward match/miss boundaries.
"""

from __future__ import annotations

import random

from repro.packet.builder import PacketBuilder
from repro.packet.packet import Packet

V6_A = 0x20010DB8000000000000000000000001
V6_B = 0x20010DB8000000000000000000000002

#: Fields random pipelines draw from. Small value domains make
#: rule/packet collisions likely — that's the point.
FIELD_DOMAINS: dict[str, list[int]] = {
    "in_port": [1, 2, 3],
    "eth_dst": [0x0200_0000_0001, 0x0200_0000_0002, 0x0200_0000_0003],
    "ipv4_src": [0x0A000001, 0x0A000002, 0xC0A80001],
    "ipv4_dst": [0xC0000201, 0xC0000202, 0x08080808],
    "ipv6_dst": [V6_A, V6_B],
    "ip_proto": [6, 17],
    "tcp_dst": [22, 80, 443],
    "udp_dst": [53, 123],
    "vlan_vid": [100, 200],
}

#: Curated mask pools (the "nice" masks real controllers install).
MASKS = {
    "ipv4_src": [0xFFFFFFFF, 0xFFFFFF00, 0xFFFF0000, 0x80000000],
    "ipv4_dst": [0xFFFFFFFF, 0xFFFFFF00, 0xFFFF0000],
    "ipv6_dst": [(1 << 128) - 1, ((1 << 64) - 1) << 64],  # exact and /64
    "eth_dst": [0xFFFFFFFFFFFF],
}

#: Bit widths, for arbitrary-mask generation and off-mask randomization.
FIELD_WIDTHS: dict[str, int] = {
    "in_port": 32,
    "eth_src": 48,
    "eth_dst": 48,
    "vlan_vid": 12,
    "ipv4_src": 32,
    "ipv4_dst": 32,
    "ipv6_dst": 128,
    "ip_proto": 8,
    "tcp_src": 16,
    "tcp_dst": 16,
    "udp_src": 16,
    "udp_dst": 16,
}

#: Fields the OXM model declares non-maskable (Match rejects masks on
#: them): ports and protocol numbers match exactly or not at all.
EXACT_ONLY = frozenset(
    {"in_port", "ip_proto", "tcp_src", "tcp_dst", "udp_src", "udp_dst"}
)

#: Extra source-port pools the fuzzer (but not the curated strategies)
#: uses to exercise the range template on both port columns.
PORT_SRC_DOMAINS: dict[str, list[int]] = {
    "tcp_src": [1024, 1025, 5000],
    "udp_src": [1024, 2048],
}

#: Coherent field subsets: a match drawn from one profile can actually
#: be satisfied by a single frame (no tcp+udp contradictions).
PROFILES: dict[str, tuple[str, ...]] = {
    "l2": ("in_port", "eth_dst", "vlan_vid"),
    "v4": ("in_port", "eth_dst", "ipv4_src", "ipv4_dst", "ip_proto"),
    "v4tcp": ("in_port", "ipv4_src", "ipv4_dst", "tcp_src", "tcp_dst"),
    "v4udp": ("in_port", "ipv4_src", "ipv4_dst", "udp_src", "udp_dst"),
    "v6": ("in_port", "eth_dst", "ipv6_dst"),
}


def full_mask(name: str) -> int:
    return (1 << FIELD_WIDTHS[name]) - 1


def domain_value(rng: random.Random, name: str) -> int:
    """A value for ``name``: collision-rich pool most of the time,
    anywhere in the field's width otherwise."""
    pool = FIELD_DOMAINS.get(name) or PORT_SRC_DOMAINS.get(name)
    if pool is not None and rng.random() < 0.7:
        return rng.choice(pool)
    return rng.getrandbits(FIELD_WIDTHS[name])


def random_mask(rng: random.Random, name: str) -> int:
    """Full, curated, prefix, or fully arbitrary mask for ``name``."""
    width = FIELD_WIDTHS[name]
    full = (1 << width) - 1
    if name in EXACT_ONLY:
        return full
    roll = rng.random()
    if roll < 0.55:
        return full
    if roll < 0.70 and name in MASKS:
        return rng.choice(MASKS[name])
    if roll < 0.85:  # prefix mask of random length (never /0: that's a
        # wildcard, i.e. the field simply absent from the match)
        plen = rng.randint(1, width)
        return (full << (width - plen)) & full
    # Arbitrary non-contiguous mask; reroll the (rare) all-zero draw.
    mask = rng.getrandbits(width)
    return mask or full


def random_fields(
    rng: random.Random,
    profile: "str | None" = None,
    max_fields: int = 3,
    exact_only: bool = False,
) -> dict[str, tuple[int, int]]:
    """A coherent field-constraint map ``{name: (value, mask)}``."""
    names = PROFILES[profile or rng.choice(sorted(PROFILES))]
    k = rng.randint(1, min(max_fields, len(names)))
    chosen = rng.sample(list(names), k)
    fields: dict[str, tuple[int, int]] = {}
    for name in chosen:
        mask = full_mask(name) if exact_only else random_mask(rng, name)
        fields[name] = (domain_value(rng, name) & mask, mask)
    if "ip_proto" in fields:
        # Keep the proto constraint satisfiable alongside any L4 fields.
        if any(f.startswith("tcp_") for f in fields):
            fields["ip_proto"] = (6, full_mask("ip_proto"))
        elif any(f.startswith("udp_") for f in fields):
            fields["ip_proto"] = (17, full_mask("ip_proto"))
    return fields


def perturb_fields(
    rng: random.Random, fields: dict[str, tuple[int, int]]
) -> dict[str, tuple[int, int]]:
    """Nudge one constraint toward a match/miss boundary.

    The returned map is fed to :func:`packet_for_fields`, so the
    perturbation lands in the *packet*, not the rule: off-by-one values
    cross range/LPM edges, an in-mask bit flip is a near-miss, an
    off-mask flip must still match.
    """
    out = dict(fields)
    name = rng.choice(sorted(out))
    value, mask = out[name]
    width = FIELD_WIDTHS[name]
    full = (1 << width) - 1
    roll = rng.randrange(4)
    if roll == 0:
        value = (value + 1) & full
    elif roll == 1:
        value = (value - 1) & full
    elif roll == 2 and mask:  # flip the lowest set mask bit: near-miss
        value ^= mask & -mask
    else:  # flip a bit outside the mask: must still match
        hole = full & ~mask
        if hole:
            value ^= hole & -hole
        else:
            value = (value + 1) & full
    out[name] = (value, mask)
    return out


def packet_for_fields(
    rng: random.Random, fields: dict[str, tuple[int, int]]
) -> Packet:
    """A frame satisfying every constraint in ``fields``.

    Constrained bits are honored exactly; unconstrained bits (and whole
    unconstrained headers) are randomized from the domains so the frame
    still collides with *other* rules.
    """

    def fill(name: str) -> int:
        width = FIELD_WIDTHS[name]
        constraint = fields.get(name)
        if constraint is None:
            return domain_value(rng, name)
        value, mask = constraint
        return (value & mask) | (rng.getrandbits(width) & ~mask & full_mask(name))

    in_port = fields["in_port"][0] if "in_port" in fields else rng.choice(
        FIELD_DOMAINS["in_port"]
    )
    builder = PacketBuilder(in_port=in_port)
    builder.eth(src=0x0200_0000_0099, dst=fill("eth_dst"))
    if "vlan_vid" in fields or rng.random() < 0.15:
        builder.vlan(vid=fill("vlan_vid") & 0xFFF)

    v4_fields = ("ipv4_src", "ipv4_dst", "ip_proto", "tcp_src", "tcp_dst",
                 "udp_src", "udp_dst")
    wants_v6 = "ipv6_dst" in fields
    wants_v4 = any(f in fields for f in v4_fields)
    if wants_v6:
        builder.ipv6(src=V6_A + 0x99, dst=fill("ipv6_dst"))
        return builder.build()
    if not wants_v4 and rng.random() < 0.2:
        return builder.build()  # L2-only frame

    proto = fields["ip_proto"][0] if "ip_proto" in fields else None
    wants_tcp = proto == 6 or any(f.startswith("tcp_") for f in fields)
    wants_udp = proto == 17 or any(f.startswith("udp_") for f in fields)
    if proto is not None and proto not in (6, 17):
        builder.ipv4(src=fill("ipv4_src"), dst=fill("ipv4_dst"), proto=proto)
        return builder.build()
    builder.ipv4(src=fill("ipv4_src"), dst=fill("ipv4_dst"))
    if wants_tcp:
        builder.tcp(src_port=fill("tcp_src") & 0xFFFF, dst_port=fill("tcp_dst") & 0xFFFF)
    elif wants_udp:
        builder.udp(src_port=fill("udp_src") & 0xFFFF, dst_port=fill("udp_dst") & 0xFFFF)
    elif rng.random() < 0.8:
        if rng.random() < 0.5:
            builder.tcp(src_port=fill("tcp_src") & 0xFFFF, dst_port=fill("tcp_dst") & 0xFFFF)
        else:
            builder.udp(src_port=fill("udp_src") & 0xFFFF, dst_port=fill("udp_dst") & 0xFFFF)
    return builder.build()


def malformed_packet(rng: random.Random) -> Packet:
    """A truncated or garbage frame: parsers must degrade identically."""
    roll = rng.random()
    if roll < 0.5:
        base = packet_for_fields(rng, random_fields(rng))
        cut = rng.randrange(0, max(1, len(base.data)))
        return Packet(bytes(base.data[:cut]), in_port=base.in_port)
    n = rng.randrange(0, 64)
    return Packet(bytes(rng.getrandbits(8) for _ in range(n)),
                  in_port=rng.choice(FIELD_DOMAINS["in_port"]))
