"""Wall-clock throughput of the simulator itself (not the cycle model).

Every other number in this repo is *modeled*: cycles charged by the cost
book, converted to Mpps at the platform's clock. This rig measures the
orthogonal quantity the ROADMAP's "as fast as the hardware allows" north
star cares about for the reproduction itself — how many packets per
second of real time the simulated datapath sustains — and is the oracle
for the fusion layer (:mod:`repro.core.fuse`): fused vs trampoline is a
pure interpreter-dispatch delta, so it shows up here and *only* here.

Two meters bound the measurement:

* ``null`` mode runs the functional datapath with the shared
  :data:`~repro.simcpu.recorder.NULL_METER` — pure forwarding speed;
* ``cycle`` mode attaches a real :class:`~repro.simcpu.recorder.
  CycleMeter`, so the point also reports the *modeled* Mpps next to the
  simulator's own pkts/sec — the two axes EXPERIMENTS.md is careful to
  keep apart.

Protocol: packet copies for every repeat are materialized before the
clock starts (actions mutate packets in place), a warm-up pass absorbs
the lazy fuse compile and cache effects, and each point takes the best
of ``repeats`` timed runs.

A third axis rides on top of those two (``cores``): real-parallel
scaling of :class:`~repro.parallel.ShardedESwitch`, the simulator's own
wall-clock throughput when the burst is RSS-scattered over N shard
replicas running on real cores — the wall-clock counterpart of the
*modeled* Fig. 19 curves.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Sequence

from repro.core.analysis import CompileConfig
from repro.core.eswitch import ESwitch
from repro.ovs.switch import OvsSwitch
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import CycleMeter, NULL_METER
from repro.usecases import gateway, l2, l3, loadbalancer

CASES = ("l2", "l3", "gateway", "lb")
MODES = ("null", "cycle")
VARIANTS = ("fused", "trampoline", "ovs")

#: The acceptance bar the fusion layer must clear (see ISSUE 2): fused
#: wall-clock pkts/sec on the multi-table gateway, NullMeter mode.
GATEWAY_SPEEDUP_FLOOR = 1.3

#: The acceptance bar the sharded engine must clear (see ISSUE 3):
#: ``ShardedESwitch(workers=4)`` vs the single fused path on the gateway,
#: NullMeter mode — on hardware that actually has the cores (the scatter/
#: gather tax means a core-starved host shows < 1x, honestly reported).
SHARDED_SPEEDUP_FLOOR = 2.0

#: The zero-copy transport bar (ISSUE 7): ``workers=2`` over shared-memory
#: rings vs the single fused path, gateway, NullMeter mode — again only
#: physically meaningful on a host with the cores (``cpu_count >= 2``).
SHARDED2_SPEEDUP_FLOOR = 1.5


def _stride_sample(items: list, n: int) -> list:
    """Up to ``n`` items spread evenly across the list (not a prefix).

    Traffic templates capped below the table size must still span the
    whole table — a prefix sample would only ever exercise the lowest
    slots and flatter every cache in sight.
    """
    if n >= len(items):
        return items
    stride = len(items) / n
    return [items[int(i * stride)] for i in range(n)]


def _case_builders(
    n_flows: int, traffic_flows: "int | None" = None
) -> dict[str, Callable]:
    """Per-use-case ``() -> (pipeline, flows)`` factories, sized to taste.

    ``traffic_flows`` caps how many *distinct template packets* are
    materialized (None = ``n_flows``, the historical behavior). The
    tables are still sized from ``n_flows``; the templates stride-sample
    the table so a million-entry rung is exercised end to end without
    building a million packet objects nobody sends — the replay loop
    only ever cycles through ``n_packets`` of them anyway.
    """
    n_traffic = n_flows if traffic_flows is None else min(n_flows, traffic_flows)

    def build_l2():
        pipeline, macs = l2.build(max(16, n_flows // 2))
        return pipeline, l2.traffic(_stride_sample(macs, n_traffic), n_traffic)

    def build_l3():
        pipeline, fib = l3.build(max(64, n_flows // 2))
        return pipeline, l3.traffic(_stride_sample(fib, n_traffic), n_traffic)

    def build_gateway():
        pipeline, fib = gateway.build(n_ce=4, users_per_ce=16, n_prefixes=64)
        return pipeline, gateway.traffic(fib, n_traffic, n_ce=4, users_per_ce=16)

    def build_lb():
        n_services = max(4, min(64, n_flows // 8))
        pipeline = loadbalancer.build_multi_stage(n_services)
        return pipeline, loadbalancer.traffic(n_services, n_traffic)

    return {"l2": build_l2, "l3": build_l3, "gateway": build_gateway, "lb": build_lb}


def _make_switch(variant: str, pipeline) -> object:
    if variant == "fused":
        return ESwitch(pipeline, config=CompileConfig(fuse=True))
    if variant == "trampoline":
        return ESwitch(pipeline, config=CompileConfig(fuse=False))
    if variant == "ovs":
        return OvsSwitch(pipeline)
    raise ValueError(f"unknown variant {variant!r}")


def _timed_run(switch, pkts: "list", mode: str, burst: int, platform: Platform):
    """One timed pass; returns (elapsed seconds, modeled pps or None).

    A switch that exposes the sharded engine's ``submit_burst``/
    ``collect`` pair is driven depth-2 pipelined: burst N+1 is scattered
    before burst N is gathered, so the workers compute while the engine
    decodes — the double-buffering half of the zero-copy transport.
    Verdict order and metering are unchanged (collect is FIFO).
    """
    meter = NULL_METER if mode == "null" else CycleMeter(platform)
    submit = getattr(switch, "submit_burst", None)
    t0 = time.perf_counter()
    if submit is not None:
        collect = switch.collect
        prev = None
        for start in range(0, len(pkts), burst):
            handle = submit(pkts[start : start + burst], meter)
            if prev is not None:
                collect(prev)
            prev = handle
        if prev is not None:
            collect(prev)
    else:
        for start in range(0, len(pkts), burst):
            switch.process_burst(pkts[start : start + burst], meter)
    elapsed = time.perf_counter() - t0
    if mode == "null":
        return elapsed, None
    return elapsed, platform.freq_hz / meter.mean_cycles_per_packet


def run_wallclock(
    cases: Sequence[str] = CASES,
    modes: Sequence[str] = MODES,
    variants: Sequence[str] = VARIANTS,
    n_flows: int = 256,
    n_packets: int = 3_000,
    burst: int = 32,
    repeats: int = 3,
    warmup: int = 512,
    platform: Platform = XEON_E5_2620,
    cores: Sequence[int] = (),
    control_faults: bool = False,
    transport: str = "auto",
    traffic_flows: "int | None" = None,
) -> dict:
    """The full sweep; returns the ``BENCH_wallclock.json`` document.

    ``points`` carries one record per (case, variant, mode); ``speedups``
    pre-computes the ratios the acceptance criteria and CI read
    (``fused_vs_trampoline``, ``fused_vs_ovs``) per case and mode.

    ``cores``, when non-empty, adds the **multicore axis**: for each case
    and each worker count N, a :class:`~repro.parallel.ShardedESwitch`
    with N real shard workers is driven in NullMeter mode and its
    wall-clock pkts/sec lands in ``multicore`` (plus
    ``sharded{N}_vs_fused`` ratios in ``speedups``). This is the third
    measurement axis (see EXPERIMENTS.md): not the cycle model's modeled
    Mpps, not single-core simulator speed, but how the simulator itself
    scales when packets really run in parallel. ``meta.cpu_count``
    records how many hardware cores the host actually had — the number
    that decides whether scaling is physically possible.

    The repeats of all variants are interleaved round-robin so a clock or
    load drift hits every variant alike instead of biasing whichever was
    timed last; each point keeps its best (minimum) repeat.
    """
    if traffic_flows is None and n_flows > n_packets:
        # Templates past n_packets are never sent (`flows[i % n]` with
        # n > n_packets touches only the first n_packets): cap and
        # stride-sample instead of materializing dead packet objects —
        # the only way `--flows 1e6` completes in this lifetime.
        traffic_flows = n_packets
    builders = _case_builders(n_flows, traffic_flows)
    unknown = set(cases) - set(builders)
    if unknown:
        raise ValueError(f"unknown cases: {sorted(unknown)}")
    points: list[dict] = []
    for case in cases:
        pipeline, flows = builders[case]()
        n = len(flows)
        base = [flows[i % n] for i in range(n_packets)]
        combos = [
            (variant, mode, _make_switch(variant, pipeline))
            for variant in variants
            for mode in modes
        ]
        warm = base[: min(warmup, len(base))]
        for _variant, mode, switch in combos:
            # Absorbs the lazy fuse compile and first-touch cache effects.
            _timed_run(switch, [pkt.copy() for pkt in warm], mode, burst, platform)
        best: dict[tuple, float] = {}
        modeled: dict[tuple, float] = {}
        for _ in range(repeats):
            for variant, mode, switch in combos:
                pkts = [pkt.copy() for pkt in base]
                elapsed, model_pps = _timed_run(switch, pkts, mode, burst, platform)
                key = (variant, mode)
                best[key] = min(best.get(key, float("inf")), elapsed)
                if model_pps is not None:
                    modeled[key] = model_pps
        for variant, mode, _switch in combos:
            key = (variant, mode)
            point = {
                "case": case,
                "variant": variant,
                "mode": mode,
                "wall_pps": n_packets / best[key],
                "usec_per_pkt": best[key] / n_packets * 1e6,
                "packets": n_packets,
                "best_of": repeats,
            }
            if key in modeled:
                point["modeled_pps"] = modeled[key]
            points.append(point)
    speedups: dict[str, dict] = {}
    index = {(p["case"], p["variant"], p["mode"]): p["wall_pps"] for p in points}
    for case in cases:
        for mode in modes:
            fused = index.get((case, "fused", mode))
            if fused is None:
                continue
            ratios = {}
            for other in ("trampoline", "ovs"):
                baseline = index.get((case, other, mode))
                if baseline:
                    ratios[f"fused_vs_{other}"] = fused / baseline
            if ratios:
                speedups[f"{case}/{mode}"] = ratios
    multicore: list[dict] = []
    if cores:
        multicore = _run_multicore(
            cases, builders, cores, n_packets, burst, repeats, warmup,
            speedups, transport,
        )
    control_plane: list[dict] = []
    if control_faults:
        control_plane = run_control_faults(
            n_packets=min(n_packets, 1_500), burst=burst
        )
    return {
        "meta": {
            "n_flows": n_flows,
            "traffic_flows": traffic_flows,
            "n_packets": n_packets,
            "burst": burst,
            "repeats": repeats,
            "warmup": warmup,
            "platform": platform.name,
            "cpu_count": os.cpu_count(),
            "cores_axis": list(cores),
            "transport": transport,
            "note": (
                "wall_pps is simulator wall-clock throughput (real pkts/sec "
                "of the Python datapath); modeled_pps is the cycle model's "
                "prediction for the simulated hardware — different axes. "
                "multicore points run ShardedESwitch with real shard "
                "workers, scatter bursts of burst*workers, NullMeter."
            ),
        },
        "points": points,
        "speedups": speedups,
        "multicore": multicore,
        "control_plane": control_plane,
    }


def run_control_faults(
    n_packets: int = 1_500,
    burst: int = 32,
    n_stations: int = 32,
    loss: float = 0.05,
    seed: int = 7,
    fail_modes: Sequence[str] = ("fail-standalone", "fail-secure"),
) -> list[dict]:
    """The control-plane fault leg: wall-clock forwarding through an outage.

    For each §6.4 fail mode, a :class:`~repro.controller.session.
    ControllerSession` (lossy channel) fronts a fused :class:`ESwitch`
    running the reactive learning-switch pipeline, and the same traffic
    is timed across three phases: controller **up**, controller **down**
    (disconnected past the liveness timeout), and **recovered** (after
    reconnect + resync). Every point carries the session and switch
    health snapshots — the CI smoke asserts the outage really registered
    (``outages >= 1``, ``resyncs >= 1``) and that the datapath kept
    serving wall-clock traffic while the controller was gone.
    """
    from repro.controller import (
        ControllerSession,
        FailMode,
        LearningSwitch,
        LossyChannel,
    )
    from repro.controller.learning_switch import build_pipeline

    points: list[dict] = []
    for mode_name in fail_modes:
        fail_mode = FailMode(mode_name)
        switch = ESwitch(build_pipeline(), config=CompileConfig(fuse=True))
        session = ControllerSession(
            switch,
            channel=LossyChannel(loss=loss, seed=seed),
            fail_mode=fail_mode,
            echo_interval_s=1.0,
            liveness_timeout_s=3.0,
        )
        controller = LearningSwitch(session)
        session.controller = controller
        _pipeline, macs = l2.build(n_stations)
        from repro.traffic.flows import round_robin

        flows = l2.traffic(macs, n_stations)
        base = list(round_robin(flows, n_packets))

        def timed_phase(label: str) -> dict:
            pkts = [pkt.copy() for pkt in base]
            t0 = time.perf_counter()
            for start in range(0, len(pkts), burst):
                session.process_burst(pkts[start : start + burst])
            elapsed = time.perf_counter() - t0
            return {
                "phase": label,
                "wall_pps": n_packets / elapsed,
                "packets": n_packets,
            }

        phases = [timed_phase("up")]
        session.advance(2.0)
        session.disconnect()
        session.advance(10.0)  # liveness timeout trips: outage declared
        phases.append(timed_phase("down"))
        session.reconnect()
        session.advance(5.0)  # first echo through closes the outage
        phases.append(timed_phase("recovered"))
        points.append(
            {
                "fail_mode": mode_name,
                "loss": loss,
                "phases": phases,
                "session": session.health().as_dict(),
                "switch": switch.health().as_dict(),
                "learned": controller.learned,
                "install_failures": controller.install_failures,
            }
        )
    return points


def _run_multicore(
    cases: Sequence[str],
    builders: dict,
    cores: Sequence[int],
    n_packets: int,
    burst: int,
    repeats: int,
    warmup: int,
    speedups: dict,
    transport: str = "auto",
) -> list[dict]:
    """The real-parallel scaling sweep (the ``cores`` axis).

    Per case: one single-process fused baseline plus one
    :class:`ShardedESwitch` per worker count, every engine fed scatter
    bursts of ``burst * workers`` so each shard sees roughly ``burst``
    packets per sub-burst (an N-queue NIC polls N rings of the same
    depth, not one ring split N ways). Repeats interleave round-robin
    like the main sweep; engines are torn down afterwards.

    Every sharded point records its resolved ``transport`` and an
    ``oversubscribed`` flag — True when the host has fewer hardware
    cores than the engine needs (N workers plus the scatter/gather
    loop), i.e. when the point *cannot* show real scaling and must not
    be mixed into cross-host trajectory comparisons.
    """
    from repro.parallel import ShardedESwitch

    cpu_count = os.cpu_count() or 1
    points: list[dict] = []
    for case in cases:
        _pipeline, flows = builders[case]()
        n = len(flows)
        base = [flows[i % n] for i in range(n_packets)]
        combos: list[tuple[dict, object, int]] = []
        engines: list[ShardedESwitch] = []
        try:
            combos.append(
                (
                    {"case": case, "variant": "fused", "workers": 1,
                     "backend": "inline"},
                    _make_switch("fused", builders[case]()[0]),
                    burst,
                )
            )
            for workers in cores:
                engine = ShardedESwitch(
                    builders[case]()[0], workers=workers, transport=transport
                )
                engines.append(engine)
                combos.append(
                    (
                        {"case": case, "variant": f"sharded{workers}",
                         "workers": workers, "backend": engine.backend,
                         "transport": engine.transport,
                         "oversubscribed": cpu_count < workers + 1},
                        engine,
                        burst * workers,
                    )
                )
            warm = base[: min(warmup, len(base))]
            for _meta, switch, macroburst in combos:
                _timed_run(
                    switch, [pkt.copy() for pkt in warm], "null", macroburst,
                    XEON_E5_2620,
                )
            best: dict[int, float] = {}
            for _ in range(repeats):
                for key, (_meta, switch, macroburst) in enumerate(combos):
                    pkts = [pkt.copy() for pkt in base]
                    elapsed, _ = _timed_run(
                        switch, pkts, "null", macroburst, XEON_E5_2620
                    )
                    best[key] = min(best.get(key, float("inf")), elapsed)
            # Supervision telemetry must be read before teardown: a
            # degraded or respawn-heavy run changes how the numbers
            # should be read, so every sharded point carries it.
            for meta, switch, _macroburst in combos:
                if isinstance(switch, ShardedESwitch):
                    meta["health"] = switch.health().as_dict()
        finally:
            for engine in engines:
                engine.close()
        case_points = []
        for key, (meta, _switch, macroburst) in enumerate(combos):
            point = dict(meta)
            point.update(
                wall_pps=n_packets / best[key],
                usec_per_pkt=best[key] / n_packets * 1e6,
                burst=macroburst,
                packets=n_packets,
                best_of=repeats,
            )
            case_points.append(point)
        points.extend(case_points)
        baseline = case_points[0]["wall_pps"]
        ratios = {
            f"{p['variant']}_vs_fused": p["wall_pps"] / baseline
            for p in case_points[1:]
        }
        if ratios:
            speedups[f"{case}/multicore"] = ratios
    return points
