"""Cached-path behavior of explicit controller actions and DDIO metering."""

from repro.openflow.actions import Controller, Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter


def tap_pipeline():
    """Mirror-to-controller plus forward: a telemetry tap."""
    t = FlowTable(0)
    t.add(FlowEntry(Match(tcp_dst=80), priority=1,
                    actions=[Controller(), Output(2)]))
    t.add(FlowEntry(Match(), priority=0, actions=[Output(3)]))
    return Pipeline([t])


def http_pkt():
    return PacketBuilder(in_port=1).eth().ipv4().tcp(dst_port=80).build()


class TestCachedControllerAction:
    def test_packet_in_delivered_from_cached_path(self):
        punts = []
        ovs = OvsSwitch(tap_pipeline(), packet_in_handler=punts.append)
        for _ in range(4):
            ovs.process(http_pkt())
        # Upcall + three cached hits: each delivers a packet-in.
        assert len(punts) == 4
        assert ovs.stats.microflow_hits == 3

    def test_cached_verdict_keeps_controller_flag(self):
        ovs = OvsSwitch(tap_pipeline())
        first = ovs.process(http_pkt())
        cached = ovs.process(http_pkt())
        assert first.summary() == cached.summary()
        assert cached.to_controller and cached.forwarded


class TestDdioMetering:
    def test_touch_ddio_installs_into_l3(self):
        meter = CycleMeter(XEON_E5_2620)
        meter.begin_packet()
        meter.touch_ddio(("pktbuf", 1))
        cycles = meter.end_packet()
        # The NIC placed the line in L3: the first CPU access is an L3
        # hit, not a DRAM miss.
        assert cycles == XEON_E5_2620.lat_l3
        assert meter.cache.stats.dram_accesses == 0
