"""Integration test: the cache-overflow attack scenario (Sections 2.3/4.3).

A high-entropy port scan from one tenant must degrade honest traffic on
the flow-caching switch but leave the compiled datapath unaffected — the
paper's tenant-isolation argument, at test scale.
"""

import random

from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter
from repro.usecases import gateway

N_CE, USERS, PREFIXES = 4, 5, 500


def build():
    return gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)[0]


def attack_packet(rng):
    dst = rng.randrange(1 << 24, 223 << 24)
    return (
        PacketBuilder(in_port=gateway.ACCESS_PORT).eth()
        .vlan(vid=gateway.ce_vlan(0))
        .ipv4(src="10.0.0.1",
              dst=f"{dst >> 24}.{(dst >> 16) & 255}.{(dst >> 8) & 255}.{dst & 255}")
        .tcp(src_port=rng.randrange(1024, 65000), dst_port=rng.randrange(1, 65000))
        .build()
    )


def honest_cost(switch, honest_flows, rng, attack=False, n=3_000):
    meter = CycleMeter(XEON_E5_2620)
    for i in range(1_000):  # warm up on honest traffic
        meter.begin_packet()
        switch.process(honest_flows[i % len(honest_flows)].copy(), meter)
        meter.end_packet()
    cycles = 0.0
    count = 0
    for i in range(n):
        if attack and i % 4 != 0:
            meter.begin_packet()
            switch.process(attack_packet(rng), meter)
            meter.end_packet()
            continue
        meter.begin_packet()
        switch.process(honest_flows[i % len(honest_flows)].copy(), meter)
        cycles += meter.end_packet()
        count += 1
    return cycles / count


class TestCacheOverflowAttack:
    def test_ovs_degrades_eswitch_does_not(self):
        _p, fib = gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)
        honest = gateway.traffic(fib, 200, n_ce=N_CE, users_per_ce=USERS)
        rng = random.Random(4)

        ovs_base = honest_cost(
            OvsSwitch(build(), megaflow_capacity=2048), honest, rng
        )
        ovs_attacked = honest_cost(
            OvsSwitch(build(), megaflow_capacity=2048), honest,
            random.Random(4), attack=True,
        )
        es_base = honest_cost(ESwitch.from_pipeline(build()), honest, rng)
        es_attacked = honest_cost(
            ESwitch.from_pipeline(build()), honest, random.Random(4), attack=True
        )

        # OVS honest traffic gets at least 3x slower under attack.
        assert ovs_attacked > ovs_base * 3
        # ESWITCH honest traffic is essentially untouched (<15% shift from
        # shared CPU-cache pressure alone).
        assert es_attacked < es_base * 1.15

    def test_attack_verdicts_still_correct(self):
        """Under attack the *behavior* must stay correct on both switches:
        degradation is allowed, misforwarding is not."""
        _p, fib = gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)
        honest = gateway.traffic(fib, 40, n_ce=N_CE, users_per_ce=USERS)
        reference = build()
        ovs = OvsSwitch(build(), megaflow_capacity=64)  # tiny: constant churn
        es = ESwitch.from_pipeline(build())
        rng = random.Random(11)
        for i in range(300):
            if i % 3 == 0:
                pkt = attack_packet(rng)
            else:
                pkt = honest[i % len(honest)]
            expected = reference.process(pkt.copy()).summary()
            assert ovs.process(pkt.copy()).summary() == expected
            assert es.process(pkt.copy()).summary() == expected
