"""Control-plane models: a reactive controller and update channels."""

from repro.controller.channels import (
    CLI_CHANNEL,
    CONTROLLER_CHANNEL,
    UpdateChannel,
    setup_time,
)
from repro.controller.gateway_controller import GatewayController
from repro.controller.learning_switch import LearningSwitch

__all__ = [
    "UpdateChannel",
    "CLI_CHANNEL",
    "CONTROLLER_CHANNEL",
    "setup_time",
    "GatewayController",
    "LearningSwitch",
]
