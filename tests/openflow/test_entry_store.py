"""Tests for the tombstone-compacting entry store and its contracts.

Three contracts pinned here:

* **Tombstones + compaction** — deletes blank a slot in O(1), lookups and
  iteration skip the corpses, and compaction squeezes them out without
  reordering live entries or bumping ``version``.
* **Staleness** — wholesale ``_entries`` swaps (snapshot restores, with or
  without a version bump) resynchronize *every* derived structure
  together; ``_feats`` must never outlive ``_rules``.
* **No-op mods** — a delete that matches nothing live (including
  predicates that would only have hit tombstoned slots) bumps nothing:
  no version move, no re-fuse, no template re-selection downstream.
"""

import pickle

from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, entry_features
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline


def entry(prio, port=1, **match):
    return FlowEntry(Match(**match), priority=prio, actions=[Output(port)])


def fresh_feature_counts(table):
    """feature_counts recomputed from scratch (the oracle)."""
    counts: dict = {}
    for e in table.entries:
        f = entry_features(e)
        counts[f] = counts.get(f, 0) + 1
    return counts


class TestTombstones:
    def test_strict_delete_leaves_tombstone(self):
        t = FlowTable(0)
        for i in range(8):
            t.add(entry(10, tcp_dst=80 + i))
        t.remove(Match(tcp_dst=83), priority=10)
        assert t.tombstones == 1
        assert len(t) == 7
        assert len(t._entries) == 8  # the slot is blanked, not shifted
        assert [e.match.constraint("tcp_dst")[0] for e in t.entries] == [
            80, 81, 82, 84, 85, 86, 87,
        ]

    def test_lookup_skips_tombstones_probe_order_intact(self):
        from repro.packet import PacketBuilder
        from repro.packet.parser import parse

        def pkt(dport):
            return parse(PacketBuilder().eth().ipv4().tcp(dst_port=dport).build())

        t = FlowTable(0)
        entries = [entry(10 - i, tcp_dst=80) for i in range(4)]
        for e in entries:
            t.add(e)
        t.remove(Match(tcp_dst=80), priority=9)  # tombstone entries[1]
        probed: list = []
        hit = t.lookup(pkt(80), probed)
        assert hit is entries[0]
        assert probed == [entries[0]]
        # Miss path probes every live entry, in live order, corpses skipped.
        probed = []
        t.lookup(pkt(81), probed)
        assert probed == [entries[0], entries[2], entries[3]]

    def test_tombstone_reused_by_fresh_add(self):
        t = FlowTable(0)
        for i in range(16):
            t.add(entry(10, tcp_dst=1000 + i))
        raw_len = len(t._entries)
        # Steady-state churn — ADD a rule, strict-DELETE it, ADD the next
        # in the same priority band: the delete tombstones the band's
        # tail slot and the next add's insertion point is right there, so
        # the dead slot is reused and the raw store never grows.
        for i in range(50):
            t.add(entry(10, tcp_dst=2000 + i))
            t.remove(Match(tcp_dst=2000 + i), priority=10)
            assert len(t._entries) <= raw_len + 1
            assert t.tombstones <= 1
        assert len(t) == 16

    def test_compaction_triggers_and_is_invisible(self):
        t = FlowTable(0)
        n = 240  # 25% of 240 < COMPACT_MIN_DEAD: the floor governs
        for i in range(n):
            t.add(entry(5, tcp_src=i))
        # Delete a spread of entries without re-adding: tombstones pile up
        # until the dead fraction trips the amortized compaction.
        for i in range(0, 2 * FlowTable.COMPACT_MIN_DEAD, 2):
            t.remove(Match(tcp_src=i), priority=5)
        assert t.compactions >= 1
        assert t.tombstones < FlowTable.COMPACT_MIN_DEAD
        survivors = [e.match.constraint("tcp_src")[0] for e in t.entries]
        assert survivors == sorted(survivors)  # live order preserved

    def test_explicit_compact_preserves_order_and_version(self):
        t = FlowTable(0)
        entries = [entry(20 - i, tcp_dst=80 + i) for i in range(8)]
        for e in entries:
            t.add(e)
        t.remove(Match(tcp_dst=82), priority=18)
        before = t.entries
        version = t.version
        t.compact()
        assert t.tombstones == 0
        assert t.entries == before
        assert t.version == version  # invisible to version-keyed caches
        assert t.compactions == 1

    def test_pickle_roundtrip_compacts(self):
        t = FlowTable(0)
        for i in range(8):
            t.add(entry(10, tcp_dst=80 + i))
        t.remove(Match(tcp_dst=84), priority=10)
        clone = pickle.loads(pickle.dumps(t))
        assert clone.tombstones == 0
        assert [e.priority for e in clone.entries] == [10] * 7
        assert len(clone) == len(t)
        assert clone.find_rule(Match(tcp_dst=85), 10) is not None


class TestStalenessContract:
    def _churned(self):
        t = FlowTable(0)
        for i in range(12):
            t.add(entry(10, tcp_dst=80 + i))
        # Touch every lazy structure so they are live and trusted.
        t.feature_counts()
        t.find(Match(tcp_dst=80))
        assert len(t) == 12
        return t

    def test_wholesale_swap_without_version_bump(self):
        t = self._churned()
        replacement = [entry(7, udp_dst=53), entry(3, udp_dst=67)]
        t._entries = list(replacement)  # raw assignment, no bump
        assert len(t) == 2
        assert t.find(Match(udp_dst=53)) is replacement[0]
        assert t.has_rule(Match(udp_dst=67), 3)
        assert not t.has_rule(Match(tcp_dst=80), 10)
        # The regression this pins: _feats must resync with _rules, not
        # stay trusted at its pre-swap contents.
        assert t.feature_counts() == fresh_feature_counts(t)

    def test_restore_entries_mid_churn(self):
        t = self._churned()
        snapshot = list(t.entries)
        version = t.version
        # Churn past the snapshot, then roll back wholesale.
        for i in range(6):
            t.remove(Match(tcp_dst=80 + i), priority=10)
            t.add(entry(10, tcp_dst=200 + i))
        t.restore_entries(snapshot)
        assert t.version == version + 13  # 12 churn mods + one restore
        assert t.entries == tuple(snapshot)
        assert t.feature_counts() == fresh_feature_counts(t)
        assert t.find_rule(Match(tcp_dst=80), 10) is snapshot[0]
        assert t.tombstones == 0

    def test_swap_then_mutate_uses_fresh_indexes(self):
        t = self._churned()
        usurper = entry(10, tcp_dst=80)
        t._entries = [usurper]
        # add() must replace the *usurper*, not trust the stale index's
        # old object for the same rule.
        replacement = entry(10, port=9, tcp_dst=80)
        t.add(replacement)
        assert t.entries == (replacement,)
        assert t.feature_counts() == fresh_feature_counts(t)

    def test_raw_entries_pickle_swap(self):
        # The expiry suite's snapshot idiom: pickle the raw slot list
        # (tombstones included), assign it back later.
        t = self._churned()
        t.remove(Match(tcp_dst=85), priority=10)
        blob = pickle.dumps(t._entries)
        t.remove(Match(tcp_dst=86), priority=10)
        t._entries = pickle.loads(blob)
        # The restored list still contains the tombstone slot; resync
        # squeezes it out and rebuilds everything coherently.
        assert len(t) == 11
        assert t.find(Match(tcp_dst=86)) is not None
        assert t.find(Match(tcp_dst=85)) is None
        assert t.feature_counts() == fresh_feature_counts(t)


class TestNoopMods:
    def test_nonstrict_remove_matching_nothing_keeps_version(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        version = t.version
        assert t.remove(Match(tcp_dst=81)) == 0
        assert t.version == version

    def test_remove_if_matching_nothing_keeps_version(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        version = t.version
        assert t.remove_if(lambda e: e.priority == 99) == 0
        assert t.version == version

    def test_predicate_never_sees_tombstones(self):
        t = FlowTable(0)
        victim = entry(10, tcp_dst=80)
        t.add(victim)
        t.add(entry(10, tcp_dst=81))
        t.remove(Match(tcp_dst=80), priority=10)  # tombstone the victim
        version = t.version
        seen: list = []
        # A predicate that would only have matched the tombstoned entry
        # removes nothing and bumps nothing.
        assert t.remove_if(lambda e: seen.append(e) or e is victim) == 0
        assert t.version == version
        assert victim not in seen

    def test_eswitch_counts_noop_mods(self):
        table = FlowTable(0)
        table.add(entry(10, tcp_dst=80))
        from repro.core.eswitch import ESwitch

        sw = ESwitch.from_pipeline(Pipeline([table]))
        version = table.version
        generation_before = sw.datapath.generation
        cost = sw.apply_flow_mod(
            FlowMod(
                FlowModCommand.DELETE, 0, Match(tcp_dst=9999),
                priority=10, strict=True,
            )
        )
        assert cost == 0.0
        assert sw.update_stats.noop_mods == 1
        assert table.version == version
        # No re-fuse follows: the fused driver's generation is untouched.
        assert sw.datapath.generation == generation_before
        # A real delete is not a no-op.
        sw.apply_flow_mod(
            FlowMod(
                FlowModCommand.DELETE, 0, Match(tcp_dst=80),
                priority=10, strict=True,
            )
        )
        assert sw.update_stats.noop_mods == 1


class TestShapesVersion:
    def test_churn_within_class_keeps_shapes(self):
        t = FlowTable(0)
        for i in range(8):
            t.add(entry(10, tcp_dst=80 + i))
        t.feature_counts()  # prime: deltas are tracked from here on
        shapes = t.shapes_version
        t.add(entry(10, tcp_dst=200))
        t.remove(Match(tcp_dst=200), priority=10)
        assert t.shapes_version == shapes

    def test_class_appearing_or_emptying_bumps_shapes(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        t.feature_counts()
        shapes = t.shapes_version
        t.add(entry(20, udp_dst=53))  # new (priority, shape) class
        assert t.shapes_version > shapes
        shapes = t.shapes_version
        t.remove(Match(udp_dst=53), priority=20)  # class emptied
        assert t.shapes_version > shapes
