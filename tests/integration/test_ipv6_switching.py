"""End-to-end IPv6 switching through all three datapaths."""

import ipaddress
import random

from repro.core import ESwitch
from repro.core.analysis import TemplateKind
from repro.openflow.actions import Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder


def v6(addr: str) -> int:
    return int(ipaddress.IPv6Address(addr))


def v6_router(n_hosts: int = 30) -> Pipeline:
    """A v6 edge switch: exact host routes + an ND punt + default."""
    t = FlowTable(0)
    t.add(FlowEntry(Match(icmpv6_type=135), priority=100,
                    actions=[Output(99)]))  # neighbor solicitation punt
    for i in range(n_hosts):
        t.add(FlowEntry(Match(ipv6_dst=v6(f"2001:db8::{i + 1:x}")), priority=50,
                        actions=[Output(i % 8)]))
    t.add(FlowEntry(Match(ip_proto=17, udp_dst=53), priority=20,
                    actions=[Output(20)]))
    t.add(FlowEntry(Match(), priority=0, actions=[]))
    return Pipeline([t])


def host_pkt(i: int, sport=5000):
    return (PacketBuilder(in_port=1).eth()
            .ipv6(src="2001:db8:1::9", dst=f"2001:db8::{i + 1:x}")
            .tcp(src_port=sport, dst_port=443).build())


class TestV6Switching:
    def test_v6_exact_table_compiles_to_hash(self):
        t = FlowTable(0)
        for i in range(20):
            t.add(FlowEntry(Match(ipv6_dst=v6(f"2001:db8::{i + 1:x}")), priority=1,
                            actions=[Output(1)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        assert sw.compiled_table(0).kind is TemplateKind.HASH

    def test_differential_all_datapaths(self):
        es = ESwitch.from_pipeline(v6_router())
        ovs = OvsSwitch(v6_router())
        ref = v6_router()
        rng = random.Random(1)
        packets = []
        for _ in range(80):
            roll = rng.random()
            if roll < 0.5:
                packets.append(host_pkt(rng.randrange(40), rng.randrange(1024, 60000)))
            elif roll < 0.7:
                packets.append(PacketBuilder(in_port=1).eth()
                               .ipv6(dst="2001:db8::9999").icmpv6(type=135).build())
            elif roll < 0.9:
                packets.append(PacketBuilder(in_port=1).eth()
                               .ipv6(dst="2001:db8::dead").udp(dst_port=53).build())
            else:
                packets.append(PacketBuilder(in_port=1).eth().ipv4(
                    dst="10.0.0.1").udp(dst_port=53).build())
        # Two passes: the second exercises the warmed caches.
        for pkt in packets + [p.copy() for p in packets]:
            expected = ref.process(pkt.copy()).summary()
            assert es.process(pkt.copy()).summary() == expected
            assert ovs.process(pkt.copy()).summary() == expected

    def test_v6_rewrites(self):
        t = FlowTable(0)
        t.add(FlowEntry(
            Match(ipv6_dst=v6("2001:db8::1")), priority=1,
            actions=[SetField("ipv6_dst", v6("2001:db8::aaaa")), Output(2)],
        ))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        pkt = host_pkt(0)
        verdict = sw.process(pkt)
        assert verdict.forwarded
        assert pkt.data[14 + 24:14 + 40] == v6("2001:db8::aaaa").to_bytes(16, "big")

    def test_v4_rule_and_v6_rule_coexist(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(ipv4_dst="10.0.0.1"), priority=2, actions=[Output(4)]))
        t.add(FlowEntry(Match(ipv6_dst=v6("2001:db8::1")), priority=1,
                        actions=[Output(6)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        v4_pkt = PacketBuilder().eth().ipv4(dst="10.0.0.1").tcp().build()
        v6_pkt = host_pkt(0)
        assert sw.process(v4_pkt).output_ports == [4]
        assert sw.process(v6_pkt).output_ports == [6]
