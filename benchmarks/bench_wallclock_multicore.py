"""Real-parallel wall-clock scaling of the sharded engine, next to Fig. 19.

Fig. 19's curves are *modeled*: :func:`measure_multicore` charges per-core
meters and a coherence tax, and reports the aggregate Mpps the cycle model
predicts for N cores. This module puts the repo's own wall-clock counterpart
beside them: a :class:`~repro.parallel.ShardedESwitch` with N real shard
workers (forked processes, each owning a private fused replica) driven by
the :mod:`repro.traffic.wallclock` rig, RSS-scattering macrobursts exactly
the way an N-queue NIC would.

The two axes answer different questions and are printed side by side:

* modeled Mpps — what the *simulated hardware* would do with N cores
  (always linear-ish: per-core replicas share nothing but coherence);
* wall pps — what the *simulator itself* does with N worker processes,
  which is physics: it can only scale when ``os.cpu_count()`` actually
  provides the cores, and on a core-starved host the scatter/gather tax
  makes sharding a slowdown, honestly reported.

The acceptance bar (ISSUE 3: ``workers=4`` at least 2x the single fused
path on the gateway) is therefore asserted **only** when the host has the
cores to make it physically possible; everywhere else this module still
asserts the structural facts that hold on any host.
"""

import json
import os

from figshared import RESULTS_DIR, publish, render_table
from repro.core import ESwitch
from repro.simcpu.platform import ATOM_C2750
from repro.traffic import measure_multicore
from repro.traffic.wallclock import (
    SHARDED2_SPEEDUP_FLOOR,
    SHARDED_SPEEDUP_FLOOR,
    run_wallclock,
)
from repro.usecases import gateway

CORE_AXIS = (1, 2, 4)
N_FLOWS = 128
CASE = "gateway"


def _modeled_series(n_flows: int, cores_axis) -> list[float]:
    """Fig. 19's axis for the same use case: modeled aggregate pps.

    On the Atom platform, like the paper's Fig. 19 — the Xeon's modeled
    NIC saturates before 4 ESWITCH cores and would flatten the curve.
    """
    _p, fib = gateway.build(n_ce=4, users_per_ce=16, n_prefixes=64)
    flows = gateway.traffic(fib, n_flows, n_ce=4, users_per_ce=16)
    return [
        measure_multicore(
            lambda: ESwitch.from_pipeline(
                gateway.build(n_ce=4, users_per_ce=16, n_prefixes=64)[0]
            ),
            flows,
            cores=cores,
            n_packets=1_500,
            warmup=256,
            platform=ATOM_C2750,
        )
        for cores in cores_axis
    ]


def test_wallclock_multicore():
    doc = run_wallclock(
        cases=(CASE,),
        modes=("null",),
        variants=("fused",),
        n_flows=N_FLOWS,
        n_packets=1_500,
        repeats=3,
        warmup=256,
        cores=CORE_AXIS,
    )
    modeled = _modeled_series(N_FLOWS, CORE_AXIS)

    cpu_count = doc["meta"]["cpu_count"] or 1
    by_variant = {p["variant"]: p for p in doc["multicore"]}
    baseline = by_variant["fused"]["wall_pps"]

    rows = []
    for i, cores in enumerate(CORE_AXIS):
        point = by_variant[f"sharded{cores}"]
        # An oversubscribed speedup is not a scaling measurement — the
        # annotation keeps it out of cross-host trajectory comparisons.
        speedup = f"{point['wall_pps'] / baseline:.2f}"
        if point.get("oversubscribed"):
            speedup += " (oversub)"
        rows.append(
            (
                cores,
                point["backend"],
                point.get("transport", "pipe"),
                f"{point['wall_pps']:,.0f}",
                speedup,
                f"{modeled[i] / 1e6:.2f}",
                f"{modeled[i] / modeled[0]:.2f}",
            )
        )
    publish(
        "wallclock_multicore",
        render_table(
            f"Sharded wall-clock vs modeled Fig. 19 scaling ({CASE}; "
            f"single fused baseline {baseline:,.0f} pps; host has "
            f"{cpu_count} CPU(s))",
            ("workers", "backend", "transport", "wall pps", "vs fused",
             "modeled Mpps", "modeled scale"),
            rows,
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_wallclock_multicore.json"),
              "w") as fh:
        json.dump({"wallclock": doc, "modeled_pps": modeled}, fh, indent=2)

    # Structural facts that hold on any host.
    assert doc["meta"]["cores_axis"] == list(CORE_AXIS)
    for cores in CORE_AXIS:
        point = by_variant[f"sharded{cores}"]
        assert point["workers"] == cores
        assert point["wall_pps"] > 0
        # Every multicore point must carry the host-class annotations.
        assert point["oversubscribed"] == (cpu_count < cores + 1)
        assert point["transport"] in ("ring", "pipe")
    assert f"{CASE}/multicore" in doc["speedups"]
    # The modeled axis scales near-linearly regardless of the host — it is
    # the simulated hardware's number, not the simulator's.
    assert modeled[-1] / modeled[0] > 0.8 * CORE_AXIS[-1] / CORE_AXIS[0]

    # The physical acceptance bars — only meaningful when the host can
    # actually run the shard workers + the gather loop in parallel.
    # ISSUE 7: workers=2 over the zero-copy transport beats fused 1.5x.
    two = by_variant.get("sharded2")
    if two is not None and not two["oversubscribed"] \
            and two["backend"] == "process" and two["transport"] == "ring":
        speedup2 = two["wall_pps"] / baseline
        assert speedup2 >= SHARDED2_SPEEDUP_FLOOR, (
            f"sharded(2) wall-clock speedup {speedup2:.2f}x on {CASE} "
            f"(null mode, ring transport) is below the "
            f"{SHARDED2_SPEEDUP_FLOOR}x floor on a {cpu_count}-CPU host"
        )
    # ISSUE 3: workers=4 beats fused 2x.
    top = CORE_AXIS[-1]
    speedup = by_variant[f"sharded{top}"]["wall_pps"] / baseline
    if cpu_count > top and by_variant[f"sharded{top}"]["backend"] == "process":
        assert speedup >= SHARDED_SPEEDUP_FLOOR, (
            f"sharded({top}) wall-clock speedup {speedup:.2f}x on {CASE} "
            f"(null mode) is below the {SHARDED_SPEEDUP_FLOOR}x floor on a "
            f"{cpu_count}-CPU host"
        )
