"""Tests for template specialization: every emitter, differentially."""

import random

import pytest
from hypothesis import given, settings

import strategies as sts

from repro.core.analysis import CompileConfig, TemplateKind
from repro.core.codegen import CompileError, compile_table
from repro.core.outcome import Outcome
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.match import Match
from repro.packet import PacketBuilder
from repro.packet.parser import parse
from repro.simcpu.recorder import NULL_METER


def run_compiled(compiled, pkt):
    """Drive one compiled table function directly."""
    view = parse(pkt)
    from repro.openflow.fields import field_by_name

    etype = field_by_name("eth_type").extract(view) or 0
    return compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, NULL_METER)


def assert_equiv(table, compiled, pkt):
    """The compiled function must agree with a priority scan."""
    view = parse(pkt)
    expected = table.lookup(view)
    out = run_compiled(compiled, pkt)
    assert isinstance(out, Outcome)
    if expected is None:
        assert out.is_miss
    elif expected.match.is_catch_all and out.entry is not None:
        assert out.entry.priority == expected.priority
    else:
        assert not out.is_miss
        assert out.entry is not None and out.entry.priority == expected.priority


def mac_table(n):
    t = FlowTable(0)
    for i in range(n):
        t.add(FlowEntry(Match(eth_dst=0x2000 + i), priority=1, actions=[Output(i)]))
    return t


class TestDirectCode:
    def table(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(in_port=1), priority=30, actions=[Output(2)]))
        t.add(FlowEntry(Match(ipv4_dst="192.0.2.0/24", tcp_dst=80), priority=20,
                        actions=[Output(1)]))
        return t

    def test_kind(self):
        assert compile_table(self.table()).kind is TemplateKind.DIRECT

    def test_keys_patched_into_source(self):
        src = compile_table(self.table()).source
        assert "0xc0000200" in src  # 192.0.2.0 as a literal constant
        assert "0x50" in src        # port 80

    def test_protocol_guard_emitted(self):
        src = compile_table(self.table()).source
        assert "proto &" in src  # the paper's `bt r15d, IP` analogue

    def test_match_and_miss(self):
        t = self.table()
        compiled = compile_table(t)
        hit = PacketBuilder(in_port=9).eth().ipv4(dst="192.0.2.7").tcp(dst_port=80).build()
        miss = PacketBuilder(in_port=9).eth().ipv4(dst="192.0.2.7").tcp(dst_port=22).build()
        assert_equiv(t, compiled, hit)
        assert run_compiled(compiled, miss).is_miss

    def test_udp_packet_guarded_from_tcp_matcher(self):
        t = self.table()
        compiled = compile_table(t)
        udp = PacketBuilder(in_port=9).eth().ipv4(dst="192.0.2.7").udp(dst_port=80).build()
        assert run_compiled(compiled, udp).is_miss

    def test_miss_policy_controller(self):
        t = self.table()
        t.miss_policy = TableMissPolicy.CONTROLLER
        out = run_compiled(compile_table(t), PacketBuilder(in_port=5).eth().build())
        assert out.is_miss and out.to_controller

    def test_empty_table(self):
        out = run_compiled(compile_table(FlowTable(0)), PacketBuilder().eth().build())
        assert out.is_miss


class TestCompoundHash:
    def test_kind_and_store(self):
        compiled = compile_table(mac_table(20))
        assert compiled.kind is TemplateKind.HASH
        assert compiled.hash_store is not None and len(compiled.hash_store) == 20

    def test_lookup_correct(self):
        t = mac_table(50)
        compiled = compile_table(t)
        for i in (0, 17, 49):
            pkt = PacketBuilder().eth(dst=0x2000 + i).ipv4().tcp().build()
            out = run_compiled(compiled, pkt)
            assert not out.is_miss
            assert out.apply_actions[0] == Output(i)

    def test_miss_without_catch_all(self):
        compiled = compile_table(mac_table(10))
        pkt = PacketBuilder().eth(dst=0xBEEF).build()
        assert run_compiled(compiled, pkt).is_miss

    def test_catch_all_becomes_default(self):
        t = mac_table(10)
        t.add(FlowEntry(Match(), priority=0, actions=[Output(99)]))
        compiled = compile_table(t)
        pkt = PacketBuilder().eth(dst=0xBEEF).build()
        out = run_compiled(compiled, pkt)
        assert not out.is_miss and out.apply_actions[0] == Output(99)

    def test_compound_multi_field_key(self):
        t = FlowTable(0)
        for i in range(8):
            t.add(FlowEntry(
                Match(ipv4_dst=(0xC0000200 + (i << 8), 0xFFFFFF00), tcp_dst=80),
                priority=1, actions=[Output(i)],
            ))
        compiled = compile_table(t)
        assert compiled.kind is TemplateKind.HASH
        pkt = PacketBuilder().eth().ipv4(dst="192.0.5.66").tcp(dst_port=80).build()
        out = run_compiled(compiled, pkt)
        assert not out.is_miss and out.apply_actions[0] == Output(3)

    def test_shadowed_duplicate_keeps_highest_priority(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(eth_dst=1), priority=9, actions=[Output(1)]))
        t.add(FlowEntry(Match(eth_dst=1), priority=3, actions=[Output(2)]))
        for i in range(5):
            t.add(FlowEntry(Match(eth_dst=10 + i), priority=1, actions=[Output(5)]))
        compiled = compile_table(t)
        pkt = PacketBuilder().eth(dst=1).build()
        assert run_compiled(compiled, pkt).apply_actions[0] == Output(1)

    def test_forced_hash_on_bad_table_raises(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        t.add(FlowEntry(Match(udp_dst=53), priority=1, actions=[Output(2)]))
        with pytest.raises(CompileError):
            compile_table(t, kind=TemplateKind.HASH)


class TestLpmTemplate:
    def table(self):
        t = FlowTable(0)
        specs = [("10.0.0.0", 8), ("10.1.0.0", 16), ("10.1.2.0", 24),
                 ("172.16.0.0", 12), ("192.0.2.128", 25)]
        for addr, depth in specs:
            t.add(FlowEntry(Match(ipv4_dst=f"{addr}/{depth}"), priority=depth,
                            actions=[Output(depth)]))
        return t

    def test_kind(self):
        assert compile_table(self.table()).kind is TemplateKind.LPM

    def test_longest_prefix_wins(self):
        compiled = compile_table(self.table())
        cases = {
            "10.1.2.3": 24,
            "10.1.99.1": 16,
            "10.200.0.1": 8,
            "172.17.0.1": 12,
            "192.0.2.200": 25,
        }
        for dst, port in cases.items():
            pkt = PacketBuilder().eth().ipv4(dst=dst).tcp().build()
            out = run_compiled(compiled, pkt)
            assert out.apply_actions[0] == Output(port), dst

    def test_miss(self):
        compiled = compile_table(self.table())
        pkt = PacketBuilder().eth().ipv4(dst="8.8.8.8").tcp().build()
        assert run_compiled(compiled, pkt).is_miss

    def test_non_ip_guarded(self):
        compiled = compile_table(self.table())
        pkt = PacketBuilder().eth().arp().build()
        assert run_compiled(compiled, pkt).is_miss

    def test_default_route_via_catch_all(self):
        t = self.table()
        t.add(FlowEntry(Match(), priority=0, actions=[Output(77)]))
        compiled = compile_table(t)
        pkt = PacketBuilder().eth().ipv4(dst="8.8.8.8").tcp().build()
        assert run_compiled(compiled, pkt).apply_actions[0] == Output(77)


class TestLinkedList:
    def table(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=50, actions=[Output(1)]))
        t.add(FlowEntry(Match(ipv4_dst="10.0.0.0/8"), priority=40, actions=[Output(2)]))
        t.add(FlowEntry(Match(eth_dst=0x99), priority=30, actions=[Output(3)]))
        t.add(FlowEntry(Match(udp_dst=53), priority=20, actions=[Output(4)]))
        t.add(FlowEntry(Match(in_port=7), priority=10, actions=[Output(5)]))
        return t

    def test_kind(self):
        assert compile_table(self.table()).kind is TemplateKind.LINKED_LIST

    def test_matchers_shared_per_signature(self):
        t = self.table()
        t.add(FlowEntry(Match(tcp_dst=443), priority=45, actions=[Output(9)]))
        compiled = compile_table(t)
        # 6 entries but only 5 distinct mask signatures -> 5 matcher fns.
        assert len(compiled.ll_matchers) == 5

    def test_priority_order_respected(self):
        compiled = compile_table(self.table())
        pkt = (PacketBuilder(in_port=7).eth(dst=0x99)
               .ipv4(dst="10.1.1.1").tcp(dst_port=80).build())
        out = run_compiled(compiled, pkt)
        assert out.apply_actions[0] == Output(1)  # priority 50 wins

    def test_differential_bulk(self):
        rng = random.Random(11)
        t = self.table()
        compiled = compile_table(t)
        for _ in range(100):
            assert_equiv(t, compiled, sts.random_packet(rng))


class TestPropertyDifferential:
    @settings(max_examples=80, deadline=None)
    @given(sts.flow_tables(max_entries=10), sts.packets())
    def test_any_table_any_template(self, table, pkt):
        compiled = compile_table(table)
        assert_equiv(table, compiled, pkt)

    @settings(max_examples=40, deadline=None)
    @given(sts.flow_tables(max_entries=10), sts.packets())
    def test_forced_linked_list_always_works(self, table, pkt):
        compiled = compile_table(table, kind=TemplateKind.LINKED_LIST)
        assert_equiv(table, compiled, pkt)


class TestAblation:
    def test_keys_outside_code_adds_touches(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        in_code = compile_table(t, CompileConfig(keys_in_code=True)).source
        in_data = compile_table(t, CompileConfig(keys_in_code=False)).source
        assert "es_keys" not in in_code
        assert "es_keys" in in_data
