"""ESWITCH — the paper's contribution: a compiler from OpenFlow to fast paths.

Pipeline compilation proceeds exactly as Section 3 describes:

1. **flow table analysis** (:mod:`repro.core.analysis`) decomposes the
   pipeline into templates, picking for each table the most efficient
   applicable table template (direct code → compound hash → LPM → linked
   list, Fig. 4), optionally after **flow table decomposition**
   (:mod:`repro.core.decompose`, Fig. 6) rewrites template-unfriendly
   tables into template-friendly multi-table pipelines;
2. **template specialization** (:mod:`repro.core.codegen`) patches flow
   keys as literal constants into per-template Python source fragments —
   the analogue of patching keys into pre-compiled object code — and
   compiles each table to a native code object;
3. **linking** resolves jump pointers: within-table jumps become Python
   control flow, ``goto_table`` jumps go through a trampoline
   (:mod:`repro.core.datapath`) so a rebuilt table can be swapped in
   atomically (Section 3.3/3.4).

:class:`repro.core.eswitch.ESwitch` is the user-facing switch.
"""

from repro.core.analysis import CompileConfig, TemplateKind, select_template
from repro.core.decompose import decompose_table
from repro.core.eswitch import ESwitch, SwitchHealth

__all__ = [
    "CompileConfig",
    "TemplateKind",
    "select_template",
    "decompose_table",
    "ESwitch",
    "SwitchHealth",
]
