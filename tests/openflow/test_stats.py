"""Tests for statistics collection."""

from repro.core import ESwitch
from repro.openflow.match import Match
from repro.openflow.stats import (
    aggregate_stats,
    collect_flow_stats,
    collect_table_stats,
)
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.usecases import firewall


def drive(switch, n=5):
    admit = (PacketBuilder(in_port=firewall.EXTERNAL).eth()
             .ipv4(dst=firewall.SERVER_IP).tcp(dst_port=80).build())
    out = (PacketBuilder(in_port=firewall.INTERNAL).eth()
           .ipv4(src=firewall.SERVER_IP).tcp(src_port=80).build())
    for _ in range(n):
        switch.process(admit.copy())
    for _ in range(2 * n):
        switch.process(out.copy())


class TestFlowStats:
    def test_counts_after_traffic(self):
        pipeline = firewall.build_single_stage()
        drive(ESwitch.from_pipeline(pipeline))
        stats = collect_flow_stats(pipeline)
        by_priority = {s.priority: s for s in stats}
        assert by_priority[30].packets == 10   # internal -> external
        assert by_priority[20].packets == 5    # admitted HTTP
        assert by_priority[0].packets == 0     # nothing dropped
        assert by_priority[20].bytes == 5 * 64

    def test_ovs_cached_hits_counted(self):
        pipeline = firewall.build_single_stage()
        sw = OvsSwitch(pipeline)
        drive(sw)
        assert sw.stats.microflow_hits > 0  # cached path really used
        by_priority = {s.priority: s for s in collect_flow_stats(pipeline)}
        assert by_priority[30].packets == 10
        assert by_priority[20].packets == 5

    def test_match_filter_covers_semantics(self):
        pipeline = firewall.build_single_stage()
        drive(ESwitch.from_pipeline(pipeline))
        filtered = collect_flow_stats(pipeline, match=Match(in_port=firewall.EXTERNAL))
        assert [s.priority for s in filtered] == [20]

    def test_table_filter(self):
        pipeline = firewall.build_multi_stage()
        assert all(
            s.table_id == 1 for s in collect_flow_stats(pipeline, table_id=1)
        )

    def test_cookie_filter(self):
        from repro.openflow.flow_entry import FlowEntry
        from repro.openflow.flow_table import FlowTable
        from repro.openflow.pipeline import Pipeline
        from repro.openflow.actions import Output

        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)],
                        cookie=0xAB))
        t.add(FlowEntry(Match(tcp_dst=443), priority=1, actions=[Output(1)]))
        stats = collect_flow_stats(Pipeline([t]), cookie=0xAB)
        assert len(stats) == 1 and stats[0].cookie == 0xAB


class TestTableAndAggregate:
    def test_table_stats(self):
        pipeline = firewall.build_single_stage()
        drive(ESwitch.from_pipeline(pipeline))
        (table,) = collect_table_stats(pipeline)
        assert table.active_entries == 3
        assert table.packets == 15

    def test_aggregate(self):
        pipeline = firewall.build_single_stage()
        drive(ESwitch.from_pipeline(pipeline))
        flows, packets, nbytes = aggregate_stats(pipeline)
        assert flows == 3 and packets == 15 and nbytes == 15 * 64


class TestBurstStatsMerge:
    """Exact, associative accumulation — the sharded gather's prerequisite."""

    def make(self, records):
        from repro.openflow.stats import BurstStats

        stats = BurstStats()
        for size, cycles in records:
            stats.record(size, cycles)
        return stats

    def test_merge_folds_everything(self):
        from repro.openflow.stats import BurstStats

        a = self.make([(32, 100.0), (16, 50.0)])
        b = self.make([(32, 25.0)])
        merged = BurstStats.merged([a, b])
        assert merged.bursts == 3
        assert merged.packets == 80
        assert merged.cycles == 175.0
        assert merged.histogram == {32: 2, 16: 1}
        assert a.bursts == 2 and b.bursts == 1  # inputs untouched

    def test_merge_is_order_independent(self):
        import itertools

        from repro.openflow.stats import BurstStats

        # Values chosen so a naive float += accumulator is order-dependent:
        # (1e16 + 1.0) == 1e16 in float arithmetic, so summing the small
        # burst before or after the huge one used to change the total.
        shards = [
            self.make([(8, 1e16)]),
            self.make([(8, 1.0)]),
            self.make([(8, -1e16)]),
        ]
        totals = {
            BurstStats.merged(perm).cycles
            for perm in itertools.permutations(shards)
        }
        assert totals == {1.0}

    def test_record_does_not_drift(self):
        # The float += accumulator silently lost small bursts once the
        # running total dwarfed them; the exact accumulator cannot.
        stats = self.make([(1, 1e16)] + [(1, 1.0)] * 64 + [(1, -1e16)])
        assert stats.cycles == 64.0

    def test_merge_is_associative(self):
        from repro.openflow.stats import BurstStats

        a = self.make([(4, 0.1)])
        b = self.make([(4, 0.2)])
        c = self.make([(4, 0.3)])
        left = BurstStats.merged([BurstStats.merged([a, b]), c])
        right = BurstStats.merged([a, BurstStats.merged([b, c])])
        assert left.cycles == right.cycles
        assert left.snapshot() == right.snapshot()

    def test_reset_clears_exactly(self):
        stats = self.make([(8, 123.5)])
        stats.reset()
        assert stats.bursts == 0 and stats.packets == 0
        assert stats.cycles == 0.0 and stats.histogram == {}
