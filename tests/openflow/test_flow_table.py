"""Tests for flow tables: ordering, modification, lookup, tracing."""

import pytest

from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.match import Match
from repro.packet import PacketBuilder
from repro.packet.parser import parse


def entry(prio, **match):
    return FlowEntry(Match(**match), priority=prio, actions=[Output(prio)])


class TestOrdering:
    def test_priority_descending(self):
        t = FlowTable(0)
        t.add(entry(5, tcp_dst=80))
        t.add(entry(50, tcp_dst=22))
        t.add(entry(10, tcp_dst=443))
        assert [e.priority for e in t.entries] == [50, 10, 5]

    def test_stable_within_priority(self):
        t = FlowTable(0)
        first = entry(10, tcp_dst=80)
        second = entry(10, tcp_dst=443)
        t.add(first)
        t.add(second)
        assert t.entries == (first, second)

    def test_same_rule_replaces(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        replacement = FlowEntry(Match(tcp_dst=80), priority=10, actions=[Output(99)])
        t.add(replacement)
        assert len(t) == 1
        assert t.entries[0] is replacement


class TestModification:
    def test_remove_by_match(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        t.add(entry(20, tcp_dst=80))
        assert t.remove(Match(tcp_dst=80)) == 2
        assert len(t) == 0

    def test_remove_with_priority(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        t.add(entry(20, tcp_dst=80))
        assert t.remove(Match(tcp_dst=80), priority=10) == 1
        assert [e.priority for e in t.entries] == [20]

    def test_remove_missing_returns_zero(self):
        t = FlowTable(0)
        assert t.remove(Match(tcp_dst=80)) == 0

    def test_version_bumps_only_on_change(self):
        t = FlowTable(0)
        v0 = t.version
        t.remove(Match(tcp_dst=80))
        assert t.version == v0
        t.add(entry(1, tcp_dst=80))
        assert t.version == v0 + 1

    def test_remove_if(self):
        t = FlowTable(0)
        for p in (1, 2, 3):
            t.add(entry(p, tcp_dst=80 + p))
        assert t.remove_if(lambda e: e.priority < 3) == 2

    def test_clear(self):
        t = FlowTable(0)
        t.add(entry(1, tcp_dst=80))
        t.clear()
        assert len(t) == 0


class TestLookup:
    def pkt(self, dport=80):
        return parse(PacketBuilder().eth().ipv4().tcp(dst_port=dport).build())

    def test_highest_priority_wins(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        t.add(entry(20))  # catch-all at higher priority
        found = t.lookup(self.pkt())
        assert found is not None and found.priority == 20

    def test_probed_includes_non_matching(self):
        t = FlowTable(0)
        t.add(entry(30, tcp_dst=443))
        t.add(entry(20, tcp_dst=80))
        probed: list = []
        found = t.lookup(self.pkt(80), probed)
        assert found is not None and found.priority == 20
        assert [e.priority for e in probed] == [30, 20]

    def test_miss_probes_everything(self):
        t = FlowTable(0)
        t.add(entry(30, tcp_dst=443))
        probed: list = []
        assert t.lookup(self.pkt(80), probed) is None
        assert len(probed) == 1

    def test_lookup_key(self):
        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        assert t.lookup_key({"tcp_dst": 80}) is not None
        assert t.lookup_key({"tcp_dst": 22}) is None

    def test_counters_untouched_by_lookup(self):
        t = FlowTable(0)
        e = entry(10, tcp_dst=80)
        t.add(e)
        t.lookup(self.pkt())
        assert e.counters.packets == 0  # counting is the interpreter's job


class TestMisc:
    def test_matched_fields_sorted_union(self):
        t = FlowTable(0)
        t.add(entry(1, tcp_dst=80))
        t.add(entry(2, ipv4_dst="10.0.0.0/8", in_port=1))
        assert t.matched_fields() == ("in_port", "ipv4_dst", "tcp_dst")

    def test_invalid_table_id(self):
        with pytest.raises(ValueError):
            FlowTable(-1)

    def test_default_miss_policy(self):
        assert FlowTable(0).miss_policy is TableMissPolicy.DROP

    def test_priority_bounds(self):
        with pytest.raises(ValueError):
            FlowEntry(Match(), priority=70000)


class TestFeatureCounts:
    """feature_counts() — the lazy shape-class multiset that makes
    required_layer and kind-stability O(shapes) instead of O(entries)."""

    @staticmethod
    def brute(t):
        from repro.openflow.flow_table import entry_features

        want: dict = {}
        for e in t.entries:
            f = entry_features(e)
            want[f] = want.get(f, 0) + 1
        return want

    def test_matches_brute_force_after_adds(self):
        t = FlowTable(0)
        for i in range(8):
            t.add(entry(1, tcp_dst=i))
        t.add(entry(24, ipv4_dst="10.0.0.0/24"))
        counts = t.feature_counts()
        assert counts == self.brute(t)
        assert sum(counts.values()) == len(t)

    def test_incremental_maintenance_stays_exact(self):
        import random

        rng = random.Random(3)
        t = FlowTable(0)
        t.feature_counts()  # prime the cache so mutations maintain it
        live: list = []
        for _ in range(200):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                assert t.remove(victim.match, victim.priority) == 1
            else:
                e = entry(rng.randrange(1, 4), tcp_dst=rng.randrange(30))
                t.add(e)
                live = [x for x in live
                        if (x.priority, x.match) != (e.priority, e.match)]
                live.append(e)
            assert t.feature_counts() == self.brute(t)

    def test_replacement_with_different_actions_updates(self):
        from repro.openflow.actions import DecTtl, Output as Out

        t = FlowTable(0)
        t.add(entry(10, tcp_dst=80))
        t.feature_counts()
        # Same rule key, deeper action profile: the old class must be
        # decremented, not just the new one added.
        t.add(FlowEntry(Match(tcp_dst=80), priority=10,
                        actions=[DecTtl(), Out(1)]))
        counts = t.feature_counts()
        assert counts == self.brute(t)
        assert sum(counts.values()) == 1

    def test_bulk_and_wildcard_paths_invalidate(self):
        t = FlowTable(0)
        t.add_bulk([entry(1, tcp_dst=i) for i in range(4)])
        assert t.feature_counts() == self.brute(t)
        t.remove(Match(tcp_dst=1))  # non-strict: invalidates, recomputes
        assert t.feature_counts() == self.brute(t)
        t.remove_if(lambda e: e.priority == 1)
        assert t.feature_counts() == self.brute(t) == {}
        t.add_bulk([entry(2, in_port=i) for i in range(3)])
        t.clear()
        assert t.feature_counts() == {}

    def test_survives_pickle_round_trip(self):
        import pickle

        t = FlowTable(0)
        t.add(entry(1, tcp_dst=80))
        t.feature_counts()
        clone = pickle.loads(pickle.dumps(t))
        assert clone.feature_counts() == self.brute(clone)
