"""The million-flow regime: every template rung at production cardinality.

The paper's evaluation runs to 10⁶ active flows (Figs. 3, 10, 11, 18);
the rest of this repo's benches stop at 10⁵ because their structures —
full-rebuild perfect hashing, a fixed tbl8 pool, direct code that inlines
every key — fell over one decade earlier. This rig drives the grown
structures to the paper's axis and records three things per rung:

* **wallclock** — real pkts/sec of the fused datapath over a table of
  ``n_flows`` entries, one point per template rung (hash, LPM, and the
  direct rung, which at this size degrades into its data-driven variant
  via the generated-source budget instead of OOMing the compiler);
* **collapse** — the Fig. 3 mechanism at production cardinality: OVS's
  modeled Mpps across a distinct-flow axis that marches through the EMC
  (8K) and megaflow (64K) capacities while the fused ESwitch point stays
  flat — the indirection-free datapath has no flow cache to thrash;
* **churn** — Fig. 18 at scale: sustained alternating ADD/DELETE
  flow-mods against the full-size table, reported as wall-clock rule
  ops/sec (Python reality, the logical table's C memmove included) and
  modeled ops/sec (the cycle model's estimate of the update path alone).

Every rung also reports its memory footprint (``ESwitch.footprint()``),
the axis that decides whether 10⁶ entries fit at all.

All timed legs are **time-boxed**: a rung that is inherently slow at this
scale (the data-driven direct rung is a linear scan per packet) measures
fewer packets inside the same budget instead of hanging the run — the
point records how many packets it actually measured.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Sequence

from repro.core.analysis import CompileConfig
from repro.core.eswitch import ESwitch
from repro.openflow.actions import Output
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.ovs.switch import OvsSwitch
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import CycleMeter, NULL_METER
from repro.traffic.flows import FlowSet
from repro.traffic.wallclock import _stride_sample
from repro.usecases import l2, l3

#: The template rungs the wallclock and churn legs sweep. ``direct``
#: forces the direct-code template at full cardinality — the rung that
#: exists to prove the source-budget degradation path, not to win.
RUNGS = ("hash", "lpm", "direct")

#: Distinct-flow axis for the OVS collapse leg, clipped to ``n_flows``.
#: 1K sits inside the EMC, 32K inside the megaflow cache, 131K+ beyond
#: both — the full Fig. 3 arc when the run is big enough to afford it.
COLLAPSE_AXIS = (1_024, 8_192, 32_768, 131_072, 1_048_576)


def _rung_factories(n_flows: int, traffic_flows: int) -> dict[str, Callable]:
    """``rung -> () -> (pipeline, templates, config)``."""
    n_traffic = min(n_flows, traffic_flows)

    def build_hash():
        pipeline, macs = l2.build(n_flows)
        flows = l2.traffic(_stride_sample(macs, n_traffic), n_traffic)
        return pipeline, flows, CompileConfig(fuse=True)

    def build_lpm():
        pipeline, fib = l3.build(n_flows)
        flows = l3.traffic(_stride_sample(fib, n_traffic), n_traffic)
        return pipeline, flows, CompileConfig(fuse=True)

    def build_direct():
        pipeline, macs = l2.build(n_flows)
        flows = l2.traffic(_stride_sample(macs, n_traffic), n_traffic)
        # direct_threshold above the table size pins the DIRECT template;
        # past the source budget it self-degrades to the data-driven
        # variant — the point of this rung is that it *completes*.
        return pipeline, flows, CompileConfig(
            fuse=True, direct_threshold=n_flows + 1
        )

    return {"hash": build_hash, "lpm": build_lpm, "direct": build_direct}


def _timeboxed_pps(
    switch,
    templates: "list",
    burst: int,
    budget_s: float,
    max_packets: int,
    meter=NULL_METER,
) -> tuple[float, int, float]:
    """Drive round-robin bursts until the budget or packet cap; returns
    ``(wall_pps, packets_done, elapsed_s)``.

    Copies are cut per burst inside the timed window (both legs of a
    comparison pay the same copy tax); pre-materializing ``max_packets``
    copies is exactly what a million-flow run cannot afford.
    """
    n = len(templates)
    done = 0
    t0 = time.perf_counter()
    deadline = t0 + budget_s
    while done < max_packets:
        chunk = [
            templates[(done + j) % n].copy()
            for j in range(min(burst, max_packets - done))
        ]
        switch.process_burst(chunk, meter)
        done += len(chunk)
        if time.perf_counter() >= deadline:
            break
    elapsed = time.perf_counter() - t0
    return done / elapsed if elapsed > 0 else 0.0, done, elapsed


def _run_rungs(
    rungs: Sequence[str],
    n_flows: int,
    traffic_flows: int,
    n_packets: int,
    burst: int,
    warmup: int,
    budget_s: float,
) -> list[dict]:
    factories = _rung_factories(n_flows, traffic_flows)
    points: list[dict] = []
    for rung in rungs:
        t0 = time.perf_counter()
        pipeline, flows, config = factories[rung]()
        build_table_s = time.perf_counter() - t0
        templates = list(flows)
        t0 = time.perf_counter()
        switch = ESwitch(pipeline, config=config)
        switch.warm()  # compile + fuse outside the timed window
        compile_s = time.perf_counter() - t0
        _timeboxed_pps(
            switch, templates, burst, min(budget_s, 5.0), warmup
        )
        wall_pps, done, elapsed = _timeboxed_pps(
            switch, templates, burst, budget_s, n_packets
        )
        health = switch.health()
        fp = switch.footprint()
        points.append(
            {
                "rung": rung,
                "table_kinds": {
                    str(tid): kind for tid, kind in switch.table_kinds().items()
                },
                "data_driven": list(health.data_driven),
                "entries": n_flows,
                "wall_pps": wall_pps,
                "usec_per_pkt": 1e6 / wall_pps if wall_pps else float("inf"),
                "packets": done,
                "elapsed_s": elapsed,
                "build_table_s": build_table_s,
                "compile_s": compile_s,
                "footprint_bytes": fp["total_bytes"],
                "footprint_tables": {str(k): v for k, v in fp["tables"].items()},
            }
        )
    return points


def _run_collapse(
    n_flows: int,
    axis: Sequence[int],
    burst: int,
    budget_s: float,
    platform: Platform,
) -> list[dict]:
    """Fig. 3 at production cardinality: OVS vs fused across distinct flows.

    Per axis point both switches see the *same* round-robin trace: one
    full cycle to warm (populating whatever caches fit), one measured
    cycle. Modeled Mpps comes from the cycle meter; the OVS point also
    records its per-level hit fractions — the collapse is legible there
    even before the Mpps drop.
    """
    pipeline, macs = l2.build(n_flows)
    points: list[dict] = []
    for f in [a for a in axis if a <= n_flows] or [n_flows]:
        flows = l2.traffic(_stride_sample(macs, f), f)
        templates = list(flows)
        for variant, switch in (
            ("ovs", OvsSwitch(l2.build(n_flows)[0])),
            ("fused", ESwitch(l2.build(n_flows)[0], config=CompileConfig(fuse=True))),
        ):
            # Warm cycle: every flow once, uncounted (populates whatever
            # caches have the capacity — that is the experiment).
            _timeboxed_pps(switch, templates, burst, budget_s, f)
            if variant == "ovs":
                # The warm cycle is all upcalls by construction; without a
                # reset the measured hit fractions start ~50% polluted.
                switch.stats.reset()
            meter = CycleMeter(platform)
            wall_pps, done, elapsed = _timeboxed_pps(
                switch, templates, burst, budget_s, f, meter=meter
            )
            point = {
                "flows": f,
                "variant": variant,
                "modeled_pps": (
                    platform.freq_hz / meter.mean_cycles_per_packet
                    if meter.packets
                    else 0.0
                ),
                "wall_pps": wall_pps,
                "packets": done,
                "elapsed_s": elapsed,
            }
            if variant == "ovs":
                point["cache_rates"] = switch.stats.rates()
            points.append(point)
    return points


def _churn_mods(rung: str) -> Callable[[int], tuple[FlowMod, FlowMod]]:
    """``index -> (ADD, strict DELETE)`` of one fresh rule for the rung."""
    if rung == "lpm":

        def make(i: int) -> tuple[FlowMod, FlowMod]:
            prefix = f"198.{(i >> 8) & 255}.{i & 255}.0/24"
            match = Match(ipv4_dst=prefix)
            return (
                FlowMod(FlowModCommand.ADD, 0, match, priority=24,
                        instructions=(ApplyActions([Output(2)]),)),
                FlowMod(FlowModCommand.DELETE, 0, match, priority=24,
                        strict=True),
            )

        return make

    def make(i: int) -> tuple[FlowMod, FlowMod]:
        # Locally-administered MACs outside the builders' unicast draw.
        match = Match(eth_dst=(0x02 << 40) | (0xEE << 32) | i)
        return (
            FlowMod(FlowModCommand.ADD, 0, match, priority=1,
                    instructions=(ApplyActions([Output(3)]),)),
            FlowMod(FlowModCommand.DELETE, 0, match, priority=1, strict=True),
        )

    return make


def _run_churn(
    rungs: Sequence[str],
    n_flows: int,
    churn_mods: int,
    budget_s: float,
    platform: Platform,
) -> list[dict]:
    """Sustained ADD/DELETE against full-size tables, per rung + OVS."""
    factories = _rung_factories(n_flows, traffic_flows=1)
    points: list[dict] = []
    for rung in rungs:
        pipeline, _flows, config = factories[rung]()
        switch = ESwitch(pipeline, config=config)
        switch.warm()
        make = _churn_mods("lpm" if rung == "lpm" else "hash")
        # Pre-materialize the mod pairs: the leg measures the switch's
        # update path, not FlowMod/Match construction.
        pairs = [make(i) for i in range(0, churn_mods, 2)]
        stats_before = (
            switch.update_stats.incremental,
            switch.update_stats.rebuilds,
            switch.update_stats.kind_stable_skips,
            switch.update_stats.noop_mods,
        )
        cycles_before = switch.update_stats.cycles
        apply = switch.apply_flow_mod
        applied = 0
        # Chunked timing: wall rates on shared hosts are noisy in one
        # direction only (contention slows, nothing speeds up), so the
        # best complete window is the honest steady-state figure — the
        # same reasoning behind timeit's min-of-repeats.
        chunk_mods = 2_000
        best_rate = 0.0
        in_chunk = 0
        t0 = time.perf_counter()
        deadline = t0 + budget_s
        chunk_start = t0
        for add, delete in pairs:
            apply(add)
            apply(delete)
            applied += 2
            in_chunk += 2
            now = time.perf_counter()
            if in_chunk >= chunk_mods:
                best_rate = max(best_rate, in_chunk / (now - chunk_start))
                chunk_start, in_chunk = now, 0
            if now >= deadline:
                break
        elapsed = time.perf_counter() - t0
        update_cycles = switch.update_stats.cycles - cycles_before
        table = switch.pipeline.table(0)
        point = {
            "rung": rung,
            "entries": n_flows,
            "mods_applied": applied,
            "entries_per_sec": applied / elapsed if elapsed else 0.0,
            "entries_per_sec_best": max(
                best_rate, applied / elapsed if elapsed else 0.0
            ),
            "modeled_entries_per_sec": (
                applied * platform.freq_hz / update_cycles
                if update_cycles
                else 0.0
            ),
            "update_cycles": update_cycles,
            "elapsed_s": elapsed,
            "incremental": switch.update_stats.incremental - stats_before[0],
            "rebuilds": switch.update_stats.rebuilds - stats_before[1],
            "kind_stable_skips": (
                switch.update_stats.kind_stable_skips - stats_before[2]
            ),
            "noop_mods": switch.update_stats.noop_mods - stats_before[3],
            # Entry-store telemetry: the churn wall was the O(n) memmove
            # per delete; tombstoning makes these the visible mechanism.
            "compactions": table.compactions,
            "tombstones": table.tombstones,
        }
        if rung == "hash":
            store = getattr(switch.compiled_table(0), "hash_store", None)
            if store is not None and hasattr(store, "telemetry"):
                point["hash_telemetry"] = store.telemetry
        points.append(point)

    # OVS baseline: each flow-mod wholesale-invalidates the flow caches —
    # the update itself is cheap; the packet-rate cost (Fig. 18's real
    # story) already shows in the collapse leg's cache_rates.
    ovs = OvsSwitch(l2.build(n_flows)[0])
    make = _churn_mods("hash")
    pairs = [make(i) for i in range(0, churn_mods, 2)]
    applied = 0
    chunk_mods = 2_000
    best_rate = 0.0
    in_chunk = 0
    t0 = time.perf_counter()
    deadline = t0 + budget_s
    chunk_start = t0
    for add, delete in pairs:
        ovs.apply_flow_mod(add)
        ovs.apply_flow_mod(delete)
        applied += 2
        in_chunk += 2
        now = time.perf_counter()
        if in_chunk >= chunk_mods:
            best_rate = max(best_rate, in_chunk / (now - chunk_start))
            chunk_start, in_chunk = now, 0
        if now >= deadline:
            break
    elapsed = time.perf_counter() - t0
    points.append(
        {
            "rung": "ovs",
            "entries": n_flows,
            "mods_applied": applied,
            "entries_per_sec": applied / elapsed if elapsed else 0.0,
            "entries_per_sec_best": max(
                best_rate, applied / elapsed if elapsed else 0.0
            ),
            "elapsed_s": elapsed,
            "note": "every mod invalidates the megaflow+EMC caches",
        }
    )
    return points


def run_megascale(
    n_flows: int = 100_000,
    n_packets: int = 20_000,
    burst: int = 32,
    warmup: int = 1_024,
    traffic_flows: int = 16_384,
    churn_mods: int = 2_000,
    rung_seconds: float = 30.0,
    rungs: Sequence[str] = RUNGS,
    collapse_axis: Sequence[int] = COLLAPSE_AXIS,
    platform: Platform = XEON_E5_2620,
) -> dict:
    """The full megascale document (``BENCH_megascale.json``)."""
    unknown = set(rungs) - set(RUNGS)
    if unknown:
        raise ValueError(f"unknown rungs: {sorted(unknown)}")
    doc = {
        "meta": {
            "n_flows": n_flows,
            "n_packets": n_packets,
            "burst": burst,
            "warmup": warmup,
            "traffic_flows": min(n_flows, traffic_flows),
            "churn_mods": churn_mods,
            "rung_seconds": rung_seconds,
            "platform": platform.name,
            "cpu_count": os.cpu_count(),
            "note": (
                "wall_pps is the simulator's own wall-clock rate; "
                "modeled_pps is the cycle model's prediction for the "
                "simulated hardware. Timed legs are time-boxed at "
                "rung_seconds — slow rungs measure fewer packets, "
                "recorded per point."
            ),
        },
        "rungs": _run_rungs(
            rungs, n_flows, traffic_flows, n_packets, burst, warmup,
            rung_seconds,
        ),
        "collapse": _run_collapse(
            n_flows, collapse_axis, burst, rung_seconds, platform
        ),
        "churn": _run_churn(rungs, n_flows, churn_mods, rung_seconds, platform),
    }
    return doc
