"""Tests for MAC/IPv4 address helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    EthAddr,
    IPv4Addr,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
    mask_to_prefix,
    prefix_to_mask,
)


class TestMacConversion:
    def test_roundtrip_known(self):
        assert mac_to_int("00:11:22:33:44:55") == 0x001122334455
        assert int_to_mac(0x001122334455) == "00:11:22:33:44:55"

    def test_dash_separator(self):
        assert mac_to_int("aa-bb-cc-dd-ee-ff") == 0xAABBCCDDEEFF

    def test_case_insensitive(self):
        assert mac_to_int("AA:BB:CC:DD:EE:FF") == mac_to_int("aa:bb:cc:dd:ee:ff")

    @pytest.mark.parametrize("bad", ["", "00:11:22:33:44", "zz:11:22:33:44:55", "001122334455"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            mac_to_int(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_mac(1 << 48)

    @given(st.integers(0, (1 << 48) - 1))
    def test_roundtrip_property(self, value):
        assert mac_to_int(int_to_mac(value)) == value


class TestIpConversion:
    def test_roundtrip_known(self):
        assert ip_to_int("192.0.2.1") == 0xC0000201
        assert int_to_ip(0xC0000201) == "192.0.2.1"

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4", "a.b.c.d"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    @given(st.integers(0, (1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefixMasks:
    def test_known_masks(self):
        assert prefix_to_mask(0) == 0
        assert prefix_to_mask(24) == 0xFFFFFF00
        assert prefix_to_mask(32) == 0xFFFFFFFF

    def test_mask_to_prefix_roundtrip(self):
        for plen in range(33):
            assert mask_to_prefix(prefix_to_mask(plen)) == plen

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValueError):
            mask_to_prefix(0xFF00FF00)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            prefix_to_mask(33)


class TestEthAddr:
    def test_from_string_and_int_equal(self):
        assert EthAddr("00:00:00:00:00:01") == EthAddr(1)

    def test_compare_with_int(self):
        assert EthAddr(5) == 5

    def test_hashable(self):
        assert len({EthAddr(1), EthAddr(1), EthAddr(2)}) == 2

    def test_broadcast_and_multicast(self):
        assert EthAddr("ff:ff:ff:ff:ff:ff").is_broadcast
        assert EthAddr("01:00:5e:00:00:01").is_multicast
        assert not EthAddr("02:00:00:00:00:01").is_multicast

    def test_packed(self):
        assert EthAddr(1).packed() == b"\x00\x00\x00\x00\x00\x01"

    def test_bad_type(self):
        with pytest.raises(TypeError):
            EthAddr(1.5)  # type: ignore[arg-type]


class TestIPv4Addr:
    def test_in_prefix(self):
        addr = IPv4Addr("192.0.2.77")
        assert addr.in_prefix("192.0.2.0", 24)
        assert not addr.in_prefix("192.0.3.0", 24)
        assert addr.in_prefix("0.0.0.0", 0)

    def test_str_repr(self):
        assert str(IPv4Addr(0xC0000201)) == "192.0.2.1"

    def test_packed(self):
        assert IPv4Addr("1.2.3.4").packed() == b"\x01\x02\x03\x04"
