"""Fig. 13: access-gateway packet rate with model-ub / model-lb bounds.

The paper's headline figure: 10 CEs x 20 users, 10K prefixes. OVS
"drops hundredfold to a mere 90K packets per second at 1M flows … a
full-blown denial of service", while ESWITCH "robustly delivers over
9 Mpps", between the Section 4.4 model bounds.
"""

from figshared import FLOW_AXIS, fmt_flows, publish, render_table, sweep_flows
from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.simcpu.model import gateway_model
from repro.usecases import gateway

N_CE, USERS, PREFIXES = 10, 20, 10_000


def build():
    return gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)[0]


def test_fig13_gateway(benchmark):
    _p, fib = gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)
    make_flows = lambda n: gateway.traffic(fib, n, n_ce=N_CE, users_per_ce=USERS)

    es = sweep_flows(lambda: ESwitch.from_pipeline(build()), make_flows)
    ovs = sweep_flows(lambda: OvsSwitch(build()), make_flows)
    lb_pps, ub_pps = gateway_model().bounds()

    rows = []
    for i, n_flows in enumerate(FLOW_AXIS):
        rows.append(
            (
                fmt_flows(n_flows),
                f"{ub_pps / 1e6:.2f}",
                f"{es[i][1].mpps:.2f}",
                f"{lb_pps / 1e6:.2f}",
                f"{ovs[i][1].mpps:.3f}",
            )
        )
    publish(
        "fig13_gateway",
        render_table(
            "Fig. 13: gateway packet rate [Mpps] "
            "(paper: ES 9-12, OVS down to 0.09)",
            ("flows", "ES(model-ub)", "ES(measured)", "ES(model-lb)", "OVS"),
            rows,
        ),
    )

    es_rates = [m.mpps for _f, m in es]
    ovs_rates = [m.mpps for _f, m in ovs]
    # ESWITCH robust and near the model band everywhere.
    assert min(es_rates) > 6.0
    assert max(es_rates) <= ub_pps / 1e6 * 1.05
    assert min(es_rates) >= lb_pps / 1e6 * 0.75
    # OVS collapses by orders of magnitude (paper: 100x at 1M flows; at
    # our 100K-flow endpoint the collapse is already >30x).
    assert ovs_rates[-1] < ovs_rates[0] / 30
    assert ovs_rates[-1] < 0.3  # deep in the upcall regime (~0.1 Mpps)
    # The "2-7x and up to two orders of magnitude" headline.
    assert es_rates[-1] / ovs_rates[-1] > 50

    sw = ESwitch.from_pipeline(build())
    flows = make_flows(64)
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 64].copy()))
