"""The fail-static controller session (ISSUE 5 tentpole).

OpenFlow 1.3 §6.4 machinery over a lossy channel: echo-driven liveness
with evidence-based recovery, fail-standalone vs fail-secure observables
at the verdict, the bounded drop-tail punt queue, bounded retry with
typed channel errors, barrier semantics, and punt synthesis for switches
without a packet-in hook (ShardedESwitch). Everything runs in virtual
time — no wall-clock sleeps, deterministic under the channel seed.
"""

import pytest

from repro.controller import (
    ControllerSession,
    FailMode,
    LossyChannel,
    SessionState,
)
from repro.controller.learning_switch import LearningSwitch, build_pipeline
from repro.controller.session import CHANNEL_DOWN, CHANNEL_LOST
from repro.core import ESwitch
from repro.openflow.actions import FLOOD_PORT, Output
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketIn
from repro.packet import PacketBuilder
from repro.parallel import ShardedESwitch

A, B, C = 0x02_0000_0000_0A, 0x02_0000_0000_0B, 0x02_0000_0000_0C


def pkt(src, dst, in_port):
    return (PacketBuilder(in_port=in_port).eth(src=src, dst=dst)
            .ipv4().udp().build())


class ScriptedChannel:
    """A channel whose deliveries are spelled out (None = lost)."""

    def __init__(self, *script, then=0.0):
        self.script = list(script)
        self.then = then
        self.messages = 0
        self.lost = 0

    def deliver(self):
        self.messages += 1
        out = self.script.pop(0) if self.script else self.then
        if out is None:
            self.lost += 1
        return out


def make_session(fail_mode=FailMode.STANDALONE, channel=None, **kw):
    switch = ESwitch.from_pipeline(build_pipeline())
    session = ControllerSession(
        switch,
        channel=channel if channel is not None else LossyChannel(),
        fail_mode=fail_mode,
        **kw,
    )
    # The controller's switch handle is the session, so its flow-mods
    # travel the same lossy channel as everything else.
    app = LearningSwitch(session)
    session.controller = app
    return session, app


def force_outage(session):
    session.disconnect()
    session.advance(session.liveness_timeout_s + 2 * session.echo_interval_s)
    assert session.state is SessionState.DOWN


class TestLossyChannel:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            LossyChannel(loss=1.0)
        with pytest.raises(ValueError):
            LossyChannel(loss=-0.1)
        with pytest.raises(ValueError):
            LossyChannel(delay_s=-1.0)
        with pytest.raises(ValueError):
            LossyChannel(jitter_s=-0.5)

    def test_deterministic_under_seed(self):
        a = LossyChannel(loss=0.3, delay_s=1e-3, jitter_s=5e-4, seed=42)
        b = LossyChannel(loss=0.3, delay_s=1e-3, jitter_s=5e-4, seed=42)
        assert [a.deliver() for _ in range(200)] == [
            b.deliver() for _ in range(200)
        ]
        assert a.messages == 200 and a.lost == b.lost > 0

    def test_reliable_channel_never_loses(self):
        ch = LossyChannel(loss=0.0, delay_s=2e-3)
        assert all(ch.deliver() == 2e-3 for _ in range(50))
        assert ch.lost == 0


class TestLiveness:
    def test_knob_validation(self):
        switch = ESwitch.from_pipeline(build_pipeline())
        with pytest.raises(ValueError):
            ControllerSession(switch, echo_interval_s=0.0)
        with pytest.raises(ValueError):
            ControllerSession(switch, liveness_timeout_s=-1.0)
        with pytest.raises(ValueError):
            ControllerSession(switch, max_punt_queue=0)
        with pytest.raises(ValueError):
            ControllerSession(switch, max_retries=-1)
        with pytest.raises(ValueError):
            ControllerSession(switch, retry_backoff_s=-0.1)

    def test_time_does_not_flow_backwards(self):
        session, _ = make_session()
        with pytest.raises(ValueError):
            session.advance(-0.5)

    def test_healthy_session_stays_up(self):
        session, _ = make_session(echo_interval_s=1.0)
        session.advance(5.0)
        assert session.connected
        assert session.echo_sent == 5
        assert session.outages == 0
        health = session.health()
        assert not health.degraded
        assert health.state == "up"

    def test_disconnect_is_detected_through_missed_echoes(self):
        session, _ = make_session(echo_interval_s=1.0, liveness_timeout_s=3.0)
        session.advance(2.0)
        session.disconnect()
        # The caller's knowledge of the outage is not the detector: only
        # once echoes have gone unanswered past the timeout does the
        # session declare it.
        session.advance(2.9)
        assert session.connected
        session.advance(2.0)
        assert not session.connected
        assert session.outages == 1
        assert session.health().time_down_s > 0

    def test_recovery_needs_echo_evidence(self):
        session, _ = make_session(echo_interval_s=1.0, liveness_timeout_s=2.0)
        force_outage(session)
        session.reconnect()
        # reconnect() alone is an assertion, not evidence: still down.
        assert not session.connected
        session.advance(1.0)  # the next echo round-trip succeeds
        assert session.connected
        assert session.resyncs == 1
        down = session.health().time_down_s
        session.advance(3.0)
        assert session.health().time_down_s == down  # outage closed

    def test_echo_loss_is_counted(self):
        session, _ = make_session(
            channel=LossyChannel(loss=0.5, seed=3), liveness_timeout_s=100.0
        )
        session.advance(40.0)
        assert session.echo_sent == 40
        assert 0 < session.echo_lost < 40


class TestFailModes:
    def learn_two_stations(self, session):
        session.process(pkt(A, B, in_port=1))
        session.process(pkt(B, A, in_port=2))

    def test_standalone_keeps_forwarding_last_good_pipeline(self):
        session, app = make_session(FailMode.STANDALONE)
        self.learn_two_stations(session)
        force_outage(session)
        # Known traffic still unicasts on the installed rules.
        assert session.process(pkt(A, B, in_port=1)).output_ports == [2]
        assert session.process(pkt(B, A, in_port=2)).output_ports == [1]
        # An unknown source still forwards on the last-good pipeline (its
        # destination is learned) but the punt is suppressed, so nothing
        # new is learned; an unknown destination still floods.
        verdict = session.process(pkt(C, A, in_port=3))
        assert verdict.output_ports[-1] == 1
        assert not verdict.dropped
        assert FLOOD_PORT in session.process(pkt(C, C + 1, in_port=3)).output_ports
        assert session.punts_suppressed >= 1
        assert C not in app.mac_table

    def test_secure_drops_controller_bound_packets_only(self):
        session, app = make_session(FailMode.SECURE)
        self.learn_two_stations(session)
        force_outage(session)
        # §6.4: packets destined to the controller are dropped...
        verdict = session.process(pkt(C, A, in_port=3))
        assert verdict.dropped
        assert verdict.output_ports == []
        assert session.secure_drops == 1
        assert C not in app.mac_table
        # ...but traffic the installed pipeline fully handles is not.
        assert session.process(pkt(A, B, in_port=1)).output_ports == [2]

    @pytest.mark.parametrize("mode", [FailMode.STANDALONE, FailMode.SECURE])
    def test_reconnect_converges(self, mode):
        session, app = make_session(mode)
        self.learn_two_stations(session)
        force_outage(session)
        session.process(pkt(C, A, in_port=3))  # lost to the outage
        session.reconnect()
        session.advance(2.0)
        assert session.connected
        # C's next packet re-punts and is learned: reactive resync.
        session.process(pkt(C, A, in_port=3))
        assert app.mac_table[C] == 3
        assert session.process(pkt(A, C, in_port=1)).output_ports == [3]


class TestPuntQueue:
    def test_drop_tail_bounds_the_queue(self):
        session, _ = make_session(max_punt_queue=4)
        for i in range(10):
            session.on_packet_in(PacketIn(pkt=pkt(A + i, B, in_port=1),
                                          table_id=0))
        assert len(session.punt_queue) == 4
        assert session.punt_queue_drops == 6
        delivered = session.pump()
        assert delivered == 4
        assert session.punts_delivered == 4
        assert not session.punt_queue

    def test_outage_suppresses_instead_of_queueing(self):
        session, _ = make_session()
        force_outage(session)
        session.on_packet_in(PacketIn(pkt=pkt(A, B, in_port=1), table_id=0))
        assert session.punts_suppressed >= 1
        assert not session.punt_queue

    def test_no_controller_clears_the_queue(self):
        switch = ESwitch.from_pipeline(build_pipeline())
        session = ControllerSession(switch, controller=None,
                                    channel=LossyChannel())
        session.on_packet_in(PacketIn(pkt=pkt(A, B, in_port=1), table_id=0))
        assert session.pump() == 0
        assert not session.punt_queue

    def test_lost_punts_are_counted_not_raised(self):
        session, app = make_session(
            channel=LossyChannel(loss=0.5, seed=9), liveness_timeout_s=1000.0
        )
        for i in range(40):
            session.process(pkt(A + 16 * i, B, in_port=1 + i % 4))
        assert session.punts_lost > 0
        assert session.punts_delivered == app.packet_ins
        assert app.learned < 40  # some learnings lost to the channel


def add_mod(eth_dst=0xDEAD, port=7):
    return FlowMod(
        FlowModCommand.ADD, 1, Match(eth_dst=eth_dst), priority=10,
        instructions=(ApplyActions([Output(port)]),),
    )


class TestRetry:
    def test_lost_request_is_retried(self):
        session, _ = make_session(
            channel=ScriptedChannel(None, 0.001, 0.001), retry_backoff_s=0.05
        )
        reply = session.submit_flow_mods([add_mod()])
        assert reply.accepted
        assert session.send_retries == 1
        assert session.sends_failed == 0
        assert session.control_latency_s >= 0.05  # the backoff was paid

    def test_lost_reply_is_retried_and_replay_is_idempotent(self):
        # Request delivered, reply lost: the switch applied the batch but
        # the controller cannot know — the retry re-applies it, and the
        # ADD-replace semantics make that harmless.
        session, _ = make_session(channel=ScriptedChannel(0.0, None, 0.0, 0.0))
        reply = session.submit_flow_mods([add_mod()])
        assert reply.accepted
        assert session.send_retries == 1
        table = session.switch.pipeline.table(1)
        assert sum(1 for e in table.entries if e.priority == 10) == 1

    def test_exhausted_retries_answer_channel_lost(self):
        session, _ = make_session(
            channel=ScriptedChannel(*([None] * 16)), max_retries=3
        )
        before = len(session.switch.pipeline.table(1).entries)
        reply = session.submit_flow_mods([add_mod()])
        assert not reply.accepted
        assert reply.errors == (CHANNEL_LOST,)
        assert reply.cycles == 0.0
        assert session.sends_failed == 1
        assert len(session.switch.pipeline.table(1).entries) == before

    def test_down_session_answers_channel_down(self):
        session, _ = make_session()
        force_outage(session)
        reply = session.submit_flow_mods([add_mod()])
        assert not reply.accepted
        assert reply.errors == (CHANNEL_DOWN,)

    def test_legacy_faces_return_cycles_never_raise(self):
        session, _ = make_session()
        assert session.apply_flow_mod(add_mod()) > 0.0
        assert session.apply_flow_mods([add_mod(eth_dst=0xBEEF)]) > 0.0
        force_outage(session)
        assert session.apply_flow_mod(add_mod(eth_dst=0xF00D)) == 0.0


class TestBarrier:
    def test_barrier_flushes_punts_first(self):
        session, app = make_session()
        session.on_packet_in(PacketIn(pkt=pkt(A, B, in_port=1), table_id=0))
        assert session.barrier()
        assert session.barriers == 1
        assert app.packet_ins == 1  # queued punt processed before the fence

    def test_barrier_fails_down_and_on_dead_channel(self):
        session, _ = make_session()
        force_outage(session)
        assert not session.barrier()
        lossy, _ = make_session(channel=ScriptedChannel(*([None] * 16)))
        assert not lossy.barrier()


class TestShardedPuntSynthesis:
    """ShardedESwitch has no packet-in hook; the session synthesizes
    punts from gathered verdicts, so reactive control still works."""

    def test_learning_through_the_sharded_engine(self):
        with ShardedESwitch(build_pipeline(), workers=2,
                            backend="thread") as engine:
            session = ControllerSession(engine, channel=LossyChannel())
            app = LearningSwitch(session)
            session.controller = app
            session.process_burst([pkt(A, B, in_port=1),
                                   pkt(B, A, in_port=2)])
            assert app.learned == 2
            assert engine.epoch >= 1  # the installs were broadcast
            verdicts = session.process_burst([pkt(A, B, in_port=1)])
            assert verdicts[0].output_ports == [2]

    def test_outage_suppresses_synthesized_punts(self):
        with ShardedESwitch(build_pipeline(), workers=2,
                            backend="thread") as engine:
            session = ControllerSession(engine, channel=LossyChannel())
            app = LearningSwitch(session)
            session.controller = app
            force_outage(session)
            session.process_burst([pkt(A, B, in_port=1)])
            assert session.punts_suppressed == 1
            assert app.learned == 0
