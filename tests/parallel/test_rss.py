"""RSS shard selection: deterministic, flow-sticky, well spread."""

import random

from repro.packet import PacketBuilder
from repro.parallel.rss import flow_key, rss_hash, shard_of

import strategies as sts


def tcp_pkt(src_mac=0x02_0000_0001, sport=1024, dport=80, vlan=None):
    b = PacketBuilder(in_port=1).eth(src=src_mac, dst=0x02_0000_0002)
    if vlan is not None:
        b.vlan(vid=vlan)
    return (b.ipv4(src=0x0A000001, dst=0xC0000201)
             .tcp(src_port=sport, dst_port=dport).build())


class TestFlowKey:
    def test_deterministic(self):
        pkt = tcp_pkt()
        assert rss_hash(pkt.data) == rss_hash(pkt.data)
        assert rss_hash(pkt.data, seed=7) == rss_hash(bytes(pkt.data), seed=7)

    def test_l2_fields_do_not_affect_ip_flows(self):
        # RSS hashes the 5-tuple: the MAC pair is not part of an IP key.
        a, b = tcp_pkt(src_mac=0x02_0000_0001), tcp_pkt(src_mac=0x02_0000_00AA)
        assert flow_key(a.data) == flow_key(b.data)

    def test_ports_separate_flows(self):
        assert flow_key(tcp_pkt(dport=80).data) != flow_key(tcp_pkt(dport=443).data)

    def test_vlan_tag_is_transparent(self):
        # The key walks VLAN tags to the same inner 5-tuple.
        assert flow_key(tcp_pkt().data) == flow_key(tcp_pkt(vlan=100).data)
        assert flow_key(tcp_pkt(vlan=100).data) == flow_key(tcp_pkt(vlan=200).data)

    def test_fragment_falls_back_to_3_tuple(self):
        whole = tcp_pkt()
        frag = tcp_pkt()
        data = bytearray(frag.data)
        data[14 + 7] = 0x10  # non-zero IPv4 fragment offset
        # No transport header in a non-first fragment: 3-tuple only,
        # and both fragments of the flow still key together.
        assert flow_key(data) == flow_key(whole.data)[:9]

    def test_ipv6_key(self):
        pkt = (PacketBuilder(in_port=1).eth()
               .ipv6(src=sts.V6_A, dst=sts.V6_B)
               .udp(src_port=53, dst_port=53).build())
        key = flow_key(pkt.data)
        assert len(key) == 32 + 1 + 4  # addrs + next-header + ports
        assert key[32] == 17

    def test_non_ip_frame_keys_on_macs(self):
        data = bytes(range(12)) + b"\x88\xb5" + b"\x00" * 50  # experimental etype
        assert flow_key(data) == data[:12] + b"\x88\xb5"

    def test_truncated_frame_degrades(self):
        assert isinstance(flow_key(b"\x00" * 6), bytes)  # no ethertype at all
        assert isinstance(flow_key(b""), bytes)


class TestShardOf:
    def test_single_shard_shortcut(self):
        assert shard_of(tcp_pkt().data, 1) == 0

    def test_flow_sticky(self):
        pkt = tcp_pkt()
        shards = {shard_of(pkt.data, 4) for _ in range(10)}
        assert len(shards) == 1

    def test_spreads_many_flows(self):
        rng = random.Random(42)
        counts = [0, 0, 0, 0]
        for _ in range(400):
            pkt = sts.random_packet(rng)
            counts[shard_of(pkt.data, 4)] += 1
        # Every queue sees a healthy share (CRC over distinct 5-tuples).
        assert all(c > 400 // 16 for c in counts), counts

    def test_seed_changes_assignment(self):
        rng = random.Random(7)
        pkts = [sts.random_packet(rng) for _ in range(64)]
        a = [shard_of(p.data, 4, seed=0) for p in pkts]
        b = [shard_of(p.data, 4, seed=12345) for p in pkts]
        assert a != b


class TestRssIndirection:
    """The RETA: free while healthy, surgical when degrading."""

    def test_healthy_table_matches_shard_of_bit_for_bit(self):
        from repro.parallel.rss import RssIndirection

        for n, seed in ((1, 0), (2, 0), (3, 7), (8, 0xDEAD)):
            reta = RssIndirection(n, seed=seed)
            for sport in range(1024, 1224):
                data = tcp_pkt(sport=sport).data
                assert reta.shard_for(data) == shard_of(data, n, seed)

    def test_remap_moves_only_the_dead_shards_slots(self):
        from repro.parallel.rss import RssIndirection

        reta = RssIndirection(4, slots_per_shard=8)
        before = list(reta.table)
        moved = reta.remap(2, [0, 1, 3])
        assert moved == 8  # exactly the dead shard's slots
        assert 2 not in reta.owners()
        for slot, (old, new) in enumerate(zip(before, reta.table)):
            if old == 2:
                assert new in (0, 1, 3)
            else:
                assert new == old  # survivors' flows never move

    def test_surviving_flows_never_move(self):
        from repro.parallel.rss import RssIndirection

        reta = RssIndirection(4, seed=3)
        flows = [tcp_pkt(sport=p).data for p in range(1024, 1324)]
        before = {bytes(d): reta.shard_for(d) for d in flows}
        reta.remap(1, [0, 2, 3])
        for d in flows:
            if before[bytes(d)] != 1:
                assert reta.shard_for(d) == before[bytes(d)]
            else:
                assert reta.shard_for(d) in (0, 2, 3)

    def test_remaps_compose(self):
        from repro.parallel.rss import RssIndirection

        reta = RssIndirection(3, slots_per_shard=4)
        reta.remap(0, [1, 2])
        reta.remap(1, [2])  # slots 0 inherited move again
        assert reta.owners() == {2}

    def test_remap_validation(self):
        from repro.parallel.rss import RssIndirection
        import pytest

        reta = RssIndirection(2)
        with pytest.raises(ValueError):
            reta.remap(0, [])
        with pytest.raises(ValueError):
            reta.remap(0, [0, 1])
        with pytest.raises(ValueError):
            RssIndirection(0)
        with pytest.raises(ValueError):
            RssIndirection(2, slots_per_shard=0)
