"""The performance model: platforms, caches, cost atoms, meters, bounds.

The paper's prototype is measured in CPU cycles on real hardware; this
reproduction replaces the hardware with a transparent model built from the
paper's own performance atoms (Fig. 20 and Section 4.4):

* :mod:`repro.simcpu.platform` — the Table 1 Xeon and the Fig. 19 Atom;
* :mod:`repro.simcpu.cache` — an inclusive LRU L1/L2/L3 hierarchy fed with
  the abstract cache-line ids the datapaths touch;
* :mod:`repro.simcpu.costs` — per-template fixed cycle costs;
* :mod:`repro.simcpu.recorder` — meters the datapaths charge cycles and
  memory touches to (a null meter makes metering free when unused);
* :mod:`repro.simcpu.model` — the closed-form best/worst-case bounds
  ("model-ub" / "model-lb" in Figs. 13 and 16).
"""

from repro.simcpu.platform import ATOM_C2750, XEON_E5_2620, Platform
from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.recorder import CycleMeter, Meter, NULL_METER, NullMeter
from repro.simcpu.model import AnalyticModel, StageCost

__all__ = [
    "Platform",
    "XEON_E5_2620",
    "ATOM_C2750",
    "CacheHierarchy",
    "CostBook",
    "DEFAULT_COSTS",
    "Meter",
    "NullMeter",
    "NULL_METER",
    "CycleMeter",
    "AnalyticModel",
    "StageCost",
]
