"""The shard worker: one datapath replica, one command channel.

Each worker owns a **private** fused :class:`ESwitch` replica built from
a pickled pipeline snapshot — shared-nothing by construction, whether
the worker is a forked process or (fallback) a thread. The loop serves
the engine's commands:

``("burst", epoch, mode, wires)``
    Run one RSS sub-burst through the replica. ``mode`` is ``"null"``
    (functional, :data:`NULL_METER`) or ``"cycle"`` (the worker's
    persistent per-core :class:`CycleMeter` — private caches, exactly
    the per-core meters :func:`repro.traffic.measure_multicore` models).
    Replies ``("burst", epoch, verdicts, cycles, packets, llc)`` with the
    meter deltas (``cycles`` is None in null mode). The reply echoes the
    worker's *applied* epoch so the engine can prove no gathered burst
    mixed pipeline generations.

``("mods", epoch, flow_mods)``
    Apply a flow-mod batch transactionally, then **stand the new
    generation up** (flush deferred rebuilds, re-fuse) before acking —
    the ack is the worker's half of the epoch barrier, so by the time
    the engine releases the next burst every replica is already serving
    the new fused datapath.

``("stats",)``
    Ship the replica's :class:`BurstStats` and its per-entry flow
    counters (addressed by logical table position, see
    :mod:`repro.parallel.wire`) for cross-shard merging.

``("reset_stats",)`` / ``("ping",)`` / ``("stop",)``
    Housekeeping.

Any exception is caught and reported as ``("error", message, traceback)``
— the loop keeps serving, the engine decides whether to raise.
"""

from __future__ import annotations

import pickle
import traceback

from repro.core.analysis import CompileConfig
from repro.core.eswitch import ESwitch
from repro.parallel.wire import (
    EntryIndexCache,
    decode_packets,
    encode_verdicts,
)
from repro.simcpu.recorder import CycleMeter, NULL_METER


def shard_worker_main(
    conn,
    pipeline_blob: bytes,
    config: CompileConfig,
    costs,
    platform,
) -> None:
    """Entry point of one shard worker (process target or thread body)."""
    try:
        pipeline = pickle.loads(pipeline_blob)
        switch = ESwitch(pipeline, config=config, costs=costs)
        switch.warm()  # replica construction includes the fused driver
        cache = EntryIndexCache(switch.pipeline)
        meter = CycleMeter(platform)
        epoch = 0
        conn.send(("ready", epoch))
    except Exception as exc:  # pragma: no cover - construction failures
        conn.send(("error", repr(exc), traceback.format_exc()))
        return

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        cmd = msg[0]
        try:
            if cmd == "burst":
                _, burst_epoch, mode, wires = msg
                if burst_epoch != epoch:
                    conn.send((
                        "error",
                        f"epoch desync: burst tagged {burst_epoch}, "
                        f"replica at {epoch}",
                        "",
                    ))
                    continue
                pkts = decode_packets(wires)
                if mode == "null":
                    verdicts = switch.process_burst(pkts, NULL_METER)
                    reply = (
                        "burst",
                        epoch,
                        encode_verdicts(verdicts, cache),
                        None,
                        len(pkts),
                        0,
                    )
                else:
                    cycles0 = meter.total_cycles
                    llc0 = meter.cache.stats.llc_misses
                    verdicts = switch.process_burst(pkts, meter)
                    reply = (
                        "burst",
                        epoch,
                        encode_verdicts(verdicts, cache),
                        meter.total_cycles - cycles0,
                        len(pkts),
                        meter.cache.stats.llc_misses - llc0,
                    )
                conn.send(reply)
            elif cmd == "mods":
                _, new_epoch, mods = msg
                cycles = switch.apply_flow_mods(mods)
                # Swap in the new generation *inside* the barrier: the
                # ack promises the replica's fused datapath is current.
                switch.warm()
                epoch = new_epoch
                conn.send(("mods", epoch, cycles))
            elif cmd == "stats":
                counters = []
                for table in switch.pipeline:
                    for idx, entry in enumerate(table.entries):
                        c = entry.counters
                        if c.packets or c.bytes:
                            counters.append(
                                (table.table_id, idx, c.packets, c.bytes)
                            )
                conn.send(("stats", switch.burst_stats, counters))
            elif cmd == "reset_stats":
                switch.burst_stats.reset()
                meter.reset()
                for table in switch.pipeline:
                    for entry in table.entries:
                        entry.counters.packets = 0
                        entry.counters.bytes = 0
                conn.send(("ok",))
            elif cmd == "ping":
                conn.send(("pong", epoch))
            elif cmd == "stop":
                conn.send(("ok",))
                return
            else:
                conn.send(("error", f"unknown command {cmd!r}", ""))
        except Exception as exc:
            conn.send(("error", repr(exc), traceback.format_exc()))


class ThreadChannel:
    """A duplex, Connection-shaped channel over two queues (thread mode).

    Objects still cross by value: sends pickle and receives unpickle, so
    a thread worker is exactly as shared-nothing as a process worker —
    the only difference is the GIL (correctness everywhere, speedup only
    with processes).
    """

    def __init__(self, inbox, outbox):
        self._inbox = inbox
        self._outbox = outbox

    def send(self, obj) -> None:
        self._outbox.put(pickle.dumps(obj))

    def recv(self):
        blob = self._inbox.get()
        if blob is None:
            raise EOFError
        return pickle.loads(blob)

    def close(self) -> None:
        self._outbox.put(None)


def thread_channel_pair() -> tuple[ThreadChannel, ThreadChannel]:
    """(engine side, worker side) of one duplex thread channel."""
    import queue

    a, b = queue.Queue(), queue.Queue()
    return ThreadChannel(a, b), ThreadChannel(b, a)
