"""Shared plumbing for the per-figure benchmark harnesses.

Every ``bench_figXX`` module reproduces one table or figure from the
paper's evaluation: it generates the same workload sweep, runs it through
the simulated switches, prints the series the paper plots, asserts the
*shape* the paper reports (who wins, by what factor, where the knees are),
and archives the series under ``benchmarks/results/``.

Absolute numbers are not expected to match the paper's testbed — the
substrate here is a cycle/cache model, not a 40 Gbps Xeon — but the model
is calibrated from the paper's own cost atoms (Fig. 20), so the shapes
carry over.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.traffic import FlowSet, measure
from repro.traffic.nfpa import Measurement, auto_params

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Cap per-point replay length so full-suite runs stay tractable.
N_PACKETS_CAP = 30_000
WARMUP_CAP = 30_000

#: The flow-count axis most figures sweep (the paper goes to 1M; 100K is
#: already deep inside the cache-collapse regime and 10x cheaper to run).
FLOW_AXIS = (1, 10, 100, 1_000, 10_000, 100_000)


def sweep_flows(
    make_switch: Callable[[], object],
    make_flows: Callable[[int], FlowSet],
    flow_counts: Sequence[int] = FLOW_AXIS,
    platform: Platform = XEON_E5_2620,
) -> list[tuple[int, Measurement]]:
    """Measure one switch across the active-flow axis."""
    rows = []
    for n_flows in flow_counts:
        flows = make_flows(n_flows)
        n_packets, warmup = auto_params(n_flows)
        m = measure(
            make_switch(),
            flows,
            n_packets=min(n_packets, N_PACKETS_CAP),
            warmup=min(warmup, WARMUP_CAP),
            platform=platform,
        )
        rows.append((n_flows, m))
    return rows


def fmt_flows(n: int) -> str:
    if n >= 1_000_000:
        return f"{n // 1_000_000}M"
    if n >= 1_000:
        return f"{n // 1_000}K"
    return str(n)


def render_table(title: str, header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def publish(name: str, text: str) -> None:
    """Print the figure's series and archive it under results/."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
