"""Flow-mod admission control and batch invisibility (ISSUE 5).

The contract: a rejected batch is answered with typed ErrorMsgs and is
*bit-invisible* — logical tables, compiled artifacts, the fused driver
object, flow counters, modeled cycles, and (for the sharded engine) the
epoch are exactly as if the batch had never been sent.
"""

import pickle

import pytest

from repro.core import ESwitch
from repro.openflow.actions import Output
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.messages import (
    ErrorType,
    FlowMod,
    FlowModCommand,
    FlowModFailed,
    FlowModFailedCode,
)
from repro.openflow.pipeline import MAX_TABLES
from repro.openflow.stats import collect_flow_stats
from repro.parallel import ShardedESwitch
from repro.usecases import l2


def mod(command=FlowModCommand.ADD, table_id=0, priority=5, port=3,
        instructions=None, **match):
    if instructions is None:
        instructions = (ApplyActions([Output(port)]),)
    return FlowMod(command, table_id, Match(**match), priority=priority,
                   instructions=instructions)


def capped_switch(cap=3):
    """An L2 switch whose table 0 advertises ``max_entries=cap``."""
    pipeline, macs = l2.build(8)
    sw = ESwitch(pipeline)
    table = sw.pipeline.table(0)
    table.max_entries = len(table.entries) + cap
    return sw, macs


def codes(errors):
    return [e.code for e in errors]


class TestStaticValidation:
    """The stateless half of admission (validate_flow_mod)."""

    def setup_method(self):
        self.sw = ESwitch(l2.build(8)[0])

    def test_bad_command(self):
        errs = self.sw.admit_flow_mods([mod(command="increment")])
        assert codes(errs) == [FlowModFailedCode.BAD_COMMAND]

    @pytest.mark.parametrize("tid", [-1, MAX_TABLES, MAX_TABLES + 7])
    def test_bad_table_id(self, tid):
        errs = self.sw.admit_flow_mods([mod(table_id=tid)])
        assert codes(errs) == [FlowModFailedCode.BAD_TABLE_ID]

    def test_bad_priority(self):
        errs = self.sw.admit_flow_mods([mod(priority=1 << 17)])
        assert codes(errs) == [FlowModFailedCode.BAD_COMMAND]

    def test_bad_timeout(self):
        bad = mod()
        bad.idle_timeout = -3.0
        errs = self.sw.admit_flow_mods([bad])
        assert codes(errs) == [FlowModFailedCode.BAD_TIMEOUT]

    def test_bad_match_type(self):
        bad = mod()
        bad.match = {"eth_dst": 5}
        errs = self.sw.admit_flow_mods([bad])
        assert [e.etype for e in errs] == [ErrorType.BAD_MATCH]

    def test_goto_must_move_forward(self):
        errs = self.sw.admit_flow_mods(
            [mod(table_id=3, instructions=(GotoTable(3),))]
        )
        assert [e.etype for e in errs] == [ErrorType.BAD_INSTRUCTION]

    def test_dangling_goto_target(self):
        errs = self.sw.admit_flow_mods([mod(instructions=(GotoTable(9),))])
        assert [e.etype for e in errs] == [ErrorType.BAD_INSTRUCTION]
        assert errs[0].code == "OFPBIC_BAD_TABLE_ID"

    def test_goto_target_created_by_the_batch_is_fine(self):
        batch = [
            mod(instructions=(GotoTable(9),)),
            mod(table_id=9, port=2, eth_dst=0xBEEF),
        ]
        assert self.sw.admit_flow_mods(batch) == []
        assert self.sw.submit_flow_mods(batch).accepted

    def test_every_error_is_reported_not_just_the_first(self):
        errs = self.sw.admit_flow_mods(
            [mod(command="bogus"), mod(table_id=-2), mod(priority=9)]
        )
        assert codes(errs) == [
            FlowModFailedCode.BAD_COMMAND, FlowModFailedCode.BAD_TABLE_ID,
        ]


class TestCapacity:
    """Per-table max_entries, simulated exactly as apply would act."""

    def test_overflow_is_rejected_with_table_full(self):
        sw, _ = capped_switch(cap=2)
        assert sw.submit_flow_mods([mod(eth_dst=0xA1)]).accepted
        assert sw.submit_flow_mods([mod(eth_dst=0xA2)]).accepted
        reply = sw.submit_flow_mods([mod(eth_dst=0xA3)])
        assert not reply.accepted
        assert codes(reply.errors) == [FlowModFailedCode.TABLE_FULL]

    def test_replace_in_place_is_exempt(self):
        sw, _ = capped_switch(cap=1)
        assert sw.submit_flow_mods([mod(eth_dst=0xA1)]).accepted
        # Same (match, priority): replaces, no growth, admissible at cap.
        assert sw.submit_flow_mods([mod(eth_dst=0xA1, port=9)]).accepted

    def test_interleaved_delete_frees_capacity(self):
        sw, _ = capped_switch(cap=1)
        assert sw.submit_flow_mods([mod(eth_dst=0xA1)]).accepted
        batch = [
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=0xA1),
                    priority=5, strict=True),
            mod(eth_dst=0xA2),
        ]
        assert sw.admit_flow_mods(batch) == []
        assert sw.submit_flow_mods(batch).accepted

    def test_batch_created_tables_are_unbounded(self):
        sw, _ = capped_switch(cap=0)
        batch = [mod(table_id=7, eth_dst=i, port=2) for i in range(20)]
        assert sw.admit_flow_mods(batch) == []

    def test_direct_apply_raises_typed_table_full(self):
        sw, _ = capped_switch(cap=1)
        sw.apply_flow_mod(mod(eth_dst=0xA1))
        with pytest.raises(FlowModFailed) as exc:
            sw.apply_flow_mod(mod(eth_dst=0xA2))
        assert exc.value.error.code is FlowModFailedCode.TABLE_FULL

    def test_transactional_batch_rolls_back_on_overflow(self):
        sw, _ = capped_switch(cap=1)
        entries_before = list(sw.pipeline.table(0).entries)
        cycles_before = sw.update_stats.cycles
        with pytest.raises(FlowModFailed):
            sw.apply_flow_mods([mod(eth_dst=0xA1), mod(eth_dst=0xA2)])
        assert list(sw.pipeline.table(0).entries) == entries_before
        assert sw.update_stats.cycles == cycles_before


def fingerprint(sw):
    """Everything a rejected batch must leave untouched, by value."""
    return (
        sw.datapath.generation,
        sw.update_stats.cycles,
        sorted((s.table_id, s.priority, s.packets, s.bytes)
               for s in collect_flow_stats(sw.pipeline)),
        [
            (t.table_id, sorted((repr(e.match), e.priority)
                                for e in t.entries))
            for t in sw.pipeline
        ],
        sw.table_kinds(),
    )


BAD_BATCHES = {
    "dangling-goto": lambda: [mod(eth_dst=0xC0FE),
                              mod(instructions=(GotoTable(200),))],
    "backward-goto": lambda: [mod(eth_dst=0xC0FE),
                              mod(table_id=1, instructions=(GotoTable(0),))],
    "bad-priority": lambda: [mod(eth_dst=0xC0FE), mod(priority=-4)],
    "table-full": lambda: [mod(eth_dst=0xC0FE), mod(eth_dst=0xC0FF)],
}


class TestBatchInvisibility:
    """One poisoned mod rejects the batch wholesale — and the reject must
    be invisible down to the fused driver's object identity."""

    @pytest.mark.parametrize("reason", sorted(BAD_BATCHES))
    def test_eswitch_rejected_batch_is_bit_invisible(self, reason):
        pipeline, macs = l2.build(16)
        sw = ESwitch(pipeline)
        control = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        if reason == "table-full":
            table = sw.pipeline.table(0)
            table.max_entries = len(table.entries) + 1
        probe = l2.traffic(macs, 24)
        sw.warm()
        sw.process_burst([p.copy() for p in probe])
        control.warm()
        control.process_burst([p.copy() for p in probe])

        fused_before = sw.datapath._fused
        assert fused_before is not None
        before = fingerprint(sw)

        reply = sw.submit_flow_mods(BAD_BATCHES[reason]())
        assert not reply.accepted
        assert reply.errors and reply.cycles == 0.0

        assert fingerprint(sw) == before
        # Not just equal state: the very same compiled driver object is
        # still installed at the same generation — nothing recompiled.
        assert sw.datapath._fused is fused_before
        # And the switch keeps answering exactly like one that never saw
        # the batch.
        sv = sw.process_burst([p.copy() for p in probe])
        cv = control.process_burst([p.copy() for p in probe])
        assert [v.summary() for v in sv] == [v.summary() for v in cv]

    @pytest.mark.parametrize("reason", sorted(BAD_BATCHES))
    def test_sharded_rejected_batch_is_bit_invisible(self, reason):
        if reason == "table-full":
            pytest.skip("workers hold replicas; capacity is set post-fork")
        pipeline, macs = l2.build(16)
        probe = l2.traffic(macs, 24)
        control = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        with ShardedESwitch(pipeline, workers=2, backend="thread") as eng:
            eng.process_burst([p.copy() for p in probe])
            control.process_burst([p.copy() for p in probe])
            epoch_before = eng.epoch

            reply = eng.submit_flow_mods(BAD_BATCHES[reason]())
            assert not reply.accepted and reply.errors

            # The epoch did not advance: nothing was broadcast, every
            # worker keeps serving the prior generation.
            assert eng.epoch == epoch_before
            ev = eng.process_burst([p.copy() for p in probe])
            cv = control.process_burst([p.copy() for p in probe])
            assert [v.summary() for v in ev] == [v.summary() for v in cv]
            assert all(e == epoch_before for e in eng.last_gather_epochs)
            eng.sync_flow_stats()
            counts = sorted((s.table_id, s.priority, s.packets, s.bytes)
                            for s in collect_flow_stats(eng.pipeline))
            control_counts = sorted(
                (s.table_id, s.priority, s.packets, s.bytes)
                for s in collect_flow_stats(control.pipeline))
            assert counts == control_counts

    def test_sharded_capacity_reject_leaves_epoch_alone(self):
        pipeline, _ = l2.build(8)
        with ShardedESwitch(pipeline, workers=2, backend="thread") as eng:
            table = eng.shadow.pipeline.table(0)
            table.max_entries = len(table.entries)
            reply = eng.submit_flow_mods([mod(eth_dst=0xA1)])
            assert not reply.accepted
            assert codes(reply.errors) == [FlowModFailedCode.TABLE_FULL]
            assert eng.epoch == 0

    def test_accepted_batch_still_applies_normally(self):
        sw = ESwitch(l2.build(8)[0])
        generation = sw.datapath.generation
        reply = sw.submit_flow_mods([mod(eth_dst=0x0BB0, port=4)])
        assert reply.accepted
        assert reply.cycles > 0.0
        assert sw.datapath.generation != generation
        assert sw.pipeline.table(0).has_rule(Match(eth_dst=0x0BB0), 5)


class TestGatewayTableFullSplit:
    """Regression: a TABLE_FULL reject used to retry the whole batch
    verbatim, so one full table wedged a subscriber's admissible rules
    forever. The controller must split the batch — land the admissible
    complement, park only the overflow — and retry just the overflow on
    the next punt."""

    def make(self, ce_cap):
        from repro.controller import GatewayController
        from repro.usecases import gateway

        pipeline, fib = gateway.build(
            n_ce=2, users_per_ce=3, n_prefixes=50, provision_users=False
        )
        sw = ESwitch.from_pipeline(pipeline)
        ctrl = GatewayController(sw, n_ce=2, users_per_ce=3)
        sw.packet_in_handler = ctrl
        # Fill-block the forward (per-CE) table so its NAT mod bounces
        # TABLE_FULL while the reverse mod has room.
        table = sw.pipeline.table(gateway.CE_TABLE_BASE)
        table.max_entries = len(table.entries) + ce_cap
        return sw, ctrl, fib

    def punt(self, sw, fib):
        from repro.usecases import gateway

        flow = gateway.traffic(fib, 1, n_ce=2, users_per_ce=3)[0]
        verdict = sw.process(flow.copy())
        return flow, verdict

    def test_admissible_complement_lands_overflow_is_parked(self):
        from repro.usecases import gateway

        sw, ctrl, fib = self.make(ce_cap=0)
        rev_before = len(sw.pipeline.table(gateway.REVERSE_TABLE).entries)
        _, verdict = self.punt(sw, fib)
        assert verdict.to_controller
        assert ctrl.table_full_splits == 1
        assert ctrl.install_failures == 1
        assert not ctrl.admitted
        # The reverse-NAT rule landed despite the reject...
        assert (
            len(sw.pipeline.table(gateway.REVERSE_TABLE).entries)
            == rev_before + 1
        )
        # ...and only the forward mod is parked for retry.
        (pending,) = ctrl.pending_overflow.values()
        assert [m.table_id for m in pending] == [gateway.CE_TABLE_BASE]

    def test_retry_resubmits_only_the_overflow(self):
        from repro.usecases import gateway

        sw, ctrl, fib = self.make(ce_cap=0)
        flow, _ = self.punt(sw, fib)
        rev_after_split = len(sw.pipeline.table(gateway.REVERSE_TABLE).entries)
        # Still full: the retry must bounce again WITHOUT re-sending the
        # already-landed reverse mod (no duplicate growth, no new split).
        assert sw.process(flow.copy()).to_controller
        assert ctrl.overflow_retries == 1
        assert ctrl.table_full_splits == 1
        assert (
            len(sw.pipeline.table(gateway.REVERSE_TABLE).entries)
            == rev_after_split
        )
        assert not ctrl.admitted

    def test_freed_capacity_completes_admission(self):
        from repro.usecases import gateway

        sw, ctrl, fib = self.make(ce_cap=0)
        flow, _ = self.punt(sw, fib)
        sw.pipeline.table(gateway.CE_TABLE_BASE).max_entries += 1
        assert sw.process(flow.copy()).to_controller
        assert ctrl.overflow_retries == 1
        assert len(ctrl.admitted) == 1
        assert not ctrl.pending_overflow
        # Fully admitted: the retransmission takes the fast path.
        assert sw.process(flow.copy()).forwarded

    def test_uncapped_admission_never_splits(self):
        sw, ctrl, fib = self.make(ce_cap=8)
        _, verdict = self.punt(sw, fib)
        assert verdict.to_controller
        assert len(ctrl.admitted) == 1
        assert ctrl.table_full_splits == 0
        assert not ctrl.pending_overflow

    def test_via_installs_into_the_punting_switch(self):
        from repro.controller import GatewayController
        from repro.openflow.messages import PacketIn
        from repro.usecases import gateway

        pipeline_a, fib = gateway.build(
            n_ce=2, users_per_ce=3, n_prefixes=50, provision_users=False
        )
        pipeline_b, _ = gateway.build(
            n_ce=2, users_per_ce=3, n_prefixes=50, provision_users=False
        )
        sw_a = ESwitch.from_pipeline(pipeline_a)
        sw_b = ESwitch.from_pipeline(pipeline_b)
        ctrl = GatewayController(sw_a, n_ce=2, users_per_ce=3)
        flow = gateway.traffic(fib, 1, n_ce=2, users_per_ce=3)[0]
        ctrl.handle(PacketIn(pkt=flow, table_id=gateway.CE_TABLE_BASE),
                    via=sw_b)
        assert len(ctrl.admitted) == 1
        assert len(sw_b.pipeline.table(gateway.CE_TABLE_BASE).entries) == 1
        assert len(sw_a.pipeline.table(gateway.CE_TABLE_BASE).entries) == 0
