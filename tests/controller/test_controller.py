"""Tests for the gateway controller and the update channels."""

import pytest

from repro.controller import (
    CLI_CHANNEL,
    CONTROLLER_CHANNEL,
    GatewayController,
    setup_time,
)
from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.usecases import gateway, loadbalancer


def lb_mods(n_services):
    """Flow-mods that build the single-table LB pipeline rule by rule."""
    pipeline = loadbalancer.build_single_table(n_services)
    mods = []
    for entry in pipeline.table(0):
        mods.append(
            FlowMod(FlowModCommand.ADD, 0, entry.match, priority=entry.priority,
                    instructions=entry.instructions)
        )
    return mods


class TestGatewayController:
    def make(self, n_ce=2, users=3):
        pipeline, fib = gateway.build(
            n_ce=n_ce, users_per_ce=users, n_prefixes=100, provision_users=False
        )
        sw = ESwitch.from_pipeline(pipeline)
        ctrl = GatewayController(sw, n_ce=n_ce, users_per_ce=users)
        sw.packet_in_handler = ctrl
        return sw, ctrl, fib

    def test_admission_installs_rules(self):
        sw, ctrl, fib = self.make()
        flows = gateway.traffic(fib, 6, n_ce=2, users_per_ce=3)
        first = sw.process(flows[0].copy())
        assert first.to_controller
        assert len(ctrl.admitted) == 1
        # The retransmission takes the fast path.
        assert sw.process(flows[0].copy()).forwarded

    def test_all_users_admitted_once(self):
        sw, ctrl, fib = self.make()
        flows = gateway.traffic(fib, 6, n_ce=2, users_per_ce=3)
        for _round in range(3):
            for i in range(len(flows)):
                sw.process(flows[i].copy())
        assert len(ctrl.admitted) == 6
        assert ctrl.packet_ins == 6  # one punt per user, no re-admission

    def test_unknown_subscriber_rejected(self):
        from repro.packet import PacketBuilder

        sw, ctrl, _fib = self.make()
        intruder = (
            PacketBuilder(in_port=gateway.ACCESS_PORT).eth()
            .vlan(vid=gateway.ce_vlan(0))
            .ipv4(src="172.16.0.1", dst="8.8.8.8").tcp().build()
        )
        sw.process(intruder)
        assert ctrl.rejected == 1
        assert len(ctrl.admitted) == 0

    def test_wrong_vlan_rejected(self):
        from repro.packet import PacketBuilder
        from repro.net.addresses import int_to_ip

        sw, ctrl, _fib = self.make()
        spoofed = (
            PacketBuilder(in_port=gateway.ACCESS_PORT).eth()
            .vlan(vid=gateway.ce_vlan(1))  # CE 1's VLAN...
            .ipv4(src=int_to_ip(gateway.private_ip(0, 0)), dst="8.8.8.8")  # CE 0's user
            .tcp().build()
        )
        sw.process(spoofed)
        assert ctrl.rejected == 1


class TestUpdateChannels:
    def test_cli_faster_for_eswitch(self):
        """Fig. 17: 'it takes just one fifth the time for ESWITCH to set up
        the use case than for OVS, when using the CLI tool'."""
        mods = lb_mods(20)
        t_es = setup_time(
            ESwitch.from_pipeline(loadbalancer_empty()), mods, CLI_CHANNEL
        )
        t_ovs = setup_time(OvsSwitch(loadbalancer_empty()), lb_mods(20), CLI_CHANNEL)
        assert t_ovs / t_es > 3

    def test_controller_channel_dominates(self):
        """Fig. 17: 'with the controller the two perform similarly'."""
        t_es = setup_time(
            ESwitch.from_pipeline(loadbalancer_empty()), lb_mods(20), CONTROLLER_CHANNEL
        )
        t_ovs = setup_time(
            OvsSwitch(loadbalancer_empty()), lb_mods(20), CONTROLLER_CHANNEL
        )
        assert 0.5 < t_ovs / t_es < 2

    def test_linear_scaling(self):
        times = []
        for n in (5, 10, 20):
            times.append(
                setup_time(ESwitch.from_pipeline(loadbalancer_empty()),
                           lb_mods(n), CLI_CHANNEL)
            )
        assert times[0] < times[1] < times[2]
        # Roughly proportional to the mod count.
        assert times[2] / times[0] == pytest.approx(len(lb_mods(20)) / len(lb_mods(5)),
                                                    rel=0.5)


def loadbalancer_empty():
    """An empty table-0 pipeline the channel tests populate via flow-mods."""
    from repro.openflow.flow_table import FlowTable
    from repro.openflow.pipeline import Pipeline

    return Pipeline([FlowTable(0)])
