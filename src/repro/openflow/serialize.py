"""JSON (de)serialization of pipelines.

A pipeline is a plain declarative artifact — "OpenFlow as a declarative
language to program the dataplane" — so it serializes naturally. The
format is stable and human-writable; the CLI (``python -m repro``)
compiles pipelines straight from these files.

Schema (all numbers accept the usual Match value spellings — ints,
dotted quads, ``addr/prefix`` strings, MAC strings)::

    {
      "tables": [
        {
          "id": 0,
          "name": "acl",
          "miss": "drop" | "controller",
          "entries": [
            {
              "priority": 10,
              "match": {"ipv4_dst": "192.0.2.0/24", "tcp_dst": 80},
              "apply": [{"output": 2}, {"set": {"ipv4_dst": "10.0.0.1"}}],
              "write": [...],           // optional write-actions
              "clear": true,            // optional clear-actions
              "metadata": {"value": 1, "mask": 255},   // optional
              "goto": 1                 // optional goto_table
            }
          ]
        }
      ]
    }

Action objects: ``{"output": port}``, ``{"set": {field: value}}``,
``"drop"``, ``"controller"``, ``"flood"``, ``"dec_ttl"``, ``"pop_vlan"``,
``{"push_vlan": {"vid": 100, "pcp": 0}}``, ``{"group": 7}``.

Group tables serialize alongside the flow tables::

    {
      "groups": [
        {"id": 7, "type": "select",
         "buckets": [{"weight": 2, "actions": [{"output": 1}]},
                     {"actions": [{"output": 2}]}]}
      ],
      "tables": [...]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.net.addresses import int_to_ip, int_to_mac
from repro.openflow.actions import (
    Action,
    Controller,
    DecTtl,
    Drop,
    Flood,
    Output,
    PopVlan,
    PushVlan,
    SetField,
)
from repro.openflow.fields import field_by_name
from repro.openflow.groups import Bucket, Group, GroupAction, GroupTable, GroupType
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    Instruction,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.meters import MeterInstruction, MeterTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline


class SerializationError(ValueError):
    """Raised on malformed pipeline documents."""


# -- actions ---------------------------------------------------------------

_SIMPLE_ACTIONS = {
    "drop": Drop,
    "controller": Controller,
    "flood": Flood,
    "dec_ttl": DecTtl,
    "pop_vlan": PopVlan,
}
_SIMPLE_NAMES = {cls: name for name, cls in _SIMPLE_ACTIONS.items()}


def action_to_obj(action: Action) -> Any:
    if type(action) in _SIMPLE_NAMES:
        return _SIMPLE_NAMES[type(action)]
    if isinstance(action, Output):
        return {"output": action.port}
    if isinstance(action, SetField):
        return {"set": {action.field: action.value}}
    if isinstance(action, PushVlan):
        return {"push_vlan": {"vid": action.vid, "pcp": action.pcp}}
    if isinstance(action, GroupAction):
        return {"group": action.group_id}
    raise SerializationError(f"cannot serialize action {action!r}")


def action_from_obj(obj: Any, groups: "GroupTable | None" = None) -> Action:
    if isinstance(obj, str):
        cls = _SIMPLE_ACTIONS.get(obj)
        if cls is None:
            raise SerializationError(f"unknown action {obj!r}")
        return cls()
    if not isinstance(obj, dict) or len(obj) != 1:
        raise SerializationError(f"malformed action object {obj!r}")
    (kind, value), = obj.items()
    if kind == "output":
        return Output(int(value))
    if kind == "set":
        if not isinstance(value, dict) or len(value) != 1:
            raise SerializationError(f"malformed set action {obj!r}")
        (field, fvalue), = value.items()
        return SetField(field, _field_value(field, fvalue))
    if kind == "push_vlan":
        return PushVlan(vid=int(value.get("vid", 0)), pcp=int(value.get("pcp", 0)))
    if kind == "group":
        if groups is None:
            raise SerializationError(
                "group action outside a pipeline document with groups"
            )
        return GroupAction(groups, int(value))
    raise SerializationError(f"unknown action {kind!r}")


def _field_value(field: str, value: Any) -> int:
    if isinstance(value, int):
        return value
    from repro.openflow.match import _to_int

    return _to_int(field_by_name(field), value)


# -- matches ------------------------------------------------------------------

def match_to_obj(match: Match) -> dict:
    out: dict[str, Any] = {}
    for name, (value, mask) in match.items():
        fdef = field_by_name(name)
        if mask == fdef.max_value:
            if name in ("ipv4_src", "ipv4_dst", "arp_spa", "arp_tpa"):
                out[name] = int_to_ip(value)
            elif name in ("eth_src", "eth_dst", "arp_sha", "arp_tha"):
                out[name] = int_to_mac(value)
            else:
                out[name] = value
        else:
            try:
                plen = mask.bit_count() if match.is_prefix(name) else None
            except Exception:
                plen = None
            if plen is not None and name in ("ipv4_src", "ipv4_dst", "arp_spa",
                                             "arp_tpa"):
                out[name] = f"{int_to_ip(value)}/{plen}"
            else:
                out[name] = {"value": value, "mask": mask}
    return out


def match_from_obj(obj: dict) -> Match:
    if not isinstance(obj, dict):
        raise SerializationError(f"match must be an object, got {obj!r}")
    spec: dict[str, Any] = {}
    for name, value in obj.items():
        if isinstance(value, dict):
            if set(value) != {"value", "mask"}:
                raise SerializationError(f"malformed masked match {value!r}")
            spec[name] = (value["value"], value["mask"])
        else:
            spec[name] = value
    try:
        return Match(**spec)
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"invalid match {obj!r}: {exc}") from exc


# -- entries / tables / pipelines ------------------------------------------------

def entry_to_obj(entry: FlowEntry) -> dict:
    out: dict[str, Any] = {
        "priority": entry.priority,
        "match": match_to_obj(entry.match),
    }
    for instr in entry.instructions:
        if isinstance(instr, ApplyActions):
            out["apply"] = [action_to_obj(a) for a in instr.actions]
        elif isinstance(instr, WriteActions):
            out["write"] = [action_to_obj(a) for a in instr.actions]
        elif isinstance(instr, ClearActions):
            out["clear"] = True
        elif isinstance(instr, WriteMetadata):
            out["metadata"] = {"value": instr.value, "mask": instr.mask}
        elif isinstance(instr, GotoTable):
            out["goto"] = instr.table_id
        elif isinstance(instr, MeterInstruction):
            out["meter"] = instr.meter_id
        else:
            raise SerializationError(f"cannot serialize instruction {instr!r}")
    if entry.cookie:
        out["cookie"] = entry.cookie
    if entry.idle_timeout:
        out["idle_timeout"] = entry.idle_timeout
    if entry.hard_timeout:
        out["hard_timeout"] = entry.hard_timeout
    return out


def entry_from_obj(
    obj: dict,
    groups: "GroupTable | None" = None,
    meters: "MeterTable | None" = None,
) -> FlowEntry:
    if not isinstance(obj, dict):
        raise SerializationError(f"entry must be an object, got {obj!r}")
    instructions: list = []
    if "meter" in obj:
        if meters is None:
            raise SerializationError("meter instruction without a meter table")
        instructions.append(MeterInstruction(meters, int(obj["meter"])))
    if obj.get("clear"):
        instructions.append(ClearActions())
    if "apply" in obj:
        instructions.append(
            ApplyActions([action_from_obj(a, groups) for a in obj["apply"]])
        )
    if "write" in obj:
        instructions.append(
            WriteActions([action_from_obj(a, groups) for a in obj["write"]])
        )
    if "metadata" in obj:
        md = obj["metadata"]
        instructions.append(
            WriteMetadata(value=int(md["value"]),
                          mask=int(md.get("mask", (1 << 64) - 1)))
        )
    if "goto" in obj:
        instructions.append(GotoTable(int(obj["goto"])))
    return FlowEntry(
        match=match_from_obj(obj.get("match", {})),
        priority=int(obj.get("priority", 0)),
        instructions=tuple(instructions),
        cookie=int(obj.get("cookie", 0)),
        idle_timeout=float(obj.get("idle_timeout", 0.0)),
        hard_timeout=float(obj.get("hard_timeout", 0.0)),
    )


def table_to_obj(table: FlowTable) -> dict:
    return {
        "id": table.table_id,
        "name": table.name,
        "miss": table.miss_policy.value,
        "entries": [entry_to_obj(e) for e in table],
    }


def table_from_obj(
    obj: dict,
    groups: "GroupTable | None" = None,
    meters: "MeterTable | None" = None,
) -> FlowTable:
    if "id" not in obj:
        raise SerializationError("table object needs an 'id'")
    table = FlowTable(
        int(obj["id"]),
        name=str(obj.get("name", "")),
        miss_policy=TableMissPolicy(obj.get("miss", "drop")),
    )
    for entry_obj in obj.get("entries", []):
        table.add(entry_from_obj(entry_obj, groups, meters))
    return table


def group_to_obj(group: Group) -> dict:
    return {
        "id": group.group_id,
        "type": group.group_type.value,
        "buckets": [
            {"weight": b.weight, "actions": [action_to_obj(a) for a in b.actions]}
            for b in group.buckets
        ],
    }


def group_from_obj(obj: dict, groups: GroupTable) -> Group:
    try:
        buckets = [
            Bucket(
                [action_from_obj(a, groups) for a in b.get("actions", [])],
                weight=int(b.get("weight", 1)),
            )
            for b in obj["buckets"]
        ]
        return Group(int(obj["id"]), GroupType(obj.get("type", "indirect")), buckets)
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"invalid group {obj!r}: {exc}") from exc


def pipeline_to_obj(pipeline: Pipeline) -> dict:
    out: dict[str, Any] = {}
    group_objs = [
        group_to_obj(pipeline.groups.get(gid))
        for gid in sorted(pipeline.groups._groups)
    ]
    if group_objs:
        out["groups"] = group_objs
    meter_objs = [
        {
            "id": mid,
            "rate_pps": pipeline.meters.get(mid).rate_pps,
            "burst": pipeline.meters.get(mid).burst,
        }
        for mid in sorted(pipeline.meters._meters)
    ]
    if meter_objs:
        out["meters"] = meter_objs
    out["tables"] = [table_to_obj(t) for t in pipeline]
    return out


def pipeline_from_obj(obj: dict) -> Pipeline:
    if not isinstance(obj, dict) or "tables" not in obj:
        raise SerializationError("pipeline document needs a 'tables' list")
    pipeline = Pipeline()
    for group_obj in obj.get("groups", []):
        pipeline.groups.add(group_from_obj(group_obj, pipeline.groups))
    for meter_obj in obj.get("meters", []):
        try:
            pipeline.meters.add(
                int(meter_obj["id"]),
                rate_pps=float(meter_obj["rate_pps"]),
                burst=float(meter_obj.get("burst", 0.0)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise SerializationError(f"invalid meter {meter_obj!r}: {exc}") from exc
    for table_obj in obj["tables"]:
        pipeline.add_table(
            table_from_obj(table_obj, pipeline.groups, pipeline.meters)
        )
    return pipeline


def dumps(pipeline: Pipeline, indent: int = 2) -> str:
    return json.dumps(pipeline_to_obj(pipeline), indent=indent)


def loads(text: str) -> Pipeline:
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return pipeline_from_obj(obj)


def save(pipeline: Pipeline, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dumps(pipeline) + "\n")


def load(path: str) -> Pipeline:
    with open(path) as fh:
        return loads(fh.read())
