"""Protocol header classes with wire-format pack/unpack.

Each header is a small mutable object with integer-valued fields (addresses
are 48/32-bit integers; see :mod:`repro.net.addresses` for conversions) and
two methods:

* ``pack() -> bytes`` — serialize to the wire format;
* ``unpack(data, offset) -> (header, next_offset)`` — parse in place.

The fast paths never touch these classes: they read raw bytes at fixed
offsets, exactly like the paper's matcher templates. The classes exist for
building test traffic and for the reference (slow-path) implementation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.checksum import internet_checksum

ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100
ETH_TYPE_IPV6 = 0x86DD
ETH_TYPE_MPLS = 0x8847

IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17
IP_PROTO_ICMPV6 = 58
IP_PROTO_SCTP = 132

#: IPv6 extension headers the parser walks through to find L4.
IPV6_EXT_HEADERS = frozenset({0, 43, 44, 60, 51})
IPV6_HEADER_LEN = 40

ETH_HEADER_LEN = 14
VLAN_TAG_LEN = 4
IPV4_MIN_HEADER_LEN = 20
TCP_MIN_HEADER_LEN = 20
UDP_HEADER_LEN = 8
ICMP_HEADER_LEN = 4
ARP_IPV4_LEN = 28


class HeaderError(ValueError):
    """Raised when a header cannot be parsed from the given bytes."""


@dataclass
class Ethernet:
    """Ethernet II header. ``dst``/``src`` are 48-bit integers."""

    dst: int = 0
    src: int = 0
    ethertype: int = ETH_TYPE_IPV4

    def pack(self) -> bytes:
        return (
            self.dst.to_bytes(6, "big")
            + self.src.to_bytes(6, "big")
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> tuple["Ethernet", int]:
        if len(data) - offset < ETH_HEADER_LEN:
            raise HeaderError("truncated Ethernet header")
        dst = int.from_bytes(data[offset : offset + 6], "big")
        src = int.from_bytes(data[offset + 6 : offset + 12], "big")
        (ethertype,) = struct.unpack_from("!H", data, offset + 12)
        return cls(dst=dst, src=src, ethertype=ethertype), offset + ETH_HEADER_LEN


@dataclass
class Vlan:
    """An 802.1Q tag (follows the Ethernet src/dst, carries inner ethertype)."""

    vid: int = 0
    pcp: int = 0
    dei: int = 0
    ethertype: int = ETH_TYPE_IPV4  # the encapsulated ethertype

    def pack(self) -> bytes:
        tci = (self.pcp & 0x7) << 13 | (self.dei & 0x1) << 12 | (self.vid & 0xFFF)
        return struct.pack("!HH", tci, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["Vlan", int]:
        if len(data) - offset < VLAN_TAG_LEN:
            raise HeaderError("truncated VLAN tag")
        tci, ethertype = struct.unpack_from("!HH", data, offset)
        return (
            cls(vid=tci & 0xFFF, pcp=tci >> 13, dei=(tci >> 12) & 1, ethertype=ethertype),
            offset + VLAN_TAG_LEN,
        )


@dataclass
class IPv4:
    """IPv4 header (no options in the fast-path model; ihl respected on parse)."""

    src: int = 0
    dst: int = 0
    proto: int = IP_PROTO_TCP
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    ident: int = 0
    flags: int = 0
    frag_offset: int = 0
    total_length: int = IPV4_MIN_HEADER_LEN
    header_len: int = IPV4_MIN_HEADER_LEN

    def pack(self) -> bytes:
        ver_ihl = (4 << 4) | (self.header_len // 4)
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.frag_offset
        head = struct.pack(
            "!BBHHHBBH4s4s",
            ver_ihl,
            tos,
            self.total_length,
            self.ident,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        )
        checksum = internet_checksum(head)
        return head[:10] + struct.pack("!H", checksum) + head[12:]

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["IPv4", int]:
        if len(data) - offset < IPV4_MIN_HEADER_LEN:
            raise HeaderError("truncated IPv4 header")
        ver_ihl = data[offset]
        if ver_ihl >> 4 != 4:
            raise HeaderError(f"not an IPv4 packet (version {ver_ihl >> 4})")
        header_len = (ver_ihl & 0xF) * 4
        if header_len < IPV4_MIN_HEADER_LEN or len(data) - offset < header_len:
            raise HeaderError(f"bad IPv4 header length {header_len}")
        tos = data[offset + 1]
        total_length, ident, flags_frag = struct.unpack_from("!HHH", data, offset + 2)
        ttl = data[offset + 8]
        proto = data[offset + 9]
        src = int.from_bytes(data[offset + 12 : offset + 16], "big")
        dst = int.from_bytes(data[offset + 16 : offset + 20], "big")
        hdr = cls(
            src=src,
            dst=dst,
            proto=proto,
            ttl=ttl,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            ident=ident,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
            total_length=total_length,
            header_len=header_len,
        )
        return hdr, offset + header_len


@dataclass
class IPv6:
    """IPv6 fixed header; ``src``/``dst`` are 128-bit integers."""

    src: int = 0
    dst: int = 0
    next_header: int = IP_PROTO_TCP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    payload_length: int = 0

    def pack(self) -> bytes:
        word = (6 << 28) | ((self.traffic_class & 0xFF) << 20) | (
            self.flow_label & 0xFFFFF
        )
        return (
            word.to_bytes(4, "big")
            + struct.pack("!HBB", self.payload_length, self.next_header,
                          self.hop_limit)
            + self.src.to_bytes(16, "big")
            + self.dst.to_bytes(16, "big")
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["IPv6", int]:
        if len(data) - offset < IPV6_HEADER_LEN:
            raise HeaderError("truncated IPv6 header")
        word = int.from_bytes(data[offset : offset + 4], "big")
        if word >> 28 != 6:
            raise HeaderError(f"not an IPv6 packet (version {word >> 28})")
        payload_length, next_header, hop_limit = struct.unpack_from(
            "!HBB", data, offset + 4
        )
        src = int.from_bytes(data[offset + 8 : offset + 24], "big")
        dst = int.from_bytes(data[offset + 24 : offset + 40], "big")
        hdr = cls(
            src=src,
            dst=dst,
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(word >> 20) & 0xFF,
            flow_label=word & 0xFFFFF,
            payload_length=payload_length,
        )
        return hdr, offset + IPV6_HEADER_LEN


@dataclass
class ICMPv6:
    """ICMPv6 header (type/code only)."""

    type: int = 128  # echo request
    code: int = 0

    def pack(self) -> bytes:
        return struct.pack("!BBH", self.type, self.code, 0)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["ICMPv6", int]:
        if len(data) - offset < ICMP_HEADER_LEN:
            raise HeaderError("truncated ICMPv6 header")
        return cls(type=data[offset], code=data[offset + 1]), offset + ICMP_HEADER_LEN


@dataclass
class TCP:
    """TCP header (options ignored; data offset respected on parse)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0x02  # SYN
    window: int = 65535
    data_offset: int = TCP_MIN_HEADER_LEN

    def pack(self) -> bytes:
        off_flags = ((self.data_offset // 4) << 12) | (self.flags & 0x1FF)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            off_flags,
            self.window,
            0,  # checksum (not modeled in the fast path)
            0,  # urgent pointer
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["TCP", int]:
        if len(data) - offset < TCP_MIN_HEADER_LEN:
            raise HeaderError("truncated TCP header")
        src_port, dst_port, seq, ack, off_flags, window = struct.unpack_from(
            "!HHIIHH", data, offset
        )
        data_offset = (off_flags >> 12) * 4
        if data_offset < TCP_MIN_HEADER_LEN:
            raise HeaderError(f"bad TCP data offset {data_offset}")
        hdr = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=off_flags & 0x1FF,
            window=window,
            data_offset=data_offset,
        )
        return hdr, offset + data_offset


@dataclass
class UDP:
    """UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = UDP_HEADER_LEN

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["UDP", int]:
        if len(data) - offset < UDP_HEADER_LEN:
            raise HeaderError("truncated UDP header")
        src_port, dst_port, length, _checksum = struct.unpack_from("!HHHH", data, offset)
        return cls(src_port=src_port, dst_port=dst_port, length=length), offset + UDP_HEADER_LEN


@dataclass
class ICMP:
    """ICMPv4 header (type/code only)."""

    type: int = 8  # echo request
    code: int = 0

    def pack(self) -> bytes:
        return struct.pack("!BBH", self.type, self.code, 0)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["ICMP", int]:
        if len(data) - offset < ICMP_HEADER_LEN:
            raise HeaderError("truncated ICMP header")
        return cls(type=data[offset], code=data[offset + 1]), offset + ICMP_HEADER_LEN


@dataclass
class ARP:
    """ARP over Ethernet/IPv4."""

    op: int = 1  # request
    sha: int = 0
    spa: int = 0
    tha: int = 0
    tpa: int = 0

    def pack(self) -> bytes:
        return (
            struct.pack("!HHBBH", 1, ETH_TYPE_IPV4, 6, 4, self.op)
            + self.sha.to_bytes(6, "big")
            + self.spa.to_bytes(4, "big")
            + self.tha.to_bytes(6, "big")
            + self.tpa.to_bytes(4, "big")
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> tuple["ARP", int]:
        if len(data) - offset < ARP_IPV4_LEN:
            raise HeaderError("truncated ARP header")
        htype, ptype, hlen, plen, op = struct.unpack_from("!HHBBH", data, offset)
        if (htype, ptype, hlen, plen) != (1, ETH_TYPE_IPV4, 6, 4):
            raise HeaderError("unsupported ARP header format")
        sha = int.from_bytes(data[offset + 8 : offset + 14], "big")
        spa = int.from_bytes(data[offset + 14 : offset + 18], "big")
        tha = int.from_bytes(data[offset + 18 : offset + 24], "big")
        tpa = int.from_bytes(data[offset + 24 : offset + 28], "big")
        return cls(op=op, sha=sha, spa=spa, tha=tha, tpa=tpa), offset + ARP_IPV4_LEN


@dataclass
class Payload:
    """Opaque payload bytes to round out a packet."""

    data: bytes = field(default_factory=bytes)

    def pack(self) -> bytes:
        return self.data
