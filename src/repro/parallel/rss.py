"""RSS: receive-side scaling over the 5-tuple, straight from wire bytes.

A NIC's RSS unit hashes the IP addresses and transport ports of every
received frame and uses the hash to pick a receive queue, so that all
packets of one flow land on one core — the property that makes the
shared-nothing, run-to-completion model work (no cross-core flow state,
no locks on the fast path). :func:`rss_hash` reproduces that contract:

* IPv4: ``(src, dst, proto)`` plus TCP/UDP ports when the packet is the
  first fragment (fragments with a non-zero offset carry no transport
  header, so — like real RSS — they fall back to the 3-tuple);
* IPv6: ``(src, dst, next_header)`` plus ports for plain TCP/UDP (no
  extension-header walk — hardware RSS doesn't either);
* non-IP: the MAC pair and ethertype, so L2 traffic still spreads.

The flow key is read directly off the raw bytes (one VLAN-tag walk, no
header-object allocation) and mixed with seeded CRC-32 — a C-speed,
run-independent hash, because this runs once per packet on the scatter
path where a full parse would cost as much as a table lookup, and shard
assignment must be deterministic per (seed, packet) — the property the
shard≡sequential equivalence tests rely on.
"""

from __future__ import annotations

import zlib

_ETH_VLAN = (0x8100, 0x88A8)
_ETH_IPV4 = 0x0800
_ETH_IPV6 = 0x86DD
_TCP, _UDP = 6, 17

_crc32 = zlib.crc32


def flow_key(data: "bytes | bytearray") -> bytes:
    """The flow-identifying bytes of one frame (what RSS hashes).

    Truncated or malformed frames degrade gracefully: whatever flow
    bytes exist are used, and anything unparseable keys as L2.
    """
    n = len(data)
    # Walk VLAN tags to the real ethertype.
    off = 12
    etype = (data[off] << 8) | data[off + 1] if n >= 14 else 0
    while etype in _ETH_VLAN and n >= off + 6:
        off += 4
        etype = (data[off] << 8) | data[off + 1]
    l3 = off + 2

    if etype == _ETH_IPV4 and n >= l3 + 20:
        proto = data[l3 + 9]
        addrs = bytes(data[l3 + 12 : l3 + 20])  # src, dst
        frag_offset = ((data[l3 + 6] & 0x1F) << 8) | data[l3 + 7]
        l4 = l3 + (data[l3] & 0x0F) * 4
        if proto in (_TCP, _UDP) and frag_offset == 0 and n >= l4 + 4:
            return addrs + bytes((proto,)) + bytes(data[l4 : l4 + 4])
        return addrs + bytes((proto,))
    if etype == _ETH_IPV6 and n >= l3 + 40:
        nxt = data[l3 + 6]
        addrs = bytes(data[l3 + 8 : l3 + 40])  # src, dst
        l4 = l3 + 40
        if nxt in (_TCP, _UDP) and n >= l4 + 4:
            return addrs + bytes((nxt,)) + bytes(data[l4 : l4 + 4])
        return addrs + bytes((nxt,))
    return bytes(data[: min(12, n)]) + etype.to_bytes(2, "big")  # L2


def rss_hash(data: "bytes | bytearray", seed: int = 0) -> int:
    """The 32-bit RSS hash of one frame's flow-identifying bytes."""
    return _crc32(flow_key(data), seed & 0xFFFFFFFF)


def shard_of(data: "bytes | bytearray", n_shards: int, seed: int = 0) -> int:
    """Which of ``n_shards`` receive queues this frame lands on."""
    if n_shards <= 1:
        return 0
    return _crc32(flow_key(data), seed & 0xFFFFFFFF) % n_shards


class RssIndirection:
    """A NIC-style RSS indirection table (RETA): hash → slot → shard.

    Real RSS units do not map the hash straight to a queue; they index a
    small remappable table, which is how a driver drains a dead or
    overloaded queue without touching the hash function. This class
    reproduces that shape for the sharded engine's graceful degradation:

    * healthy, the table holds ``slot % n_shards`` over
      ``n_shards * slots_per_shard`` slots, so ``shard_for`` equals
      ``shard_of(data, n_shards, seed)`` bit for bit (``x % (n·k) % n ==
      x % n``) — the supervision layer costs nothing while nothing is
      wrong, and flow→shard assignment stays deterministic per
      (seed, packet);
    * :meth:`remap` hands a dead shard's slots round-robin to the
      survivors, spreading its flows instead of dogpiling one neighbor.
      Flows of surviving shards never move (their slots are untouched).
    """

    def __init__(self, n_shards: int, seed: int = 0, slots_per_shard: int = 16):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if slots_per_shard < 1:
            raise ValueError("need at least one slot per shard")
        self.n_shards = n_shards
        self.seed = seed & 0xFFFFFFFF
        self.table: list[int] = [
            slot % n_shards for slot in range(n_shards * slots_per_shard)
        ]

    def shard_for(self, data: "bytes | bytearray") -> int:
        """The shard this frame's flow currently lands on."""
        return self.table[_crc32(flow_key(data), self.seed) % len(self.table)]

    def remap(self, dead: int, survivors: "list[int] | tuple[int, ...]") -> int:
        """Reassign every slot owned by ``dead`` over ``survivors``.

        Returns the number of slots moved. Survivors are dealt
        round-robin in the order given; repeated remaps compose (a slot
        inherited from one casualty moves again if its new owner dies).
        """
        if not survivors:
            raise ValueError("cannot remap without survivors")
        if dead in survivors:
            raise ValueError("a dead shard cannot be its own survivor")
        moved = 0
        for slot, owner in enumerate(self.table):
            if owner == dead:
                self.table[slot] = survivors[moved % len(survivors)]
                moved += 1
        return moved

    def owners(self) -> "set[int]":
        """The set of shards currently owning at least one slot."""
        return set(self.table)
