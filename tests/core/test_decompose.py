"""Tests for flow table decomposition (Fig. 5/6)."""

import random

from hypothesis import given, settings

import strategies as sts

from repro.core.decompose import decomposable, decompose_table
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline


def e(prio, action_port, **match):
    return FlowEntry(Match(**match), priority=prio, actions=[Output(action_port)])


def fig5_style_table():
    """Two columns, diversity 2 on tcp_dst vs 4 on ipv4_dst (3 keys + *)."""
    t = FlowTable(0)
    t.add(e(6, 1, ipv4_dst=0x0A000001, tcp_dst=80))
    t.add(e(5, 2, ipv4_dst=0x0A000002, tcp_dst=80))
    t.add(e(4, 3, ipv4_dst=0x0A000003, tcp_dst=80))
    t.add(e(3, 4, ipv4_dst=0x0A000001))
    t.add(e(2, 5, ipv4_dst=0x0A000002))
    t.add(e(1, 6, tcp_dst=80))
    t.add(e(0, 7))
    return t


def semantics(pipeline_or_table, packets):
    if isinstance(pipeline_or_table, FlowTable):
        pipeline = Pipeline([pipeline_or_table])
    else:
        pipeline = pipeline_or_table
    return [pipeline.process(p.copy()).summary() for p in packets]


class TestDecomposability:
    def test_single_column_not_decomposable(self):
        t = FlowTable(0)
        t.add(e(1, 1, tcp_dst=80))
        assert not decomposable(t)

    def test_mixed_masks_in_column_not_decomposable(self):
        t = FlowTable(0)
        t.add(e(2, 1, ipv4_dst="10.0.0.0/8", tcp_dst=80))
        t.add(e(1, 2, ipv4_dst="10.1.0.0/16", tcp_dst=80))
        assert not decomposable(t)
        assert decompose_table(t, 100) is None

    def test_uniform_masked_column_ok(self):
        t = FlowTable(0)
        t.add(e(2, 1, ipv4_src=(0, 0x80000000), tcp_dst=80))
        t.add(e(1, 2, ipv4_src=(0x80000000, 0x80000000), tcp_dst=22))
        assert decomposable(t)


class TestStructure:
    def test_greedy_picks_min_diversity_column(self):
        tables = decompose_table(fig5_style_table(), 100)
        assert tables is not None
        root = next(t for t in tables if t.table_id == 0)
        # Root dispatches on tcp_dst (diversity 2: {80} + wildcard),
        # not on ipv4_dst (diversity 4).
        assert root.matched_fields() == ("tcp_dst",)

    def test_greedy_beats_forced_bad_column(self):
        greedy = decompose_table(fig5_style_table(), 100)
        forced = decompose_table(fig5_style_table(), 100, force_first_column="ipv4_dst")
        assert greedy is not None and forced is not None
        assert len(greedy) < len(forced)

    def test_all_leaves_single_column(self):
        tables = decompose_table(fig5_style_table(), 100)
        assert tables is not None
        for table in tables:
            assert len(table.matched_fields()) <= 1

    def test_root_keeps_original_id(self):
        tables = decompose_table(fig5_style_table(), 100)
        assert any(t.table_id == 0 for t in tables)

    def test_internal_ids_fresh(self):
        tables = decompose_table(fig5_style_table(), 500)
        for t in tables:
            assert t.table_id == 0 or t.table_id >= 500

    def test_dedup_reduces_or_equals(self):
        plain = decompose_table(fig5_style_table(), 100, dedup=False)
        shared = decompose_table(fig5_style_table(), 100, dedup=True)
        assert len(shared) <= len(plain)

    def test_miss_policy_propagates(self):
        from repro.openflow.flow_table import TableMissPolicy

        t = fig5_style_table()
        t.miss_policy = TableMissPolicy.CONTROLLER
        tables = decompose_table(t, 100)
        assert all(x.miss_policy is TableMissPolicy.CONTROLLER for x in tables)


class TestSemanticEquivalence:
    def probes(self, rng, n=40):
        return [sts.random_packet(rng) for _ in range(n)]

    def test_fig5_table_equivalent(self):
        rng = random.Random(3)
        original = fig5_style_table()
        tables = decompose_table(fig5_style_table(), 100)
        decomposed = Pipeline(tables)
        pkts = self.probes(rng)
        assert semantics(original, pkts) == semantics(decomposed, pkts)

    @settings(max_examples=50, deadline=None)
    @given(sts.flow_tables(max_entries=8), sts.packets())
    def test_random_tables_equivalent(self, table, pkt):
        tables = decompose_table(table, 100)
        if tables is None:
            return  # not decomposable: nothing to check
        original = Pipeline([table])
        # Rebuild the original because Pipeline construction is cheap and
        # decompose_table does not mutate — the same object works.
        decomposed = Pipeline(tables)
        assert (
            original.process(pkt.copy()).summary()
            == decomposed.process(pkt.copy()).summary()
        )

    def test_wildcard_rows_replicated_in_priority_order(self):
        # A wildcard row above a keyed row must still win in every branch.
        t = FlowTable(0)
        t.add(e(3, 1, tcp_dst=80))
        t.add(e(2, 9, ipv4_dst=0x0A000001))  # wildcard in tcp_dst column
        t.add(e(1, 2, tcp_dst=22, ipv4_dst=0x0A000001))
        t.add(e(0, 7))
        tables = decompose_table(t, 100)
        original, decomposed = Pipeline([fresh(t)]), Pipeline(tables)
        rng = random.Random(5)
        pkts = self.probes(rng, 60)
        # Craft the critical packet: matches both row 2 and row 3.
        from repro.packet import PacketBuilder

        pkts.append(
            PacketBuilder(in_port=1).eth()
            .ipv4(src="10.0.0.9", dst="10.0.0.1").tcp(dst_port=22).build()
        )
        assert semantics(original, pkts) == semantics(decomposed, pkts)


def fresh(table: FlowTable) -> FlowTable:
    clone = FlowTable(table.table_id, miss_policy=table.miss_policy)
    for entry in table:
        clone.add(
            FlowEntry(entry.match, priority=entry.priority,
                      instructions=entry.instructions)
        )
    return clone
