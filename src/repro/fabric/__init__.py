"""``repro.fabric`` — a leaf–spine fabric of switches, one control plane.

The composition layer of the ROADMAP's "production system" demo:

* :mod:`repro.fabric.topology` — :class:`Fabric`: N gateway leaves + M
  RIB spines, RSS-style ECMP across spines, one shared
  :class:`~repro.controller.gateway_controller.GatewayController` with a
  per-switch lossy :class:`~repro.controller.session.ControllerSession`;
* :mod:`repro.fabric.supervisor` — :class:`FabricSupervisor`: health
  scoring, outage attribution, resync convergence windows, and rolling
  epoch-barrier upgrades with abort-and-rollback;
* :mod:`repro.fabric.faults` — :class:`FabricFaultPlan`: deterministic
  scripted session-layer faults (blackout, latency storm, keepalive
  eclipse, controller stall).

The soak workload that drives all three lives in
:mod:`repro.traffic.fabric_soak`.
"""

from repro.fabric.faults import (
    FAULT_KINDS,
    ArmedFabricFaults,
    FabricFaultPlan,
    FabricFaultSpec,
    NO_FABRIC_FAULTS,
)
from repro.fabric.supervisor import (
    FabricSupervisor,
    LeafStatus,
    UPGRADE_MARKER_PORT,
    UpgradeReport,
    default_upgrade_mods,
)
from repro.fabric.topology import (
    BurstOutcome,
    DOWNLINK_PORT_BASE,
    Fabric,
    Leaf,
    Spine,
    UPLINK_PORT_BASE,
    spine_pipeline,
)

__all__ = [
    "ArmedFabricFaults",
    "BurstOutcome",
    "DOWNLINK_PORT_BASE",
    "FAULT_KINDS",
    "Fabric",
    "FabricFaultPlan",
    "FabricFaultSpec",
    "FabricSupervisor",
    "Leaf",
    "LeafStatus",
    "NO_FABRIC_FAULTS",
    "Spine",
    "UPGRADE_MARKER_PORT",
    "UPLINK_PORT_BASE",
    "UpgradeReport",
    "default_upgrade_mods",
    "spine_pipeline",
]
