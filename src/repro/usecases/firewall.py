"""The simple firewall of Fig. 1.

Arbitrates between an Internet-facing ``EXTERNAL`` port and an ``INTERNAL``
port hosting a web server at 192.0.2.1: internal traffic leaves
unconditionally, only HTTP (tcp_dst=80) to the server is admitted inbound,
everything else drops.
"""

from __future__ import annotations

from repro.net.addresses import ip_to_int
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline

EXTERNAL = 1
INTERNAL = 2
SERVER_IP = "192.0.2.1"


def build_single_stage() -> Pipeline:
    """Fig. 1a: one flow table, three entries, decreasing priority."""
    table = FlowTable(0, name="firewall")
    table.add(
        FlowEntry(Match(in_port=INTERNAL), priority=30, actions=[Output(EXTERNAL)])
    )
    table.add(
        FlowEntry(
            Match(in_port=EXTERNAL, ipv4_dst=SERVER_IP, tcp_dst=80),
            priority=20,
            actions=[Output(INTERNAL)],
        )
    )
    table.add(FlowEntry(Match(), priority=0, actions=[]))  # drop
    return Pipeline([table])


def build_multi_stage() -> Pipeline:
    """Fig. 1b: port separation first, web filtering second."""
    t0 = FlowTable(0, name="ports")
    t0.add(FlowEntry(Match(in_port=INTERNAL), priority=20, actions=[Output(EXTERNAL)]))
    t0.add(
        FlowEntry(
            Match(in_port=EXTERNAL), priority=10, instructions=(GotoTable(1),)
        )
    )
    t0.add(FlowEntry(Match(), priority=0, actions=[]))

    t1 = FlowTable(1, name="web-filter")
    t1.add(
        FlowEntry(
            Match(ipv4_dst=SERVER_IP, tcp_dst=80),
            priority=10,
            instructions=(ApplyActions([Output(INTERNAL)]),),
        )
    )
    t1.add(FlowEntry(Match(), priority=0, actions=[]))
    return Pipeline([t0, t1])


def server_ip_int() -> int:
    return ip_to_int(SERVER_IP)
