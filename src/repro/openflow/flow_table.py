"""Flow tables: priority-ordered entry stores with lookup and modification.

Lookup walks entries in decreasing priority, the direct-datapath semantics
of Section 2.1; the fast switches (:mod:`repro.core`, :mod:`repro.ovs`)
build their own specialized structures from the same entries. The table
records *which entries were probed* during a lookup — the megaflow
wildcard computation in :mod:`repro.ovs.megaflow` needs the non-matching
higher-priority entries too ("those that caused a match as well as those
higher priority ones that did not", Section 2.2).

Storage is a **tombstone-compacting slot list**: deletes blank the entry's
slot to ``None`` in O(1) instead of paying a list memmove per removal (the
churn wall at 10⁵+ entries), lookups and iteration skip tombstones, and an
amortized compaction squeezes the dead slots out once they reach a quarter
of the store — off the per-mod critical path, and invisible to every
consumer because the *live* order never changes and ``version`` does not
move. The parallel ``_keys`` list keeps each tombstone's old sort key so
priority bisection stays valid between compactions, which is also what
lets a fresh ADD reuse a tombstone adjacent to its insertion point (the
steady-state churn pattern) without any memmove at all.

Every derived structure — the rule indexes, the feature multiset, the
live-entries tuple, the slot map — obeys one staleness contract,
:meth:`FlowTable._guard`: it is trusted only while ``version``, the
identity of the ``_entries`` list, and the slot count all still agree
with the store; any out-of-band mutation (snapshot restores assign
``_entries`` wholesale, with or without a version bump) resynchronizes
*all* of them together, never one index at a time.
"""

from __future__ import annotations

import bisect
import enum
from typing import Callable, Iterator, Mapping

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.match import Match
from repro.packet.parser import ParsedPacket


def _sort_key(entry: "FlowEntry") -> int:
    """Priority-descending sort/bisect key for the entry store."""
    return -entry.priority


#: Action types entry_features dispatches on, resolved once on first use
#: (a per-call import was measurable at churn rates).
_FEAT_TYPES: "tuple | None" = None


def entry_features(entry: FlowEntry) -> tuple:
    """The value-free fingerprint of one entry: ``(priority, match shape,
    set-field names, action parse depth)``.

    Two entries with equal features are interchangeable for template
    selection (which masks on which fields, at what priority) and parser
    planning (which fields actions rewrite, how deep parsing must go) —
    only their matched *values* differ. :meth:`FlowTable.feature_counts`
    aggregates these so per-flow-mod replanning reads a handful of
    distinct shapes instead of rescanning a million entries.
    """
    cached = entry._features
    if cached is not None:
        return cached
    global _FEAT_TYPES
    if _FEAT_TYPES is None:
        from repro.openflow.actions import DecTtl, SetField
        from repro.openflow.groups import GroupAction

        _FEAT_TYPES = (SetField, DecTtl, GroupAction)
    SetField, DecTtl, GroupAction = _FEAT_TYPES

    sig = tuple((n, m) for n, (_v, m) in entry.match.items())
    names: set[str] = set()
    depth = 2
    for action in entry.apply_actions + entry.write_actions:
        if isinstance(action, SetField):
            names.add(action.field)
        elif isinstance(action, DecTtl):
            depth = max(depth, 3)
        elif isinstance(action, GroupAction):
            # SELECT bucket choice hashes the 5-tuple: full parse.
            depth = 4
    feats = (entry.priority, sig, tuple(sorted(names)), depth)
    entry._features = feats  # rule state is immutable: safe to memoize
    return feats


class TableMissPolicy(enum.Enum):
    """What happens to packets missing every entry (switch configuration)."""

    DROP = "drop"
    CONTROLLER = "controller"


class FlowTable:
    """A single pipeline stage: a priority-sorted store of flow entries."""

    #: Compaction triggers when at least this many tombstones accumulate …
    COMPACT_MIN_DEAD = 64
    #: … and they are at least this fraction of all slots. Amortized: a
    #: compaction copies the live entries once per O(n) deletes.
    COMPACT_DEAD_FRACTION = 0.25

    def __init__(
        self,
        table_id: int = 0,
        name: str = "",
        miss_policy: TableMissPolicy = TableMissPolicy.DROP,
        max_entries: "int | None" = None,
    ):
        if table_id < 0:
            raise ValueError(f"invalid table id {table_id}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.table_id = table_id
        self.name = name or f"table{table_id}"
        self.miss_policy = miss_policy
        #: advertised capacity (OpenFlow table-features ``max_entries``);
        #: None = unbounded. The table itself stays permissive — admission
        #: control (``ESwitch.admit_flow_mods``) is what surfaces an
        #: over-capacity flow-mod as ``OFPFMFC_TABLE_FULL``. Tombstones
        #: never count against capacity.
        self.max_entries = max_entries
        # The slot list: priority-descending, insertion-stable among live
        # entries; a deleted entry's slot holds None (a tombstone).
        self._entries: "list[FlowEntry | None]" = []
        #: bumped on every *logical* modification (cache invalidation for
        #: compiled tables, fused drivers, wire position maps, …).
        #: Compaction is not a logical modification and does not bump it.
        self.version = 0
        # Parallel sort keys (-priority), one per slot. A tombstone keeps
        # the dead entry's key so bisection over ``_keys`` stays valid —
        # that is what makes tombstone *reuse* by a fresh ADD sound.
        self._keys: list[int] = []
        self._dead = 0  # tombstone count; live = len(_entries) - _dead
        # Staleness anchors: the exact list object ``_keys``/``_dead``
        # describe, and the version they were last synced at. Either
        # drifting (wholesale ``_entries`` assignment, an out-of-band
        # version bump) makes _guard() resynchronize everything.
        self._store_src: "list | None" = self._entries
        self._store_version = 0
        #: compactions performed (telemetry for the churn bench).
        self.compactions = 0
        #: out-of-band resynchronizations performed (bumped by
        #: :meth:`_resync`). ``(version, resyncs)`` together move on
        #: *every* state change — including wholesale ``_entries`` swaps
        #: that skip the version bump — which is what lets the expiry
        #: manager's observe() skip unchanged tables safely.
        self.resyncs = 0
        #: bumped whenever the *set* of distinct feature fingerprints may
        #: have changed (a shape class appearing or emptying, or any
        #: mutation whose delta we could not track). Steady-state churn
        #: inside existing shape classes does not move it, which is what
        #: lets ESwitch skip ``required_layer`` re-planning per mod.
        self.shapes_version = 0
        # Lazy id(entry) -> slot map: O(1) strict delete and replace.
        # Dropped (rebuilt on demand) when a mid-list insert shifts slots.
        self._slots: "dict[int, int] | None" = None
        # Lazy rule indexes. ``add``/strict ``remove``/``has_rule``/
        # ``find`` would otherwise scan the whole store per call — an O(n)
        # wall that turns million-entry churn into a benchmark of this
        # list instead of the datapath updates. ``_rules`` maps
        # ``(priority, match) -> entry`` (unique: ``add`` replaces
        # same-rule entries); ``_by_match`` maps ``match -> entries`` in
        # priority-descending order (``find``'s duplicate-shadowing
        # answer is the head); ``_timed`` maps ``entry_id -> entry`` for
        # entries carrying a timeout (the expiry manager's rescan set).
        # All three are only trusted while ``_rules_version == version``
        # and are maintained incrementally by every mutation path —
        # including non-strict remove and remove_if.
        self._rules: "dict[tuple, FlowEntry] | None" = None
        self._by_match: "dict[Match, list[FlowEntry]] | None" = None
        self._timed: "dict[int, FlowEntry] | None" = None
        self._rules_version = -1
        # Lazy multiset of :func:`entry_features` fingerprints, same
        # staleness contract. Template re-selection and parser planning
        # read this instead of walking the entries.
        self._feats: "dict[tuple, int] | None" = None
        self._feats_version = -1
        # Cached live-entries tuple for the ``entries`` property.
        self._live: "tuple[FlowEntry, ...] | None" = None
        self._live_version = -1

    # -- staleness contract ---------------------------------------------------

    def _guard(self) -> None:
        """Resynchronize after any out-of-band mutation.

        The store arrays (``_keys``/``_dead``/``_slots``) and the derived
        indexes are trusted only while (a) ``version`` still equals the
        version they were synced at, (b) ``_entries`` is still the exact
        list object they describe, and (c) the slot counts agree. A
        snapshot restore that assigns ``_entries`` wholesale — with or
        without a version bump — trips (b) and resyncs *everything*
        together: ``_feats`` and ``_by_match`` must never outlive
        ``_rules`` (the pre-tombstone code invalidated only ``_rules`` on
        the stale-index retry, leaving a trusted-but-wrong ``_feats``).
        """
        if (
            self._store_src is not self._entries
            or self._store_version != self.version
            or len(self._keys) != len(self._entries)
        ):
            self._resync()

    def _resync(self) -> None:
        """Rebuild the store from ``_entries`` as the source of truth.

        Tombstones (if any survived a wholesale swap) are squeezed out;
        the list is assumed priority-descending, the same contract the
        sorted-list implementation had for restored snapshots. Does not
        bump ``version``: resync repairs *our* caches, it is not a new
        logical state (external version-keyed caches keep their own view,
        exactly as before this store existed).
        """
        live = [e for e in self._entries if e is not None]
        self._entries = live
        self._keys = [-e.priority for e in live]
        self._dead = 0
        self._slots = None
        self._store_src = self._entries
        self._store_version = self.version
        self._rules = self._by_match = self._timed = None
        self._rules_version = -1
        self._feats = None
        self._feats_version = -1
        self._live = None
        self._live_version = -1
        self.shapes_version += 1  # swapped wholesale: shape set unknown
        self.resyncs += 1

    def _mark_mutated(self) -> None:
        """Version bump + bookkeeping common to every logical mutation."""
        self.version += 1
        self._rules_version = self.version
        self._store_version = self.version
        self._live = None

    # -- indexes --------------------------------------------------------------

    def _indexes(self) -> "tuple[dict, dict]":
        if self._rules is None or self._rules_version != self.version:
            rules: dict = {}
            by_match: dict = {}
            timed: dict = {}
            for e in self._entries:  # priority-desc ⇒ per-match lists too
                if e is None:
                    continue
                rules[(e.priority, e.match)] = e
                by_match.setdefault(e.match, []).append(e)
                if e.idle_timeout or e.hard_timeout:
                    timed[e.entry_id] = e
            self._rules, self._by_match, self._timed = rules, by_match, timed
            self._rules_version = self.version
        return self._rules, self._by_match

    def _slot_index(self) -> "dict[int, int]":
        slots = self._slots
        if slots is None:
            slots = self._slots = {
                id(e): i for i, e in enumerate(self._entries) if e is not None
            }
        return slots

    def _slot_of(self, entry: FlowEntry) -> "int | None":
        """The entry's slot, identity-verified; None when it is not live
        in the store (the object was swapped out-of-band)."""
        slot = self._slot_index().get(id(entry))
        if slot is None or self._entries[slot] is not entry:
            return None
        return slot

    def feature_counts(self) -> "dict[tuple, int]":
        """Multiset of :func:`entry_features` fingerprints, lazily built
        and maintained incrementally by every mutation path.

        The distinct-key set is tiny (one key per match *shape*, not per
        entry), which is what makes per-update template re-selection and
        parser re-planning O(shapes) instead of O(entries).
        """
        # _guard(), inlined: this runs a few times per flow-mod.
        if (
            self._store_src is not self._entries
            or self._store_version != self.version
            or len(self._keys) != len(self._entries)
        ):
            self._resync()
        if self._feats is None or self._feats_version != self.version:
            feats: "dict[tuple, int]" = {}
            for e in self._entries:
                if e is None:
                    continue
                f = entry_features(e)
                feats[f] = feats.get(f, 0) + 1
            self._feats = feats
            self._feats_version = self.version
        return self._feats

    def _feats_update(
        self,
        removed: "FlowEntry | None",
        added: "FlowEntry | None",
        fresh: bool,
    ) -> None:
        """Apply one mutation's delta (call after the version bump)."""
        if not fresh or self._feats is None:
            # Multiset unknown: the shape set may have changed.
            self.shapes_version += 1
            return
        feats = self._feats
        changed = False
        if removed is not None:
            f = entry_features(removed)
            n = feats.get(f, 0) - 1
            if n <= 0:
                feats.pop(f, None)
                changed = True
            else:
                feats[f] = n
        if added is not None:
            f = entry_features(added)
            n = feats.get(f, 0)
            if n == 0:
                changed = True
            feats[f] = n + 1
        if changed:
            self.shapes_version += 1
        self._feats_version = self.version

    # -- modification ---------------------------------------------------------

    def _insert_fresh(self, entry: FlowEntry) -> None:
        """Place a new rule at its insort_right position, preferring an
        adjacent tombstone over a memmove.

        With ``pos = bisect_right(_keys, key)``: every live same-priority
        entry sits at a slot < pos (tombstones keep their keys, so the
        bisection is exact about *slots*, conservative about live order),
        and every slot >= pos holds a strictly lower priority. Writing
        into a dead slot at ``pos`` (its key was > ours: shrink it) or at
        ``pos - 1`` (its key was <= ours: grow it) therefore keeps
        ``_keys`` sorted *and* lands the new entry after all live
        same-priority entries — exactly insort_right's probe order. The
        steady-state churn pattern (delete then re-add in the same
        priority band) hits one of these two slots every time: O(1).
        """
        skey = -entry.priority
        ents = self._entries
        keys = self._keys
        pos = bisect.bisect_right(keys, skey)
        if pos < len(ents) and ents[pos] is None:
            ents[pos] = entry
            keys[pos] = skey
            self._dead -= 1
        elif pos and ents[pos - 1] is None:
            pos -= 1
            ents[pos] = entry
            keys[pos] = skey
            self._dead -= 1
        else:
            ents.insert(pos, entry)
            keys.insert(pos, skey)
            if pos != len(ents) - 1:
                self._slots = None  # the memmove shifted the tail's slots
        slots = self._slots
        if slots is not None:
            slots[id(entry)] = pos

    def add(self, entry: FlowEntry) -> FlowEntry:
        """Insert an entry; replaces an existing entry with the same rule."""
        key = (entry.priority, entry.match)
        self._guard()
        for _ in range(2):
            rules, by_match = self._indexes()
            existing = rules.get(key)
            if existing is None:
                self._insert_fresh(entry)
                bisect.insort_right(
                    by_match.setdefault(entry.match, []), entry, key=_sort_key
                )
            else:
                slot = self._slot_of(existing)
                if slot is None:
                    # Entry objects were swapped wholesale under a
                    # matching version: resync every derived structure
                    # together and retry — a fresh index can't be stale.
                    self._resync()
                    continue
                # Same rule key ⇒ same priority ⇒ _keys[slot] is right.
                self._entries[slot] = entry
                slots = self._slots
                if slots is not None:
                    slots.pop(id(existing), None)
                    slots[id(entry)] = slot
                lst = by_match[entry.match]
                lst[lst.index(existing)] = entry
            rules[key] = entry
            timed = self._timed
            if timed is not None:
                if existing is not None:
                    timed.pop(existing.entry_id, None)
                if entry.idle_timeout or entry.hard_timeout:
                    timed[entry.entry_id] = entry
            feats_fresh = self._feats_version == self.version
            self._mark_mutated()
            # Replacement may change the actions even though the rule key
            # is equal, so the old entry's fingerprint must come out.
            self._feats_update(existing, entry, feats_fresh)
            return entry
        raise AssertionError("rule index stale after rebuild")

    def add_bulk(self, entries: "list[FlowEntry]") -> int:
        """Insert many entries in one stable sort instead of n priority scans.

        Semantically identical to calling :meth:`add` per entry in order —
        same-rule duplicates replace in place (last wins) and ties within
        a priority keep their relative order (existing entries first, the
        sort is stable). :meth:`add` is O(n) per call, an O(n²) wall at
        the million-entry tables the scale bench loads; this is one
        O(n log n) pass keyed on the (hashable) rule identity.
        """
        if not entries:
            return 0
        self._guard()
        merged: "list[FlowEntry]" = [e for e in self._entries if e is not None]
        slot: dict = {
            (entry.priority, entry.match): i for i, entry in enumerate(merged)
        }
        for entry in entries:
            key = (entry.priority, entry.match)
            at = slot.get(key)
            if at is None:
                slot[key] = len(merged)
                merged.append(entry)
            else:
                merged[at] = entry
        merged.sort(key=_sort_key)  # stable: ties keep order
        self._entries = merged
        self._keys = [-e.priority for e in merged]
        self._dead = 0
        self._slots = None
        self._store_src = self._entries
        self._rules = self._by_match = self._timed = None
        self._rules_version = -1
        self._feats = None
        self._feats_version = -1
        self.shapes_version += 1
        self._mark_mutated()
        return len(entries)

    def _tombstone_all(self, victims: "list[FlowEntry]", rules, by_match) -> bool:
        """Tombstone the given live entries under one version bump,
        maintaining every index incrementally. False = a victim failed
        identity verification (store swapped out-of-band): nothing was
        mutated, the caller resyncs and retries.
        """
        slots_of: list[int] = []
        for entry in victims:
            slot = self._slot_of(entry)
            if slot is None:
                return False
            slots_of.append(slot)
        feats_fresh = self._feats_version == self.version
        feats = self._feats if feats_fresh else None
        ents = self._entries
        slots = self._slots
        timed = self._timed
        shapes_changed = feats is None  # unknown multiset: conservative
        for entry, slot in zip(victims, slots_of):
            ents[slot] = None  # the key stays: bisection remains valid
            if slots is not None:
                slots.pop(id(entry), None)
            del rules[(entry.priority, entry.match)]
            lst = by_match.get(entry.match)
            if lst is not None:
                lst.remove(entry)
                if not lst:
                    del by_match[entry.match]
            if timed is not None:
                timed.pop(entry.entry_id, None)
            if feats is not None:
                f = entry_features(entry)
                n = feats.get(f, 0) - 1
                if n <= 0:
                    feats.pop(f, None)
                    shapes_changed = True
                else:
                    feats[f] = n
        self._dead += len(victims)
        self._mark_mutated()
        if feats is not None:
            self._feats_version = self.version
        if shapes_changed:
            self.shapes_version += 1
        self._maybe_compact()
        return True

    def remove(self, match: Match, priority: "int | None" = None) -> int:
        """Remove entries with the given match (and priority, if given).

        Strict (priority given) targets exactly one rule: the index
        answers in O(1) and the delete is a tombstone write, no memmove.
        Non-strict removes every live entry with an equal match via the
        per-match index — also incremental, no wholesale rebuild. Either
        way, matching nothing live (including predicates that would only
        have hit tombstoned slots) is a no-op: ``version`` does not move,
        so no spurious re-fuse or template re-selection follows.
        """
        self._guard()
        if priority is not None:
            key = (priority, match)
            for _ in range(2):
                rules, by_match = self._indexes()
                entry = rules.get(key)
                if entry is None:
                    return 0
                if self._tombstone_all([entry], rules, by_match):
                    return 1
                self._resync()
            raise AssertionError("rule index stale after rebuild")
        for _ in range(2):
            rules, by_match = self._indexes()
            victims = by_match.get(match)
            if not victims:
                return 0
            victims = list(victims)
            if self._tombstone_all(victims, rules, by_match):
                return len(victims)
            self._resync()
        raise AssertionError("rule index stale after rebuild")

    def remove_if(self, predicate: Callable[[FlowEntry], bool]) -> int:
        """Remove every live entry satisfying ``predicate``.

        The predicate only ever sees live entries — tombstoned slots are
        skipped, so a predicate that would only have matched dead entries
        removes nothing and bumps nothing. Index maintenance is
        incremental (no wholesale invalidation).
        """
        self._guard()
        for _ in range(2):
            victims = [
                e for e in self._entries if e is not None and predicate(e)
            ]
            if not victims:
                return 0
            rules, by_match = self._indexes()
            if self._tombstone_all(victims, rules, by_match):
                return len(victims)
            self._resync()
        raise AssertionError("rule index stale after rebuild")

    def clear(self) -> None:
        self._guard()
        if len(self._entries) - self._dead:
            self.version += 1
            self.shapes_version += 1
        self._entries = []
        self._keys = []
        self._dead = 0
        self._slots = None
        self._store_src = self._entries
        self._store_version = self.version
        self._rules = self._by_match = self._timed = None
        self._rules_version = -1
        self._feats = None
        self._feats_version = -1
        self._live = None
        self._live_version = -1

    def restore_entries(self, entries: "Iterator[FlowEntry]") -> None:
        """Replace the table's contents wholesale (snapshot rollback).

        ``entries`` must already be priority-descending — a snapshot of
        :attr:`entries` is. Bumps ``version`` exactly once: every cached
        consumer (rule indexes, feature multiset, fused drivers, wire
        position maps) re-derives from the restored state. Raw
        ``table._entries = ...`` assignment still works — :meth:`_guard`
        resynchronizes on the next access — but this is the supported
        spelling.
        """
        live = [e for e in entries if e is not None]
        self._entries = live
        self._keys = [-e.priority for e in live]
        self._dead = 0
        self._slots = None
        self._store_src = self._entries
        self._rules = self._by_match = self._timed = None
        self._rules_version = -1
        self._feats = None
        self._feats_version = -1
        self.shapes_version += 1
        self._mark_mutated()

    # -- compaction -----------------------------------------------------------

    def _maybe_compact(self) -> None:
        dead = self._dead
        if dead >= self.COMPACT_MIN_DEAD and dead >= len(self._entries) * (
            self.COMPACT_DEAD_FRACTION
        ):
            self.compact()

    def compact(self) -> None:
        """Squeeze tombstones out, preserving live order.

        Invisible to every consumer: the live sequence is unchanged, so
        ``version`` does not move — fused drivers, wire position maps
        (positions index the *live* order) and the rule indexes all stay
        valid. Only the slot map is positional and is rebuilt lazily.
        Amortized O(live) per O(n) deletes via the trigger threshold.
        """
        if not self._dead:
            return
        live = [e for e in self._entries if e is not None]
        self._entries = live
        self._keys = [-e.priority for e in live]
        self._dead = 0
        self._slots = None
        self._store_src = self._entries
        self.compactions += 1

    @property
    def tombstones(self) -> int:
        """Current dead-slot count (telemetry)."""
        self._guard()
        return self._dead

    def prime(self) -> None:
        """Build every lazy structure now, off the critical path.

        The rule indexes, slot map and feature multiset are all built on
        first use and maintained incrementally after — which puts one
        O(entries) rebuild inside whatever window issues the first
        mutation. ``ESwitch.warm()`` calls this so a freshly-loaded
        million-entry table pays that scan before the churn starts, the
        same contract warm() already gives compilation and fusing.
        """
        self._guard()
        self._indexes()
        self._slot_index()
        self.feature_counts()

    # -- queries --------------------------------------------------------------

    def find(self, match: Match) -> "FlowEntry | None":
        """The highest-priority entry whose match *equals* ``match``.

        Per-match lists are priority-sorted, so the head is the one a
        lookup would prefer among same-match duplicates.
        """
        self._guard()
        _rules, by_match = self._indexes()
        lst = by_match.get(match)
        return lst[0] if lst else None

    def find_rule(self, match: Match, priority: int) -> "FlowEntry | None":
        """The live entry with exactly this rule, identity-verified.

        Unlike :meth:`find` this survives wholesale ``_entries`` swaps
        that skipped the version bump: a stale index answer fails the
        slot identity check and forces one resync. The expiry manager
        re-resolves tracked flows through this.
        """
        self._guard()
        for _ in range(2):
            rules, _by_match = self._indexes()
            entry = rules.get((priority, match))
            if entry is None:
                return None
            if self._slot_of(entry) is not None:
                return entry
            self._resync()
        return None

    def has_rule(self, match: Match, priority: int) -> bool:
        """True when an entry with exactly this rule (match + priority)
        exists — the ADD-replaces case capacity checks must not count."""
        self._guard()
        return (priority, match) in self._indexes()[0]

    def last_entry(self) -> "FlowEntry | None":
        """The lowest-priority live entry (the catch-all seat, when one
        exists) without materializing the live tuple — O(1) when the tail
        slot is live, O(trailing tombstones) otherwise."""
        self._guard()
        ents = self._entries
        for i in range(len(ents) - 1, -1, -1):
            e = ents[i]
            if e is not None:
                return e
        return None

    def timed_entries(self) -> "list[FlowEntry]":
        """Live entries carrying an idle or hard timeout — O(timed), not
        O(entries): the expiry manager's rescan set."""
        self._guard()
        self._indexes()
        assert self._timed is not None
        return list(self._timed.values())

    @property
    def full(self) -> bool:
        """True when the table is at (or past) its advertised capacity.

        Counts live entries only — tombstones are reclaimable space, not
        occupancy.
        """
        return self.max_entries is not None and len(self) >= self.max_entries

    # -- lookup -----------------------------------------------------------------

    def lookup(
        self,
        view: ParsedPacket,
        probed: "list[FlowEntry] | None" = None,
    ) -> "FlowEntry | None":
        """Highest-priority matching entry, or None (table miss).

        If ``probed`` is given, every entry examined — including the ones
        that failed to match — is appended to it. Tombstones are skipped:
        probe order over live entries is identical to the pre-tombstone
        sorted list's.
        """
        for entry in self._entries:
            if entry is None:
                continue
            if probed is not None:
                probed.append(entry)
            if entry.match.matches(view):
                return entry
        return None

    def lookup_key(
        self,
        key: Mapping[str, "int | None"],
        probed: "list[FlowEntry] | None" = None,
    ) -> "FlowEntry | None":
        """Like :meth:`lookup` but over an extracted flow key."""
        for entry in self._entries:
            if entry is None:
                continue
            if probed is not None:
                probed.append(entry)
            if entry.match.matches_key(key):
                return entry
        return None

    # -- inspection ---------------------------------------------------------------

    @property
    def entries(self) -> tuple[FlowEntry, ...]:
        """Live entries in decreasing order of priority (insertion-stable).

        Cached per version; compaction preserves the cache (the live
        order is exactly what compaction keeps).
        """
        self._guard()
        live = self._live
        if live is None or self._live_version != self.version:
            if self._dead:
                live = tuple(e for e in self._entries if e is not None)
            else:
                live = tuple(self._entries)
            self._live = live
            self._live_version = self.version
        return live

    def matched_fields(self) -> tuple[str, ...]:
        """Union of fields any entry matches on, sorted (O(shapes))."""
        names: set[str] = set()
        for (_prio, sig, _set_names, _depth) in self.feature_counts():
            names.update(n for n, _m in sig)
        return tuple(sorted(names))

    def __len__(self) -> int:
        # _guard(), inlined: len(table) runs several times per flow-mod.
        ents = self._entries
        if (
            self._store_src is not ents
            or self._store_version != self.version
            or len(self._keys) != len(ents)
        ):
            self._resync()
            ents = self._entries
        return len(ents) - self._dead

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self.entries)

    def __repr__(self) -> str:
        return f"FlowTable(id={self.table_id}, entries={len(self)})"

    # -- pickling -----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the compacted logical state only.

        The slot map is keyed by object ids (meaningless after a
        round-trip) and the indexes rebuild lazily; shipping live entries
        with no tombstones keeps worker spawn snapshots minimal.
        """
        state = self.__dict__.copy()
        live = [e for e in self._entries if e is not None]
        state["_entries"] = live
        state["_keys"] = [-e.priority for e in live]
        state["_dead"] = 0
        state["_slots"] = None
        state["_store_src"] = None  # re-anchored in __setstate__
        state["_store_version"] = state["version"]
        state["_rules"] = state["_by_match"] = state["_timed"] = None
        state["_rules_version"] = -1
        state["_feats"] = None
        state["_feats_version"] = -1
        state["_live"] = None
        state["_live_version"] = -1
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._store_src = self._entries
