#!/usr/bin/env python3
"""The load balancer of Fig. 7: table decomposition in action.

The whole policy fits one flow table, but that table matches four columns
and would compile to the slow linked-list template. ESWITCH's flow table
decomposition rewrites it into a pipeline of hash/direct tables
automatically — this example shows the rewrite, verifies both forms
forward identically, checks that backends share load by source-IP halves,
and compares simulated packet rates with and without decomposition and
against OVS.

Run:  python examples/load_balancer.py
"""

from collections import Counter

from repro.core import CompileConfig, ESwitch
from repro.ovs import OvsSwitch
from repro.traffic import measure
from repro.traffic.nfpa import auto_params
from repro.usecases import loadbalancer as lb

N_SERVICES = 20


def main() -> None:
    switch = ESwitch.from_pipeline(lb.build_single_table(N_SERVICES))
    naive = ESwitch.from_pipeline(
        lb.build_single_table(N_SERVICES), config=CompileConfig(decompose=False)
    )
    print("=== compilation ===")
    print(f"with decomposition:    {switch.table_kinds()}")
    print(f"  -> {switch.compiled_table_count} compiled tables:",
          {tid: ct.kind.value for tid, ct in sorted(switch.datapath.trampoline.items())})
    print(f"without decomposition: {naive.table_kinds()}")

    flows = lb.traffic(N_SERVICES, 500)
    reference = lb.build_single_table(N_SERVICES)

    backends: Counter = Counter()
    mismatches = 0
    for i in range(len(flows)):
        pkt = flows[i]
        v = switch.process(pkt.copy())
        if v.summary() != reference.process(pkt.copy()).summary():
            mismatches += 1
        if v.forwarded and v.output_ports == [lb.INTERNAL]:
            # The NAT rewrote ipv4_dst to the chosen backend.
            rewritten = pkt.copy()
            switch.process(rewritten)
            dst = int.from_bytes(rewritten.data[30:34], "big")
            backends[dst & 1] += 1  # backend half = low bit of backend IP
    print("\n=== functional check ===")
    print(f"decomposed pipeline agrees with the original on all flows: {mismatches == 0}")
    print(f"backend halves chosen by source-IP first bit: {dict(backends)}")

    print("\n=== simulated packet rate (paper Fig. 12 regime) ===")
    print(f"{'flows':>8} {'ES (decomp)':>12} {'ES (naive)':>12} {'OVS':>12}")
    for n_flows in (10, 1_000, 20_000):
        fl = lb.traffic(N_SERVICES, n_flows)
        n, w = auto_params(n_flows)
        n, w = min(n, 20_000), min(w, 20_000)
        r_es = measure(ESwitch.from_pipeline(lb.build_single_table(N_SERVICES)), fl,
                       n_packets=n, warmup=w).mpps
        r_naive = measure(
            ESwitch.from_pipeline(lb.build_single_table(N_SERVICES),
                                  config=CompileConfig(decompose=False)),
            fl, n_packets=n, warmup=w).mpps
        r_ovs = measure(OvsSwitch(lb.build_single_table(N_SERVICES)), fl,
                        n_packets=n, warmup=w).mpps
        print(f"{n_flows:>8} {r_es:>10.2f}M {r_naive:>10.2f}M {r_ovs:>10.2f}M")


if __name__ == "__main__":
    main()
