"""A reactive MAC-learning switch controller.

The canonical OpenFlow application: unknown traffic is punted, the
controller learns ``(source MAC, ingress port)`` bindings, and installs
exact-match forwarding rules with an idle timeout so stale stations age
out. On ESWITCH the resulting table compiles to the hash template and
every learned station is an *incremental*, non-destructive insert — the
update path Section 3.4 is built for — while OVS pays a full cache flush
per learned address.

Pipeline shape — the canonical two-stage learning pipeline, so *every*
packet's source is checked even when its destination is already known::

    table 0 (source learning):
        prio 10:  eth_src=<MAC>, in_port=<port>  -> goto 1   (known station)
        prio  1:  *                              -> controller, goto 1

    table 1 (destination forwarding):
        prio 10:  eth_dst=<MAC>  -> output <port>
        prio  1:  *              -> flood
"""

from __future__ import annotations

from repro.openflow.actions import Controller, Flood, Output
from repro.openflow.fields import field_by_name
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketIn
from repro.openflow.pipeline import Pipeline
from repro.packet.parser import parse

SRC_TABLE = 0
DST_TABLE = 1


def build_pipeline() -> Pipeline:
    """The initial (empty-brained) learning-switch pipeline."""
    src = FlowTable(SRC_TABLE, name="l2-src-learn")
    src.add(
        FlowEntry(
            Match(),
            priority=1,
            instructions=(ApplyActions([Controller()]), GotoTable(DST_TABLE)),
        )
    )
    dst = FlowTable(DST_TABLE, name="l2-dst-forward")
    dst.add(
        FlowEntry(Match(), priority=1, instructions=(ApplyActions([Flood()]),))
    )
    return Pipeline([src, dst])


class LearningSwitch:
    """Handles packet-ins: learns sources, installs destination rules.

    Hardened against a hostile or broken punt path: a packet-in carrying
    a truncated or garbage frame is dropped and counted (``malformed``),
    never raised — a controller that crashes on bad input is a
    denial-of-service primitive. Installs go through the switch's typed
    reply when it offers one; a rejected or channel-lost install rolls
    the MAC binding back (``install_failures``), so the station's next
    packet re-punts and the controller converges after the fault.
    """

    def __init__(self, switch, idle_timeout: float = 300.0):
        self.switch = switch
        self.idle_timeout = idle_timeout
        self.mac_table: dict[int, int] = {}  # MAC -> port
        self.learned = 0
        self.moved = 0
        self.packet_ins = 0
        self.malformed = 0
        self.install_failures = 0

    def __call__(self, packet_in: PacketIn) -> None:
        self.handle(packet_in)

    def handle(self, packet_in: PacketIn) -> None:
        self.packet_ins += 1
        try:
            view = parse(packet_in.pkt)
            src = field_by_name("eth_src").extract(view)
            port = packet_in.pkt.in_port
        except Exception:
            self.malformed += 1
            return
        if src is None or not isinstance(port, int):
            self.malformed += 1
            return
        known = self.mac_table.get(src)
        if known == port:
            return  # already learned; packet raced the flow-mod
        mods = []
        if known is not None:
            # Station moved: retire the old binding's rules first.
            mods.append(
                FlowMod(FlowModCommand.DELETE, SRC_TABLE,
                        Match(eth_src=src, in_port=known), priority=10,
                        strict=True)
            )
            mods.append(
                FlowMod(FlowModCommand.DELETE, DST_TABLE,
                        Match(eth_dst=src), priority=10, strict=True)
            )
        # Known-station pass-through: suppresses further punts for src.
        mods.append(
            FlowMod(
                FlowModCommand.ADD,
                SRC_TABLE,
                Match(eth_src=src, in_port=port),
                priority=10,
                instructions=(GotoTable(DST_TABLE),),
                idle_timeout=self.idle_timeout,
            )
        )
        # Unicast forwarding toward the learned station.
        mods.append(
            FlowMod(
                FlowModCommand.ADD,
                DST_TABLE,
                Match(eth_dst=src),
                priority=10,
                instructions=(ApplyActions([Output(port)]),),
                idle_timeout=self.idle_timeout,
            )
        )
        if not self._install(mods):
            # The install never took (rejected or lost): leave the binding
            # alone so the station's next packet re-punts and we retry.
            self.install_failures += 1
            return
        if known is not None:
            self.moved += 1
        else:
            self.learned += 1
        self.mac_table[src] = port

    def _install(self, mods: list) -> bool:
        """Push a batch; True only when the switch really accepted it."""
        submit = getattr(self.switch, "submit_flow_mods", None)
        if submit is not None:
            return bool(submit(mods))
        for mod in mods:
            self.switch.apply_flow_mod(mod)
        return True

    def forget(self, mac: int) -> None:
        """Drop a binding (e.g. after an idle expiry notification)."""
        self.mac_table.pop(mac, None)
