"""Tests for simulated ports and the l2fwd reference loop."""

import pytest

from repro.dpdk.l2fwd import L2FWD_CYCLES_PER_PKT, l2fwd, l2fwd_rate_pps
from repro.dpdk.ports import Port, PortSet
from repro.packet import PacketBuilder
from repro.simcpu.platform import ATOM_C2750, XEON_E5_2620
from repro.simcpu.recorder import CycleMeter


class TestPorts:
    def test_counters(self):
        port = Port(1)
        pkt = PacketBuilder().eth().build()
        port.record_rx(pkt)
        port.record_tx(pkt)
        port.record_tx(pkt)
        assert (port.rx_packets, port.tx_packets) == (1, 2)
        assert port.tx_bytes == 128

    def test_capture(self):
        port = Port(1, capture=True)
        pkt = PacketBuilder().eth().build()
        port.record_tx(pkt)
        assert port.captured == [pkt]

    def test_portset_on_demand(self):
        ports = PortSet()
        ports.port(3).record_tx(PacketBuilder().eth().build())
        ports.port(1).record_rx(PacketBuilder().eth().build())
        assert len(ports) == 2
        assert [p.port_no for p in ports] == [1, 3]
        assert ports.total_tx() == 1 and ports.total_rx() == 1


class TestL2fwd:
    def test_port_pairing(self):
        assert l2fwd(PacketBuilder(in_port=0).eth().build()) == 1
        assert l2fwd(PacketBuilder(in_port=1).eth().build()) == 0
        assert l2fwd(PacketBuilder(in_port=6).eth().build()) == 7

    def test_cycles_constant(self):
        meter = CycleMeter(XEON_E5_2620)
        meter.begin_packet()
        l2fwd(PacketBuilder(in_port=0).eth().build(), meter)
        assert meter.end_packet() == pytest.approx(L2FWD_CYCLES_PER_PKT)

    def test_rate_scales_with_frequency_and_cpi(self):
        xeon = l2fwd_rate_pps(XEON_E5_2620)
        atom = l2fwd_rate_pps(ATOM_C2750)
        expected = (ATOM_C2750.freq_hz / XEON_E5_2620.freq_hz) * (
            XEON_E5_2620.cycle_factor / ATOM_C2750.cycle_factor
        )
        assert atom / xeon == pytest.approx(expected)
