"""Scale behavior of the collision-free hash: amortized growth, no
rebuild storms under churn, and the typed give-up path.

The megascale rungs only work if incremental insertion stays amortized
O(1): geometric slot growth means a build-from-empty of n keys pays at
most O(log n) full rebuilds and moves O(n) keys in total, and steady-state
churn (insert+remove around a fixed size) must not rebuild at all. These
tests pin those bounds with the telemetry counters, at sizes small enough
for CI but large enough that a per-insert rebuild would blow the bound by
orders of magnitude.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpdk.hash import CollisionFreeHash, HashBuildError


class TestAmortizedGrowth:
    N = 50_000

    def test_sequential_fill_rebuilds_log_n_times(self):
        h = CollisionFreeHash()
        for i in range(self.N):
            h.insert(i, i * 3)
        t = h.telemetry
        # Geometric sizing: one full rebuild per slot-array doubling,
        # plus the handful of collision-driven ones.
        bound = int(math.log2(self.N * h.OVERSIZE_FACTOR)) + 8
        assert t["rebuild_count"] <= bound
        # Total keys moved across all rebuilds telescopes to O(n).
        assert t["rebuild_keys"] <= 4 * self.N
        assert len(h) == self.N
        for probe in (0, 1, self.N // 2, self.N - 1):
            assert h.get(probe) == probe * 3

    def test_load_factor_invariant_holds_throughout(self):
        h = CollisionFreeHash()
        for i in range(10_000):
            h.insert(i, i)
            assert len(h) * h.OVERSIZE_FACTOR <= h.slot_count

    def test_tuple_keys_scale(self):
        h = CollisionFreeHash()
        n = 20_000
        for i in range(n):
            h.insert((i & 0xFFFF, i >> 16), i)
        assert len(h) == n
        assert h.telemetry["rebuild_count"] <= int(
            math.log2(n * h.OVERSIZE_FACTOR)
        ) + 8
        assert h.get((123, 0)) == 123


class TestChurnStability:
    def test_steady_state_churn_never_rebuilds_for_size(self):
        """Alternating insert/remove around a fixed size: the load factor
        never crosses the growth threshold, so any rebuilds are
        collision-driven (rare) — not a storm."""
        h = CollisionFreeHash({i: i for i in range(10_000)})
        base = h.telemetry["rebuild_count"]
        next_key = 1 << 32
        for i in range(2_000):
            h.insert(next_key + i, i)
            assert h.remove(next_key + i)
        assert h.telemetry["rebuild_count"] - base <= 3
        assert len(h) == 10_000

    def test_remove_never_rebuilds(self):
        h = CollisionFreeHash({i: i for i in range(4_096)})
        base = h.telemetry["rebuild_count"]
        for i in range(4_096):
            assert h.remove(i)
        assert h.telemetry["rebuild_count"] == base
        assert len(h) == 0

    def test_refill_after_drain_reuses_capacity(self):
        h = CollisionFreeHash({i: i for i in range(8_192)})
        for i in range(8_192):
            h.remove(i)
        slots = h.slot_count
        base = h.telemetry["rebuild_count"]
        for i in range(8_192):
            h.insert(-i - 1, i)
        # Refilling to the old size fits the existing slot array: growth
        # rebuilds can't fire (collision reseeds may, rebuilds should not
        # exceed a trivial few).
        assert h.slot_count == slots
        assert h.telemetry["rebuild_count"] - base <= 3


class TestBuildFailure:
    def test_exhausted_seeds_raise_typed_error(self):
        class Hostile(CollisionFreeHash):
            MAX_SEED_TRIES = 0

        with pytest.raises(HashBuildError):
            Hostile({i: i for i in range(64)})

    def test_insert_path_surfaces_build_error(self):
        class Hostile(CollisionFreeHash):
            MAX_SEED_TRIES = 0

        h = CollisionFreeHash()  # healthy build
        h.__class__ = Hostile
        with pytest.raises(HashBuildError):
            for i in range(10_000):  # growth rebuild must eventually fire
                h.insert(i, i)

    def test_error_is_runtime_error(self):
        assert issubclass(HashBuildError, RuntimeError)


class TestPropertyScale:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 48),
                 min_size=1, max_size=400),
        st.data(),
    )
    def test_single_probe_and_model_parity_under_churn(self, keys, data):
        """After any interleaving of inserts and removes, every resident
        key resolves in exactly one probe to its latest value."""
        h = CollisionFreeHash()
        model: dict = {}
        for key in keys:
            if key in model and data.draw(st.booleans()):
                h.remove(key)
                del model[key]
            else:
                value = data.draw(st.integers(min_value=0, max_value=1 << 16))
                h.insert(key, value)
                model[key] = value
        assert len(h) == len(model)
        for key, want in model.items():
            assert h.get(key) == want  # one probe, latest value
        # Collision-freedom, asserted on the structure itself: every
        # resident key occupies its own slot, no stale slots remain.
        resident = [s for s in h._slots if s is not None]
        assert len(resident) == len(model)
        assert dict(resident) == model
