"""Low-level networking utilities: addresses, checksums, bit manipulation."""

from repro.net.addresses import (
    EthAddr,
    IPv4Addr,
    mac_to_int,
    int_to_mac,
    ip_to_int,
    int_to_ip,
    prefix_to_mask,
    mask_to_prefix,
)
from repro.net.bits import (
    bit_count,
    contiguous_prefix_mask,
    field_bytes,
    first_set_bit,
    lowest_differing_bit,
    highest_differing_bit,
)
from repro.net.checksum import internet_checksum

__all__ = [
    "EthAddr",
    "IPv4Addr",
    "mac_to_int",
    "int_to_mac",
    "ip_to_int",
    "int_to_ip",
    "prefix_to_mask",
    "mask_to_prefix",
    "bit_count",
    "contiguous_prefix_mask",
    "field_bytes",
    "first_set_bit",
    "lowest_differing_bit",
    "highest_differing_bit",
    "internet_checksum",
]
