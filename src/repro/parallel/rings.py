"""SPSC shared-memory rings: the shard boundary without syscalls.

The pickled wire crossed the shard boundary through a
``multiprocessing.Pipe`` — two kernel round-trips (write + read) per
message, each copying the whole buffer through the kernel, plus a
wakeup.  DPDK's answer is the ``rte_ring``: a preallocated
single-producer / single-consumer ring in shared memory, where
enqueue/dequeue are a memcpy and two cursor stores, and the consumer
acknowledges a whole *burst* with one cursor write.  This module is
that idiom over :mod:`multiprocessing.shared_memory`.

Layout of one ring segment (capacity ``C``)::

    [0..8)      head   u64, monotonic — bytes ever published (producer)
    [64..72)    tail   u64, monotonic — bytes ever released  (consumer)
    [128..128+C)  data, position = cursor % C

Head and tail live 64 bytes apart so the two writers never share a
cache line (the false-sharing rule every ring paper repeats).  Cursors
are *monotonic byte counts*: ``head - tail`` is the exact number of
unread bytes, with no full/empty ambiguity and no modulo until a
buffer index is needed.

Records are ``u32 length prefix + frame``, always contiguous.  A record
that would straddle the wrap point is preceded by a **wrap marker**
(length prefix ``0xFFFFFFFF``), telling the consumer to skip to the
next capacity boundary; a tail gap too small for even the marker is
skipped implicitly (the consumer does the same arithmetic).

Ack coalescing: :meth:`Ring.pop` advances only the consumer's *local*
cursor; :meth:`Ring.commit_reads` publishes it — one shared-memory
store per drained burst, not per message.  The producer likewise reads
the shared tail only when its cached copy suggests the ring is full.

CPython guarantees the 8-byte aligned cursor loads/stores are atomic at
the buffer-protocol level under the GIL on each side; the cross-process
ordering hazard (seeing a head advance before the record bytes) is
avoided because ``pack_into``/slice stores complete before the cursor
store that publishes them, and both are serialized by the interpreter.

Teardown hygiene: the engine *creates* segments and owns their
lifetime — :meth:`RingPair.destroy` closes **and unlinks** them, and is
called on engine close and on every worker crash/respawn (a fresh pair
per worker generation, so a wedged worker can never scribble on its
successor's ring).  Workers :func:`attach` by name and only ever close
their mapping; the attach helper also untracks the segment from the
worker's ``resource_tracker`` so a dying worker cannot reap a segment
the engine still owns (Python < 3.13 has no ``track=False``).
"""

from __future__ import annotations

import secrets
import struct
import time

try:  # pragma: no cover - exercised only where shm is unavailable
    from multiprocessing import shared_memory as _shm
except ImportError:  # e.g. stripped-down platforms
    _shm = None

__all__ = [
    "RingError",
    "RingFull",
    "RingClosed",
    "Ring",
    "RingPair",
    "attach_pair",
    "shared_memory_available",
    "DEFAULT_CAPACITY",
]

_HEAD_OFF = 0
_TAIL_OFF = 64
_DATA_OFF = 128
_U64 = struct.Struct("<Q")
_LEN = struct.Struct("<I")
_WRAP = 0xFFFFFFFF
#: Largest frame a ring of capacity C accepts: one record must leave a
#: byte of slack so head == tail never means both full and empty.
DEFAULT_CAPACITY = 1 << 20


class RingError(RuntimeError):
    """Base for transport-layer (not codec-layer) failures."""


class RingFull(RingError):
    """The frame does not fit in the ring's free space right now."""


class RingClosed(RingError):
    """The segment backing this ring is gone."""


def shared_memory_available() -> bool:
    """Can this platform create + attach a shared-memory segment?"""
    if _shm is None:
        return False
    try:
        seg = _shm.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    try:
        seg.close()
        seg.unlink()
    except OSError:  # pragma: no cover - best-effort probe cleanup
        pass
    return True


def _untrack(seg) -> None:
    """Detach ``seg`` from this process's resource tracker.

    An attaching process does not own the segment; without this, the
    first worker to exit would unlink rings the engine and its sibling
    workers still use (resource_tracker reaps on process death).
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracking is best-effort hygiene
        pass


class Ring:
    """One direction of the transport: a SPSC byte ring.

    Exactly one process calls :meth:`push`, exactly one calls
    :meth:`pop`/:meth:`commit_reads`.  The role is a usage contract,
    not enforced state — both ends construct a :class:`Ring` over the
    same segment.
    """

    __slots__ = ("_seg", "_buf", "_capacity", "_head", "_tail",
                 "_cached_tail", "_cached_head")

    def __init__(self, seg):
        self._seg = seg
        self._buf = seg.buf
        self._capacity = len(seg.buf) - _DATA_OFF
        head = _U64.unpack_from(self._buf, _HEAD_OFF)[0]
        tail = _U64.unpack_from(self._buf, _TAIL_OFF)[0]
        self._head = head          # producer's local head
        self._tail = tail          # consumer's local tail
        self._cached_tail = tail   # producer's last view of the tail
        self._cached_head = head   # consumer's last view of the head

    @property
    def name(self) -> str:
        return self._seg.name

    @property
    def capacity(self) -> int:
        return self._capacity

    def fits(self, nbytes: int) -> bool:
        """Could a frame of ``nbytes`` *ever* fit (ignoring occupancy)?"""
        # The margin must cover the double-buffered engine's worst case:
        # two in-flight records, each possibly burning a wrap marker plus
        # the dead space at the buffer tail — so a quarter each keeps
        # "fits" a static property that can never deadlock a push.
        return _LEN.size + nbytes <= self._capacity // 4

    # -- producer side ----------------------------------------------------

    def push(self, frame) -> None:
        """Copy one frame into the ring; raises :class:`RingFull`."""
        buf = self._buf
        if buf is None:
            raise RingClosed("ring segment is closed")
        cap = self._capacity
        need = _LEN.size + len(frame)
        head = self._head
        pos = head % cap
        room_to_wrap = cap - pos
        if room_to_wrap < need:
            # Record will not sit contiguously: burn the gap.
            need_total = room_to_wrap + need
        else:
            need_total = need
        if cap - (head - self._cached_tail) < need_total:
            self._cached_tail = _U64.unpack_from(buf, _TAIL_OFF)[0]
            if cap - (head - self._cached_tail) < need_total:
                raise RingFull(
                    f"{need_total}B frame vs {cap - (head - self._cached_tail)}B free"
                )
        if room_to_wrap < need:
            if room_to_wrap >= _LEN.size:
                _LEN.pack_into(buf, _DATA_OFF + pos, _WRAP)
            head += room_to_wrap
            pos = 0
        start = _DATA_OFF + pos + _LEN.size
        buf[start:start + len(frame)] = frame
        _LEN.pack_into(buf, _DATA_OFF + pos, len(frame))
        self._head = head + need
        _U64.pack_into(buf, _HEAD_OFF, self._head)

    # -- consumer side ----------------------------------------------------

    def readable(self) -> bool:
        """Any unread record? (refreshes the consumer's head view)."""
        if self._buf is None:
            raise RingClosed("ring segment is closed")
        if self._cached_head == self._tail:
            self._cached_head = _U64.unpack_from(self._buf, _HEAD_OFF)[0]
        return self._cached_head != self._tail

    def pop(self):
        """Dequeue one frame as ``bytes``, or ``None`` if empty.

        Advances only the local cursor — call :meth:`commit_reads` after
        draining a burst to publish the release (the batched ack).
        """
        if not self.readable():
            return None
        buf = self._buf
        cap = self._capacity
        tail = self._tail
        pos = tail % cap
        if cap - pos < _LEN.size:
            tail += cap - pos  # implicit wrap: gap too small for a marker
            pos = 0
        else:
            length = _LEN.unpack_from(buf, _DATA_OFF + pos)[0]
            if length == _WRAP:
                tail += cap - pos
                pos = 0
            else:
                start = _DATA_OFF + pos + _LEN.size
                frame = bytes(buf[start:start + length])
                self._tail = tail + _LEN.size + length
                return frame
        length = _LEN.unpack_from(buf, _DATA_OFF + pos)[0]
        if length == _WRAP:
            raise RingError("wrap marker at buffer start")
        start = _DATA_OFF + pos + _LEN.size
        frame = bytes(buf[start:start + length])
        self._tail = tail + _LEN.size + length
        return frame

    def commit_reads(self) -> None:
        """Publish the local tail: one ack for everything popped."""
        if self._buf is None:
            raise RingClosed("ring segment is closed")
        _U64.pack_into(self._buf, _TAIL_OFF, self._tail)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._seg is not None:
            self._buf = None
            try:
                self._seg.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
            self._seg = None

    def unlink(self) -> None:
        """Remove the segment from the system (owner only)."""
        if self._seg is not None:
            try:
                self._seg.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass


class RingPair:
    """The engine-side handle: request ring out, reply ring back."""

    __slots__ = ("req", "rep")

    def __init__(self, req: Ring, rep: Ring):
        self.req = req
        self.rep = rep

    @classmethod
    def create(cls, capacity: int = DEFAULT_CAPACITY) -> "RingPair":
        """Allocate a fresh pair of segments (engine side, owner)."""
        if _shm is None:
            raise RingError("multiprocessing.shared_memory unavailable")
        tag = secrets.token_hex(4)
        segs = []
        try:
            for direction in ("rq", "rp"):
                segs.append(_shm.SharedMemory(
                    create=True, size=_DATA_OFF + capacity,
                    name=f"repro_{direction}_{tag}",
                ))
        except (OSError, ValueError) as exc:
            for seg in segs:
                try:
                    seg.close()
                    seg.unlink()
                except OSError:  # pragma: no cover
                    pass
            raise RingError(f"cannot allocate ring segments: {exc}") from None
        for seg in segs:
            seg.buf[:_DATA_OFF] = bytes(_DATA_OFF)
        return cls(Ring(segs[0]), Ring(segs[1]))

    @property
    def names(self) -> "tuple[str, str]":
        """Segment names to hand a worker (its attach credentials)."""
        return (self.req.name, self.rep.name)

    def destroy(self) -> None:
        """Close **and unlink** both segments (engine close / respawn)."""
        for ring in (self.req, self.rep):
            ring.unlink()
            ring.close()

    def close(self) -> None:
        """Close the mappings without unlinking (attached side)."""
        self.req.close()
        self.rep.close()


def attach_pair(names: "tuple[str, str]", *, untrack: bool = True) -> RingPair:
    """Worker side: map an existing pair by name, untracked.

    The worker pops requests from ``names[0]`` and pushes replies into
    ``names[1]`` — the same objects the engine calls ``req``/``rep``.
    ``untrack=False`` is for same-process attaches (thread backend,
    tests), where the mapping shares the creator's resource tracking.
    """
    if _shm is None:
        raise RingError("multiprocessing.shared_memory unavailable")
    segs = []
    try:
        for name in names:
            seg = _shm.SharedMemory(name=name)
            if untrack:
                _untrack(seg)
            segs.append(seg)
    except (OSError, ValueError) as exc:
        for seg in segs:
            try:
                seg.close()
            except OSError:  # pragma: no cover
                pass
        raise RingError(f"cannot attach ring segments: {exc}") from None
    return RingPair(Ring(segs[0]), Ring(segs[1]))


def wait_readable(ring: Ring, deadline: float, *, also=None) -> bool:
    """Poll until ``ring`` has a record, ``also()`` is true, or timeout.

    Escalating backoff: spin a few times (the common case — the peer is
    mid-burst), then sleep in growing slices so an idle wait costs no
    meaningful CPU.  Returns True when ``ring`` is readable; False on
    deadline or when ``also()`` fired first.
    """
    delays = (0.0, 0.0, 0.0001, 0.0005, 0.002)
    i = 0
    while True:
        if ring.readable():
            return True
        if also is not None and also():
            return False
        if time.monotonic() >= deadline:
            return False
        delay = delays[i] if i < len(delays) else 0.002
        i += 1
        if delay:
            time.sleep(delay)
