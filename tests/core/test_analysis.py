"""Tests for template selection (Fig. 4 prerequisites and fallbacks)."""

from repro.core.analysis import (
    CompileConfig,
    TemplateKind,
    hash_applicable,
    lpm_applicable,
    select_template,
    split_catch_all,
)
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.match import Match


def e(prio, **match):
    return FlowEntry(Match(**match), priority=prio, actions=[Output(1)])


class TestSplitCatchAll:
    def test_trailing_catch_all_split(self):
        entries = [e(10, tcp_dst=80), e(0)]
        rules, catch = split_catch_all(entries)
        assert len(rules) == 1 and catch is not None

    def test_no_catch_all(self):
        rules, catch = split_catch_all([e(10, tcp_dst=80)])
        assert catch is None and len(rules) == 1

    def test_mid_table_catch_all_prevents_split(self):
        # A high-priority catch-all shadows the rest; splitting the final
        # one as a default rule would be unsound, so nothing splits.
        entries = [e(10), e(5, tcp_dst=80), e(0)]
        rules, catch = split_catch_all(entries)
        assert catch is None and len(rules) == 3


class TestDirectThreshold:
    def test_small_tables_go_direct(self):
        entries = [e(10, tcp_dst=80), e(9, udp_dst=53), e(0)]
        assert select_template(entries) is TemplateKind.DIRECT

    def test_threshold_is_four(self):
        entries = [e(10 - i, tcp_dst=80 + i) for i in range(4)]
        assert select_template(entries) is TemplateKind.DIRECT
        entries.append(e(1, tcp_dst=99))
        assert select_template(entries) is not TemplateKind.DIRECT

    def test_threshold_configurable(self):
        entries = [e(10 - i, tcp_dst=80 + i) for i in range(8)]
        assert select_template(entries, CompileConfig(direct_threshold=10)) is TemplateKind.DIRECT


class TestHashPrerequisite:
    def test_uniform_exact_matches(self):
        entries = [e(1, eth_dst=i) for i in range(10)]
        assert hash_applicable(entries)
        assert select_template(entries) is TemplateKind.HASH

    def test_global_mask_multi_field(self):
        entries = [
            e(1, ipv4_dst=(0xC0000200 + (i << 8), 0xFFFFFF00), tcp_dst=80 + i)
            for i in range(8)
        ]
        assert hash_applicable(entries)

    def test_paper_example_mask_violation(self):
        """Section 3.1: adding a wildcard-port entry breaks the global mask."""
        good = [
            e(3, ipv4_dst="192.0.2.0/24", tcp_dst=80),
            e(2, ipv4_dst="198.51.100.0/24", tcp_dst=21),
        ]
        assert hash_applicable(good)
        bad = good + [e(1, ipv4_dst="203.0.113.0/24")]
        assert not hash_applicable(bad)

    def test_catch_all_allowed(self):
        entries = [e(1, eth_dst=i) for i in range(10)] + [e(0)]
        assert hash_applicable(entries)

    def test_different_masks_rejected(self):
        entries = [
            e(2, ipv4_dst="10.0.0.0/8"),
            e(1, ipv4_dst="192.0.2.0/24"),
        ] * 3
        assert not hash_applicable(entries)

    def test_empty_not_applicable(self):
        assert not hash_applicable([])
        assert not hash_applicable([e(0)])


class TestLpmPrerequisite:
    def prefixes(self, *specs):
        return [e(depth, ipv4_dst=f"{addr}/{depth}") for addr, depth in specs]

    def test_prefix_rules_accepted(self):
        entries = self.prefixes(("10.0.0.0", 8), ("10.1.0.0", 16), ("192.0.2.0", 24))
        assert lpm_applicable(entries)
        entries = entries * 2  # > direct threshold
        assert select_template(self.prefixes(
            ("10.0.0.0", 8), ("10.1.0.0", 16), ("192.0.2.0", 24),
            ("10.2.0.0", 16), ("10.3.0.0", 16),
        )) is TemplateKind.LPM

    def test_paper_priority_inversion_rejected(self):
        """Section 3.1's example: a /30 below a /24 in priority."""
        entries = [
            FlowEntry(Match(ipv4_dst="192.0.2.0/24"), priority=100,
                      actions=[Output(1)]),
            FlowEntry(Match(ipv4_dst="192.0.2.12/30"), priority=20,
                      actions=[Output(2)]),
        ]
        assert not lpm_applicable(entries)

    def test_non_prefix_mask_rejected(self):
        # A suffix mask is not a contiguous prefix: LPM cannot represent it.
        entries = [e(2, ipv4_dst=(0, 0x0000FFFF)), e(1, ipv4_dst=(1, 0xFFFFFFFF))]
        assert not lpm_applicable(entries)

    def test_multi_field_rejected(self):
        entries = [e(1, ipv4_dst="10.0.0.0/8", tcp_dst=80)]
        assert not lpm_applicable(entries)

    def test_non_lpm_field_rejected(self):
        entries = [e(1, eth_dst=(0x10, 0xFFFF00000000))]
        assert not lpm_applicable(entries)

    def test_catch_all_as_default_route(self):
        entries = self.prefixes(("10.0.0.0", 8), ("10.1.0.0", 16)) + [e(0)]
        assert lpm_applicable(entries)


class TestFallbackChain:
    def test_linked_list_is_universal(self):
        # Mixed field sets, arbitrary masks: only the linked list applies.
        entries = [
            e(5, tcp_dst=80),
            e(4, ipv4_dst="10.0.0.0/8"),
            e(3, eth_dst=1),
            e(2, udp_dst=53),
            e(1, in_port=1),
        ]
        assert select_template(entries) is TemplateKind.LINKED_LIST

    def test_efficiency_order(self):
        # LPM-eligible rules that also satisfy hash prerequisites (all /32)
        # compile to the *hash* template (more efficient).
        entries = [e(32, ipv4_dst=f"10.0.0.{i}/32") for i in range(8)]
        assert select_template(entries) is TemplateKind.HASH
