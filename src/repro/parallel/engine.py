"""ShardedESwitch: N replicas, one facade — scatter, gather, epoch-sync.

The engine owns:

* **N shard workers** (processes when the platform allows, threads as a
  degraded-but-correct fallback), each running a private fused
  :class:`ESwitch` replica (:mod:`repro.parallel.worker`);
* a **shadow replica** in the engine's own process — the authoritative
  control-plane state. Flow-mods apply to the shadow *first* (its
  transactional semantics validate the batch before anything is
  broadcast), inspection (``table_kinds``, flow stats) reads it, and
  gathered verdict paths re-bind to its entries;
* the **RSS scatter** (:mod:`repro.parallel.rss`): each packet of a
  burst hashes to a shard, sub-bursts ship to the workers, and verdicts
  gather back **in input order** — callers see exactly the
  ``process_burst`` contract of a single switch;
* the **epoch barrier**: every ``apply_flow_mod(s)`` broadcast bumps the
  engine epoch and blocks until all workers ack — and a worker only
  acks after its replica has applied the batch, flushed deferred
  rebuilds, and re-fused. Bursts are tagged with the engine epoch and
  workers refuse mismatched tags, so **no gathered burst can mix
  verdicts from two pipeline generations** (Section 3.4's atomic
  non-destructive update story, extended across cores).

Metering semantics (the three axes EXPERIMENTS.md keeps apart):

* ``NULL_METER`` → workers run the null fused driver; pure wall-clock.
* A :class:`CycleMeter` → each worker meters on its **own persistent
  per-core meter** (private simulated caches — the physically honest
  model; cores do not share L1/L2). The gather folds the shard deltas
  into the caller's meter via :meth:`CycleMeter.absorb`, summing with
  ``math.fsum`` so the merged total is exact and independent of shard
  enumeration order. The modeled total therefore equals, bit for bit,
  the sum of per-shard sequential replays — and for ``workers=1`` it is
  bit-identical to a single ``ESwitch`` over the same bursts.

Flow counters stay truthful: each replica records on its own entries;
:meth:`sync_flow_stats` pulls and sums them onto the shadow pipeline, so
``collect_flow_stats(engine.pipeline)`` reports exactly what a
sequential run would have recorded.
"""

from __future__ import annotations

import math
import os
import pickle
from typing import Sequence

from repro.core.analysis import CompileConfig, DEFAULT_CONFIG
from repro.core.eswitch import ESwitch
from repro.openflow.messages import FlowMod
from repro.openflow.pipeline import Pipeline, Verdict
from repro.openflow.stats import BurstStats
from repro.packet.packet import Packet
from repro.parallel.rss import shard_of
from repro.parallel.wire import EntryIndexCache, decode_verdicts, encode_packets
from repro.parallel.worker import shard_worker_main, thread_channel_pair
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import Meter, NULL_METER, NullMeter


class ShardWorkerError(RuntimeError):
    """A shard worker reported an exception (its traceback is attached)."""


class EpochSyncError(RuntimeError):
    """A gathered burst spanned two pipeline generations (should be
    impossible: the broadcast barrier exists to prevent exactly this)."""


class _ProcessShard:
    """One worker process plus its engine-side pipe end."""

    def __init__(self, index: int, blob: bytes, config, costs, platform):
        import multiprocessing as mp

        ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, blob, config, costs, platform),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        self.conn.close()
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join(timeout=5)


class _ThreadShard:
    """One worker thread plus its engine-side channel end (fallback)."""

    def __init__(self, index: int, blob: bytes, config, costs, platform):
        import threading

        self.conn, child_conn = thread_channel_pair()
        self.proc = threading.Thread(
            target=shard_worker_main,
            args=(child_conn, blob, config, costs, platform),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (OSError, EOFError):
            pass
        self.proc.join(timeout=5)


class ShardedESwitch:
    """An OpenFlow switch whose datapath is N parallel fused replicas.

    Duck-type compatible with :class:`ESwitch` where the measurement
    harnesses care (``process``, ``process_burst``, ``apply_flow_mod``,
    ``apply_flow_mods``, ``burst_stats``, ``pipeline``, ``table_kinds``)
    — :func:`repro.traffic.measure` and the wall-clock rig drive it
    unchanged. Reactive ``packet_in_handler`` callbacks are deliberately
    unsupported: a controller callback would have to preempt remote
    replicas mid-burst; punted packets still come back with
    ``to_controller`` set for the caller to handle at the gather.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        workers: "int | None" = None,
        *,
        config: CompileConfig = DEFAULT_CONFIG,
        costs: CostBook = DEFAULT_COSTS,
        platform: Platform = XEON_E5_2620,
        backend: str = "auto",
        rss_seed: int = 0,
    ):
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        if workers < 1:
            raise ValueError("need at least one shard worker")
        if backend not in ("auto", "process", "thread"):
            raise ValueError(f"unknown backend {backend!r}")
        pipeline.validate()
        self.workers = workers
        self.rss_seed = rss_seed
        self.epoch = 0
        self.burst_stats = BurstStats()
        #: epochs reported by the shards of the most recent gather — the
        #: atomicity witness (all equal, and equal to ``self.epoch``).
        self.last_gather_epochs: tuple[int, ...] = ()
        blob = pickle.dumps(pipeline)
        # The shadow is built from its own snapshot: the engine never
        # mutates the caller's pipeline object.
        self.shadow = ESwitch(pickle.loads(blob), config=config, costs=costs)
        self._decode_cache = EntryIndexCache(self.shadow.pipeline)
        self._shards: list = []
        self.backend = self._spawn(backend, blob, config, costs, platform)
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, backend, blob, config, costs, platform) -> str:
        kinds = []
        if backend in ("auto", "process"):
            kinds.append(("process", _ProcessShard))
        if backend in ("auto", "thread"):
            kinds.append(("thread", _ThreadShard))
        last_error: "Exception | None" = None
        for name, factory in kinds:
            try:
                shards = [
                    factory(i, blob, config, costs, platform)
                    for i in range(self.workers)
                ]
                for shard in shards:
                    reply = shard.conn.recv()
                    if reply[0] != "ready":
                        raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
                self._shards = shards
                return name
            except ShardWorkerError:
                raise  # the replica itself failed to build: not a backend issue
            except Exception as exc:  # pragma: no cover - platform dependent
                last_error = exc
                for shard in self._shards:
                    shard.stop()
                self._shards = []
        raise ShardWorkerError(
            f"could not start any shard backend: {last_error!r}"
        )  # pragma: no cover

    def close(self) -> None:
        """Stop all shard workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.stop()
        self._shards = []

    def __enter__(self) -> "ShardedESwitch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- worker RPC --------------------------------------------------------

    def _recv(self, shard):
        reply = shard.conn.recv()
        if reply[0] == "error":
            raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
        return reply

    # -- the fast path -----------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        """Run one packet through its RSS shard (a burst of one)."""
        return self.process_burst([pkt], meter)[0]

    def process_burst(
        self, pkts: "Sequence[Packet]", meter: Meter = NULL_METER
    ) -> list[Verdict]:
        """Scatter one burst over the shards, gather in input order."""
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        if not pkts:
            return []
        mode = "null" if isinstance(meter, NullMeter) else "cycle"
        seed = self.rss_seed
        n_shards = len(self._shards)
        # RSS: flow-sticky shard choice straight off the frame bytes.
        lanes: list[list[int]] = [[] for _ in range(n_shards)]
        if n_shards == 1:
            lanes[0] = list(range(len(pkts)))
        else:
            for i, pkt in enumerate(pkts):
                lanes[shard_of(pkt.data, n_shards, seed)].append(i)
        # Scatter first (all sends before any receive: the workers run
        # their sub-bursts genuinely in parallel), then gather.
        active = []
        epoch = self.epoch
        for shard, lane in zip(self._shards, lanes):
            if not lane:
                continue
            wires = encode_packets([pkts[i] for i in lane])
            shard.conn.send(("burst", epoch, mode, wires))
            active.append((shard, lane))
        verdicts: list = [None] * len(pkts)
        cache = self._decode_cache
        deltas: list[float] = []
        metered_packets = 0
        llc = 0
        epochs = []
        for shard, lane in active:
            _, shard_epoch, wire_verdicts, cycles, packets, shard_llc = (
                self._recv(shard)
            )
            epochs.append(shard_epoch)
            for i, verdict in zip(lane, decode_verdicts(wire_verdicts, cache)):
                verdicts[i] = verdict
            if cycles is not None:
                deltas.append(cycles)
                metered_packets += packets
                llc += shard_llc
        self.last_gather_epochs = tuple(epochs)
        if any(e != epoch for e in epochs):
            raise EpochSyncError(
                f"gather saw epochs {epochs}, engine at {epoch}"
            )
        total = math.fsum(deltas) if deltas else 0.0
        if deltas:
            absorb = getattr(meter, "absorb", None)
            if absorb is not None:
                absorb(total, packets=metered_packets, llc_misses=llc)
            else:  # a plain Meter: cycles arrive pre-factored
                meter.charge(total)
        self.burst_stats.record(len(pkts), total)
        return verdicts

    # -- control plane -----------------------------------------------------

    def apply_flow_mod(self, mod: FlowMod) -> float:
        """Apply one flow-mod everywhere; one epoch, one barrier."""
        return self.apply_flow_mods([mod])

    def apply_flow_mods(self, mods: Sequence[FlowMod]) -> float:
        """Transactional batch broadcast under the epoch barrier.

        The shadow validates first: a failing batch raises here, rolls
        back locally, and is **never broadcast** — replicas cannot
        diverge through a rejected update. On success every worker
        applies the same batch, swaps its fused datapath, and acks; only
        then does the engine epoch advance and the next burst flow.

        Returns the shadow's modeled update cost in cycles (one core's
        control-plane work, comparable to ``ESwitch.apply_flow_mods``);
        per-replica costs are summed in ``update_stats`` terms on each
        worker.
        """
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        mods = list(mods)
        if not mods:
            return 0.0
        cycles = self.shadow.apply_flow_mods(mods)  # validates; may raise
        self.shadow.warm()
        new_epoch = self.epoch + 1
        for shard in self._shards:
            shard.conn.send(("mods", new_epoch, mods))
        for shard in self._shards:
            reply = self._recv(shard)
            if reply[0] != "mods" or reply[1] != new_epoch:
                raise EpochSyncError(
                    f"worker acked {reply[:2]}, expected ('mods', {new_epoch})"
                )
        self.epoch = new_epoch
        return cycles

    # -- statistics --------------------------------------------------------

    def shard_burst_stats(self) -> list[BurstStats]:
        """Each shard's own :class:`BurstStats` (one pull per worker)."""
        for shard in self._shards:
            shard.conn.send(("stats",))
        out = []
        self._pulled_counters: list = []
        for shard in self._shards:
            _, stats, counters = self._recv(shard)
            out.append(stats)
            self._pulled_counters.append(counters)
        return out

    def merged_burst_stats(self) -> BurstStats:
        """All shards' burst telemetry, merged order-independently."""
        return BurstStats.merged(self.shard_burst_stats())

    def sync_flow_stats(self) -> None:
        """Fold every replica's flow counters onto the shadow pipeline.

        After this, ``collect_flow_stats(engine.pipeline)`` reports the
        cross-shard totals — exactly the counters a sequential run over
        the same packets would have recorded (counting is commutative).
        """
        self.shard_burst_stats()  # refreshes self._pulled_counters too
        totals: dict[tuple[int, int], list[int]] = {}
        for counters in self._pulled_counters:
            for tid, idx, packets, nbytes in counters:
                cell = totals.setdefault((tid, idx), [0, 0])
                cell[0] += packets
                cell[1] += nbytes
        for table in self.shadow.pipeline:
            entries = table.entries
            for idx, entry in enumerate(entries):
                packets, nbytes = totals.get((table.table_id, idx), (0, 0))
                entry.counters.packets = packets
                entry.counters.bytes = nbytes

    # -- inspection (delegated to the shadow) ------------------------------

    @property
    def pipeline(self) -> Pipeline:
        return self.shadow.pipeline

    @property
    def update_stats(self):
        return self.shadow.update_stats

    def table_kinds(self) -> dict[int, str]:
        return self.shadow.table_kinds()

    def __repr__(self) -> str:
        return (
            f"ShardedESwitch(workers={self.workers}, backend={self.backend}, "
            f"epoch={self.epoch}, tables={len(self.shadow._groups)})"
        )
