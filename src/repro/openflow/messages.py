"""OpenFlow channel messages: flow-mods and packet-in/out.

The controller manages flow entries through these messages, reactively or
proactively (Section 2). Both switch implementations expose an
``apply_flow_mod`` entry point so the update benchmarks (Fig. 17/18) drive
them identically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.instructions import Instruction
from repro.openflow.match import Match
from repro.packet.packet import Packet


class FlowModCommand(enum.Enum):
    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass
class FlowMod:
    """A flow-table modification request."""

    command: FlowModCommand
    table_id: int
    match: Match
    priority: int = 0
    instructions: Sequence[Instruction] = field(default_factory=tuple)
    cookie: int = 0
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    #: OFPFC_DELETE_STRICT semantics: a strict DELETE removes only entries
    #: at exactly ``priority`` (0 included — priority 0 is a real target,
    #: not a wildcard); a non-strict DELETE ignores priority entirely.
    strict: bool = False

    def to_entry(self) -> FlowEntry:
        return FlowEntry(
            match=self.match,
            priority=self.priority,
            instructions=tuple(self.instructions),
            cookie=self.cookie,
            idle_timeout=self.idle_timeout,
            hard_timeout=self.hard_timeout,
        )


@dataclass
class PacketIn:
    """A packet punted to the controller (table miss or explicit action)."""

    pkt: Packet
    table_id: int
    reason: str = "miss"


@dataclass
class PacketOut:
    """A controller-injected packet."""

    pkt: Packet
    out_port: int
