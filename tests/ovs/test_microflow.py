"""Tests for the microflow (EMC) cache."""

import pytest

from repro.ovs.megaflow import MegaflowEntry
from repro.ovs.microflow import MicroflowCache


def mf(sig=(("tcp_dst", 0xFFFF),), key=(80,)):
    return MegaflowEntry(sig=sig, masked_key=key, actions=(), dropped=False)


class TestMicroflowCache:
    def test_miss_then_hit(self):
        c = MicroflowCache(capacity=4)
        assert c.lookup("k") is None
        entry = mf()
        c.insert("k", entry)
        assert c.lookup("k") is entry
        assert (c.hits, c.misses) == (1, 1)

    def test_lru_eviction(self):
        c = MicroflowCache(capacity=2)
        c.insert("a", mf())
        c.insert("b", mf())
        c.lookup("a")  # refresh a
        c.insert("c", mf())  # evicts b
        assert c.lookup("b") is None
        assert c.lookup("a") is not None
        assert c.evictions == 1

    def test_dead_megaflow_lazily_dropped(self):
        c = MicroflowCache(capacity=4)
        entry = mf()
        c.insert("k", entry)
        entry.dead = True
        assert c.lookup("k") is None
        assert len(c) == 0

    def test_invalidate(self):
        c = MicroflowCache(capacity=4)
        c.insert("k", mf())
        c.invalidate()
        assert len(c) == 0

    def test_len_reports_live_occupancy(self):
        # Regression: lazy invalidation leaves dead refs in the map until
        # a lookup touches them; __len__ must not count those corpses
        # (Fig. 3 saturation points sample occupancy right after a
        # flow-mod killed the megaflow generation, before any lookups).
        c = MicroflowCache(capacity=8)
        entries = [mf(key=(i,)) for i in range(4)]
        for i, entry in enumerate(entries):
            c.insert(i, entry)
        for entry in entries[:3]:
            entry.dead = True
        assert len(c) == 1
        # The prune is real, not just arithmetic: the corpses are gone.
        assert len(c._entries) == 1
        assert c.lookup(3) is entries[3]

    def test_len_sees_generation_invalidation(self):
        # A megaflow-cache invalidate() kills entries via the shared
        # generation cell, without touching the EMC at all — the EMC's
        # occupancy must still read zero.
        from repro.ovs.megaflow import MegaflowCache

        mega = MegaflowCache(capacity=16)
        c = MicroflowCache(capacity=8)
        entry = mf()
        mega.insert(entry)
        c.insert("k", entry)
        assert len(c) == 1
        mega.invalidate()
        assert len(c) == 0
        assert c.lookup("k") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MicroflowCache(capacity=0)

    def test_slot_stability(self):
        c = MicroflowCache(capacity=128)
        assert c.slot_of("x") == c.slot_of("x")
        assert 0 <= c.slot_of("x") < 128
