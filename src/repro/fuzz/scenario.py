"""The fuzz scenario: one self-contained differential test case.

A :class:`Scenario` is pure data — a pipeline document (the
:mod:`repro.openflow.serialize` JSON dialect), an event schedule
(packet bursts interleaved with flow-mod batches and expiry-clock
ticks ``{"tick": seconds}``, which each backend feeds to its own
:class:`~repro.openflow.timeouts.ExpiryManager`), and the degradation
flags the executor applies before traffic starts. It is deliberately
*dead*: every backend materializes its **own** pipeline, packets, and
flow-mods from the document, because packets mutate in flight and
flow-mod instructions bind group/meter objects of a specific pipeline.

Scenarios round-trip through JSON so a failing case can be pinned
verbatim in ``tests/fuzz_corpus/`` and replayed forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.openflow import serialize
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.packet.packet import Packet

FORMAT = 1

#: entry_from_obj keys a mod object may carry besides its own.
_ENTRY_KEYS = ("match", "apply", "write", "clear", "metadata", "goto", "meter")


@dataclass
class Scenario:
    """One differential fuzz case (see module docstring)."""

    pipeline_obj: dict
    events: list = field(default_factory=list)
    seed: "int | None" = None
    name: str = ""
    note: str = ""
    #: compile the RANGE template where applicable (fused/trampoline/sharded).
    enable_range: bool = False
    #: logical table ids force-quarantined on the unsharded ESwitch
    #: backends before traffic (the fail-static containment state).
    quarantine: tuple = ()
    #: force the fused backend onto the trampoline before traffic.
    degrade_fuse: bool = False
    #: a meter in this scenario can actually fire. Sharding splits meter
    #: state across replica token buckets, so rate-limit verdicts are
    #: only comparable at workers=1; the executor skips workers>1.
    tight_meter: bool = False
    #: CompileConfig overrides (None = defaults). ``direct_threshold``
    #: pins big tables onto the direct-code rung; a small
    #: ``source_budget`` then forces its data-driven fallback — the
    #: large-cardinality scenario class covers that rung differentially.
    direct_threshold: "int | None" = None
    source_budget: "int | None" = None
    #: ``(begin, end)`` mod-batch indices (half-open, counting only
    #: ``{"mods": ...}`` events) during which the control session is
    #: dark in the outage-parity harness (:func:`repro.fuzz.outage.
    #: run_outage_parity`). The differential matrix ignores it — its
    #: run IS the never-disconnected baseline.
    outage: tuple = ()

    # -- materializers (fresh objects every call, see module docstring) --

    def build_pipeline(self) -> Pipeline:
        return serialize.pipeline_from_obj(self.pipeline_obj)

    def build_packets(self, burst: list) -> list[Packet]:
        return [
            Packet(
                bytes.fromhex(obj["data"]),
                in_port=obj.get("in_port", 0),
                metadata=obj.get("metadata", 0),
                tunnel_id=obj.get("tunnel_id", 0),
            )
            for obj in burst
        ]

    def build_mods(self, batch: list, pipeline: Pipeline) -> list[FlowMod]:
        """Flow-mods bound to ``pipeline``'s group/meter tables.

        Priority is taken verbatim (NOT through FlowEntry validation):
        out-of-range priorities are a thing the admission control must
        reject, so they have to be representable.
        """
        mods = []
        for obj in batch:
            eobj = {k: obj[k] for k in _ENTRY_KEYS if k in obj}
            eobj.setdefault("match", {})
            eobj["priority"] = 0
            entry = serialize.entry_from_obj(eobj, pipeline.groups, pipeline.meters)
            mods.append(
                FlowMod(
                    FlowModCommand(obj.get("cmd", "add")),
                    int(obj["table"]),
                    entry.match,
                    priority=obj.get("priority", 0),
                    instructions=entry.instructions,
                    strict=bool(obj.get("strict", False)),
                )
            )
        return mods

    def total_packets(self) -> int:
        return sum(len(e["burst"]) for e in self.events if "burst" in e)

    # -- JSON ------------------------------------------------------------

    def to_obj(self) -> dict:
        out: dict = {"format": FORMAT}
        if self.name:
            out["name"] = self.name
        if self.seed is not None:
            out["seed"] = self.seed
        if self.note:
            out["note"] = self.note
        for flag in ("enable_range", "degrade_fuse", "tight_meter"):
            if getattr(self, flag):
                out[flag] = True
        if self.quarantine:
            out["quarantine"] = list(self.quarantine)
        for knob in ("direct_threshold", "source_budget"):
            if getattr(self, knob) is not None:
                out[knob] = getattr(self, knob)
        if self.outage:
            out["outage"] = list(self.outage)
        out["pipeline"] = self.pipeline_obj
        out["events"] = self.events
        return out

    @classmethod
    def from_obj(cls, obj: dict) -> "Scenario":
        if obj.get("format", FORMAT) != FORMAT:
            raise serialize.SerializationError(
                f"unknown scenario format {obj.get('format')!r}"
            )
        return cls(
            pipeline_obj=obj["pipeline"],
            events=list(obj.get("events", [])),
            seed=obj.get("seed"),
            name=obj.get("name", ""),
            note=obj.get("note", ""),
            enable_range=bool(obj.get("enable_range", False)),
            quarantine=tuple(obj.get("quarantine", ())),
            degrade_fuse=bool(obj.get("degrade_fuse", False)),
            tight_meter=bool(obj.get("tight_meter", False)),
            direct_threshold=obj.get("direct_threshold"),
            source_budget=obj.get("source_budget"),
            outage=tuple(obj.get("outage", ())),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_obj(), indent=2)

    @classmethod
    def loads(cls, text: str) -> "Scenario":
        return cls.from_obj(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps() + "\n")

    @classmethod
    def load(cls, path) -> "Scenario":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())


def packet_to_obj(pkt: Packet) -> dict:
    obj: dict = {"data": bytes(pkt.data).hex(), "in_port": pkt.in_port}
    if pkt.metadata:
        obj["metadata"] = pkt.metadata
    if pkt.tunnel_id:
        obj["tunnel_id"] = pkt.tunnel_id
    return obj
