"""Fig. 9: per-template lookup cost vs table size — calibrating the
direct-code fallback constant.

Paper: "Until about 4 entries the direct code template is the most
efficient choice, but from that point the hash template becomes faster
thanks to its constant lookup time. Accordingly, we fixed the fallback
constant for the direct code template at 4." The linked list is
"consistently slower than the direct code".

The synthetic table is the paper's: entry N is
``vlan_vid=3, ip_src=10.0.0.3, ip_proto=17, udp_dst=N``.
"""

from figshared import publish, render_table
from repro.core.analysis import CompileConfig, TemplateKind
from repro.core.codegen import compile_table
from repro.openflow.actions import Output
from repro.openflow.fields import field_by_name
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.packet import PacketBuilder
from repro.packet.parser import parse
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter

ENTRY_AXIS = range(1, 10)


def synthetic_table(n: int) -> FlowTable:
    table = FlowTable(0)
    for i in range(1, n + 1):
        table.add(
            FlowEntry(
                Match(vlan_vid=3, ipv4_src="10.0.0.3", ip_proto=17, udp_dst=i),
                priority=1,
                actions=[Output(1)],
            )
        )
    return table


def lookup_cost(kind: TemplateKind, n: int, probe_port: int) -> float:
    """Mean metered cycles of one compiled-table lookup (warm caches)."""
    compiled = compile_table(
        synthetic_table(n), CompileConfig(direct_threshold=64), kind=kind
    )
    pkt = (PacketBuilder(in_port=1).eth().vlan(vid=3)
           .ipv4(src="10.0.0.3").udp(dst_port=probe_port).build())
    view = parse(pkt)
    etype = field_by_name("eth_type").extract(view) or 0
    meter = CycleMeter(XEON_E5_2620)
    rounds = 64
    for _ in range(rounds):
        meter.begin_packet()
        compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, meter)
        meter.end_packet()
    # Discard the cold first rounds: steady-state cost.
    meter.reset()
    for _ in range(rounds):
        meter.begin_packet()
        compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, meter)
        meter.end_packet()
    return meter.mean_cycles_per_packet


def test_fig09_template_crossover(benchmark):
    rows = []
    series: dict[str, list[float]] = {"direct code": [], "hash": [], "linked list": []}
    for n in ENTRY_AXIS:
        # Probe the *last* entry: the worst case linear templates pay for.
        d = lookup_cost(TemplateKind.DIRECT, n, n)
        h = lookup_cost(TemplateKind.HASH, n, n)
        ll = lookup_cost(TemplateKind.LINKED_LIST, n, n)
        series["direct code"].append(d)
        series["hash"].append(h)
        series["linked list"].append(ll)
        rows.append((n, f"{d:.1f}", f"{h:.1f}", f"{ll:.1f}"))

    publish(
        "fig09_template_crossover",
        render_table(
            "Fig. 9: lookup cycles vs flow entries (paper: crossover at 4)",
            ("entries", "direct code", "hash", "linked list"),
            rows,
        ),
    )

    direct, hash_, linked = (series["direct code"], series["hash"], series["linked list"])
    # Hash cost is flat (constant-time lookups).
    assert max(hash_) - min(hash_) < 2.0
    # Direct code wins at <= 4 entries, hash wins beyond — the paper's
    # calibration of the fallback constant.
    for i, n in enumerate(ENTRY_AXIS):
        if n <= 4:
            assert direct[i] <= hash_[i], f"direct should win at {n} entries"
        if n >= 6:
            assert hash_[i] < direct[i], f"hash should win at {n} entries"
    # The linked list is consistently slower than direct code.
    assert all(l > d for l, d in zip(linked, direct))

    benchmark(lambda: lookup_cost(TemplateKind.HASH, 8, 8))
