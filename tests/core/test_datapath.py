"""Tests for the compiled datapath driver: trampoline, parser plan, costs."""

import pytest

from repro.core.codegen import compile_table
from repro.core.datapath import CompiledDatapath, required_layer
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline, PipelineError
from repro.packet import PacketBuilder
from repro.simcpu.costs import DEFAULT_COSTS
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter


def simple_table(tid, port, goto=None, **match):
    t = FlowTable(tid)
    instrs = [ApplyActions([Output(port)])]
    if goto is not None:
        instrs.append(GotoTable(goto))
    t.add(FlowEntry(Match(**match), priority=1, instructions=instrs))
    return t


def pkt():
    return PacketBuilder(in_port=1).eth().ipv4().tcp(dst_port=80).build()


class TestTrampoline:
    def test_atomic_swap_changes_behavior(self):
        dp = CompiledDatapath(first_table=0)
        dp.install(compile_table(simple_table(0, 5)))
        assert dp.process(pkt()).output_ports == [5]
        # Build the replacement side by side, then one-shot swap.
        replacement = compile_table(simple_table(0, 9))
        dp.install(replacement)
        assert dp.process(pkt()).output_ports == [9]

    def test_goto_through_trampoline(self):
        dp = CompiledDatapath(first_table=0)
        dp.install(compile_table(simple_table(0, 1, goto=1)))
        dp.install(compile_table(simple_table(1, 2)))
        v = dp.process(pkt())
        assert v.output_ports == [1, 2]
        assert [tid for tid, _e in v.path] == [0, 1]

    def test_dangling_goto_raises(self):
        dp = CompiledDatapath(first_table=0)
        dp.install(compile_table(simple_table(0, 1, goto=7)))
        with pytest.raises(PipelineError):
            dp.process(pkt())

    def test_uninstall(self):
        dp = CompiledDatapath(first_table=0)
        dp.install(compile_table(simple_table(0, 1)))
        dp.uninstall(0)
        with pytest.raises(PipelineError):
            dp.process(pkt())


class TestParserPlan:
    def test_invalid_layer_rejected(self):
        with pytest.raises(ValueError):
            CompiledDatapath(first_table=0, parser_layer=5)

    def test_parser_cost_by_layer(self):
        costs = DEFAULT_COSTS
        expected = {
            2: costs.parser_l2,
            3: costs.parser_l2 + costs.parser_l3,
            4: costs.parser_combined,
        }
        base = costs.pkt_in + costs.es_dispatch
        for layer, parser_cost in expected.items():
            dp = CompiledDatapath(first_table=0, parser_layer=layer)
            dp.install(compile_table(FlowTable(0)))  # empty: immediate miss
            meter = CycleMeter(XEON_E5_2620)
            meter.begin_packet()
            dp.process(pkt(), meter)
            cycles = meter.end_packet()
            # The empty table is direct code: its base charge accrues too.
            assert cycles == pytest.approx(
                base + parser_cost + costs.direct_base + costs.table_miss
            ), layer

    def test_required_layer_metadata_only(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(in_port=1), priority=1, actions=[Output(1)]))
        assert required_layer(Pipeline([t])) == 2

    def test_set_parser_layer_recomputes_cost(self):
        dp = CompiledDatapath(first_table=0, parser_layer=2)
        cost_l2 = dp._parser_cost
        dp.set_parser_layer(4)
        assert dp._parser_cost == pytest.approx(DEFAULT_COSTS.parser_combined)
        assert dp._parser_cost > cost_l2


class TestCostAccounting:
    def test_goto_charges_trampoline(self):
        dp = CompiledDatapath(first_table=0)
        dp.install(compile_table(simple_table(0, 1, goto=1)))
        dp.install(compile_table(simple_table(1, 2)))
        single = CompiledDatapath(first_table=0)
        single.install(compile_table(simple_table(0, 1)))
        m_two, m_one = CycleMeter(XEON_E5_2620), CycleMeter(XEON_E5_2620)
        m_two.begin_packet()
        dp.process(pkt(), m_two)
        two = m_two.end_packet()
        m_one.begin_packet()
        single.process(pkt(), m_one)
        one = m_one.end_packet()
        # Second table adds its template cost + trampoline + extra pkt_out.
        assert two > one

    def test_forwarded_pays_pkt_out_dropped_does_not(self):
        drop_table = FlowTable(0)
        drop_table.add(FlowEntry(Match(), priority=1, actions=[]))
        dp_drop = CompiledDatapath(first_table=0)
        dp_drop.install(compile_table(drop_table))
        dp_fwd = CompiledDatapath(first_table=0)
        dp_fwd.install(compile_table(simple_table(0, 1)))
        md, mf = CycleMeter(XEON_E5_2620), CycleMeter(XEON_E5_2620)
        md.begin_packet()
        dp_drop.process(pkt(), md)
        drop_cycles = md.end_packet()
        mf.begin_packet()
        dp_fwd.process(pkt(), mf)
        fwd_cycles = mf.end_packet()
        # The forwarding path additionally executes its action set and
        # transmits; the drop path does neither.
        assert fwd_cycles - drop_cycles == pytest.approx(
            DEFAULT_COSTS.pkt_out + DEFAULT_COSTS.action_set
        )
