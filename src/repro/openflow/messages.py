"""OpenFlow channel messages: flow-mods, packet-in/out, errors, echoes.

The controller manages flow entries through these messages, reactively or
proactively (Section 2). Both switch implementations expose an
``apply_flow_mod`` entry point so the update benchmarks (Fig. 17/18) drive
them identically.

The error half of the protocol (OpenFlow 1.3 §7.4.4) backs the fail-static
control plane: a flow-mod the switch cannot honor is answered with a typed
:class:`ErrorMsg` (``OFPET_FLOW_MOD_FAILED`` / ``TABLE_FULL``,
``BAD_TABLE_ID``, ``BAD_COMMAND``, …) instead of an exception escaping
into the datapath. :func:`validate_flow_mod` is the *static* half of
admission control — the checks that need no switch state; capacity and
goto-target checks live with the switch (``ESwitch.admit_flow_mods``).
:class:`EchoRequest`/:class:`EchoReply` and :class:`BarrierRequest`/
:class:`BarrierReply` carry the controller session's keepalive and
ordering semantics (§6.4, §7.3.8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.instructions import GotoTable, Instruction
from repro.openflow.match import Match
from repro.packet.packet import Packet


class FlowModCommand(enum.Enum):
    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


class ErrorType(enum.Enum):
    """OpenFlow error message types (the subset this model needs)."""

    BAD_REQUEST = "OFPET_BAD_REQUEST"
    BAD_MATCH = "OFPET_BAD_MATCH"
    BAD_INSTRUCTION = "OFPET_BAD_INSTRUCTION"
    FLOW_MOD_FAILED = "OFPET_FLOW_MOD_FAILED"


class FlowModFailedCode(enum.Enum):
    """``OFPET_FLOW_MOD_FAILED`` codes (OpenFlow 1.3 §7.4.4)."""

    UNKNOWN = "OFPFMFC_UNKNOWN"
    TABLE_FULL = "OFPFMFC_TABLE_FULL"
    BAD_TABLE_ID = "OFPFMFC_BAD_TABLE_ID"
    EPERM = "OFPFMFC_EPERM"
    BAD_TIMEOUT = "OFPFMFC_BAD_TIMEOUT"
    BAD_COMMAND = "OFPFMFC_BAD_COMMAND"


@dataclass(frozen=True)
class ErrorMsg:
    """A typed switch-to-controller error reply.

    ``data`` carries the offending request (OpenFlow echoes the failed
    message back); it is excluded from equality so error *taxonomies*
    compare cleanly in tests.
    """

    etype: ErrorType
    code: "FlowModFailedCode | str"
    message: str = ""
    data: object = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        code = self.code.value if hasattr(self.code, "value") else self.code
        detail = f": {self.message}" if self.message else ""
        return f"{self.etype.value}/{code}{detail}"


class FlowModFailed(Exception):
    """Internal typed rejection; converted to :class:`ErrorMsg` replies at
    the control-plane boundary (never meant to escape into the datapath)."""

    def __init__(self, error: ErrorMsg):
        super().__init__(str(error))
        self.error = error


@dataclass(frozen=True)
class FlowModReply:
    """The switch's answer to one flow-mod batch: accept or typed reject.

    ``cycles`` is the modeled switch-side update cost — zero for a
    rejected batch (admission runs before any switch work; Fig. 17's
    setup-time accounting counts a rejected mod's channel latency only).
    """

    accepted: bool
    errors: tuple[ErrorMsg, ...] = ()
    cycles: float = 0.0

    def __bool__(self) -> bool:
        return self.accepted


def _flow_mod_error(
    code: FlowModFailedCode, message: str, mod: "FlowMod"
) -> ErrorMsg:
    return ErrorMsg(ErrorType.FLOW_MOD_FAILED, code, message, data=mod)


def validate_flow_mod(mod: "FlowMod", max_tables: "int | None" = None) -> "ErrorMsg | None":
    """Static (stateless) admission checks for one flow-mod.

    Returns the first applicable typed error, or None when the mod is
    well-formed. ``max_tables`` caps the table-id space (pass
    :data:`~repro.openflow.pipeline.MAX_TABLES` for the OpenFlow limit).
    Switch-state-dependent checks (capacity, goto targets resolving)
    live in ``ESwitch.admit_flow_mods``.
    """
    if not isinstance(mod.command, FlowModCommand):
        return _flow_mod_error(
            FlowModFailedCode.BAD_COMMAND, f"unknown command {mod.command!r}", mod
        )
    if not isinstance(mod.table_id, int) or mod.table_id < 0:
        return _flow_mod_error(
            FlowModFailedCode.BAD_TABLE_ID, f"invalid table id {mod.table_id!r}", mod
        )
    if max_tables is not None and mod.table_id >= max_tables:
        return _flow_mod_error(
            FlowModFailedCode.BAD_TABLE_ID,
            f"table id {mod.table_id} beyond the {max_tables}-table space", mod,
        )
    if not isinstance(mod.priority, int) or not 0 <= mod.priority <= 0xFFFF:
        return _flow_mod_error(
            FlowModFailedCode.BAD_COMMAND, f"priority {mod.priority!r} out of range", mod
        )
    if not isinstance(mod.match, Match):
        return ErrorMsg(
            ErrorType.BAD_MATCH, "OFPBMC_BAD_TYPE",
            f"match is {type(mod.match).__name__}, not Match", data=mod,
        )
    try:
        if mod.idle_timeout < 0 or mod.hard_timeout < 0:
            return _flow_mod_error(
                FlowModFailedCode.BAD_TIMEOUT,
                f"negative timeout ({mod.idle_timeout}, {mod.hard_timeout})", mod,
            )
    except TypeError:
        return _flow_mod_error(
            FlowModFailedCode.BAD_TIMEOUT, "non-numeric timeout", mod
        )
    for instr in mod.instructions:
        if not isinstance(instr, Instruction):
            return ErrorMsg(
                ErrorType.BAD_INSTRUCTION, "OFPBIC_UNKNOWN_INST",
                f"{instr!r} is not an Instruction", data=mod,
            )
        if isinstance(instr, GotoTable) and instr.table_id <= mod.table_id:
            return ErrorMsg(
                ErrorType.BAD_INSTRUCTION, "OFPBIC_BAD_TABLE_ID",
                f"goto {instr.table_id} does not move forward from table "
                f"{mod.table_id}", data=mod,
            )
    return None


@dataclass
class FlowMod:
    """A flow-table modification request."""

    command: FlowModCommand
    table_id: int
    match: Match
    priority: int = 0
    instructions: Sequence[Instruction] = field(default_factory=tuple)
    cookie: int = 0
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    #: OFPFC_DELETE_STRICT semantics: a strict DELETE removes only entries
    #: at exactly ``priority`` (0 included — priority 0 is a real target,
    #: not a wildcard); a non-strict DELETE ignores priority entirely.
    strict: bool = False

    def to_entry(self) -> FlowEntry:
        return FlowEntry(
            match=self.match,
            priority=self.priority,
            instructions=tuple(self.instructions),
            cookie=self.cookie,
            idle_timeout=self.idle_timeout,
            hard_timeout=self.hard_timeout,
        )


@dataclass
class PacketIn:
    """A packet punted to the controller (table miss or explicit action)."""

    pkt: Packet
    table_id: int
    reason: str = "miss"


@dataclass
class PacketOut:
    """A controller-injected packet."""

    pkt: Packet
    out_port: int


@dataclass(frozen=True)
class EchoRequest:
    """Keepalive probe (either direction); the peer answers with a reply
    carrying the same ``xid`` — the liveness signal of §6.4."""

    xid: int = 0


@dataclass(frozen=True)
class EchoReply:
    xid: int = 0


@dataclass(frozen=True)
class BarrierRequest:
    """Ordering fence (§7.3.8): the switch replies only after every message
    received before the barrier has been fully processed."""

    xid: int = 0


@dataclass(frozen=True)
class BarrierReply:
    xid: int = 0
