"""The gateway's admission controller (reactive NAT provisioning).

"Packets missing the per-CE tables are passed to the controller that does
admission control, allocates a public IP, and installs per-user 'NAT'
rules into the proper tables." (Section 4.1)

The controller recognizes subscribers by their private address shape
(10.<ce>.0.<user>); unknown senders are rejected (no rules installed).
"""

from __future__ import annotations

from repro.net.addresses import ip_to_int
from repro.openflow.messages import PacketIn
from repro.packet.parser import parse
from repro.openflow.fields import field_by_name
from repro.usecases import gateway


class GatewayController:
    """Handles packet-ins from the vPE's per-CE admission tables.

    Hardened like :class:`~repro.controller.learning_switch.
    LearningSwitch`: garbage packet-ins are counted (``malformed``) and
    dropped, never raised, and a subscriber is marked admitted only after
    the switch actually accepted the NAT rules — a rejected install
    (``install_failures``) leaves the subscriber un-admitted so the next
    punt retries.
    """

    def __init__(self, switch, n_ce: int = 10, users_per_ce: int = 20):
        self.switch = switch
        self.n_ce = n_ce
        self.users_per_ce = users_per_ce
        self.admitted: set[tuple[int, int]] = set()
        self.rejected = 0
        self.packet_ins = 0
        self.malformed = 0
        self.install_failures = 0

    def __call__(self, packet_in: PacketIn) -> None:
        self.handle(packet_in)

    def handle(self, packet_in: PacketIn) -> None:
        self.packet_ins += 1
        try:
            view = parse(packet_in.pkt)
            src = field_by_name("ipv4_src").extract(view)
            vlan = field_by_name("vlan_vid").extract(view)
        except Exception:
            self.malformed += 1
            return
        subscriber = self._subscriber_of(src, vlan)
        if subscriber is None:
            self.rejected += 1
            return
        if subscriber in self.admitted:
            return  # rules already installed; packet raced the update
        ce, user = subscriber
        if not self._install(gateway.nat_flow_mods(ce, user)):
            self.install_failures += 1
            return  # stays un-admitted: the next punt retries
        self.admitted.add(subscriber)

    def _install(self, mods) -> bool:
        submit = getattr(self.switch, "submit_flow_mods", None)
        if submit is not None:
            return bool(submit(list(mods)))
        for mod in mods:
            self.switch.apply_flow_mod(mod)
        return True

    def _subscriber_of(
        self, src: "int | None", vlan: "int | None"
    ) -> "tuple[int, int] | None":
        if src is None or vlan is None:
            return None
        base = ip_to_int("10.0.0.0")
        if (src >> 24) != (base >> 24):
            return None
        ce = (src >> 16) & 0xFF
        user = (src & 0xFFFF) - 1
        if ce >= self.n_ce or not 0 <= user < self.users_per_ce:
            return None
        if vlan != gateway.ce_vlan(ce):
            return None
        return ce, user
