"""Section 3.2's decomposition stress test: snort-style five-tuple ACLs.

Paper: "with the active 72 rules we obtained only 50 separate tables in
the decomposition, while adding obsolete rules resulted in 197 tables on
an input of 369 ACLs."

The snort community ruleset is not redistributable; :mod:`repro.usecases.acl`
generates rules with the same wildcard statistics. The claims under test:
the table count stays in the paper's regime (well below the rule count and
nowhere near the exponential worst case), the output compiles to fast
templates, and semantics are preserved.
"""

import random

from figshared import publish, render_table
from repro.core import CompileConfig, ESwitch
from repro.core.decompose import decompose_table
from repro.openflow.pipeline import Pipeline
from repro.usecases import acl


def decompose_count(n_rules: int, seed: int = 37, dedup: bool = True) -> tuple[int, list]:
    tables = decompose_table(acl.generate(n_rules, seed), 1000, dedup=dedup)
    assert tables is not None
    return len(tables), tables


def test_sec32_acl_decomposition(benchmark):
    count_72, tables_72 = decompose_count(72)
    count_369, _tables_369 = decompose_count(369)
    plain_72, _ = decompose_count(72, dedup=False)
    plain_369, _ = decompose_count(369, dedup=False)

    # Semantic spot check on the 72-rule set.
    rng = random.Random(9)
    original = Pipeline([acl.generate(72)])
    decomposed = Pipeline(tables_72)
    mismatches = 0
    from strategies import random_packet

    for _ in range(300):
        pkt = random_packet(rng)
        if (original.process(pkt.copy()).summary()
                != decomposed.process(pkt.copy()).summary()):
            mismatches += 1
    assert mismatches == 0

    # The whole pipeline compiles (decomposition happens inside ESwitch too).
    sw = ESwitch.from_pipeline(Pipeline([acl.generate(72)]),
                               config=CompileConfig(decompose=True))
    assert sw.table_kinds()[0].startswith("decomposed[")

    publish(
        "sec32_acl_decompose",
        render_table(
            "Sec. 3.2: ACL decomposition (paper: 72 rules -> 50 tables; "
            "369 -> 197)",
            ("rules", "tables (shared)", "tables (no sharing)", "tables (paper)"),
            [(72, count_72, plain_72, 50), (369, count_369, plain_369, 197)],
        ),
    )
    # The paper's regime: table count of the same order as the rule count,
    # nowhere near the cross-product worst case (|ports| x |ips| x ...).
    assert 0.4 * 50 <= count_72 <= 1.6 * 50
    assert 0.4 * 197 <= count_369 <= 1.6 * 197

    benchmark(lambda: decompose_count(72)[0])
