"""Wire forms: what packets and verdicts look like crossing a shard pipe.

:class:`~repro.packet.packet.Packet` and
:class:`~repro.openflow.pipeline.Verdict` are runtime objects —
verdicts in particular hold live :class:`FlowEntry` references that
mean nothing in another process. The shard boundary therefore speaks a
compact, picklable wire dialect:

* a packet is ``(bytes, in_port, metadata, tunnel_id)``;
* a verdict is ``(ports, flags, path)`` where every path hop keeps its
  table id verbatim (hop ids through decomposition-internal tables
  included — the last hop's id is what packet-ins report) and replaces
  the entry reference by its **logical pipeline position**
  ``(ltid, idx)`` — stable across replicas because every replica
  applies the same flow-mods in the same epoch order, so logical
  ``entries`` tuples are identical everywhere.

Hops through decomposition-internal tables resolve through the entry's
``origin`` pointer: a synthetic *leaf* entry stands in for a logical
rule and encodes as that rule's position (so decoded paths and counter
deltas attribute to control-plane-visible state, exactly like the
single-process datapath's shared-counters accounting). Synthetic
*dispatch* entries have no logical identity at all; they carry the
``(-1, -1)`` position and decode to ``None``.

The engine re-binds positions to its own shadow pipeline's entries on
gather, giving callers real ``Verdict`` objects whose ``path`` points at
the authoritative control-plane state.
"""

from __future__ import annotations

from typing import Sequence

from repro.openflow.pipeline import Verdict
from repro.packet.packet import Packet

_DROPPED = 1
_TO_CONTROLLER = 2
_TABLE_MISS = 4


def encode_packets(pkts: Sequence[Packet]) -> list[tuple]:
    return [(bytes(p.data), p.in_port, p.metadata, p.tunnel_id) for p in pkts]


def decode_packets(wires: Sequence[tuple]) -> list[Packet]:
    return [Packet(data, in_port, metadata, tunnel_id)
            for data, in_port, metadata, tunnel_id in wires]


class EntryIndexCache:
    """Logical entry ↔ position maps, invalidated by table versions.

    Both sides of the pipe keep one over *their* pipeline: the worker to
    *encode* the entries its replica's verdicts reference, the engine to
    *decode* positions back into its shadow pipeline's entries. The maps
    rebuild lazily whenever any table's ``version`` moves (every
    flow-mod bumps it), so one rebuild per epoch in steady state.

    Positions index the table's **live** entry order (``table.entries``
    skips tombstones), and the tombstone store's compaction neither
    reorders live entries nor bumps ``version`` — so a cached position
    map stays correct across a compaction on either side of the pipe,
    even when worker and engine compact at different times.
    """

    def __init__(self, pipeline):
        self.pipeline = pipeline
        self._versions: "tuple | None" = None
        self._index: dict = {}    # id(entry) -> (ltid, idx)
        self._entries: dict = {}  # ltid -> entries sequence

    def maps(self) -> tuple[dict, dict]:
        versions = tuple(t.version for t in self.pipeline)
        if versions != self._versions:
            index: dict = {}
            entries_by: dict = {}
            for table in self.pipeline:
                entries = table.entries
                entries_by[table.table_id] = entries
                for i, entry in enumerate(entries):
                    index[id(entry)] = (table.table_id, i)
            self._index, self._entries = index, entries_by
            self._versions = versions
        return self._index, self._entries


def encode_verdicts(
    verdicts: Sequence[Verdict], cache: EntryIndexCache
) -> list[tuple]:
    """The worker's per-burst reply path (position maps bound once)."""
    index, _ = cache.maps()
    out = []
    for verdict in verdicts:
        flags = (
            (_DROPPED if verdict.dropped else 0)
            | (_TO_CONTROLLER if verdict.to_controller else 0)
            | (_TABLE_MISS if verdict.table_miss else 0)
        )
        path = []
        for tid, entry in verdict.path:
            if entry is not None and entry.origin is not None:
                entry = entry.origin  # decomposition leaf -> logical rule
            pos = index.get(id(entry), (-1, -1)) if entry is not None else (-1, -1)
            path.append((tid,) + pos)
        out.append((tuple(verdict.output_ports), flags, tuple(path)))
    return out


def decode_verdicts(
    wires: Sequence[tuple], cache: EntryIndexCache
) -> list[Verdict]:
    """The engine's per-gather path (entry tuples bound once)."""
    _, entries_by = cache.maps()
    out = []
    for ports, flags, path in wires:
        verdict = Verdict()
        verdict.output_ports = list(ports)
        verdict.dropped = bool(flags & _DROPPED)
        verdict.to_controller = bool(flags & _TO_CONTROLLER)
        verdict.table_miss = bool(flags & _TABLE_MISS)
        bound = verdict.path
        for tid, ltid, idx in path:
            entry = None
            if ltid >= 0:
                entries = entries_by.get(ltid)
                if entries is not None and idx < len(entries):
                    entry = entries[idx]
            bound.append((tid, entry))
        out.append(verdict)
    return out


def counter_deltas(
    verdicts: Sequence[Verdict],
    cache: EntryIndexCache,
    shipped: dict,
) -> list[tuple]:
    """Per-entry flow-counter deltas for the entries this burst touched.

    The worker ships, with every burst reply, how much each touched
    logical entry's counters advanced since the last reply —
    ``(ltid, idx, d_packets, d_bytes)`` — and tracks what it already
    reported in ``shipped`` (``id(entry) -> (packets, bytes)``). The
    engine folds the deltas into its own ledger keyed by shadow entry,
    which makes flow statistics *fault-exact*: a worker that dies holding
    an unsent reply takes exactly its unacked deltas to the grave, and
    the retried sub-burst re-earns them on whichever replica re-executes
    it. Counter recording happens only at verdict path hops (see
    ``CompiledDatapath._forward``), so walking the paths finds every
    touched entry.

    ``shipped`` MUST be pruned when entry objects are swapped by a
    flow-mod (see the worker's ``mods`` handler): ``id()`` values can be
    recycled, and a stale baseline under a recycled id would corrupt the
    deltas.
    """
    index, _ = cache.maps()
    touched: dict[int, object] = {}
    for verdict in verdicts:
        for _tid, entry in verdict.path:
            if entry is None:
                continue
            if entry.origin is not None:
                # A decomposition leaf records into its logical rule's
                # (shared) counters: report the delta under the logical
                # entry, once, however many leaves alias it.
                entry = entry.origin
            touched[id(entry)] = entry
    out = []
    for eid, entry in touched.items():
        pos = index.get(eid)
        if pos is None:
            continue  # synthetic dispatch entry: no logical counters
        c = entry.counters
        prev = shipped.get(eid, (0, 0))
        d_packets, d_bytes = c.packets - prev[0], c.bytes - prev[1]
        if d_packets or d_bytes:
            shipped[eid] = (c.packets, c.bytes)
            out.append((pos[0], pos[1], d_packets, d_bytes))
    return out


def encode_verdict(verdict: Verdict, cache: EntryIndexCache) -> tuple:
    """Scalar convenience over :func:`encode_verdicts`."""
    return encode_verdicts([verdict], cache)[0]


def decode_verdict(wire: tuple, cache: EntryIndexCache) -> Verdict:
    """Scalar convenience over :func:`decode_verdicts`."""
    return decode_verdicts([wire], cache)[0]
