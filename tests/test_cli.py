"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_packet_spec
from repro.openflow import serialize
from repro.usecases import firewall, loadbalancer


@pytest.fixture()
def firewall_file(tmp_path):
    path = tmp_path / "fw.json"
    serialize.save(firewall.build_single_stage(), str(path))
    return str(path)


@pytest.fixture()
def lb_file(tmp_path):
    path = tmp_path / "lb.json"
    serialize.save(loadbalancer.build_single_table(6), str(path))
    return str(path)


class TestPacketSpec:
    def test_full_spec(self):
        pkt = parse_packet_spec(
            "in_port=2,ipv4_src=10.0.0.1,ipv4_dst=192.0.2.1,proto=tcp,dport=80"
        )
        assert pkt.in_port == 2
        from repro.openflow.fields import field_by_name
        from repro.packet.parser import parse

        view = parse(pkt)
        assert field_by_name("tcp_dst").extract(view) == 80
        assert field_by_name("ipv4_dst").extract(view) == 0xC0000201

    def test_l2_only(self):
        pkt = parse_packet_spec("in_port=1,eth_dst=02:00:00:00:00:05")
        from repro.packet.parser import parse, PROTO_IPV4

        assert not parse(pkt).has(PROTO_IPV4)

    def test_vlan_and_udp(self):
        pkt = parse_packet_spec("vlan=100,proto=udp,dport=53")
        from repro.openflow.fields import field_by_name
        from repro.packet.parser import parse

        view = parse(pkt)
        assert field_by_name("vlan_vid").extract(view) == 100
        assert field_by_name("udp_dst").extract(view) == 53

    def test_bad_key_rejected(self):
        with pytest.raises(SystemExit):
            parse_packet_spec("bogus=1")

    def test_bad_proto_rejected(self):
        with pytest.raises(SystemExit):
            parse_packet_spec("proto=sctp")


class TestCommands:
    def test_show(self, firewall_file, capsys):
        assert main(["show", firewall_file]) == 0
        out = capsys.readouterr().out
        assert "table 0" in out and "entries" in out

    def test_compile(self, firewall_file, capsys):
        assert main(["compile", firewall_file, "--sources"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out
        assert "def _match" in out

    def test_compile_lb_decomposition_toggle(self, lb_file, capsys):
        main(["compile", lb_file])
        with_decomp = capsys.readouterr().out
        main(["compile", lb_file, "--no-decompose"])
        without = capsys.readouterr().out
        assert "decomposed[" in with_decomp
        assert "linked_list" in without

    def test_run_agreement(self, firewall_file, capsys):
        rc = main([
            "run", firewall_file,
            "--pkt", "in_port=1,ipv4_dst=192.0.2.1,proto=tcp,dport=80",
            "--pkt", "in_port=1,ipv4_dst=192.0.2.1,proto=tcp,dport=22",
            "--pkt", "in_port=2,ipv4_src=192.0.2.1,proto=tcp,sport=80",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DISAGREE" not in out
        assert out.count("eswitch:") == 3

    def test_model(self, firewall_file, capsys):
        assert main(["model", firewall_file]) == 0
        out = capsys.readouterr().out
        assert "model-ub" in out and "cycles/packet" in out

    def test_bench(self, firewall_file, capsys):
        assert main(["bench", firewall_file, "--flows", "50",
                     "--packets", "500"]) == 0
        out = capsys.readouterr().out
        assert "ESWITCH" in out and "OVS" in out and "Mpps" in out

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["show", "/no/such/file.json"])

    def test_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(SystemExit):
            main(["show", str(bad)])


class TestIpv6Spec:
    def test_v6_packet_spec(self):
        import ipaddress

        from repro.openflow.fields import field_by_name
        from repro.packet.parser import parse

        pkt = parse_packet_spec("ipv6_dst=2001:db8::7,proto=tcp,dport=443")
        view = parse(pkt)
        assert field_by_name("ipv6_dst").extract(view) == int(
            ipaddress.IPv6Address("2001:db8::7")
        )
        assert field_by_name("tcp_dst").extract(view) == 443

    def test_icmpv6_spec(self):
        from repro.openflow.fields import field_by_name
        from repro.packet.parser import parse

        pkt = parse_packet_spec("proto=icmpv6")
        assert field_by_name("icmpv6_type").extract(parse(pkt)) == 128
