"""Benchmark-suite configuration."""

import sys
from pathlib import Path

_here = Path(__file__).parent
sys.path.insert(0, str(_here))
# Reuse the test suite's packet/pipeline strategies for probe generation.
sys.path.insert(0, str(_here.parent / "tests"))
