"""Per-rule statistics consistency across datapaths.

Flow counters are control-plane-visible state: however a packet reaches
its verdict — interpreter walk, compiled fast path, or an OVS cache hit —
the matched rules' packet counters must agree.
"""

import random

from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.usecases import firewall, gateway


def packet_counts(pipeline):
    return {
        (t.table_id, e.entry_id - min(x.entry_id for x in t))
        if False else (t.table_id, i): e.counters.packets
        for t in pipeline
        for i, e in enumerate(t)
    }


class TestStatsConsistency:
    def test_firewall_counters_agree(self):
        es_p = firewall.build_single_stage()
        ovs_p = firewall.build_single_stage()
        ref_p = firewall.build_single_stage()
        es = ESwitch.from_pipeline(es_p)
        ovs = OvsSwitch(ovs_p)
        rng = random.Random(2)
        import strategies as sts

        packets = [sts.random_packet(rng) for _ in range(40)]
        for pkt in packets * 3:  # repeats exercise the cached paths
            es.process(pkt.copy())
            ovs.process(pkt.copy())
            ref_p.process(pkt.copy())
        assert packet_counts(es_p) == packet_counts(ref_p)
        assert packet_counts(ovs_p) == packet_counts(ref_p)

    def test_gateway_counters_agree(self):
        build = lambda: gateway.build(n_ce=2, users_per_ce=3, n_prefixes=50)
        es_p, fib = build()
        ovs_p, _ = build()
        ref_p, _ = build()
        es = ESwitch.from_pipeline(es_p)
        ovs = OvsSwitch(ovs_p)
        flows = gateway.traffic(fib, 12, n_ce=2, users_per_ce=3)
        for _round in range(3):
            for i in range(len(flows)):
                es.process(flows[i].copy())
                ovs.process(flows[i].copy())
                ref_p.process(flows[i].copy())
        assert packet_counts(es_p) == packet_counts(ref_p)
        assert packet_counts(ovs_p) == packet_counts(ref_p)
        # Sanity: the cached paths actually carried most of the load.
        assert ovs.stats.microflow_hits > 0
