"""Tests for the optional range-search table template (Section 3.1's
"can easily be added in the future" extension)."""

import random

import pytest

from repro.core import CompileConfig, ESwitch
from repro.core.analysis import TemplateKind, port_runs, range_applicable, select_template
from repro.core.codegen import CompileError, compile_table
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.packet import PacketBuilder

RANGE_ON = CompileConfig(enable_range=True)


def port_block_table(blocks):
    """``blocks``: [(lo, hi, port)] — one exact rule per port in each block."""
    t = FlowTable(0)
    for lo, hi, out in blocks:
        for p in range(lo, hi + 1):
            t.add(FlowEntry(Match(tcp_dst=p), priority=1, actions=[Output(out)]))
    t.add(FlowEntry(Match(), priority=0, actions=[]))
    return t


class TestAnalysis:
    def test_runs_coalesce(self):
        runs = port_runs(port_block_table([(1000, 1063, 1), (2000, 2031, 2)]).entries)
        assert runs is not None
        assert [(lo, hi) for lo, hi, _e in runs] == [(1000, 1063), (2000, 2031)]

    def test_different_outcomes_split_runs(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        t.add(FlowEntry(Match(tcp_dst=81), priority=1, actions=[Output(2)]))
        runs = port_runs(t.entries)
        assert runs is not None and len(runs) == 2

    def test_disabled_by_default(self):
        table = port_block_table([(1000, 1200, 1)])
        assert not range_applicable(table.entries)
        assert select_template(table.entries) is TemplateKind.HASH

    def test_enabled_selects_range_when_compressive(self):
        table = port_block_table([(1000, 1200, 1)])
        assert select_template(table.entries, RANGE_ON) is TemplateKind.RANGE

    def test_uncompressive_stays_hash(self):
        # Scattered ports: runs ~ rules, hash stays the better template.
        t = FlowTable(0)
        for i in range(20):
            t.add(FlowEntry(Match(tcp_dst=1000 + 7 * i), priority=1,
                            actions=[Output(i % 3)]))
        assert select_template(t.entries, RANGE_ON) is TemplateKind.HASH

    def test_non_port_field_rejected(self):
        t = FlowTable(0)
        for i in range(10):
            t.add(FlowEntry(Match(eth_dst=i), priority=1, actions=[Output(1)]))
        assert port_runs(t.entries) is None


class TestCompiledRange:
    def probe(self, compiled, dport):
        from repro.openflow.fields import field_by_name
        from repro.packet.parser import parse
        from repro.simcpu.recorder import NULL_METER

        pkt = PacketBuilder().eth().ipv4().tcp(dst_port=dport).build()
        view = parse(pkt)
        etype = field_by_name("eth_type").extract(view) or 0
        return compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype,
                           view.l4_proto, NULL_METER)

    def test_interval_lookup(self):
        table = port_block_table([(1000, 1063, 1), (2000, 2031, 2)])
        compiled = compile_table(table, RANGE_ON)
        assert compiled.kind is TemplateKind.RANGE
        assert self.probe(compiled, 1000).apply_actions[0] == Output(1)
        assert self.probe(compiled, 1063).apply_actions[0] == Output(1)
        assert self.probe(compiled, 2010).apply_actions[0] == Output(2)

    def test_gaps_hit_catch_all(self):
        table = port_block_table([(1000, 1063, 1), (2000, 2031, 2)])
        compiled = compile_table(table, RANGE_ON)
        for dport in (999, 1064, 1999, 2032, 40000):
            out = self.probe(compiled, dport)
            assert not out.apply_actions  # the drop catch-all

    def test_udp_packet_guarded(self):
        table = port_block_table([(1000, 1063, 1)])
        compiled = compile_table(table, RANGE_ON)
        from repro.openflow.fields import field_by_name
        from repro.packet.parser import parse
        from repro.simcpu.recorder import NULL_METER

        pkt = PacketBuilder().eth().ipv4().udp(dst_port=1000).build()
        view = parse(pkt)
        etype = field_by_name("eth_type").extract(view) or 0
        out = compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype,
                          view.l4_proto, NULL_METER)
        assert not out.apply_actions  # catch-all, not the TCP rule

    def test_memory_compression(self):
        table = port_block_table([(1000, 2023, 1)])  # 1024 rules
        compiled = compile_table(table, RANGE_ON)
        assert len(compiled.namespace["_STARTS"]) == 1

    def test_forced_on_bad_table_raises(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(eth_dst=1), priority=1, actions=[Output(1)]))
        with pytest.raises(CompileError):
            compile_table(t, RANGE_ON, kind=TemplateKind.RANGE)


class TestEndToEnd:
    def test_differential_vs_interpreter(self):
        pipeline = Pipeline([port_block_table([(1000, 1100, 1), (5000, 5050, 2)])])
        sw = ESwitch.from_pipeline(
            Pipeline([port_block_table([(1000, 1100, 1), (5000, 5050, 2)])]),
            config=RANGE_ON,
        )
        assert sw.table_kinds()[0] == "range"
        rng = random.Random(3)
        for _ in range(200):
            dport = rng.choice([rng.randrange(1, 65535), rng.randrange(1000, 1101),
                                rng.randrange(5000, 5051)])
            pkt = PacketBuilder().eth().ipv4().tcp(dst_port=dport).build()
            assert (sw.process(pkt.copy()).summary()
                    == pipeline.process(pkt.copy()).summary()), dport

    def test_update_rebuilds_range(self):
        sw = ESwitch.from_pipeline(
            Pipeline([port_block_table([(1000, 1100, 1)])]), config=RANGE_ON
        )
        from repro.openflow.instructions import ApplyActions
        from repro.openflow.messages import FlowMod, FlowModCommand

        sw.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, 0, Match(tcp_dst=1101), priority=1,
                    instructions=(ApplyActions([Output(1)]),))
        )
        assert sw.table_kinds()[0] == "range"
        pkt = PacketBuilder().eth().ipv4().tcp(dst_port=1101).build()
        assert sw.process(pkt).forwarded

    def test_autoderive_knows_range(self):
        from repro.core.autoderive import derive_model

        sw = ESwitch.from_pipeline(
            Pipeline([port_block_table([(1000, 1100, 1)])]), config=RANGE_ON
        )
        model = derive_model(sw)
        assert any("range template" in s.name for s in model.stages)
