"""Tests for the ESWITCH update engine (Section 3.4)."""

import pytest

from repro.core import CompileConfig, ESwitch
from repro.core.analysis import TemplateKind
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.usecases import l2, l3


def add(table_id, priority=1, port=1, **match):
    return FlowMod(
        FlowModCommand.ADD,
        table_id,
        Match(**match),
        priority=priority,
        instructions=(ApplyActions([Output(port)]),),
    )


def delete(table_id, priority=0, **match):
    return FlowMod(FlowModCommand.DELETE, table_id, Match(**match), priority=priority)


def mac_pkt(dst):
    return PacketBuilder().eth(dst=dst).ipv4().tcp().build()


class TestIncrementalHash:
    def setup_method(self):
        p, self.macs = l2.build(50)
        self.sw = ESwitch.from_pipeline(p)

    def test_add_is_incremental(self):
        self.sw.apply_flow_mod(add(0, eth_dst=0xABCD))
        assert self.sw.update_stats.incremental == 1
        assert self.sw.update_stats.rebuilds == 0
        assert self.sw.process(mac_pkt(0xABCD)).forwarded

    def test_delete_is_incremental(self):
        self.sw.apply_flow_mod(delete(0, priority=1, eth_dst=self.macs[0]))
        assert self.sw.update_stats.incremental == 1
        assert not self.sw.process(mac_pkt(self.macs[0])).forwarded

    def test_same_code_object_after_incremental(self):
        fn_before = self.sw.compiled_table(0).fn
        self.sw.apply_flow_mod(add(0, eth_dst=0xABCD))
        assert self.sw.compiled_table(0).fn is fn_before  # non-destructive

    def test_catch_all_update_incremental(self):
        self.sw.apply_flow_mod(add(0, priority=0, port=7))
        assert self.sw.update_stats.incremental == 1
        assert self.sw.process(mac_pkt(0xDEAD)).output_ports == [7]

    def test_prereq_violation_falls_back(self):
        """Adding a differently-shaped rule breaks the global mask: the
        table falls back with a rebuild — and because the fallen-back
        table is decomposable, ESWITCH promotes it straight back to fast
        templates via table decomposition (Section 3.2)."""
        self.sw.apply_flow_mod(add(0, priority=5, tcp_dst=80))
        assert self.sw.update_stats.fallbacks == 1
        assert self.sw.table_kinds()[0].startswith("decomposed[")
        # And it still forwards correctly, on both rule shapes.
        assert self.sw.process(mac_pkt(self.macs[3])).forwarded
        http = PacketBuilder().eth(dst=0x123456).ipv4().tcp(dst_port=80).build()
        assert self.sw.process(http).forwarded

    def test_fallback_without_decomposition_is_linked_list(self):
        p, macs = l2.build(50)
        sw = ESwitch.from_pipeline(p, config=CompileConfig(decompose=False))
        sw.apply_flow_mod(add(0, priority=5, tcp_dst=80))
        assert sw.compiled_table(0).kind is TemplateKind.LINKED_LIST
        assert sw.process(mac_pkt(macs[3])).forwarded


class TestIncrementalLpm:
    def setup_method(self):
        p, self.fib = l3.build(100)
        self.sw = ESwitch.from_pipeline(p)

    def test_route_add_incremental(self):
        self.sw.apply_flow_mod(add(0, priority=24, port=9, ipv4_dst="203.0.113.0/24"))
        assert self.sw.update_stats.incremental == 1
        pkt = PacketBuilder().eth().ipv4(dst="203.0.113.55").udp().build()
        assert self.sw.process(pkt).output_ports == [9]

    def test_route_delete_incremental(self):
        value, depth, _port = self.fib[0]
        from repro.net.addresses import int_to_ip

        self.sw.apply_flow_mod(delete(0, priority=depth,
                                      ipv4_dst=f"{int_to_ip(value)}/{depth}"))
        assert self.sw.update_stats.incremental == 1

    def test_lpm_kind_stable_across_updates(self):
        for i in range(5):
            self.sw.apply_flow_mod(
                add(0, priority=24, port=i, ipv4_dst=f"203.0.{i}.0/24")
            )
        assert self.sw.compiled_table(0).kind is TemplateKind.LPM


class TestDirectRebuild:
    def test_direct_always_rebuilds(self):
        """'Complete rebuilding happens only for the direct code template
        (unconditionally)'."""
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        assert sw.compiled_table(0).kind is TemplateKind.DIRECT
        sw.apply_flow_mod(add(0, priority=2, tcp_dst=443))
        assert sw.update_stats.rebuilds == 1
        assert sw.update_stats.incremental == 0

    def test_direct_upgrades_to_hash_when_growing(self):
        t = FlowTable(0)
        for i in range(3):
            t.add(FlowEntry(Match(eth_dst=i), priority=1, actions=[Output(1)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        assert sw.compiled_table(0).kind is TemplateKind.DIRECT
        for i in range(3, 8):
            sw.apply_flow_mod(add(0, eth_dst=i))
        assert sw.compiled_table(0).kind is TemplateKind.HASH


class TestNewTables:
    def test_flow_mod_creates_table(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        sw = ESwitch.from_pipeline(Pipeline([t]))
        sw.apply_flow_mod(add(3, eth_dst=5))
        assert 3 in sw.table_kinds()


class TestTransactions:
    def setup_method(self):
        p, self.macs = l2.build(20)
        self.sw = ESwitch.from_pipeline(p)

    def test_batch_applies_atomically(self):
        mods = [add(0, eth_dst=0x9000 + i) for i in range(5)]
        self.sw.apply_flow_mods(mods)
        for i in range(5):
            assert self.sw.process(mac_pkt(0x9000 + i)).forwarded

    def test_failed_batch_rolls_back(self):
        bad = FlowMod(
            FlowModCommand.ADD, 0, Match(eth_dst=1), priority=-1  # invalid
        )
        mods = [add(0, eth_dst=0x9000), bad]
        with pytest.raises(ValueError):
            self.sw.apply_flow_mods(mods)
        # The first mod must have been rolled back too.
        assert not self.sw.process(mac_pkt(0x9000)).forwarded
        assert len(self.sw.pipeline.table(0)) == 20

    def test_rollback_restores_datapath_behavior(self):
        victim = self.macs[0]
        bad = FlowMod(FlowModCommand.ADD, 0, Match(eth_dst=2), priority=-1)
        with pytest.raises(ValueError):
            self.sw.apply_flow_mods(
                [delete(0, priority=1, eth_dst=victim), bad]
            )
        assert self.sw.process(mac_pkt(victim)).forwarded

    def test_rollback_removes_created_tables(self):
        bad = FlowMod(FlowModCommand.ADD, 7, Match(eth_dst=2), priority=-1)
        with pytest.raises(ValueError):
            self.sw.apply_flow_mods([add(7, eth_dst=1), bad])
        assert 7 not in self.sw.table_kinds()

    def test_rollback_created_table_clears_deferred_rebuild(self):
        """Regression: a table created *and* made decomposed inside a failed
        batch left its id in the deferred-rebuild queue after rollback, so
        the next packet's flush crashed looking up the vanished table."""
        mods = [add(7, eth_dst=0x7000 + i) for i in range(8)]
        mods.append(add(7, priority=5, tcp_dst=80))  # mixed shape: decomposes
        mods.append(add(7, eth_dst=0x7FFF))  # decomposed group: deferred rebuild
        mods.append(FlowMod(FlowModCommand.ADD, 7, Match(eth_dst=2), priority=-1))
        with pytest.raises(ValueError):
            self.sw.apply_flow_mods(mods)
        # The scenario must actually have queued a deferred group rebuild.
        assert self.sw.update_stats.group_rebuilds >= 1
        # Processing (which flushes deferred rebuilds) must not crash, and
        # the rolled-back table must be gone.
        assert self.sw.process(mac_pkt(self.macs[0])).forwarded
        assert 7 not in self.sw.table_kinds()


class TestStrictDelete:
    """OFPFC_DELETE_STRICT, including the falsy priority-0 regression: a
    strict delete at priority 0 used to degrade to a non-strict delete and
    wipe matching entries at *every* priority."""

    def _switch_with_duplicates(self, make):
        """Same match at priorities 5 and 0, forwarding to ports 5 and 9."""
        sw = make(l2.build(20)[0])
        sw.apply_flow_mod(add(0, priority=5, port=5, eth_dst=0xAA))
        sw.apply_flow_mod(add(0, priority=0, port=9, eth_dst=0xAA))
        return sw

    @pytest.mark.parametrize(
        "make", [ESwitch.from_pipeline, OvsSwitch], ids=["eswitch", "ovs"]
    )
    def test_strict_priority_zero_deletes_only_that_priority(self, make):
        sw = self._switch_with_duplicates(make)
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=0xAA),
                    priority=0, strict=True)
        )
        # The priority-5 entry survives and still forwards.
        assert sw.process(mac_pkt(0xAA)).output_ports == [5]
        assert len([e for e in sw.pipeline.table(0) if e.match == Match(eth_dst=0xAA)]) == 1

    @pytest.mark.parametrize(
        "make", [ESwitch.from_pipeline, OvsSwitch], ids=["eswitch", "ovs"]
    )
    def test_strict_delete_of_shadowing_entry_reinstates_survivor(self, make):
        sw = self._switch_with_duplicates(make)
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=0xAA),
                    priority=5, strict=True)
        )
        # The shadowed priority-0 duplicate takes over on the fast path.
        assert sw.process(mac_pkt(0xAA)).output_ports == [9]

    @pytest.mark.parametrize(
        "make", [ESwitch.from_pipeline, OvsSwitch], ids=["eswitch", "ovs"]
    )
    def test_nonstrict_delete_ignores_priority(self, make):
        sw = self._switch_with_duplicates(make)
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=0xAA), priority=0)
        )
        assert not sw.process(mac_pkt(0xAA)).forwarded

    def test_noop_strict_delete_is_free_and_harmless(self):
        sw = self._switch_with_duplicates(ESwitch.from_pipeline)
        before = len(sw.pipeline.table(0))
        # Wrong priority: nothing matches, nothing changes, nothing charged.
        cost = sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=0xAA),
                    priority=3, strict=True)
        )
        assert cost == 0.0
        assert len(sw.pipeline.table(0)) == before
        assert sw.process(mac_pkt(0xAA)).output_ports == [5]


class TestLpmSlotRecycling:
    """Regression: incremental LPM deletes leaked their ``_OUT`` outcome
    slot, so route add/delete churn grew the namespace list forever."""

    def test_route_churn_keeps_outcome_list_bounded(self):
        p, _fib = l3.build(100)
        sw = ESwitch.from_pipeline(p)
        compiled = sw.compiled_table(0)
        baseline = len(compiled.namespace["_OUT"])
        pkt = PacketBuilder().eth().ipv4(dst="203.0.113.55").udp().build()
        miss_ports = sw.process(pkt.copy()).output_ports
        for i in range(50):
            sw.apply_flow_mod(
                add(0, priority=24, port=9, ipv4_dst="203.0.113.0/24")
            )
            assert sw.process(pkt.copy()).output_ports == [9]
            sw.apply_flow_mod(delete(0, priority=24, ipv4_dst="203.0.113.0/24"))
            assert sw.process(pkt.copy()).output_ports == miss_ports
        # Every delete recycled its slot: at most one slot of growth, not 50.
        assert len(compiled.namespace["_OUT"]) <= baseline + 1
        assert sw.update_stats.incremental == 100
        assert sw.update_stats.rebuilds == 0

    def test_churned_table_equals_recompiled_oracle(self):
        p, _fib = l3.build(60)
        sw = ESwitch.from_pipeline(p)
        for i in range(10):
            sw.apply_flow_mod(add(0, priority=24, port=i + 1,
                                  ipv4_dst=f"203.0.{i}.0/24"))
        for i in range(0, 10, 2):
            sw.apply_flow_mod(delete(0, ipv4_dst=f"203.0.{i}.0/24"))
        fresh = FlowTable(0)
        for e in sw.pipeline.table(0).entries:
            fresh.add(FlowEntry(e.match, priority=e.priority,
                                instructions=e.instructions))
        oracle = ESwitch.from_pipeline(Pipeline([fresh]))
        for i in range(10):
            pkt = PacketBuilder().eth().ipv4(dst=f"203.0.{i}.77").udp().build()
            assert (sw.process(pkt.copy()).summary()
                    == oracle.process(pkt.copy()).summary())


class TestUpdateCosts:
    def test_incremental_cheaper_than_rebuild(self):
        p, _ = l2.build(50)
        sw = ESwitch.from_pipeline(p)
        inc = sw.apply_flow_mod(add(0, eth_dst=0xAA))
        reb = sw.apply_flow_mod(add(0, priority=5, tcp_dst=80))  # fallback
        assert inc < reb

    def test_no_cache_invalidation_concept(self):
        """ESWITCH has no flow cache: updates never flush datapath state
        for other tables."""
        p, fib = l3.build(30)
        sw = ESwitch.from_pipeline(p)
        before = sw.compiled_table(0).fn
        sw.apply_flow_mod(add(0, priority=24, port=3, ipv4_dst="203.0.113.0/24"))
        assert sw.compiled_table(0).fn is before
