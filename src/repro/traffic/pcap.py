"""Classic libpcap file I/O for traffic traces.

Lets generated workloads be exported for inspection with standard tools
(tcpdump/wireshark) and lets externally captured traces drive the
simulated switches. Only the original microsecond-resolution pcap format
(magic ``0xa1b2c3d4``, LINKTYPE_ETHERNET) is produced; both byte orders
are accepted on read.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

from repro.packet.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Raised on malformed pcap files."""


def write_pcap(
    path: str,
    packets: Iterable[Packet],
    snaplen: int = 65535,
    usec_per_packet: int = 10,
) -> int:
    """Write packets to ``path``; returns the packet count.

    Packets are stamped with synthetic, evenly spaced timestamps
    (``usec_per_packet`` apart) — the simulator has no wall clock.
    """
    count = 0
    with open(path, "wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET)
        )
        ts = 0
        for pkt in packets:
            data = bytes(pkt.data[:snaplen])
            fh.write(
                _RECORD_HEADER.pack(
                    ts // 1_000_000, ts % 1_000_000, len(data), len(pkt.data)
                )
            )
            fh.write(data)
            ts += usec_per_packet
            count += 1
    return count


def read_pcap(path: str, in_port: int = 0) -> list[Packet]:
    """Read every frame in a pcap file into :class:`Packet` objects."""
    return list(iter_pcap(path, in_port))


def iter_pcap(path: str, in_port: int = 0) -> Iterator[Packet]:
    with open(path, "rb") as fh:
        head = fh.read(_GLOBAL_HEADER.size)
        if len(head) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", head[:4])[0]
        if magic == PCAP_MAGIC:
            endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            endian = ">"
        else:
            raise PcapError(f"not a pcap file (magic {magic:#x})")
        fields = struct.unpack(endian + "IHHiIII", head)
        if fields[6] != LINKTYPE_ETHERNET:
            raise PcapError(f"unsupported link type {fields[6]}")
        record = struct.Struct(endian + "IIII")
        while True:
            rec = fh.read(record.size)
            if not rec:
                return
            if len(rec) < record.size:
                raise PcapError("truncated pcap record header")
            _ts_sec, _ts_usec, incl_len, _orig_len = record.unpack(rec)
            data = fh.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record body")
            yield Packet(data, in_port=in_port)
