"""The Open vSwitch baseline — a behavioral model of the OVS datapath.

Section 2.2's four-level hierarchy, faithfully reproduced:

1. **microflow cache** (:mod:`repro.ovs.microflow`) — per-transport-
   connection exact-match store; any header change (even TTL) misses;
2. **megaflow cache** (:mod:`repro.ovs.megaflow`) — wildcard match store
   over disjoint traffic aggregates, looked up by tuple space search and
   populated reactively by the slow path;
3. **vswitchd** (:mod:`repro.ovs.vswitchd`) — the complete OpenFlow
   pipeline (the reference interpreter), computing megaflow wildcards from
   the entries each packet probed;
4. the **controller**, reached on table miss.

:class:`repro.ovs.switch.OvsSwitch` wires the levels together, charges the
cost model, and exposes the per-level hit statistics Fig. 14 plots.
"""

from repro.ovs.flowkey import EMC_KEY_FIELDS, extract_key, emc_key
from repro.ovs.microflow import MicroflowCache
from repro.ovs.megaflow import MegaflowCache, MegaflowEntry, WildcardMode
from repro.ovs.vswitchd import Vswitchd
from repro.ovs.switch import OvsSwitch, OvsStats

__all__ = [
    "EMC_KEY_FIELDS",
    "extract_key",
    "emc_key",
    "MicroflowCache",
    "MegaflowCache",
    "MegaflowEntry",
    "WildcardMode",
    "Vswitchd",
    "OvsSwitch",
    "OvsStats",
]
