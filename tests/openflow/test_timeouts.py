"""Tests for idle/hard flow timeouts and the expiry manager."""

import pytest

from repro.core import ESwitch
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.openflow.timeouts import ExpiryManager
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder


def mac_pkt(dst=0xAA):
    return PacketBuilder().eth(dst=dst).ipv4().tcp().build()


def build_switch(kind="es", **entry_kw):
    t = FlowTable(0)
    t.add(FlowEntry(Match(eth_dst=0xAA), priority=1, actions=[Output(1)], **entry_kw))
    t.add(FlowEntry(Match(), priority=0, actions=[]))
    pipeline = Pipeline([t])
    if kind == "es":
        return ESwitch.from_pipeline(pipeline)
    return OvsSwitch(pipeline)


class TestEntryFields:
    def test_defaults_permanent(self):
        e = FlowEntry(Match(), priority=1, actions=[])
        assert e.idle_timeout == 0 and e.hard_timeout == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FlowEntry(Match(), priority=1, actions=[], idle_timeout=-1)

    def test_flow_mod_carries_timeouts(self):
        mod = FlowMod(FlowModCommand.ADD, 0, Match(), idle_timeout=5, hard_timeout=9)
        entry = mod.to_entry()
        assert entry.idle_timeout == 5 and entry.hard_timeout == 9


class TestHardTimeout:
    @pytest.mark.parametrize("kind", ["es", "ovs"])
    def test_expires_regardless_of_traffic(self, kind):
        sw = build_switch(kind, hard_timeout=10)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        for t in (3.0, 6.0, 9.0):
            sw.process(mac_pkt())  # active, but hard timeout ignores that
            assert mgr.tick(t) == []
        expired = mgr.tick(10.0)
        assert len(expired) == 1 and expired[0][2] == "hard"
        assert not sw.process(mac_pkt()).forwarded  # rule gone
        assert mgr.expired_hard == 1

    def test_permanent_entries_untouched(self):
        sw = build_switch("es")
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        assert mgr.tick(1e9) == []
        assert sw.process(mac_pkt()).forwarded


class TestIdleTimeout:
    @pytest.mark.parametrize("kind", ["es", "ovs"])
    def test_traffic_keeps_entry_alive(self, kind):
        sw = build_switch(kind, idle_timeout=10)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        for t in (5.0, 10.0, 15.0, 20.0):
            sw.process(mac_pkt())
            assert mgr.tick(t) == [], t
        # Now go quiet: expires 10s after the last activity tick.
        assert mgr.tick(29.0) == []
        expired = mgr.tick(30.5)
        assert len(expired) == 1 and expired[0][2] == "idle"
        assert mgr.expired_idle == 1

    def test_idle_expiry_without_any_traffic(self):
        sw = build_switch("es", idle_timeout=4)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        assert len(mgr.tick(4.0)) == 1


class TestManagerMechanics:
    def test_tracks_only_timed_entries(self):
        sw = build_switch("es", idle_timeout=5)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        assert mgr.tracked_count == 1  # the catch-all is permanent

    def test_new_flows_observed_later(self):
        sw = build_switch("es")
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, 0, Match(eth_dst=0xBB), priority=1,
                    instructions=(ApplyActions([Output(2)]),), hard_timeout=3)
        )
        mgr.observe(10.0)  # installed at t=10
        assert mgr.tick(12.0) == []
        assert len(mgr.tick(13.0)) == 1

    def test_clock_cannot_go_backwards(self):
        mgr = ExpiryManager(build_switch("es"))
        mgr.tick(5.0)
        with pytest.raises(ValueError):
            mgr.tick(4.0)

    def test_externally_removed_entries_forgotten(self):
        sw = build_switch("es", hard_timeout=5)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=0xAA), priority=1)
        )
        assert mgr.tick(100.0) == []  # nothing to expire; no crash

    def test_callback_invoked(self):
        events = []
        sw = build_switch("es", hard_timeout=1)
        mgr = ExpiryManager(sw, on_expired=lambda tid, e, r: events.append((tid, r)))
        mgr.observe(0.0)
        mgr.tick(2.0)
        assert events == [(0, "hard")]

    def test_gateway_nat_entry_expiry_end_to_end(self):
        """Reactive NAT rules with an idle timeout age out and re-punt."""
        from repro.controller import GatewayController
        from repro.usecases import gateway

        pipeline, fib = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=30,
                                      provision_users=False)
        sw = ESwitch.from_pipeline(pipeline)
        ctrl = GatewayController(sw, n_ce=1, users_per_ce=1)
        sw.packet_in_handler = ctrl
        mgr = ExpiryManager(sw)
        flows = gateway.traffic(fib, 1, n_ce=1, users_per_ce=1)

        sw.process(flows[0].copy())          # punt -> admitted
        assert sw.process(flows[0].copy()).forwarded
        # Re-install the NAT rules with an idle timeout.
        for mod in gateway.nat_flow_mods(0, 0):
            mod.idle_timeout = 30
            sw.apply_flow_mod(mod)
        mgr.observe(0.0)
        assert mgr.tick(29.0) == []
        assert len(mgr.tick(60.0)) == 2      # both NAT rules aged out
        ctrl.admitted.clear()
        verdict = sw.process(flows[0].copy())
        assert verdict.to_controller         # back to admission control


class TestEntryIdentityTracking:
    """Tracking is by entry_id, not object identity (ISSUE 4 bugfix)."""

    def test_swapped_entry_objects_are_reresolved(self):
        """Activity on a swapped-in object must still count as activity.

        Pipelines are free to replace FlowEntry objects wholesale
        (transactional rollback, snapshot restore, a sharded shadow);
        a manager holding the pre-swap reference would read frozen
        counters and idle-expire a perfectly busy flow.
        """
        import pickle

        sw = build_switch("es", idle_timeout=10)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        table = next(iter(sw.pipeline))
        # Swap every entry object; entry_ids survive the round-trip.
        table._entries = pickle.loads(pickle.dumps(table._entries))
        live = next(e for e in table if e.idle_timeout)
        live.counters.record(60)  # traffic lands on the NEW object
        assert mgr.tick(10.0) == []  # activity seen: flow stays alive
        assert mgr.tracked_count == 1
        expired = mgr.tick(25.0)  # quiet since t=10: now it ages out
        assert [r for _, _, r in expired] == ["idle"]

    def test_swapped_object_with_reset_counters_is_rebased(self):
        """A counter drop on re-resolve is a rebase, never activity."""
        import pickle

        sw = build_switch("es", idle_timeout=10)
        entry = next(e for e in next(iter(sw.pipeline)) if e.idle_timeout)
        entry.counters.record(60)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        table = next(iter(sw.pipeline))
        swapped = pickle.loads(pickle.dumps(table._entries))
        for e in swapped:
            e.counters.packets = 0
            e.counters.bytes = 0
        table._entries = swapped
        # The drop 1 -> 0 must not register as traffic: idle fires.
        expired = mgr.tick(10.0)
        assert [r for _, _, r in expired] == ["idle"]

    def test_vanished_entry_is_dropped_not_deleted_by_match(self):
        """A reused (match, priority) slot must survive the sweep."""
        sw = build_switch("es", idle_timeout=5)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        # The timed rule goes away; an unrelated permanent rule takes
        # the exact same (match, priority) slot.
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.DELETE, 0, Match(eth_dst=0xAA), priority=1)
        )
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, 0, Match(eth_dst=0xAA), priority=1,
                    instructions=(ApplyActions([Output(4)]),))
        )
        assert mgr.tick(100.0) == []  # tracked id dropped, nothing deleted
        assert sw.process(mac_pkt()).forwarded  # the usurper lives on


class TestTimeoutPrecedence:
    """OpenFlow 1.3 §5.5: the hard timeout bounds total lifetime."""

    def test_hard_wins_when_both_fire_same_tick(self):
        sw = build_switch("es", idle_timeout=5, hard_timeout=10)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        expired = mgr.tick(10.0)  # idle due since t=5, hard due now
        assert [r for _, _, r in expired] == ["hard"]
        assert mgr.expired_hard == 1 and mgr.expired_idle == 0

    def test_busy_flow_still_expires_hard_not_idle(self):
        sw = build_switch("es", idle_timeout=5, hard_timeout=10)
        mgr = ExpiryManager(sw)
        mgr.observe(0.0)
        for t in (3.0, 6.0, 9.0):
            sw.process(mac_pkt())
            assert mgr.tick(t) == []
        sw.process(mac_pkt())  # active right up to the deadline
        expired = mgr.tick(10.0)
        assert [r for _, _, r in expired] == ["hard"]


class TestShardedExpiry:
    """ExpiryManager over a ShardedESwitch: counters live in workers."""

    def test_sweep_syncs_cross_shard_counters_first(self):
        from repro.openflow.pipeline import Pipeline
        from repro.parallel import ShardedESwitch

        t = FlowTable(0)
        t.add(FlowEntry(Match(eth_dst=0xAA), priority=1,
                        actions=[Output(1)], idle_timeout=10))
        t.add(FlowEntry(Match(), priority=0, actions=[]))
        with ShardedESwitch(Pipeline([t]), workers=2,
                            backend="thread") as eng:
            mgr = ExpiryManager(eng)
            mgr.observe(0.0)
            # All traffic is remote: only the pre-sweep sync_flow_stats
            # call lets the manager see it as activity.
            for tick_at in (5.0, 10.0, 15.0):
                eng.process_burst([mac_pkt()])
                assert mgr.tick(tick_at) == [], tick_at
            # Quiet now: ages out 10s after the last credited activity,
            # and the expiry DELETE broadcasts to every worker.
            expired = mgr.tick(25.0)
            assert [r for _, _, r in expired] == ["idle"]
            assert eng.epoch == 1  # the delete crossed the barrier
            assert not eng.process_burst([mac_pkt()])[0].forwarded

    def test_sharded_hard_expiry(self):
        from repro.openflow.pipeline import Pipeline
        from repro.parallel import ShardedESwitch

        t = FlowTable(0)
        t.add(FlowEntry(Match(eth_dst=0xAA), priority=1,
                        actions=[Output(1)], hard_timeout=4))
        t.add(FlowEntry(Match(), priority=0, actions=[]))
        with ShardedESwitch(Pipeline([t]), workers=2,
                            backend="thread") as eng:
            mgr = ExpiryManager(eng)
            mgr.observe(0.0)
            eng.process_burst([mac_pkt()])
            assert mgr.tick(3.0) == []
            assert len(mgr.tick(4.0)) == 1
            assert mgr.expired_hard == 1
