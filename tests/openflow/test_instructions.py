"""Tests for instruction types and FlowEntry instruction accessors."""

import pytest

from repro.openflow.actions import Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.match import Match


class TestInstructionTypes:
    def test_apply_actions_tuple_coercion(self):
        instr = ApplyActions([Output(1), Output(2)])
        assert isinstance(instr.actions, tuple)
        assert len(instr.actions) == 2

    def test_write_actions_tuple_coercion(self):
        assert isinstance(WriteActions([Output(1)]).actions, tuple)

    def test_goto_validates(self):
        with pytest.raises(ValueError):
            GotoTable(-1)

    def test_write_metadata_default_mask(self):
        assert WriteMetadata(value=5).mask == (1 << 64) - 1

    def test_instructions_hashable(self):
        a = ApplyActions([Output(1)])
        b = ApplyActions([Output(1)])
        assert a == b and hash(a) == hash(b)
        assert hash(GotoTable(3)) == hash(GotoTable(3))
        assert ClearActions() == ClearActions()


class TestFlowEntryAccessors:
    def test_goto_table_property(self):
        e = FlowEntry(Match(), priority=1,
                      instructions=(ApplyActions([Output(1)]), GotoTable(7)))
        assert e.goto_table == 7

    def test_no_goto(self):
        assert FlowEntry(Match(), priority=1, actions=[Output(1)]).goto_table is None

    def test_apply_and_write_accessors(self):
        e = FlowEntry(
            Match(),
            priority=1,
            instructions=(
                ApplyActions([SetField("ipv4_dst", 1)]),
                WriteActions([Output(2)]),
            ),
        )
        assert e.apply_actions == (SetField("ipv4_dst", 1),)
        assert e.write_actions == (Output(2),)

    def test_actions_shorthand_wraps_apply(self):
        e = FlowEntry(Match(), priority=1, actions=[Output(4)])
        assert isinstance(e.instructions[0], ApplyActions)

    def test_actions_and_instructions_mutually_exclusive(self):
        with pytest.raises(ValueError):
            FlowEntry(Match(), priority=1, actions=[Output(1)],
                      instructions=(GotoTable(1),))

    def test_same_rule(self):
        a = FlowEntry(Match(tcp_dst=80), priority=5, actions=[Output(1)])
        b = FlowEntry(Match(tcp_dst=80), priority=5, actions=[Output(9)])
        c = FlowEntry(Match(tcp_dst=80), priority=6, actions=[Output(1)])
        assert a.same_rule(b)
        assert not a.same_rule(c)

    def test_entry_ids_unique(self):
        a = FlowEntry(Match(), priority=1, actions=[])
        b = FlowEntry(Match(), priority=1, actions=[])
        assert a.entry_id != b.entry_id
