"""The fail-static controller session: the switch side of the OpenFlow
control channel, built to survive a flaky or absent controller.

OpenFlow 1.3 §6.4: when a switch loses contact with its controller it
enters **fail secure mode** ("packets and messages destined to the
controllers are dropped") or **fail standalone mode** (keep operating on
the installed state). :class:`ControllerSession` models exactly that
switch-side machinery over a :class:`~repro.controller.channels.
LossyChannel` — message loss, delay jitter, disconnect/reconnect — in
deterministic virtual time:

* **liveness** — echo keepalives (§7.3.8's ``OFPT_ECHO_REQUEST``) fire
  every ``echo_interval_s``; when nothing has been heard for
  ``liveness_timeout_s`` the session declares an **outage** and enters
  its fail mode. The datapath itself never stops: in *fail-standalone*
  the last-good fused pipeline keeps forwarding and table-miss punts are
  suppressed; in *fail-secure* packets destined to the controller are
  dropped (their verdicts marked so);
* **bounded punt queue** — packet-ins wait in a drop-tail queue of
  ``max_punt_queue`` entries; a flood beyond it drops the newest punt
  and counts it (``punt_queue_drops``) instead of growing without bound;
* **bounded retry** — controller-to-switch flow-mod batches lost by the
  channel are retried up to ``max_retries`` times under exponential
  backoff (modeled into virtual-time latency, never a wall-clock sleep);
* **barrier semantics** — :meth:`barrier` completes only after every punt
  queued before it has been delivered and acknowledges like
  ``OFPT_BARRIER_REPLY`` (retried like any message);
* **resynchronization** — after :meth:`reconnect` the first successful
  echo closes the outage; reactive state converges through re-punts (the
  controller re-learns whatever it missed), so a recovered session
  reaches the same pipeline a never-disconnected run would.

The session duck-types both sides: it is a switch's
``packet_in_handler`` (punts go *into* the queue) and a controller's
switch handle (``apply_flow_mod``/``submit_flow_mods`` route mods
*through* the lossy channel). ``process``/``process_burst`` wrap the
underlying switch so fail-secure verdict semantics and punt pumping stay
on the datapath's calling convention.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.controller.channels import LossyChannel
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    ErrorType,
    FlowMod,
    FlowModFailedCode,
    FlowModReply,
    PacketIn,
)
from repro.openflow.pipeline import Verdict
from repro.packet.packet import Packet
from repro.simcpu.recorder import Meter, NULL_METER


class FailMode(enum.Enum):
    """What the switch does while the controller is unreachable (§6.4)."""

    #: keep forwarding on the last-good pipeline; suppress punts.
    STANDALONE = "fail-standalone"
    #: drop packets and messages destined to the controller.
    SECURE = "fail-secure"


class SessionState(enum.Enum):
    UP = "up"
    DOWN = "down"


#: synthetic error answered for mods that never reached the switch.
CHANNEL_DOWN = ErrorMsg(
    ErrorType.BAD_REQUEST, "OFPBRC_EPERM", "controller channel is down"
)
CHANNEL_LOST = ErrorMsg(
    ErrorType.BAD_REQUEST,
    "OFPBRC_BAD_LEN",
    "flow-mod batch lost in the channel after retries",
)


@dataclass(frozen=True)
class SessionHealth:
    """Point-in-time telemetry of one controller session."""

    state: str                  #: "up" | "down"
    fail_mode: str              #: configured §6.4 mode
    outages: int                #: liveness losses declared so far
    time_down_s: float          #: virtual seconds spent disconnected
    resyncs: int                #: reconnects that closed an outage
    echo_sent: int
    echo_lost: int              #: keepalive round-trips the channel ate
    punts_delivered: int        #: packet-ins that reached the controller
    punts_lost: int             #: packet-ins the channel ate in flight
    punts_suppressed: int       #: punts not sent: fail-standalone outage
    secure_drops: int           #: packets dropped by fail-secure
    punt_queue_drops: int       #: drop-tail beyond max_punt_queue
    sends: int                  #: flow-mod batches submitted
    send_retries: int           #: channel-loss retries spent on them
    sends_failed: int           #: batches lost after exhausting retries
    barriers: int
    control_latency_s: float    #: virtual time spent on channel crossings

    @property
    def degraded(self) -> bool:
        return self.state != SessionState.UP.value

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "fail_mode": self.fail_mode,
            "outages": self.outages,
            "time_down_s": self.time_down_s,
            "resyncs": self.resyncs,
            "echo_sent": self.echo_sent,
            "echo_lost": self.echo_lost,
            "punts_delivered": self.punts_delivered,
            "punts_lost": self.punts_lost,
            "punts_suppressed": self.punts_suppressed,
            "secure_drops": self.secure_drops,
            "punt_queue_drops": self.punt_queue_drops,
            "sends": self.sends,
            "send_retries": self.send_retries,
            "sends_failed": self.sends_failed,
            "barriers": self.barriers,
            "control_latency_s": self.control_latency_s,
        }


class ControllerSession:
    """The switch-side control-channel state machine (see module doc).

    ``switch`` is any switch exposing ``process``/``process_burst`` and
    ``submit_flow_mods`` (or ``apply_flow_mod``): :class:`~repro.core.
    eswitch.ESwitch` and :class:`~repro.parallel.engine.ShardedESwitch`
    both qualify. ``controller`` is a packet-in callable (e.g.
    :class:`~repro.controller.learning_switch.LearningSwitch`); pass
    None for a proactive-only deployment. Wire the controller's switch
    handle to *this session* so its flow-mods travel the same channel.
    """

    def __init__(
        self,
        switch,
        controller=None,
        channel: "LossyChannel | None" = None,
        fail_mode: FailMode = FailMode.STANDALONE,
        echo_interval_s: float = 1.0,
        liveness_timeout_s: float = 3.0,
        max_punt_queue: int = 64,
        max_retries: int = 3,
        retry_backoff_s: float = 0.05,
    ):
        if echo_interval_s <= 0 or liveness_timeout_s <= 0:
            raise ValueError("echo interval and liveness timeout must be positive")
        if max_punt_queue < 1:
            raise ValueError("max_punt_queue must be at least 1")
        if max_retries < 0 or retry_backoff_s < 0:
            raise ValueError("retry knobs must be non-negative")
        self.switch = switch
        self.controller = controller
        self.channel = channel if channel is not None else LossyChannel()
        self.fail_mode = fail_mode
        self.echo_interval_s = echo_interval_s
        self.liveness_timeout_s = liveness_timeout_s
        self.max_punt_queue = max_punt_queue
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

        self.now = 0.0
        self.state = SessionState.UP
        self.last_heard = 0.0
        self._next_echo = echo_interval_s
        self._peer_down = False
        self._down_since: "float | None" = None
        self._xid = 0

        self.punt_queue: deque[PacketIn] = deque()
        #: one-way latency of each delivered punt (bounded reservoir of
        #: the most recent crossings) — the p99 the fabric soak reports.
        self.punt_latencies: deque[float] = deque(maxlen=4096)
        self.outages = 0
        self.time_down_s = 0.0
        self.resyncs = 0
        self.echo_sent = 0
        self.echo_lost = 0
        self.punts_delivered = 0
        self.punts_lost = 0
        self.punts_suppressed = 0
        self.secure_drops = 0
        self.punt_queue_drops = 0
        self.sends = 0
        self.send_retries = 0
        self.sends_failed = 0
        self.barriers = 0
        self.control_latency_s = 0.0

        # The session *is* the switch's packet-in sink. Switches without a
        # reactive hook (ShardedESwitch: punts come back in gathered
        # verdicts) get their punts synthesized at the process() wrapper.
        self._synthesize_punts = not hasattr(switch, "packet_in_handler")
        if not self._synthesize_punts:
            switch.packet_in_handler = self.on_packet_in

    # -- liveness ----------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.state is SessionState.UP

    def advance(self, dt: float) -> None:
        """Move virtual time forward, firing due keepalives.

        This is the session's clock: liveness loss (and recovery after
        :meth:`reconnect`) is only ever declared here, from echo
        evidence, never from the caller's knowledge of the outage.
        """
        if dt < 0:
            raise ValueError("time does not flow backwards")
        end = self.now + dt
        while self._next_echo <= end:
            self.now = self._next_echo
            self._next_echo += self.echo_interval_s
            self._send_echo()
            self._check_liveness()
        self.now = end
        self._check_liveness()
        self.pump()

    def _send_echo(self) -> None:
        self.echo_sent += 1
        self._xid += 1
        request = EchoRequest(xid=self._xid)
        out = self.channel.deliver()
        if out is None or self._peer_down:
            self.echo_lost += 1
            return
        back = self.channel.deliver()
        if back is None:
            self.echo_lost += 1
            return
        reply = EchoReply(xid=request.xid)
        assert reply.xid == request.xid
        self.control_latency_s += out + back
        self._heard()

    def _heard(self) -> None:
        self.last_heard = self.now
        if self.state is SessionState.DOWN:
            # First evidence of the controller after an outage: resync.
            self.state = SessionState.UP
            if self._down_since is not None:
                self.time_down_s += self.now - self._down_since
                self._down_since = None
            self.resyncs += 1
            self.pump()

    def _check_liveness(self) -> None:
        if (
            self.state is SessionState.UP
            and self.now - self.last_heard > self.liveness_timeout_s
        ):
            self.state = SessionState.DOWN
            self.outages += 1
            self._down_since = self.now

    def disconnect(self) -> None:
        """The controller stops answering (crash, partition). Detection
        happens through missed echoes in :meth:`advance`, not here."""
        self._peer_down = True

    def reconnect(self) -> None:
        """The controller is back. The session recovers on the next
        successful echo round-trip (again: evidence, not assertion)."""
        self._peer_down = False

    # -- the punt path -----------------------------------------------------

    def on_packet_in(self, packet_in: PacketIn) -> None:
        """The switch's packet-in sink: queue, bounded, per fail mode."""
        if self.state is SessionState.DOWN:
            # §6.4: in either fail mode nothing is sent to the controller.
            # (Fail-secure additionally drops the packet — handled at the
            # verdict in process(), where the packet's fate lives.)
            self.punts_suppressed += 1
            return
        if len(self.punt_queue) >= self.max_punt_queue:
            self.punt_queue_drops += 1  # explicit drop-tail policy
            return
        self.punt_queue.append(packet_in)

    def pump(self) -> int:
        """Deliver queued punts to the controller; returns the count.

        Each delivery is one channel crossing: a lost punt simply never
        reaches the controller (it will re-punt on the flow's next
        packet — the resync mechanism). No controller → nothing to do,
        but the bounded queue still enforced its policy.
        """
        delivered = 0
        if self.controller is None:
            self.punt_queue.clear()
            return 0
        while self.punt_queue and self.state is SessionState.UP:
            packet_in = self.punt_queue.popleft()
            latency = self.channel.deliver()
            if latency is None or self._peer_down:
                self.punts_lost += 1
                continue
            self.control_latency_s += latency
            self.punt_latencies.append(latency)
            self.punts_delivered += 1
            delivered += 1
            self.controller(packet_in)
        return delivered

    # -- the datapath face -------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        verdict = self.switch.process(pkt, meter)
        if self._synthesize_punts and verdict.to_controller:
            self._punt_from_verdict(pkt, verdict)
        self._apply_fail_mode(verdict)
        self.pump()
        return verdict

    def process_burst(
        self, pkts: "Sequence[Packet]", meter: Meter = NULL_METER
    ) -> list[Verdict]:
        verdicts = self.switch.process_burst(pkts, meter)
        for pkt, verdict in zip(pkts, verdicts):
            if self._synthesize_punts and verdict.to_controller:
                self._punt_from_verdict(pkt, verdict)
            self._apply_fail_mode(verdict)
        self.pump()
        return verdicts

    def _punt_from_verdict(self, pkt: Packet, verdict: Verdict) -> None:
        table_id = verdict.path[-1][0] if verdict.path else 0
        self.on_packet_in(PacketIn(pkt=pkt, table_id=table_id))

    def _apply_fail_mode(self, verdict: Verdict) -> None:
        if (
            self.state is SessionState.DOWN
            and self.fail_mode is FailMode.SECURE
            and verdict.to_controller
        ):
            # "packets … destined to the controllers are dropped" — the
            # observable difference from fail-standalone, where the
            # last-good pipeline's verdict stands untouched.
            verdict.dropped = True
            verdict.output_ports.clear()
            self.secure_drops += 1

    # -- the controller face -----------------------------------------------

    def submit_flow_mods(self, mods: Sequence[FlowMod]) -> FlowModReply:
        """Send one flow-mod batch switch-ward through the lossy channel.

        Channel losses (of the request or of the reply) are retried up to
        ``max_retries`` times with exponential backoff, all in virtual
        time. Retrying an already-applied batch is safe: admission is
        stateless per batch and re-adding the same rules replaces them.
        A batch that never gets through answers a typed channel error —
        callers always receive a :class:`FlowModReply`, never an
        exception.
        """
        self.sends += 1
        if self.state is SessionState.DOWN:
            return FlowModReply(accepted=False, errors=(CHANNEL_DOWN,))
        reply: "FlowModReply | None" = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.send_retries += 1
                self.control_latency_s += self.retry_backoff_s * (
                    2 ** (attempt - 1)
                )
            out = self.channel.deliver()
            if out is None:
                continue  # the batch never arrived; retry
            self.control_latency_s += out
            reply = self._switch_submit(mods)
            back = self.channel.deliver()
            if back is None:
                reply = None  # the reply vanished: indistinguishable; retry
                continue
            self.control_latency_s += back
            self._heard()
            return reply
        self.sends_failed += 1
        return FlowModReply(accepted=False, errors=(CHANNEL_LOST,))

    def _switch_submit(self, mods: Sequence[FlowMod]) -> FlowModReply:
        submit = getattr(self.switch, "submit_flow_mods", None)
        if submit is not None:
            return submit(mods)
        from repro.controller.channels import apply_and_cost_cycles

        cycles = 0.0
        for mod in mods:
            reply = apply_and_cost_cycles(self.switch, mod)
            if not reply:
                return reply
            cycles += reply.cycles
        return FlowModReply(accepted=True, cycles=cycles)

    def apply_flow_mod(self, mod: FlowMod) -> float:
        """Legacy controller face; returns modeled switch cycles (0.0 when
        the batch was rejected or lost — never raises)."""
        return self.submit_flow_mods([mod]).cycles

    def apply_flow_mods(self, mods: Sequence[FlowMod]) -> float:
        return self.submit_flow_mods(list(mods)).cycles

    def barrier(self) -> bool:
        """§7.3.8 ordering fence: True once everything queued before the
        barrier has been processed and the reply round-trip survived."""
        self.barriers += 1
        if self.state is SessionState.DOWN:
            return False
        self.pump()
        self._xid += 1
        request = BarrierRequest(xid=self._xid)
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.send_retries += 1
                self.control_latency_s += self.retry_backoff_s * (
                    2 ** (attempt - 1)
                )
            out = self.channel.deliver()
            if out is None:
                continue
            back = self.channel.deliver()
            if back is None:
                continue
            self.control_latency_s += out + back
            reply = BarrierReply(xid=request.xid)
            assert reply.xid == request.xid
            self._heard()
            return True
        return False

    # -- telemetry ---------------------------------------------------------

    def health(self) -> SessionHealth:
        time_down = self.time_down_s
        if self._down_since is not None:
            time_down += self.now - self._down_since
        return SessionHealth(
            state=self.state.value,
            fail_mode=self.fail_mode.value,
            outages=self.outages,
            time_down_s=time_down,
            resyncs=self.resyncs,
            echo_sent=self.echo_sent,
            echo_lost=self.echo_lost,
            punts_delivered=self.punts_delivered,
            punts_lost=self.punts_lost,
            punts_suppressed=self.punts_suppressed,
            secure_drops=self.secure_drops,
            punt_queue_drops=self.punt_queue_drops,
            sends=self.sends,
            send_retries=self.send_retries,
            sends_failed=self.sends_failed,
            barriers=self.barriers,
            control_latency_s=self.control_latency_s,
        )

    def __repr__(self) -> str:
        return (
            f"ControllerSession(state={self.state.value}, "
            f"mode={self.fail_mode.value}, outages={self.outages}, "
            f"queue={len(self.punt_queue)})"
        )
