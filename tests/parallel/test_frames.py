"""Frame codec ⟷ wire dialect: identity, and typed rejection of damage.

The packed binary codec (ISSUE 7) must be a *lossless* re-encoding of
the PR 3 wire dialect: any burst of hypothesis-generated packets, any
verdict/delta set expressible on the wire, survives the frame round-trip
bit-exactly. And a damaged frame must never surface a bare
``struct.error`` — every failure is a :class:`FrameError` subclass the
transport can supervise on.
"""

import pickle
import struct

import pytest
from hypothesis import given, settings, strategies as st

import strategies as sts

from repro.parallel import frames
from repro.parallel.wire import encode_packets

# -- wire-shaped strategies (the dialect's documented value ranges) --------

ports_st = st.tuples(*[]) | st.lists(
    st.integers(0, 2**32 - 1), min_size=0, max_size=4
).map(tuple)

hop_st = st.tuples(
    st.integers(0, 2**31 - 1),                 # tid
    st.integers(-1, 2**31 - 1),                # ltid (-1: dispatch entry)
    st.integers(-1, 2**31 - 1),                # idx
)

verdict_st = st.tuples(
    ports_st,
    st.integers(0, 7),                          # flags bitmask
    st.lists(hop_st, min_size=0, max_size=5).map(tuple),
)

delta_st = st.tuples(
    st.integers(0, 2**31 - 1),                  # ltid
    st.integers(0, 2**31 - 1),                  # idx
    st.integers(0, 2**64 - 1),                  # d_packets
    st.integers(0, 2**64 - 1),                  # d_bytes
)


class TestRequestIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        pkts=st.lists(sts.packets(), min_size=0, max_size=12),
        epoch=st.integers(0, 2**40),
        seq=st.integers(0, 2**40),
        mode=st.sampled_from(("null", "cycle")),
        checksum=st.booleans(),
    )
    def test_packets_round_trip(self, pkts, epoch, seq, mode, checksum):
        frame = frames.request_from_packets(
            epoch, seq, mode, pkts, checksum=checksum
        )
        req, end = frames.unpack_request(frame)
        assert end == len(frame)
        assert (req.epoch, req.seq, req.mode) == (epoch, seq, mode)
        assert req.wires() == encode_packets(pkts)
        out = req.packets()
        assert len(out) == len(pkts)
        for got, want in zip(out, pkts):
            assert got.data == want.data
            assert isinstance(got.data, bytearray)
            assert got.in_port == want.in_port
            assert got.metadata == want.metadata
            assert got.tunnel_id == want.tunnel_id

    @settings(max_examples=30, deadline=None)
    @given(pkts=st.lists(sts.packets(), min_size=0, max_size=8))
    def test_wires_round_trip(self, pkts):
        wires = encode_packets(pkts)
        frame = frames.request_from_wires(5, 9, "cycle", wires)
        req, _ = frames.unpack_request(frame)
        assert req.wires() == wires

    def test_unpack_frame_dispatches_both_kinds(self):
        req = frames.request_from_packets(1, 2, "null", [])
        rep = frames.reply_from_wires(1, 2, None, 0, 0, [], [])
        obj, _ = frames.unpack_frame(req)
        assert isinstance(obj, frames.BurstRequest)
        obj, _ = frames.unpack_frame(rep)
        assert isinstance(obj, frames.BurstReply)


class TestReplyIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        verdicts=st.lists(verdict_st, min_size=0, max_size=8),
        deltas=st.lists(delta_st, min_size=0, max_size=6),
        cycles=st.none() | st.floats(
            min_value=0, max_value=1e12, allow_nan=False
        ),
        packets=st.integers(0, 2**31 - 1),
        llc=st.integers(0, 2**40),
        checksum=st.booleans(),
    )
    def test_round_trip(self, verdicts, deltas, cycles, packets, llc, checksum):
        frame = frames.reply_from_wires(
            7, 13, cycles, packets, llc, verdicts, deltas, checksum=checksum
        )
        rep, end = frames.unpack_reply(frame)
        assert end == len(frame)
        assert (rep.epoch, rep.seq) == (7, 13)
        assert rep.cycles == cycles
        assert (rep.packets, rep.llc) == (packets, llc)
        assert rep.verdicts == verdicts
        assert rep.deltas == deltas

    def test_cycles_float_is_bit_exact(self):
        cycles = 123456.78125 + 2**-20  # not representable in fewer bits
        frame = frames.reply_from_wires(0, 0, cycles, 1, 0, [], [])
        rep, _ = frames.unpack_reply(frame)
        assert rep.cycles == cycles  # f64 crossing, no rounding


class TestTypedRejection:
    def _req(self, **kw):
        import random

        rng = random.Random(3)
        pkts = [sts.random_packet(rng) for _ in range(4)]
        return frames.request_from_packets(2, 4, "null", pkts, **kw)

    def test_every_truncation_is_typed(self):
        frame = self._req()
        for cut in range(len(frame)):
            with pytest.raises(frames.FrameError) as err:
                frames.unpack_request(frame[:cut])
            assert not isinstance(err.value, struct.error)

    def test_short_header_is_truncated(self):
        with pytest.raises(frames.FrameTruncated):
            frames.unpack_request(b"\x46\x52")

    def test_bad_magic_is_corrupt(self):
        frame = bytearray(self._req())
        frame[0] ^= 0xFF
        with pytest.raises(frames.FrameCorrupt):
            frames.unpack_request(bytes(frame))

    def test_version_skew_is_typed(self):
        frame = bytearray(self._req())
        frame[2] += 1  # the version byte
        with pytest.raises(frames.FrameVersionMismatch):
            frames.unpack_request(bytes(frame))

    def test_checksum_catches_payload_damage(self):
        frame = bytearray(self._req(checksum=True))
        frame[-1] ^= 0x01
        with pytest.raises(frames.FrameCorrupt):
            frames.unpack_request(bytes(frame))

    def test_wrong_kind_is_corrupt(self):
        rep = frames.reply_from_wires(0, 0, None, 0, 0, [], [])
        with pytest.raises(frames.FrameCorrupt):
            frames.unpack_request(rep)

    @settings(max_examples=80, deadline=None)
    @given(
        flips=st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 7)),
            min_size=1, max_size=4,
        ),
        data=st.data(),
    )
    def test_random_bitflips_never_leak_struct_error(self, flips, data):
        """Any damage anywhere raises FrameError (or decodes — bitflips
        in the payload of an unchecksummed frame may legally still parse);
        the codec must never surface struct.error or slice garbage."""
        frame = bytearray(self._req())
        for pos, bit in flips:
            frame[pos % len(frame)] ^= 1 << bit
        try:
            req, _ = frames.unpack_request(bytes(frame))
        except frames.FrameError:
            return
        assert len(req.datas) == len(req.in_ports)

    def test_unencodable_values_raise_frame_error(self):
        class Fake:
            data = b"xx"
            in_port = 1
            metadata = 0
            tunnel_id = -5  # cannot pack as u64

        with pytest.raises(frames.FrameError):
            frames.request_from_packets(0, 0, "null", [Fake()])
        with pytest.raises(frames.FrameError):
            frames.reply_from_wires(
                0, 0, None, 0, 0, [((2**40,), 0, ())], []  # port > u32
            )
        with pytest.raises(frames.FrameError):
            frames.request_from_packets(0, 0, "warp", [])  # unknown mode

    def test_no_pickle_inside_the_codec(self, monkeypatch):
        def boom(*a, **k):  # pragma: no cover - would be the failure
            raise AssertionError("pickle on the frame path")

        monkeypatch.setattr(pickle, "dumps", boom)
        monkeypatch.setattr(pickle, "loads", boom)
        import random

        rng = random.Random(1)
        pkts = [sts.random_packet(rng) for _ in range(8)]
        frame = frames.request_from_packets(1, 1, "cycle", pkts)
        req, _ = frames.unpack_request(frame)
        assert req.wires() == encode_packets(pkts)
