"""The Packet container handed to switch datapaths.

A :class:`Packet` is raw wire bytes plus switch-local metadata:

* ``in_port`` — the ingress port number (OXM ``in_port``);
* ``metadata`` — the 64-bit OpenFlow metadata register;
* ``tunnel_id`` — the logical tunnel id (OXM ``tunnel_id``).

Fast paths mutate the byte buffer directly (set-field, push/pop VLAN), so
the buffer is a ``bytearray``.
"""

from __future__ import annotations

from typing import Iterable

from repro.packet import headers as hdr


class Packet:
    """Raw packet bytes plus pipeline metadata."""

    __slots__ = ("data", "in_port", "metadata", "tunnel_id")

    def __init__(
        self,
        data: bytes | bytearray,
        in_port: int = 0,
        metadata: int = 0,
        tunnel_id: int = 0,
    ):
        self.data = bytearray(data)
        self.in_port = in_port
        self.metadata = metadata
        self.tunnel_id = tunnel_id

    @classmethod
    def from_headers(cls, headers: Iterable[object], in_port: int = 0, pad_to: int = 64) -> "Packet":
        """Build a packet by concatenating ``pack()``-able headers.

        The frame is zero-padded to ``pad_to`` bytes (64 is the minimum
        Ethernet frame size used throughout the paper's evaluation).
        """
        buf = bytearray()
        for header in headers:
            buf += header.pack()
        if len(buf) < pad_to:
            buf += bytes(pad_to - len(buf))
        return cls(buf, in_port=in_port)

    def copy(self) -> "Packet":
        clone = Packet(bytes(self.data), self.in_port, self.metadata, self.tunnel_id)
        return clone

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Packet(len={len(self.data)}, in_port={self.in_port})"

    # -- header-stack convenience used by tests and examples ---------------

    def headers(self) -> list[object]:
        """Parse and return the header stack (reference parser, slow)."""
        stack: list[object] = []
        eth, offset = hdr.Ethernet.unpack(self.data, 0)
        stack.append(eth)
        ethertype = eth.ethertype
        while ethertype == hdr.ETH_TYPE_VLAN:
            vlan, offset = hdr.Vlan.unpack(self.data, offset)
            stack.append(vlan)
            ethertype = vlan.ethertype
        if ethertype == hdr.ETH_TYPE_IPV4:
            ip, offset = hdr.IPv4.unpack(self.data, offset)
            stack.append(ip)
            if ip.frag_offset == 0:
                if ip.proto == hdr.IP_PROTO_TCP:
                    tcp, offset = hdr.TCP.unpack(self.data, offset)
                    stack.append(tcp)
                elif ip.proto == hdr.IP_PROTO_UDP:
                    udp, offset = hdr.UDP.unpack(self.data, offset)
                    stack.append(udp)
                elif ip.proto == hdr.IP_PROTO_ICMP:
                    icmp, offset = hdr.ICMP.unpack(self.data, offset)
                    stack.append(icmp)
        elif ethertype == hdr.ETH_TYPE_IPV6:
            ip6, offset = hdr.IPv6.unpack(self.data, offset)
            stack.append(ip6)
            if ip6.next_header == hdr.IP_PROTO_TCP:
                tcp, offset = hdr.TCP.unpack(self.data, offset)
                stack.append(tcp)
            elif ip6.next_header == hdr.IP_PROTO_UDP:
                udp, offset = hdr.UDP.unpack(self.data, offset)
                stack.append(udp)
            elif ip6.next_header == hdr.IP_PROTO_ICMPV6:
                icmp6, offset = hdr.ICMPv6.unpack(self.data, offset)
                stack.append(icmp6)
        elif ethertype == hdr.ETH_TYPE_ARP:
            arp, offset = hdr.ARP.unpack(self.data, offset)
            stack.append(arp)
        return stack
