"""Fluent packet builder used by tests, examples, and traffic generators.

>>> pkt = (PacketBuilder(in_port=1)
...        .eth(src="00:00:00:00:00:01", dst="00:00:00:00:00:02")
...        .ipv4(src="10.0.0.1", dst="192.0.2.1")
...        .tcp(dst_port=80)
...        .build())
"""

from __future__ import annotations

import ipaddress

from repro.net.addresses import EthAddr, IPv4Addr
from repro.packet import headers as hdr
from repro.packet.packet import Packet


def _ipv6_int(value: "int | str") -> int:
    if isinstance(value, int):
        if not 0 <= value < (1 << 128):
            raise ValueError(f"IPv6 integer out of range: {value:#x}")
        return value
    return int(ipaddress.IPv6Address(value))


class PacketBuilder:
    """Accumulates headers and emits a padded :class:`Packet`."""

    def __init__(self, in_port: int = 0, pad_to: int = 64):
        self._in_port = in_port
        self._pad_to = pad_to
        self._eth: hdr.Ethernet | None = None
        self._vlans: list[hdr.Vlan] = []
        self._l3: hdr.IPv4 | hdr.ARP | None = None
        self._l4: hdr.TCP | hdr.UDP | hdr.ICMP | None = None
        self._payload = b""

    def eth(
        self,
        src: int | str = "00:00:00:00:00:01",
        dst: int | str = "00:00:00:00:00:02",
        ethertype: int | None = None,
    ) -> "PacketBuilder":
        self._eth = hdr.Ethernet(
            src=EthAddr(src).value,
            dst=EthAddr(dst).value,
            ethertype=ethertype if ethertype is not None else hdr.ETH_TYPE_IPV4,
        )
        return self

    def vlan(self, vid: int, pcp: int = 0) -> "PacketBuilder":
        self._vlans.append(hdr.Vlan(vid=vid, pcp=pcp))
        return self

    def ipv4(
        self,
        src: int | str = "10.0.0.1",
        dst: int | str = "10.0.0.2",
        proto: int | None = None,
        ttl: int = 64,
        dscp: int = 0,
        ecn: int = 0,
    ) -> "PacketBuilder":
        self._l3 = hdr.IPv4(
            src=IPv4Addr(src).value,
            dst=IPv4Addr(dst).value,
            proto=proto if proto is not None else hdr.IP_PROTO_TCP,
            ttl=ttl,
            dscp=dscp,
            ecn=ecn,
        )
        return self

    def ipv6(
        self,
        src: "int | str" = "2001:db8::1",
        dst: "int | str" = "2001:db8::2",
        hop_limit: int = 64,
        traffic_class: int = 0,
        flow_label: int = 0,
    ) -> "PacketBuilder":
        self._l3 = hdr.IPv6(
            src=_ipv6_int(src),
            dst=_ipv6_int(dst),
            hop_limit=hop_limit,
            traffic_class=traffic_class,
            flow_label=flow_label,
        )
        return self

    def icmpv6(self, type: int = 128, code: int = 0) -> "PacketBuilder":
        self._l4 = hdr.ICMPv6(type=type, code=code)
        return self

    def arp(
        self,
        op: int = 1,
        sha: int | str = 0,
        spa: int | str = 0,
        tha: int | str = 0,
        tpa: int | str = 0,
    ) -> "PacketBuilder":
        self._l3 = hdr.ARP(
            op=op,
            sha=EthAddr(sha).value if isinstance(sha, str) else sha,
            spa=IPv4Addr(spa).value if isinstance(spa, str) else spa,
            tha=EthAddr(tha).value if isinstance(tha, str) else tha,
            tpa=IPv4Addr(tpa).value if isinstance(tpa, str) else tpa,
        )
        return self

    def tcp(self, src_port: int = 12345, dst_port: int = 80, flags: int = 0x02) -> "PacketBuilder":
        self._l4 = hdr.TCP(src_port=src_port, dst_port=dst_port, flags=flags)
        return self

    def udp(self, src_port: int = 12345, dst_port: int = 53) -> "PacketBuilder":
        self._l4 = hdr.UDP(src_port=src_port, dst_port=dst_port)
        return self

    def icmp(self, type: int = 8, code: int = 0) -> "PacketBuilder":
        self._l4 = hdr.ICMP(type=type, code=code)
        return self

    def payload(self, data: bytes) -> "PacketBuilder":
        self._payload = data
        return self

    def build(self) -> Packet:
        """Assemble the packet, fixing up ethertypes and IP proto/length."""
        eth = self._eth or hdr.Ethernet()
        stack: list[object] = [eth]

        inner_type = hdr.ETH_TYPE_IPV4
        if isinstance(self._l3, hdr.ARP):
            inner_type = hdr.ETH_TYPE_ARP
        elif isinstance(self._l3, hdr.IPv6):
            inner_type = hdr.ETH_TYPE_IPV6

        if self._vlans:
            eth.ethertype = hdr.ETH_TYPE_VLAN
            for i, tag in enumerate(self._vlans):
                tag.ethertype = (
                    hdr.ETH_TYPE_VLAN if i + 1 < len(self._vlans) else inner_type
                )
                stack.append(tag)
        elif self._l3 is not None:
            eth.ethertype = inner_type

        if isinstance(self._l3, hdr.IPv4):
            ip = self._l3
            if self._l4 is not None:
                if isinstance(self._l4, hdr.TCP):
                    ip.proto = hdr.IP_PROTO_TCP
                elif isinstance(self._l4, hdr.UDP):
                    ip.proto = hdr.IP_PROTO_UDP
                elif isinstance(self._l4, hdr.ICMP):
                    ip.proto = hdr.IP_PROTO_ICMP
            l4_len = len(self._l4.pack()) if self._l4 is not None else 0
            ip.total_length = ip.header_len + l4_len + len(self._payload)
            stack.append(ip)
            if self._l4 is not None:
                stack.append(self._l4)
        elif isinstance(self._l3, hdr.IPv6):
            ip6 = self._l3
            if self._l4 is not None:
                if isinstance(self._l4, hdr.TCP):
                    ip6.next_header = hdr.IP_PROTO_TCP
                elif isinstance(self._l4, hdr.UDP):
                    ip6.next_header = hdr.IP_PROTO_UDP
                elif isinstance(self._l4, hdr.ICMPv6):
                    ip6.next_header = hdr.IP_PROTO_ICMPV6
                elif isinstance(self._l4, hdr.ICMP):
                    raise ValueError("use icmpv6() with an IPv6 packet")
            l4_len = len(self._l4.pack()) if self._l4 is not None else 0
            ip6.payload_length = l4_len + len(self._payload)
            stack.append(ip6)
            if self._l4 is not None:
                stack.append(self._l4)
        elif isinstance(self._l3, hdr.ARP):
            stack.append(self._l3)

        if self._payload:
            stack.append(hdr.Payload(self._payload))
        return Packet.from_headers(stack, in_port=self._in_port, pad_to=self._pad_to)
