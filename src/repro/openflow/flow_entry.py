"""Flow entries: rule + counters + instructions (Section 2)."""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.openflow.actions import Action
from repro.openflow.instructions import (
    ApplyActions,
    GotoTable,
    Instruction,
    WriteActions,
)
from repro.openflow.match import Match

_entry_ids = itertools.count(1)


class FlowCounters:
    """Per-entry statistics (packet and byte counts)."""

    __slots__ = ("packets", "bytes")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0

    def record(self, pkt_len: int) -> None:
        self.packets += 1
        self.bytes += pkt_len

    def __repr__(self) -> str:
        return f"FlowCounters(packets={self.packets}, bytes={self.bytes})"


class FlowEntry:
    """One rule in a flow table.

    ``priority`` orders lookup (higher first); ``match`` designates the flow;
    ``instructions`` establish its processing. The common single-table idiom
    "match → actions" is expressed as ``FlowEntry(match, actions=[...])``
    which wraps the actions in an apply-actions instruction.
    """

    __slots__ = (
        "entry_id",
        "priority",
        "match",
        "instructions",
        "counters",
        "cookie",
        "idle_timeout",
        "hard_timeout",
        "origin",
        "_features",
    )

    def __init__(
        self,
        match: Match,
        priority: int = 0,
        instructions: Sequence[Instruction] | None = None,
        actions: Iterable[Action] | None = None,
        cookie: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
    ):
        if instructions is not None and actions is not None:
            raise ValueError("pass either instructions or actions, not both")
        if priority < 0 or priority > 0xFFFF:
            raise ValueError(f"priority out of range: {priority}")
        if idle_timeout < 0 or hard_timeout < 0:
            raise ValueError("timeouts must be non-negative")
        self.entry_id = next(_entry_ids)
        self.priority = priority
        self.match = match
        if actions is not None:
            self.instructions: tuple[Instruction, ...] = (ApplyActions(actions),)
        else:
            self.instructions = tuple(instructions or ())
        self.counters = FlowCounters()
        #: the logical entry this one stands in for, or None. Synthetic
        #: leaf entries minted by flow table decomposition point back at
        #: the rule they carry the instructions of, so statistics and
        #: wire-format entry identity resolve to control-plane-visible
        #: state (their ``counters`` alias the origin's object).
        self.origin: "FlowEntry | None" = None
        self.cookie = cookie
        #: seconds of inactivity after which the entry expires (0 = never).
        self.idle_timeout = idle_timeout
        #: seconds after installation at which the entry expires (0 = never).
        self.hard_timeout = hard_timeout
        #: cached :func:`repro.openflow.flow_table.entry_features`
        #: fingerprint — derived from immutable rule state, computed on
        #: first use (churn pays it once per entry, not once per mod).
        self._features: "tuple | None" = None

    @property
    def goto_table(self) -> "int | None":
        """Target of the goto-table instruction, if any."""
        for instr in self.instructions:
            if isinstance(instr, GotoTable):
                return instr.table_id
        return None

    @property
    def apply_actions(self) -> tuple[Action, ...]:
        for instr in self.instructions:
            if isinstance(instr, ApplyActions):
                return instr.actions
        return ()

    @property
    def write_actions(self) -> tuple[Action, ...]:
        for instr in self.instructions:
            if isinstance(instr, WriteActions):
                return instr.actions
        return ()

    def same_rule(self, other: "FlowEntry") -> bool:
        """True if this entry designates the same flow (match + priority)."""
        return self.priority == other.priority and self.match == other.match

    def __repr__(self) -> str:
        return (
            f"FlowEntry(prio={self.priority}, {self.match!r}, "
            f"instructions={list(self.instructions)!r})"
        )
