"""Tests for pcap trace I/O."""

import struct

import pytest

from repro.packet import PacketBuilder
from repro.traffic.pcap import (
    LINKTYPE_ETHERNET,
    PCAP_MAGIC,
    PcapError,
    read_pcap,
    write_pcap,
)
from repro.usecases import gateway


class TestRoundTrip:
    def test_bytes_preserved(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        packets = [
            PacketBuilder(in_port=1).eth().ipv4(dst=f"10.0.0.{i}").tcp().build()
            for i in range(10)
        ]
        assert write_pcap(path, packets) == 10
        restored = read_pcap(path, in_port=1)
        assert len(restored) == 10
        for a, b in zip(packets, restored):
            assert bytes(a.data) == bytes(b.data)
            assert b.in_port == 1

    def test_usecase_trace_round_trip(self, tmp_path):
        path = str(tmp_path / "gw.pcap")
        _p, fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=30)
        flows = gateway.traffic(fib, 8, n_ce=2, users_per_ce=2)
        write_pcap(path, (flows[i] for i in range(len(flows))))
        restored = read_pcap(path, in_port=gateway.ACCESS_PORT)
        assert len(restored) == 8
        # Restored packets drive the switch identically.
        pipeline, _ = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=30)
        for orig, back in zip(flows, restored):
            assert (pipeline.process(orig.copy()).summary()
                    == pipeline.process(back.copy()).summary())

    def test_header_fields(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(path, [PacketBuilder().eth().build()])
        raw = open(path, "rb").read()
        magic, _maj, _min, _tz, _sig, snaplen, linktype = struct.unpack(
            "<IHHiIII", raw[:24]
        )
        assert magic == PCAP_MAGIC
        assert linktype == LINKTYPE_ETHERNET
        assert snaplen == 65535

    def test_snaplen_truncation(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        pkt = PacketBuilder(pad_to=128).eth().ipv4().tcp().build()
        write_pcap(path, [pkt], snaplen=60)
        (restored,) = read_pcap(path)
        assert len(restored) == 60

    def test_big_endian_read(self, tmp_path):
        path = str(tmp_path / "be.pcap")
        frame = bytes(PacketBuilder().eth().build().data)
        with open(path, "wb") as fh:
            fh.write(struct.pack(">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535,
                                 LINKTYPE_ETHERNET))
            fh.write(struct.pack(">IIII", 0, 0, len(frame), len(frame)))
            fh.write(frame)
        (restored,) = read_pcap(path)
        assert bytes(restored.data) == frame


class TestErrors:
    def test_not_a_pcap(self, tmp_path):
        path = tmp_path / "x.pcap"
        path.write_bytes(b"\x00" * 30)
        with pytest.raises(PcapError):
            read_pcap(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "x.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapError):
            read_pcap(str(path))

    def test_truncated_record(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(path, [PacketBuilder().eth().build()])
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-10])
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_wrong_linktype(self, tmp_path):
        path = tmp_path / "x.pcap"
        path.write_bytes(struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, 101))
        with pytest.raises(PcapError):
            read_pcap(str(path))
