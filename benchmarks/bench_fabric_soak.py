"""The fabric soak as a benchmark: SLOs under injected outages.

A 4-leaf / 2-spine fabric (one shared controller, independently lossy
channels) soaked with tenant churn while a scripted blackout takes one
leaf's control channel dark mid-run, then the two upgrade legs: a
rolling epoch upgrade that must be verdict-invisible, and an injected
re-fuse failure that must roll every leaf back to the old epoch.

Assertions are *mechanism* checks against the SLOs of DESIGN §12, not
absolute-speed checks:

* fabric-wide served-packet fraction stays ≥ the floor **during the
  fault window** (one leaf dark, three serving, the dark leaf's
  admitted subscribers still forwarding in fail-standalone);
* the blackout is detected (outage) and recovered (resync), and install
  convergence after the resync is observed and finite;
* the drop budget holds (fail-standalone punts are latency, not loss);
* rolling upgrade completes with zero verdict divergence; the aborted
  upgrade rolls back to the old epoch everywhere; the supervisor never
  deadlocks.

CI's fabric-soak smoke leg runs this file small (``FABRIC_SOAK_TICKS``)
and uploads ``BENCH_fabric_soak.json``; ``repro bench --fabric-soak``
runs the same soak interactively.
"""

import json
import os

from figshared import RESULTS_DIR, publish, render_table
from repro.traffic.fabric_soak import SoakConfig, run_fabric_soak

TICKS = int(os.environ.get("FABRIC_SOAK_TICKS", "48"))
N_CE = int(os.environ.get("FABRIC_SOAK_CE", "8"))
USERS = int(os.environ.get("FABRIC_SOAK_USERS", "8"))
SERVED_FLOOR = float(os.environ.get("FABRIC_SOAK_FLOOR", "0.7"))


def test_fabric_soak():
    cfg = SoakConfig(
        ticks=TICKS,
        arrival_ticks=max(2, TICKS // 2),
        lifetime_ticks=max(3, (3 * TICKS) // 4),
        n_ce=N_CE,
        users_per_ce=USERS,
        served_floor=SERVED_FLOOR,
        outage_at_s=0.125 * TICKS,   # tick_s=0.5: fault mid-arrival wave
        outage_duration_s=0.125 * TICKS,
    )
    doc = run_fabric_soak(cfg)

    totals = doc["totals"]
    outage = doc["outage"]
    slo = doc["slo"]
    upgrade = doc["upgrade"]
    rows = [
        ("injected pkts", totals["injected"]),
        ("served fraction (soak)", f"{totals['served_fraction']:.3f}"),
        (
            "served fraction (fault window)",
            f"{outage['fault_window']['served_fraction']:.3f}",
        ),
        ("served floor", f"{cfg.served_floor:.2f}"),
        ("p99 punt latency", f"{slo['p99_punt_latency_s'] * 1e3:.3f} ms"),
        ("drop fraction", f"{slo['drop_fraction']:.4f}"),
        (
            "convergence after resync",
            ", ".join(
                f"{k}={v:.2f}s" for k, v in slo["install_convergence_s"].items()
            )
            or "-",
        ),
        (
            "degraded time",
            ", ".join(
                f"{k}={v:.1f}s"
                for k, v in slo["degraded_time_s"].items()
                if v
            )
            or "-",
        ),
        ("rolling upgrade", "ok" if upgrade["rolling"]["completed"] else "FAIL"),
        ("verdict divergence", upgrade["rolling"]["verdict_divergence"]),
        (
            "aborted upgrade rollback",
            "ok" if upgrade["aborted"]["all_on_old_epoch"] else "FAIL",
        ),
        ("supervisor deadlocks", upgrade["deadlocks"]),
    ]
    publish(
        "fabric_soak",
        render_table(
            "Fabric soak: leaf–spine under one control plane, "
            f"{cfg.n_leaves} leaves / {cfg.n_spines} spines",
            ["metric", "value"],
            rows,
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_fabric_soak.json"), "w") as fh:
        json.dump(doc, fh, indent=2)

    # -- SLO / acceptance assertions --------------------------------------
    fault_window = outage["fault_window"]
    assert fault_window["injected"] > 0, "fault window saw no traffic"
    assert fault_window["served_fraction"] >= cfg.served_floor, (
        f"served fraction {fault_window['served_fraction']:.3f} under the "
        f"{cfg.served_floor} floor while one leaf was dark"
    )
    fired = [e for e in outage["fault_log"] if e[1] == "fired"]
    healed = [e for e in outage["fault_log"] if e[1] == "healed"]
    assert fired and healed, "the scripted blackout never ran"
    leaves = doc["supervisor"]["leaves"]
    dark = cfg.outage_leaf
    assert leaves[dark]["outages"] >= 1, "blackout was never declared"
    assert leaves[dark]["resyncs"] >= 1, "blackout never recovered"
    assert dark in slo["install_convergence_s"], (
        "no install-convergence window was measured after the resync"
    )
    assert slo["install_convergence_s"][dark] >= 0.0
    assert slo["degraded_time_s"][dark] > 0.0
    assert slo["drop_fraction"] <= cfg.drop_budget, (
        f"drop fraction {slo['drop_fraction']:.4f} over budget "
        f"{cfg.drop_budget}"
    )
    assert slo["punt_samples"] > 0, "no punt latency samples collected"

    # -- upgrade legs ------------------------------------------------------
    assert upgrade["rolling"]["completed"]
    assert upgrade["rolling"]["verdict_divergence"] == 0, (
        "rolling upgrade changed verdicts"
    )
    assert upgrade["rolling"]["replayed_packets"] > 0
    assert not upgrade["aborted"]["completed"]
    assert upgrade["aborted"]["all_on_old_epoch"], (
        "aborted upgrade left the fabric straddling epochs: "
        f"{upgrade['aborted']['leaf_epochs']}"
    )
    assert upgrade["aborted"]["verdict_divergence"] == 0
    assert upgrade["deadlocks"] == 0, "supervisor deadlocked during rollback"


if __name__ == "__main__":
    test_fabric_soak()
    print("fabric soak ok")
