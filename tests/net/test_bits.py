"""Tests for bit-manipulation helpers (Fig. 3 bit conventions)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.bits import (
    bit_at,
    contiguous_prefix_mask,
    first_set_bit,
    highest_differing_bit,
    lowest_differing_bit,
    mask_for_bit,
)


class TestContiguousPrefixMask:
    def test_known(self):
        assert contiguous_prefix_mask(0, 8)
        assert contiguous_prefix_mask(0b11110000, 8)
        assert contiguous_prefix_mask(0xFF, 8)
        assert not contiguous_prefix_mask(0b01110000, 8)
        assert not contiguous_prefix_mask(0b10101010, 8)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            contiguous_prefix_mask(1 << 8, 8)

    @given(st.integers(0, 32))
    def test_all_prefix_masks_pass(self, plen):
        mask = (((1 << 32) - 1) >> (32 - plen)) << (32 - plen) if plen else 0
        assert contiguous_prefix_mask(mask, 32)


class TestDifferingBits:
    def test_fig3_convention(self):
        # Position 1 = MSB. 191 = 10111111, 255 = 11111111: they differ
        # only at position 2 — the proof bit of Fig. 3's seq 2.
        assert lowest_differing_bit(191, 255, 8) == 2
        assert highest_differing_bit(191, 255, 8) == 2
        # 190 = 10111110 differs from 255 at positions 2 and 8.
        assert lowest_differing_bit(190, 255, 8) == 8
        assert highest_differing_bit(190, 255, 8) == 2

    def test_equal_values(self):
        assert lowest_differing_bit(7, 7, 8) is None
        assert highest_differing_bit(7, 7, 8) is None

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_differing_bit_really_differs(self, a, b):
        pos = lowest_differing_bit(a, b, 8)
        if pos is None:
            assert a == b
        else:
            assert bit_at(a, pos, 8) != bit_at(b, pos, 8)
            # No lower-order bit differs.
            for lower in range(pos + 1, 9):
                assert bit_at(a, lower, 8) == bit_at(b, lower, 8)


class TestBitAccess:
    def test_bit_at(self):
        assert bit_at(0b10000000, 1, 8) == 1
        assert bit_at(0b10000000, 8, 8) == 0
        assert bit_at(0b00000001, 8, 8) == 1

    def test_mask_for_bit(self):
        assert mask_for_bit(1, 8) == 0b10000000
        assert mask_for_bit(8, 8) == 0b00000001

    def test_position_bounds(self):
        with pytest.raises(ValueError):
            bit_at(0, 0, 8)
        with pytest.raises(ValueError):
            mask_for_bit(9, 8)

    def test_first_set_bit(self):
        assert first_set_bit(0, 8) is None
        assert first_set_bit(0b10000000, 8) == 1
        assert first_set_bit(0b00000001, 8) == 8
