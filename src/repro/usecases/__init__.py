"""The evaluation use cases (Section 4.1) plus the firewall of Fig. 1.

Each module builds the OpenFlow pipeline and the matching traffic:

* :mod:`repro.usecases.firewall` — the running example of Fig. 1;
* :mod:`repro.usecases.l2` — MAC learning-table forwarding;
* :mod:`repro.usecases.l3` — IP routing over a sampled Internet FIB;
* :mod:`repro.usecases.loadbalancer` — the web frontend of Fig. 7;
* :mod:`repro.usecases.gateway` — the telco access gateway (vPE) of Fig. 8;
* :mod:`repro.usecases.acl` — synthetic snort-style five-tuple ACLs for
  the decomposition stress test of Section 3.2.
"""

from repro.usecases import acl, firewall, gateway, l2, l3, loadbalancer

__all__ = ["acl", "firewall", "gateway", "l2", "l3", "loadbalancer"]
