"""Greedy scenario minimization: from a fuzz failure to a corpus seed.

Delta-debugs a failing scenario document down to (near-)minimal form:
drop events, packets, mods, tables, entries, groups, meters; strip match
fields and instruction decorations; clear degradation flags. A candidate
is kept whenever the differential oracle still reports *any* divergence
— pinning the first-found defect precisely is less valuable than a
small, stable reproducer, and the corpus test replays the minimized
document against the full oracle anyway.

Everything is plain ``dict``/``list`` surgery on the JSON form, so the
shrinker composes with any predicate (tests inject synthetic ones).
"""

from __future__ import annotations

import copy
import json


def _without_index(seq: list, i: int) -> list:
    return seq[:i] + seq[i + 1:]


def _candidates(obj: dict):
    """Yield reduced copies of ``obj``, most aggressive first."""
    events = obj.get("events", [])

    # 1. Whole events.
    for i in range(len(events) - 1, -1, -1):
        new = copy.deepcopy(obj)
        new["events"] = _without_index(events, i)
        yield new

    # 2. Packets within bursts, mods within batches.
    for ei, event in enumerate(events):
        key = "burst" if "burst" in event else "mods"
        items = event[key]
        for i in range(len(items) - 1, -1, -1):
            if len(items) == 1:
                break  # dropping the last item == dropping the event (pass 1)
            new = copy.deepcopy(obj)
            new["events"][ei][key] = _without_index(items, i)
            yield new

    # 3. Tables (highest id first: later tables are goto leaves).
    tables = obj.get("pipeline", {}).get("tables", [])
    if len(tables) > 1:
        for i in range(len(tables) - 1, -1, -1):
            new = copy.deepcopy(obj)
            new["pipeline"]["tables"] = _without_index(tables, i)
            yield new

    # 4. Entries.
    for ti, table in enumerate(tables):
        entries = table.get("entries", [])
        for i in range(len(entries) - 1, -1, -1):
            new = copy.deepcopy(obj)
            new["pipeline"]["tables"][ti]["entries"] = _without_index(entries, i)
            yield new

    # 5. Groups and meters.
    for key in ("groups", "meters"):
        items = obj.get("pipeline", {}).get(key, [])
        for i in range(len(items) - 1, -1, -1):
            new = copy.deepcopy(obj)
            new["pipeline"][key] = _without_index(items, i)
            if not new["pipeline"][key]:
                del new["pipeline"][key]
            yield new

    # 6. Entry simplifications: drop match fields and decorations.
    for ti, table in enumerate(tables):
        for ei, entry in enumerate(table.get("entries", [])):
            for name in sorted(entry.get("match", {})):
                new = copy.deepcopy(obj)
                del new["pipeline"]["tables"][ti]["entries"][ei]["match"][name]
                yield new
            for key in ("write", "clear", "metadata", "goto", "meter"):
                if key in entry:
                    new = copy.deepcopy(obj)
                    del new["pipeline"]["tables"][ti]["entries"][ei][key]
                    yield new
            if entry.get("apply") not in (None, [{"output": 1}]):
                new = copy.deepcopy(obj)
                new["pipeline"]["tables"][ti]["entries"][ei]["apply"] = [
                    {"output": 1}
                ]
                yield new

    # 7. Degradation flags and scenario metadata.
    for key in ("quarantine", "degrade_fuse", "enable_range", "tight_meter",
                "note"):
        if obj.get(key):
            new = copy.deepcopy(obj)
            del new[key]
            yield new


def minimize(obj: dict, predicate, budget: int = 600) -> dict:
    """Smallest found document for which ``predicate`` still holds.

    ``predicate`` takes a scenario document and returns truthiness
    (normally :func:`repro.fuzz.diff.diverges`); ``budget`` caps total
    predicate evaluations. The input must itself satisfy the predicate.
    """
    if not predicate(obj):
        raise ValueError("minimize() needs a failing scenario to start from")
    current = copy.deepcopy(obj)
    spent = 0
    progress = True
    while progress and spent < budget:
        progress = False
        for candidate in _candidates(current):
            if spent >= budget:
                break
            spent += 1
            if predicate(candidate):
                current = candidate
                progress = True
                break  # restart the pass ladder from the smaller document
    return current


def size_of(obj: dict) -> int:
    """Rough document weight, for progress reporting."""
    return len(json.dumps(obj))
