"""Flow-entry expiry: OpenFlow idle and hard timeouts.

The fast paths are never burdened with clock reads; instead an
:class:`ExpiryManager` polls the pipeline — the way production switches run
periodic expiry sweeps — comparing per-entry packet counters between ticks
to detect idleness, and wall-positions to detect hard expiry. Expired
entries are removed through the owning switch's ``apply_flow_mod`` so all
of its datapath invalidation/update machinery engages (ESWITCH recompiles
or incrementally updates the table; OVS flushes its caches).

The clock is caller-supplied seconds (floats): simulations advance it
explicitly, deterministic tests included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline


@dataclass
class _Tracked:
    table_id: int
    entry: FlowEntry
    installed_at: float
    last_active: float
    last_packets: int


class ExpiryManager:
    """Polls a switch's pipeline and removes timed-out entries.

    Args:
        switch: anything with ``pipeline`` and ``apply_flow_mod`` (ESwitch,
            OvsSwitch, or a bare Pipeline wrapper).
        on_expired: optional callback ``(table_id, entry, reason)`` with
            reason ``"idle"`` or ``"hard"`` (e.g. to emit flow-removed
            messages to a controller).
    """

    def __init__(
        self,
        switch,
        on_expired: "Callable[[int, FlowEntry, str], None] | None" = None,
    ):
        self.switch = switch
        self.pipeline: Pipeline = switch.pipeline
        self.on_expired = on_expired
        self._tracked: dict[int, _Tracked] = {}
        self.expired_idle = 0
        self.expired_hard = 0
        self._now = 0.0

    def observe(self, now: float) -> None:
        """Register (new) timed entries; call after installing flows."""
        self._now = max(self._now, now)
        seen: set[int] = set()
        for table in self.pipeline:
            for entry in table:
                if not (entry.idle_timeout or entry.hard_timeout):
                    continue
                seen.add(entry.entry_id)
                if entry.entry_id not in self._tracked:
                    self._tracked[entry.entry_id] = _Tracked(
                        table_id=table.table_id,
                        entry=entry,
                        installed_at=now,
                        last_active=now,
                        last_packets=entry.counters.packets,
                    )
        # Forget entries that were removed out from under us.
        for entry_id in list(self._tracked):
            if entry_id not in seen:
                del self._tracked[entry_id]

    def tick(self, now: float) -> list[tuple[int, FlowEntry, str]]:
        """Advance to ``now``; expire and remove due entries."""
        if now < self._now:
            raise ValueError("the clock cannot move backwards")
        self.observe(now)
        self._now = now
        expired: list[tuple[int, FlowEntry, str]] = []
        for entry_id, tracked in list(self._tracked.items()):
            entry = tracked.entry
            # Counter progress since the last tick proves activity.
            if entry.counters.packets != tracked.last_packets:
                tracked.last_packets = entry.counters.packets
                tracked.last_active = now
            reason = None
            if entry.hard_timeout and now - tracked.installed_at >= entry.hard_timeout:
                reason = "hard"
            elif entry.idle_timeout and now - tracked.last_active >= entry.idle_timeout:
                reason = "idle"
            if reason is None:
                continue
            del self._tracked[entry_id]
            self.switch.apply_flow_mod(
                FlowMod(
                    FlowModCommand.DELETE,
                    tracked.table_id,
                    entry.match,
                    priority=entry.priority,
                    strict=True,  # expire exactly this rule, nothing else
                )
            )
            if reason == "idle":
                self.expired_idle += 1
            else:
                self.expired_hard += 1
            expired.append((tracked.table_id, entry, reason))
            if self.on_expired is not None:
                self.on_expired(tracked.table_id, entry, reason)
        return expired

    @property
    def tracked_count(self) -> int:
        return len(self._tracked)
