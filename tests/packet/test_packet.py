"""Tests for the Packet container."""

import pytest

from repro.packet import PacketBuilder, headers as hdr
from repro.packet.packet import Packet


class TestPacket:
    def test_from_headers_padding(self):
        pkt = Packet.from_headers([hdr.Ethernet()], pad_to=64)
        assert len(pkt) == 64

    def test_metadata_defaults(self):
        pkt = Packet(b"\x00" * 14)
        assert pkt.in_port == 0 and pkt.metadata == 0 and pkt.tunnel_id == 0

    def test_copy_preserves_metadata(self):
        pkt = Packet(b"\x00" * 14, in_port=3, metadata=7, tunnel_id=9)
        clone = pkt.copy()
        assert (clone.in_port, clone.metadata, clone.tunnel_id) == (3, 7, 9)

    def test_data_is_mutable(self):
        pkt = Packet(b"\x00" * 14)
        pkt.data[0] = 0xFF
        assert pkt.data[0] == 0xFF

    def test_repr(self):
        assert "in_port=2" in repr(Packet(b"\x00" * 14, in_port=2))

    def test_headers_stack_v4(self):
        pkt = PacketBuilder().eth().ipv4().icmp().build()
        kinds = [type(h).__name__ for h in pkt.headers()]
        assert kinds == ["Ethernet", "IPv4", "ICMP"]

    def test_headers_stack_v6(self):
        pkt = PacketBuilder().eth().ipv6().icmpv6().build()
        kinds = [type(h).__name__ for h in pkt.headers()]
        assert kinds == ["Ethernet", "IPv6", "ICMPv6"]

    def test_headers_stack_arp(self):
        pkt = PacketBuilder().eth().arp().build()
        kinds = [type(h).__name__ for h in pkt.headers()]
        assert kinds == ["Ethernet", "ARP"]


class TestBuilderValidation:
    def test_icmp_on_v6_rejected(self):
        with pytest.raises(ValueError):
            PacketBuilder().eth().ipv6().icmp().build()

    def test_v6_address_range(self):
        with pytest.raises(ValueError):
            PacketBuilder().eth().ipv6(src=1 << 128).build()

    def test_v6_payload_length(self):
        pkt = PacketBuilder().eth().ipv6().udp().payload(b"abcd").build()
        (eth, ip6, udp) = pkt.headers()[:3]
        assert ip6.payload_length == 8 + 4
