"""The ESWITCH facade: compile a pipeline, run packets, apply updates.

Ties together analysis → (optional) decomposition → specialization →
linking, and implements the update semantics of Section 3.4:

* templates that support it (compound hash, LPM, linked list) are updated
  **non-destructively** in place;
* the direct code template is rebuilt unconditionally, and any update that
  violates the current template's prerequisite triggers a **fallback
  rebuild** — both built side by side and linked in atomically through the
  trampoline;
* batches are **transactional**: a failing flow-mod rolls the whole batch
  back, logical tables and compiled artifacts alike.

Unlike OVS, no update invalidates any datapath state beyond the single
table it touches — the property Fig. 18 measures.

Fail-static guardrails (ISSUE 5) sit on top of the update semantics:

* **admission control** (:meth:`ESwitch.admit_flow_mods` /
  :meth:`ESwitch.submit_flow_mods`): malformed mods, out-of-space table
  ids, dangling or backward goto targets, and per-table ``max_entries``
  overflows are answered with typed
  :class:`~repro.openflow.messages.ErrorMsg` s (``TABLE_FULL``,
  ``BAD_TABLE_ID``, …) *before any switch state is touched* — a rejected
  batch is bit-invisible: logical tables, compiled artifacts, the fused
  driver object, counters, and modeled cycles are all exactly as if it
  had never been sent;
* **compile-failure containment**: template selection or codegen raising
  does not crash the control path — the offending table is *quarantined*
  onto the linked-list universal representation (the template with no
  prerequisite, Fig. 4's bottom rung) and the degradation is reported
  through :meth:`ESwitch.health`; whole-pipeline fusion failures already
  degrade to the trampoline (:mod:`repro.core.datapath`), completing the
  paper's fallback chain fused → trampoline → linked list;
* a **per-batch compile budget** (``CompileConfig.compile_budget``)
  bounds how many table compilations one batch may spend on its critical
  path; past it, rebuilds defer to the side-by-side path and the old
  compiled tables keep serving until the next packet's flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.analysis import (
    CompileConfig,
    DEFAULT_CONFIG,
    TemplateKind,
    select_template,
)
from repro.core.codegen import CompiledTable, compile_table, _build_sig_matcher
from repro.core.datapath import CompiledDatapath, required_layer
from repro.core.decompose import decomposable, decompose_table
from repro.core.outcome import miss_outcome, outcome_of
from repro.dpdk.lpm import LpmFullError
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import GotoTable
from repro.openflow.match import Match
from repro.openflow.messages import (
    ErrorMsg,
    ErrorType,
    FlowMod,
    FlowModCommand,
    FlowModFailed,
    FlowModFailedCode,
    FlowModReply,
    validate_flow_mod,
)
from repro.openflow.pipeline import MAX_TABLES, Pipeline, Verdict
from repro.openflow.stats import BurstStats
from repro.packet.packet import Packet
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.recorder import Meter, NULL_METER


def _lpm_hazard(classes: "set[tuple[int, tuple]]") -> bool:
    """Any pair of distinct shape classes that *could* hide a duplicate-
    prefix or ancestor-priority conflict, regardless of entry values.

    A class is ``(priority, match signature)``; prefix depth is the mask
    popcount (a catch-all counts as depth 0). Distinct classes with
    ``d1 <= d2`` and ``p1 >= p2`` are hazardous: equal depths admit the
    same prefix at two priorities, and a shallower prefix at >= priority
    can shadow a descendant — exactly the two conditions
    ``lpm_applicable`` walks the value set to rule out.
    """
    flat = [
        (prio, sum(int(m).bit_count() for _n, m in sig))
        for prio, sig in classes
    ]
    for i, (p1, d1) in enumerate(flat):
        for j, (p2, d2) in enumerate(flat):
            if i != j and d1 <= d2 and p1 >= p2:
                return True
    return False


@dataclass
class UpdateStats:
    """How updates were absorbed (Fig. 18's mechanism)."""

    incremental: int = 0
    rebuilds: int = 0
    fallbacks: int = 0
    group_rebuilds: int = 0
    #: template re-selections skipped by the shape-class stability proof
    #: (the O(entries) scan never ran for these mods).
    kind_stable_skips: int = 0
    #: mods that provably changed nothing (a DELETE matching no live
    #: entry — including predicates that would only have hit tombstoned
    #: slots): no version bump, no re-fuse, no template re-selection.
    noop_mods: int = 0
    cycles: float = 0.0


@dataclass(frozen=True)
class SwitchHealth:
    """Control-plane degradation report of one switch (read-only snapshot).

    Attributes:
        quarantined: ``(table_id, reason)`` pairs for tables pinned to the
            linked-list universal template after a compile failure; healed
            (removed) by the next clean rebuild of that table.
        compile_failures: total template-compile failures contained so far.
        budget_deferrals: rebuilds pushed off a batch's critical path by
            ``CompileConfig.compile_budget``.
        fuse_failures: whole-pipeline fusion attempts that degraded to the
            trampoline.
        last_fuse_error: message of the most recent fusion failure, or "".
        fused_active: the current generation is served by a fused driver
            (False = trampoline dispatch, the middle rung of the chain).
        generation: the datapath's update generation counter.
        data_driven: compiled table ids on the source-budget fallback rung
            (keys in closure arrays instead of generated source) — planned
            degradation of code size, bit-identical semantics and cycles.
        footprint_bytes: estimated resident bytes across every compiled
            table (stores, generated source, outcome lists).
    """

    quarantined: tuple[tuple[int, str], ...] = ()
    compile_failures: int = 0
    budget_deferrals: int = 0
    fuse_failures: int = 0
    last_fuse_error: str = ""
    fused_active: bool = False
    generation: int = 0
    data_driven: tuple[int, ...] = ()
    footprint_bytes: int = 0

    @property
    def degraded(self) -> bool:
        # Trampoline dispatch counts as degradation only when a fusion
        # attempt actually failed — a freshly built (or freshly updated)
        # switch is merely *lazy*: its fuse runs on the next packet.
        return bool(self.quarantined) or (
            self.fuse_failures > 0 and not self.fused_active
        )

    def as_dict(self) -> dict:
        return {
            "quarantined": {tid: reason for tid, reason in self.quarantined},
            "compile_failures": self.compile_failures,
            "budget_deferrals": self.budget_deferrals,
            "fuse_failures": self.fuse_failures,
            "last_fuse_error": self.last_fuse_error,
            "fused_active": self.fused_active,
            "generation": self.generation,
            "data_driven": list(self.data_driven),
            "footprint_bytes": self.footprint_bytes,
        }


@dataclass
class _Group:
    """One logical table's compiled representation."""

    logical_id: int
    compiled_ids: list[int]
    decomposed: bool = False


class ESwitch:
    """An OpenFlow switch with a fully compiled, specialized datapath."""

    def __init__(
        self,
        pipeline: Pipeline,
        config: CompileConfig = DEFAULT_CONFIG,
        costs: CostBook = DEFAULT_COSTS,
        packet_in_handler=None,
    ):
        pipeline.validate()
        self.pipeline = pipeline
        self.config = config
        self.costs = costs
        self.packet_in_handler = packet_in_handler
        self.update_stats = UpdateStats()
        self.burst_stats = BurstStats()
        self._groups: dict[int, _Group] = {}
        #: decomposed groups whose rebuild is deferred to the next packet —
        #: the "constructed side by side with the running datapath"
        #: semantics of Section 3.4: the control path returns immediately,
        #: the old compiled tables keep processing until the swap.
        self._dirty_groups: set[int] = set()
        self._next_internal_id = (
            max((t.table_id for t in pipeline.tables), default=0) + 1
        )
        #: tables whose preferred template failed to compile and are pinned
        #: to the linked-list universal representation: id -> reason.
        self.quarantined: dict[int, str] = {}
        self.compile_failures = 0
        self.budget_deferrals = 0
        #: table compilations spent by the current flow-mod batch; compared
        #: against ``config.compile_budget`` to defer over-budget rebuilds.
        self._batch_compiles = 0
        self._in_batch = False
        #: memoized LPM hazard verdicts: table id -> (shapes_version,
        #: hazard-free). The hazard scan is O(classes²) over the shape
        #: set alone, and ``shapes_version`` moves whenever that set may
        #: have changed — so churn within existing classes answers from
        #: the cache instead of re-scanning every ADD.
        self._lpm_hazard_free: dict[int, tuple[int, bool]] = {}
        self.datapath = CompiledDatapath(
            first_table=pipeline.first_table.table_id,
            parser_layer=required_layer(pipeline),
            use_etype=True,
            costs=costs,
            enable_fusion=config.fuse,
            fuse_source_budget=config.fuse_source_budget,
        )
        for table in pipeline.tables:
            self._compile_group(table)

    @classmethod
    def from_pipeline(
        cls,
        pipeline: Pipeline,
        config: CompileConfig = DEFAULT_CONFIG,
        costs: CostBook = DEFAULT_COSTS,
        packet_in_handler=None,
    ) -> "ESwitch":
        return cls(pipeline, config, costs, packet_in_handler)

    # -- the fast path ----------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        """Run one packet through the compiled datapath."""
        if self._dirty_groups:
            self._flush_rebuilds()
        verdict = self.datapath.process(pkt, meter)
        if verdict.to_controller and self.packet_in_handler is not None:
            from repro.openflow.messages import PacketIn

            table_id = verdict.path[-1][0] if verdict.path else 0
            self.packet_in_handler(PacketIn(pkt=pkt, table_id=table_id))
        return verdict

    def process_burst(
        self, pkts: "Sequence[Packet]", meter: Meter = NULL_METER
    ) -> list[Verdict]:
        """Run one IO burst through the compiled datapath.

        Semantically identical to calling :meth:`process` on each packet in
        order — packet-ins fire and deferred rebuilds flush *between*
        packets, so a reactive controller's flow-mods take effect for the
        rest of the burst exactly as they would scalar-wise. The per-burst
        IO framework cost is charged once (see
        :meth:`CompiledDatapath.process_burst`).
        """
        if not pkts:
            return []
        if self._dirty_groups:
            self._flush_rebuilds()
        cycles_before = getattr(meter, "total_cycles", 0.0)
        # Without a packet-in handler no between-packet control work can
        # arise mid-burst (deferred rebuilds were flushed above, and only
        # packet-ins can queue new ones), so skip the per-packet callback.
        on_verdict = (
            self._burst_packet_done if self.packet_in_handler is not None else None
        )
        verdicts = self.datapath.process_burst(pkts, meter, on_verdict=on_verdict)
        self.burst_stats.record(
            len(pkts), getattr(meter, "total_cycles", 0.0) - cycles_before
        )
        return verdicts

    def _burst_packet_done(self, pkt: Packet, verdict: Verdict) -> bool:
        """Between-packet control work inside a burst; True = state mutated."""
        mutated = False
        if verdict.to_controller and self.packet_in_handler is not None:
            from repro.openflow.messages import PacketIn

            table_id = verdict.path[-1][0] if verdict.path else 0
            self.packet_in_handler(PacketIn(pkt=pkt, table_id=table_id))
            mutated = True
        if self._dirty_groups:
            self._flush_rebuilds()
            mutated = True
        return mutated

    def warm(self) -> bool:
        """Stand the current pipeline generation up, off the packet path.

        Flushes any deferred side-by-side rebuilds and forces the lazy
        re-fuse now, so the *next* packet runs the fused driver
        immediately instead of paying the compile. This is the epoch-
        barrier hook of the sharded engine: a replica acks a broadcast
        flow-mod batch only after ``warm()`` returns, guaranteeing every
        shard serves the same fused generation before any burst of the
        new epoch is scattered. Returns True when a fused driver is up
        (False means the trampoline serves this shape).
        """
        if self._dirty_groups:
            self._flush_rebuilds()
        for table in self.pipeline:
            table.prime()  # lazy rule indexes, off the first-mod path
        return self.datapath.ensure_fused() is not None

    # -- inspection -----------------------------------------------------------

    def table_kinds(self) -> dict[int, str]:
        """Logical table id -> template kind (or 'decomposed[n]')."""
        if self._dirty_groups:
            self._flush_rebuilds()
        out: dict[int, str] = {}
        for logical_id, group in self._groups.items():
            if group.decomposed:
                out[logical_id] = f"decomposed[{len(group.compiled_ids)}]"
            else:
                out[logical_id] = self.datapath.table(logical_id).kind.value
        return out

    def compiled_table(self, table_id: int) -> CompiledTable:
        if self._dirty_groups:
            self._flush_rebuilds()
        return self.datapath.table(table_id)

    def compiled_sources(self) -> dict[int, str]:
        """All generated sources, keyed by compiled table id."""
        return {
            tid: ct.source for tid, ct in sorted(self.datapath.trampoline.items())
        }

    @property
    def compiled_table_count(self) -> int:
        return len(self.datapath.trampoline)

    def health(self) -> SwitchHealth:
        """Degradation snapshot: quarantines, contained failures, fusion
        state. Read-only — computing it never triggers a rebuild or fuse."""
        dp = self.datapath
        fused = dp._fused
        footprints = [ct.footprint() for ct in dp.trampoline.values()]
        return SwitchHealth(
            quarantined=tuple(sorted(self.quarantined.items())),
            compile_failures=self.compile_failures,
            budget_deferrals=self.budget_deferrals,
            fuse_failures=dp.fuse_failures,
            last_fuse_error=dp.last_fuse_error,
            fused_active=fused is not None and fused.generation == dp.generation,
            generation=dp.generation,
            data_driven=tuple(
                sorted(fp["table_id"] for fp in footprints if fp["data_driven"])
            ),
            footprint_bytes=sum(fp["bytes"] for fp in footprints),
        )

    def footprint(self) -> dict:
        """Per-rung memory telemetry: every compiled table's estimated
        resident bytes (see :meth:`CompiledTable.footprint`), plus the
        total. Flushes deferred rebuilds first so the report reflects the
        structures the next packet would actually probe."""
        if self._dirty_groups:
            self._flush_rebuilds()
        tables = {
            tid: ct.footprint()
            for tid, ct in sorted(self.datapath.trampoline.items())
        }
        return {
            "total_bytes": sum(fp["bytes"] for fp in tables.values()),
            "tables": tables,
        }

    # -- compilation ---------------------------------------------------------------

    def _take_ids(self, count: int) -> int:
        start = self._next_internal_id
        self._next_internal_id += count
        return start

    def _compile_group(self, table: FlowTable) -> _Group:
        """Compile one logical table, containing any compile failure.

        Template selection, decomposition, or codegen raising must never
        crash the control path: the failing table is *quarantined* onto the
        linked-list universal template (the one with no prerequisite) and
        reported through :meth:`health`. A later clean rebuild heals it.
        """
        try:
            group = self._compile_group_preferred(table)
        except Exception as exc:  # containment boundary, deliberately broad
            self.compile_failures += 1
            self.quarantined[table.table_id] = f"{type(exc).__name__}: {exc}"
            self._batch_compiles += 1
            self.datapath.install(
                compile_table(
                    table, self.config, self.costs, kind=TemplateKind.LINKED_LIST
                )
            )
            group = _Group(
                logical_id=table.table_id, compiled_ids=[table.table_id]
            )
        else:
            self.quarantined.pop(table.table_id, None)
        self._groups[table.table_id] = group
        return group

    def force_quarantine(self, table_id: int, reason: str = "forced") -> None:
        """Drive one logical table into the quarantine state on demand.

        Exactly the containment path of :meth:`_compile_group`, minus the
        triggering exception: the table is pinned to the linked-list
        universal template, the quarantine is reported through
        :meth:`health`, and the next clean rebuild (e.g. a flow-mod whose
        template re-selection succeeds) heals it. The differential fuzzer
        uses this to hold backends in the degraded state and assert they
        still agree packet-for-packet.
        """
        table = self.pipeline.table(table_id)
        old = self._groups.get(table_id)
        self.compile_failures += 1
        self.quarantined[table_id] = reason
        self.datapath.install(
            compile_table(table, self.config, self.costs,
                          kind=TemplateKind.LINKED_LIST)
        )
        self._groups[table_id] = _Group(
            logical_id=table_id, compiled_ids=[table_id]
        )
        self._dirty_groups.discard(table_id)
        if old is not None:
            for tid in old.compiled_ids:
                if tid != table_id:
                    self.datapath.uninstall(tid)

    def _compile_group_preferred(self, table: FlowTable) -> _Group:
        kind = select_template(table.entries, self.config)
        if (
            kind is TemplateKind.LINKED_LIST
            and self.config.decompose
            and decomposable(table)
        ):
            tables = decompose_table(table, self._next_internal_id)
            assert tables is not None
            self._next_internal_id = max(
                self._next_internal_id, max(t.table_id for t in tables) + 1
            )
            # Compile every sub-table *before* installing any, so a failure
            # partway through leaks no trampoline entries for the
            # containment path to clean up.
            self._batch_compiles += len(tables)
            compiled = [
                compile_table(sub, self.config, self.costs) for sub in tables
            ]
            for ct in compiled:
                self.datapath.install(ct)
            return _Group(
                logical_id=table.table_id,
                compiled_ids=[t.table_id for t in tables],
                decomposed=True,
            )
        self._batch_compiles += 1
        self.datapath.install(
            compile_table(table, self.config, self.costs, kind=kind)
        )
        return _Group(logical_id=table.table_id, compiled_ids=[table.table_id])

    def _flush_rebuilds(self) -> None:
        for logical_id in sorted(self._dirty_groups):
            self._rebuild_group(logical_id)
        self._dirty_groups.clear()

    def _rebuild_group(self, logical_id: int) -> None:
        """Side-by-side rebuild of one logical table, then atomic swap."""
        self._dirty_groups.discard(logical_id)
        old = self._groups.get(logical_id)
        table = self.pipeline.table(logical_id)
        new_group = self._compile_group(table)  # installs over/new ids
        if old is not None:
            for tid in old.compiled_ids:
                if tid not in new_group.compiled_ids:
                    self.datapath.uninstall(tid)

    # -- updates ----------------------------------------------------------------------

    def apply_flow_mod(self, mod: FlowMod) -> float:
        """Apply one flow-mod; returns the estimated update cost in cycles.

        Raises :class:`~repro.openflow.messages.FlowModFailed` (a typed
        ``TABLE_FULL``) when an ADD would exceed the table's advertised
        ``max_entries``; inside :meth:`apply_flow_mods` the transactional
        rollback makes the whole batch invisible. Prefer
        :meth:`submit_flow_mods`, which answers with error replies instead
        of raising and never mutates on reject.
        """
        if not self._in_batch:
            self._batch_compiles = 0
        table = self.pipeline.get_or_create(mod.table_id)
        new_table = mod.table_id not in self._groups
        len_before = len(table)
        shapes_before = table.shapes_version
        pre_class_exists = False
        if not new_table and mod.command is not FlowModCommand.DELETE:
            # Does the mod's (priority, match-shape) class already exist?
            # Answered *before* the mutation from the O(shapes) feature
            # multiset; the add below then maintains it incrementally.
            sig = tuple((n, m) for n, (_v, m) in mod.match.items())
            pre_class_exists = any(
                k[0] == mod.priority and k[1] == sig
                for k in table.feature_counts()
            )
        if mod.command is FlowModCommand.DELETE:
            # Only a *strict* delete constrains the priority; priority 0 is
            # a legitimate strict target, not a wildcard (the falsy-zero
            # bug used to delete matching entries at every priority).
            removed = table.remove(mod.match, mod.priority if mod.strict else None)
            if not removed and not new_table:
                # Nothing matched: logical and compiled state are already
                # consistent, and touching the template (e.g. a phantom
                # hash-store removal) would desynchronize them. The table
                # did not bump its version either, so no re-fuse or
                # template re-selection follows — count the no-op.
                self.update_stats.noop_mods += 1
                return 0.0
        else:
            # ADD replacing an existing rule does not grow the table, so it
            # is exempt from the capacity check (OF 1.3: overlap replace).
            if table.full and not table.has_rule(mod.match, mod.priority):
                raise FlowModFailed(
                    ErrorMsg(
                        ErrorType.FLOW_MOD_FAILED,
                        FlowModFailedCode.TABLE_FULL,
                        f"table {mod.table_id} at capacity "
                        f"({table.max_entries} entries)",
                        data=mod,
                    )
                )
            table.add(mod.to_entry())
        # Updates can deepen (or shallow) the fields in play: re-plan the
        # parser templates before the next packet. Only this table mutated,
        # so when its shape *set* provably did not move (steady-state churn
        # inside existing classes) the pipeline-wide answer cannot have
        # changed either — skip the O(tables × shapes) recompute.
        if new_table or table.shapes_version != shapes_before:
            layer = required_layer(self.pipeline)
            if layer != self.datapath.parser_layer:
                self.datapath.set_parser_layer(layer)
        kind_stable = self._kind_stable(table, mod, len_before, pre_class_exists)
        cycles = self._recompile_after_update(table, mod, new_table, kind_stable)
        # Incremental updates mutate compiled-table namespaces in place
        # (hash store, LPM slots, linked list entries, _MISS rebinds)
        # without touching the trampoline — invalidate the fused driver
        # explicitly; rebuilds already did via install(). The re-fuse
        # itself is lazy: it runs on the next packet, not here.
        self.datapath.bump_generation()
        self.update_stats.cycles += cycles
        return cycles

    def apply_flow_mods(self, mods: Sequence[FlowMod]) -> float:
        """Transactional batch: either every mod applies or none does."""
        affected = {mod.table_id for mod in mods}
        snapshots: dict[int, "list | None"] = {}
        for tid in affected:
            try:
                snapshots[tid] = list(self.pipeline.table(tid).entries)
            except Exception:
                snapshots[tid] = None  # table does not exist yet
        cycles_before = self.update_stats.cycles
        total = 0.0
        self._in_batch = True
        self._batch_compiles = 0
        try:
            for mod in mods:
                total += self.apply_flow_mod(mod)
        except Exception:
            for tid, entries in snapshots.items():
                if entries is None:
                    # Roll back a table created inside this transaction.
                    self.pipeline._tables.pop(tid, None)
                    group = self._groups.pop(tid, None)
                    if group is not None:
                        for cid in group.compiled_ids:
                            self.datapath.uninstall(cid)
                    # A deferred rebuild queued for the vanished table must
                    # die with it, or the next packet's flush crashes
                    # looking up a table the rollback removed.
                    self._dirty_groups.discard(tid)
                    self.quarantined.pop(tid, None)
                    continue
                table = self.pipeline.table(tid)
                # One version bump; every derived structure (rule indexes,
                # feature multiset, tombstone store) resyncs together.
                table.restore_entries(entries)
                self._rebuild_group(tid)
            # The rolled-back mods must leave no trace in the modeled cost
            # accounting (the cycles half of batch invisibility); the
            # mechanism counters stand — they record work that really ran.
            self.update_stats.cycles = cycles_before
            raise
        finally:
            self._in_batch = False
        return total

    # -- admission control ------------------------------------------------------

    def admit_flow_mods(self, mods: Sequence[FlowMod]) -> list[ErrorMsg]:
        """Validate a batch against the live switch *without touching it*.

        Returns every typed error the batch would provoke (empty = the
        batch is admissible): the static checks of
        :func:`~repro.openflow.messages.validate_flow_mod`, goto targets
        resolving against the pipeline's tables plus those the batch
        itself creates, and per-table ``max_entries`` capacity — simulated
        over ``(match, priority)`` rule keys so ADD-replaces, MODIFYs and
        interleaved DELETEs count exactly as :meth:`apply_flow_mods`
        would apply them.
        """
        errors: list[ErrorMsg] = []
        statically_ok: list[FlowMod] = []
        for mod in mods:
            err = validate_flow_mod(mod, max_tables=MAX_TABLES)
            if err is not None:
                errors.append(err)
            else:
                statically_ok.append(mod)

        existing = set(self.pipeline._tables)
        # Any mod addressing a table creates it (get_or_create semantics),
        # so goto targets may resolve to tables minted later in the batch.
        will_exist = existing | {mod.table_id for mod in statically_ok}
        occupancy: dict[int, set[tuple[Match, int]]] = {}
        capacity: dict[int, "int | None"] = {}

        def _table_state(tid: int) -> tuple[set, "int | None"]:
            if tid not in occupancy:
                if tid in existing:
                    table = self.pipeline.table(tid)
                    occupancy[tid] = {
                        (e.match, e.priority) for e in table.entries
                    }
                    capacity[tid] = table.max_entries
                else:
                    occupancy[tid] = set()
                    capacity[tid] = None  # batch-created: unbounded
            return occupancy[tid], capacity[tid]

        for mod in statically_ok:
            for instr in mod.instructions:
                if (
                    isinstance(instr, GotoTable)
                    and instr.table_id not in will_exist
                ):
                    errors.append(
                        ErrorMsg(
                            ErrorType.BAD_INSTRUCTION,
                            "OFPBIC_BAD_TABLE_ID",
                            f"goto target {instr.table_id} does not exist "
                            "and is not created by this batch",
                            data=mod,
                        )
                    )
            rules, cap = _table_state(mod.table_id)
            key = (mod.match, mod.priority)
            if mod.command is FlowModCommand.DELETE:
                if mod.strict:
                    rules.discard(key)
                else:
                    rules.difference_update(
                        {k for k in rules if k[0] == mod.match}
                    )
            elif key in rules:
                pass  # replaces in place: no growth, always admissible
            elif cap is not None and len(rules) >= cap:
                errors.append(
                    ErrorMsg(
                        ErrorType.FLOW_MOD_FAILED,
                        FlowModFailedCode.TABLE_FULL,
                        f"table {mod.table_id} at capacity ({cap} entries)",
                        data=mod,
                    )
                )
            else:
                rules.add(key)
        return errors

    def submit_flow_mods(self, mods: Sequence[FlowMod]) -> FlowModReply:
        """Admission-controlled batch apply: the control-plane entry point.

        A rejected batch is answered with the full list of typed errors
        and is **bit-invisible**: admission runs before any mutation, so
        logical tables, compiled artifacts, the fused driver object,
        update accounting, and the datapath generation are exactly as if
        the batch had never been sent. An accepted batch applies
        transactionally and reports its modeled switch-side cycles.
        """
        errors = self.admit_flow_mods(mods)
        if errors:
            return FlowModReply(accepted=False, errors=tuple(errors))
        try:
            cycles = self.apply_flow_mods(mods)
        except FlowModFailed as exc:
            # Admission simulates capacity exactly, so this is belt and
            # braces: the transactional rollback already undid the batch.
            return FlowModReply(accepted=False, errors=(exc.error,))
        except Exception as exc:  # never let apply failures escape
            return FlowModReply(
                accepted=False,
                errors=(
                    ErrorMsg(
                        ErrorType.FLOW_MOD_FAILED,
                        FlowModFailedCode.UNKNOWN,
                        f"{type(exc).__name__}: {exc}",
                    ),
                ),
            )
        return FlowModReply(accepted=True, cycles=cycles)

    def _kind_stable(
        self,
        table: FlowTable,
        mod: FlowMod,
        len_before: int,
        pre_class_exists: bool,
    ) -> bool:
        """True when this mod provably cannot change the selected template.

        ``select_template`` is O(entries) — ran per flow-mod it turns
        million-entry churn into a template-reselection benchmark. But
        template applicability depends almost entirely on the table's
        *shape classes* ``(priority, match signature)``, of which there
        are a handful, so most mods can prove stability from the
        :meth:`~repro.openflow.flow_table.FlowTable.feature_counts`
        multiset alone:

        * HASH applicability is shape-only. An ADD into an existing class
          (or any strict DELETE that leaves a keyed class standing)
          cannot change it.
        * LPM applicability is value-dependent only through *hazard
          pairs* — distinct classes ``(p1, d1)``, ``(p2, d2)`` with
          ``d1 <= d2`` and ``p1 >= p2``, the shape of both duplicate-
          prefix-at-different-priority and ancestor-priority conflicts.
          A hazard-free class set is consistent for *any* values; strict
          DELETE from a consistent set always stays consistent.

        Everything value- or mode-sensitive falls through to the full
        recompute: wildcard deletes, range/linked-list modes, tables near
        the direct-code threshold, new shape classes.
        """
        config = self.config
        if config.force_linked_list or config.enable_range:
            return False
        if min(len(table), len_before) <= config.direct_threshold:
            return False
        if mod.command is FlowModCommand.DELETE and not mod.strict:
            return False
        group = self._groups.get(table.table_id)
        if group is None or group.decomposed:
            return False
        compiled = self.datapath.trampoline.get(table.table_id)
        if compiled is None:
            return False
        is_delete = mod.command is FlowModCommand.DELETE
        counts = table.feature_counts()  # post-mod
        if compiled.kind is TemplateKind.HASH:
            if not is_delete and not pre_class_exists:
                return False
            # A delete may extinguish the last keyed class, leaving only
            # catch-alls — no longer hash material.
            return any(k[1] for k in counts)
        if compiled.kind is TemplateKind.LPM:
            if is_delete:
                return True
            if not pre_class_exists:
                return False
            shapes = table.shapes_version
            cached = self._lpm_hazard_free.get(table.table_id)
            if cached is not None and cached[0] == shapes:
                return cached[1]
            classes = {(k[0], k[1]) for k in counts}
            free = not _lpm_hazard(classes)
            self._lpm_hazard_free[table.table_id] = (shapes, free)
            return free
        return False

    def _recompile_after_update(
        self,
        table: FlowTable,
        mod: FlowMod,
        new_table: bool,
        kind_stable: bool = False,
    ) -> float:
        costs = self.costs
        stats = self.update_stats

        if new_table:
            self._compile_group(table)
            stats.rebuilds += 1
            return costs.es_update_rebuild_base + costs.es_update_rebuild_per_entry * len(
                table
            )

        group = self._groups[table.table_id]
        if group.decomposed:
            # Queue a side-by-side rebuild; the control path pays only the
            # enqueue, the compile runs off the update's critical path.
            self._dirty_groups.add(table.table_id)
            stats.group_rebuilds += 1
            return costs.es_update_incremental

        compiled = self.datapath.table(table.table_id)
        if kind_stable:
            new_kind = compiled.kind
            stats.kind_stable_skips += 1
        else:
            new_kind = select_template(table.entries, self.config)
        if new_kind is not compiled.kind:
            # Prerequisite changed: fall back (or upgrade) with a rebuild.
            stats.fallbacks += 1
            if self._budget_spent():
                return self._defer_rebuild(table.table_id)
            self._rebuild_group(table.table_id)
            return costs.es_update_rebuild_base + costs.es_update_rebuild_per_entry * len(
                table
            )

        if self._try_incremental(compiled, table, mod):
            stats.incremental += 1
            return costs.es_update_incremental

        stats.rebuilds += 1
        if self._budget_spent():
            return self._defer_rebuild(table.table_id)
        self._rebuild_group(table.table_id)
        return costs.es_update_rebuild_base + costs.es_update_rebuild_per_entry * len(
            table
        )

    def _budget_spent(self) -> bool:
        budget = self.config.compile_budget
        return budget is not None and self._batch_compiles >= budget

    def _defer_rebuild(self, table_id: int) -> float:
        """The batch blew its compile budget: push this rebuild to the
        side-by-side path (the next packet's flush) instead of paying the
        compile on the control path's critical path. New tables are exempt
        (goto targets need them installed immediately); only rebuilds of
        already-compiled tables defer, so the old compiled table keeps
        serving — and the pre-packet flush guarantees no lookup ever sees
        the stale build."""
        self.budget_deferrals += 1
        self._dirty_groups.add(table_id)
        return self.costs.es_update_incremental

    def _try_incremental(
        self, compiled: CompiledTable, table: FlowTable, mod: FlowMod
    ) -> bool:
        """Non-destructive in-place update where the template allows it."""
        if compiled.kind is TemplateKind.DIRECT:
            return False  # "Complete rebuilding happens … unconditionally"

        if compiled.kind is TemplateKind.HASH:
            match = mod.match
            if match.is_catch_all:
                last = table.last_entry()  # O(1): no live-tuple rebuild
                compiled.namespace["_MISS"] = (
                    outcome_of(last)
                    if last is not None and last.match.is_catch_all
                    else miss_outcome(table)
                )
                return True
            if match.fields != compiled.hash_fields or any(
                match.mask_of(name) != mask
                for name, mask in zip(compiled.hash_fields, compiled.hash_masks)
            ):
                return False
            values = tuple(match.value_of(name) for name in compiled.hash_fields)
            key = values[0] if len(values) == 1 else values
            assert compiled.hash_store is not None
            # Same-match duplicates at different priorities are legal (the
            # lower one is shadowed): the slot always holds the outcome of
            # the highest-priority entry that *remains* in the table, so a
            # strict delete of one duplicate reinstates the survivor.
            best = table.find(match)
            if best is None:
                compiled.hash_store.remove(key)
            else:
                compiled.hash_store.insert(key, outcome_of(best))
            compiled.entry_count = len(table)
            return True

        if compiled.kind is TemplateKind.LPM:
            match = mod.match
            assert compiled.lpm_store is not None
            if match.is_catch_all:
                last = table.last_entry()  # O(1): no live-tuple rebuild
                compiled.namespace["_MISS"] = (
                    outcome_of(last)
                    if last is not None and last.match.is_catch_all
                    else miss_outcome(table)
                )
                return True
            if match.fields != (compiled.lpm_field,) or not match.is_prefix(
                compiled.lpm_field
            ):
                return False
            value = match.value_of(compiled.lpm_field)
            depth = match.prefix_len(compiled.lpm_field)
            assert value is not None
            # The outcome list is slot-addressed by the LPM's stored next
            # hop. Slots are recycled through a free list so that add/
            # delete churn (the Fig. 18 route-flap workload) keeps _OUT
            # bounded by the live rule count instead of growing forever.
            store = compiled.lpm_store
            outcomes = compiled.namespace["_OUT"]
            slot = store.get_rule(value, depth)
            best = table.find(match)
            if best is None:
                if slot is not None:
                    store.delete(value, depth)
                    outcomes[slot] = None
                    compiled.lpm_free.append(slot)
            elif slot is not None:
                # Rule replaced (or one duplicate deleted): rebind in place.
                outcomes[slot] = outcome_of(best)
            else:
                if compiled.lpm_free:
                    slot = compiled.lpm_free.pop()
                    outcomes[slot] = outcome_of(best)
                else:
                    slot = len(outcomes)
                    outcomes.append(outcome_of(best))
                try:
                    store.add(value, depth, slot)
                except LpmFullError:
                    outcomes[slot] = None
                    compiled.lpm_free.append(slot)
                    return False  # fall back to a (larger) rebuild
            compiled.entry_count = len(table)
            return True

        if compiled.kind is TemplateKind.LINKED_LIST:
            # Rebuild the entry list in place, reusing the shared matcher
            # functions; the generated code object never changes.
            from repro.core.analysis import split_catch_all

            rules, catch_all = split_catch_all(table.entries)
            compiled.namespace["_MISS"] = (
                outcome_of(catch_all) if catch_all is not None else miss_outcome(table)
            )
            from repro.core.codegen import _guard_masks

            new_entries = []
            for entry in rules:
                sig = tuple((n, m) for n, (_v, m) in entry.match.items())
                fn = compiled.ll_matchers.get(sig)
                if fn is None:
                    fn = _build_sig_matcher(sig, len(compiled.ll_matchers))
                    compiled.ll_matchers[sig] = fn
                values = tuple(v for _n, (v, _m) in entry.match.items())
                new_entries.append(
                    (_guard_masks(entry.match), fn, values, outcome_of(entry))
                )
            assert compiled.ll_entries is not None
            compiled.ll_entries[:] = new_entries
            compiled.entry_count = len(table)
            return True

        return False

    def __repr__(self) -> str:
        return (
            f"ESwitch(tables={len(self._groups)}, "
            f"compiled={self.compiled_table_count})"
        )
