"""Workload generation and measurement (the NFPA analogue).

The evaluation sweeps two axes per use case: pipeline complexity (table
sizes) and traffic diversity (active flow count). :mod:`repro.traffic.flows`
builds deterministic flow sets; :mod:`repro.traffic.nfpa` replays them
round-robin — deliberately removing temporal locality, as the paper's
traces do — through any switch and reports packet rate, cycles/packet, and
cache behavior.
"""

from repro.traffic.flows import FlowSet, round_robin
from repro.traffic.nfpa import DirectSwitch, Measurement, measure, measure_multicore

__all__ = [
    "DirectSwitch",
    "FlowSet",
    "round_robin",
    "Measurement",
    "measure",
    "measure_multicore",
]
