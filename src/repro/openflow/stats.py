"""Controller-side statistics collection (OFPMP_FLOW / OFPMP_TABLE).

Works against any switch in this repo: the statistics live on the logical
flow entries, which all three datapaths keep truthful (the compiled fast
path records per-outcome, the OVS caches attribute hits back through the
megaflow's ``stat_entries``, and the interpreter records directly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline


@dataclass(frozen=True)
class FlowStatsEntry:
    """One rule's statistics, as a flow-stats reply would carry them."""

    table_id: int
    priority: int
    match: Match
    packets: int
    bytes: int
    cookie: int


@dataclass(frozen=True)
class TableStats:
    """Per-table aggregate statistics."""

    table_id: int
    active_entries: int
    packets: int
    bytes: int


def collect_flow_stats(
    pipeline: Pipeline,
    table_id: "int | None" = None,
    match: "Match | None" = None,
    cookie: "int | None" = None,
) -> list[FlowStatsEntry]:
    """Flow statistics, optionally filtered.

    ``match`` filters like an OpenFlow stats request: a rule is reported
    when its match is *covered by* the filter (the filter is equal or more
    general).
    """
    out: list[FlowStatsEntry] = []
    for table in pipeline:
        if table_id is not None and table.table_id != table_id:
            continue
        for entry in table:
            if match is not None and not match.covers(entry.match):
                continue
            if cookie is not None and entry.cookie != cookie:
                continue
            out.append(
                FlowStatsEntry(
                    table_id=table.table_id,
                    priority=entry.priority,
                    match=entry.match,
                    packets=entry.counters.packets,
                    bytes=entry.counters.bytes,
                    cookie=entry.cookie,
                )
            )
    return out


def collect_table_stats(pipeline: Pipeline) -> list[TableStats]:
    out = []
    for table in pipeline:
        packets = sum(e.counters.packets for e in table)
        nbytes = sum(e.counters.bytes for e in table)
        out.append(
            TableStats(
                table_id=table.table_id,
                active_entries=len(table),
                packets=packets,
                bytes=nbytes,
            )
        )
    return out


def aggregate_stats(
    pipeline: Pipeline,
    table_id: "int | None" = None,
    match: "Match | None" = None,
) -> tuple[int, int, int]:
    """(flow count, packets, bytes) over the filtered rule set."""
    entries = collect_flow_stats(pipeline, table_id=table_id, match=match)
    return (
        len(entries),
        sum(e.packets for e in entries),
        sum(e.bytes for e in entries),
    )
