"""Layer-3 routing: longest prefix match over a sampled FIB (Section 4.1).

"The L3 pipeline is compiled into the LPM template yielding a datapath
identical to that of an IP softrouter. … routing tables were randomly
sampled from a real Internet router."

No real router dump ships with this reproduction; :func:`synthetic_fib`
draws prefixes from the well-known depth distribution of Internet BGP
tables (dominated by /24s, with mass at /16–/23 and a thin short-prefix
tail) — what matters to the experiments is the LPM shape: many disjoint
and nested prefixes at realistic depths.
"""

from __future__ import annotations

import random

from repro.net.addresses import int_to_ip
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.packet.builder import PacketBuilder
from repro.traffic.flows import FlowSet

#: Approximate Internet FIB prefix-length distribution.
DEPTH_WEIGHTS: tuple[tuple[int, float], ...] = (
    (8, 0.002),
    (12, 0.005),
    (14, 0.008),
    (16, 0.065),
    (18, 0.035),
    (19, 0.045),
    (20, 0.07),
    (21, 0.07),
    (22, 0.12),
    (23, 0.10),
    (24, 0.48),
)

N_NEXT_HOPS = 16


def synthetic_fib(n_prefixes: int, seed: int = 13) -> list[tuple[int, int, int]]:
    """``[(prefix_value, depth, next_hop_port)]`` with realistic depths."""
    rng = random.Random(seed)
    depths = [d for d, _w in DEPTH_WEIGHTS]
    weights = [w for _d, w in DEPTH_WEIGHTS]
    fib: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int]] = set()
    while len(fib) < n_prefixes:
        depth = rng.choices(depths, weights)[0]
        # Stay inside 1.0.0.0 – 223.255.255.255 (unicast space).
        value = rng.randrange(1 << 24, 224 << 24) & (
            ((1 << depth) - 1) << (32 - depth)
        )
        if (value, depth) in seen:
            continue
        seen.add((value, depth))
        fib.append((value, depth, rng.randrange(N_NEXT_HOPS)))
    return fib


def build(n_prefixes: int, seed: int = 13) -> tuple[Pipeline, list[tuple[int, int, int]]]:
    """A routing table compiled from a synthetic FIB.

    Priorities encode prefix length (longer = higher), the LPM template's
    consistency prerequisite.
    """
    fib = synthetic_fib(n_prefixes, seed)
    table = FlowTable(0, name="rib")
    table.add_bulk(
        [
            FlowEntry(
                Match(ipv4_dst=f"{int_to_ip(value)}/{depth}"),
                priority=depth,
                actions=[Output(port)],
            )
            for value, depth, port in fib
        ]
    )
    table.add(FlowEntry(Match(), priority=0, actions=[]))  # no default route
    return Pipeline([table]), fib


def traffic(fib: list[tuple[int, int, int]], n_flows: int, seed: int = 17) -> FlowSet:
    """Flows whose destinations fall inside FIB prefixes (aligned traces)."""
    rng = random.Random(seed)

    def factory(i: int, _rng: random.Random) -> object:
        value, depth, _port = fib[i % len(fib)]
        host_bits = 32 - depth
        dst = value | (rng.getrandbits(host_bits) if host_bits else 0)
        return (
            PacketBuilder(in_port=0)
            .eth(src="02:00:00:00:00:01", dst="02:00:00:00:00:02")
            .ipv4(src=f"10.{(i >> 8) & 255}.{i & 255}.1", dst=int_to_ip(dst))
            .udp(src_port=1024 + (i % 60000), dst_port=53)
            .build()
        )

    return FlowSet.build(n_flows, factory, seed=seed, name=f"l3-{n_flows}flows")
