"""Tests for the use-case builders and their traffic generators."""

import pytest

from repro.core import ESwitch
from repro.packet.parser import parse
from repro.openflow.fields import field_by_name
from repro.usecases import acl, firewall, gateway, l2, l3, loadbalancer


class TestFirewall:
    @pytest.mark.parametrize("build", [firewall.build_single_stage,
                                       firewall.build_multi_stage])
    def test_policy(self, build):
        from repro.packet import PacketBuilder

        p = build()
        admit = (PacketBuilder(in_port=firewall.EXTERNAL).eth()
                 .ipv4(dst=firewall.SERVER_IP).tcp(dst_port=80).build())
        block = (PacketBuilder(in_port=firewall.EXTERNAL).eth()
                 .ipv4(dst=firewall.SERVER_IP).tcp(dst_port=22).build())
        out = (PacketBuilder(in_port=firewall.INTERNAL).eth()
               .ipv4(src=firewall.SERVER_IP).tcp(src_port=80).build())
        assert p.process(admit).output_ports == [firewall.INTERNAL]
        assert not p.process(block).forwarded
        assert p.process(out).output_ports == [firewall.EXTERNAL]

    def test_equivalent_pipelines(self):
        """Fig. 1a and Fig. 1b implement the same policy."""
        import random

        import strategies as sts

        rng = random.Random(8)
        single, multi = firewall.build_single_stage(), firewall.build_multi_stage()
        for _ in range(100):
            pkt = sts.random_packet(rng)
            assert (single.process(pkt.copy()).summary()
                    == multi.process(pkt.copy()).summary())


class TestL2:
    def test_table_size(self):
        p, macs = l2.build(64)
        assert len(p.table(0)) == 64
        assert len(set(macs)) == 64

    def test_traffic_aligned_no_misses(self):
        """The paper aligns L2 traces with the table to avoid misses."""
        p, macs = l2.build(32)
        sw = ESwitch.from_pipeline(p)
        flows = l2.traffic(macs, 100)
        assert all(sw.process(flows[i].copy()).forwarded for i in range(len(flows)))

    def test_deterministic(self):
        assert l2.build(8, seed=1)[1] == l2.build(8, seed=1)[1]
        assert l2.build(8, seed=1)[1] != l2.build(8, seed=2)[1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            l2.build(0)


class TestL3:
    def test_fib_depth_distribution(self):
        fib = l3.synthetic_fib(2000)
        depths = [d for _v, d, _h in fib]
        # /24 dominates, as in real Internet tables.
        assert depths.count(24) > len(depths) * 0.35
        assert all(8 <= d <= 24 for d in depths)

    def test_prefixes_unique(self):
        fib = l3.synthetic_fib(500)
        assert len({(v, d) for v, d, _h in fib}) == 500

    def test_traffic_hits_table(self):
        p, fib = l3.build(100)
        sw = ESwitch.from_pipeline(p)
        flows = l3.traffic(fib, 50)
        hits = sum(sw.process(flows[i].copy()).forwarded for i in range(50))
        assert hits == 50

    def test_compiles_to_lpm(self):
        p, _fib = l3.build(50)
        assert ESwitch.from_pipeline(p).table_kinds()[0] == "lpm"


class TestLoadBalancer:
    def test_single_and_multi_equivalent(self):
        single = loadbalancer.build_single_table(5)
        multi = loadbalancer.build_multi_stage(5)
        flows = loadbalancer.traffic(5, 80)
        for i in range(len(flows)):
            pkt = flows[i]
            assert (single.process(pkt.copy()).summary()
                    == multi.process(pkt.copy()).summary())

    def test_backend_choice_by_source_bit(self):
        p = loadbalancer.build_single_table(3)
        from repro.packet import PacketBuilder

        low = (PacketBuilder(in_port=loadbalancer.EXTERNAL).eth()
               .ipv4(src="10.0.0.1", dst=None or "198.18.0.1").tcp(dst_port=80).build())
        high = (PacketBuilder(in_port=loadbalancer.EXTERNAL).eth()
                .ipv4(src="200.0.0.1", dst="198.18.0.1").tcp(dst_port=80).build())
        p.process(low)
        p.process(high)
        assert int.from_bytes(low.data[30:34], "big") == loadbalancer.backend_ip(1, 0)
        assert int.from_bytes(high.data[30:34], "big") == loadbalancer.backend_ip(1, 1)

    def test_traffic_half_dropped(self):
        p = loadbalancer.build_single_table(8)
        flows = loadbalancer.traffic(8, 400)
        dropped = sum(
            not p.process(flows[i].copy()).forwarded for i in range(len(flows))
        )
        assert 120 <= dropped <= 280  # roughly half, per Section 4.1

    def test_reverse_direction_unconditional(self):
        from repro.packet import PacketBuilder

        p = loadbalancer.build_single_table(2)
        pkt = PacketBuilder(in_port=loadbalancer.INTERNAL).eth().ipv4().udp().build()
        assert p.process(pkt).output_ports == [loadbalancer.EXTERNAL]


class TestGateway:
    def test_paper_scale_builds(self):
        p, fib = gateway.build(n_ce=10, users_per_ce=20, n_prefixes=1000)
        assert len(fib) == 1000
        assert len(p.table(gateway.CE_TABLE_BASE)) == 20
        assert len(p.table(gateway.REVERSE_TABLE)) == 200

    def test_user_network_nat(self):
        p, fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=100)
        flows = gateway.traffic(fib, 4, n_ce=2, users_per_ce=2)
        pkt = flows[0].copy()
        v = p.process(pkt)
        assert v.output_ports == [gateway.NETWORK_PORT]
        # The VLAN tag was popped, so the IPv4 source sits at bytes 26:30.
        assert int.from_bytes(pkt.data[26:30], "big") == gateway.public_ip(0, 0)

    def test_network_user_reverse_nat(self):
        from repro.packet import PacketBuilder
        from repro.net.addresses import int_to_ip

        p, _fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=50)
        pkt = (PacketBuilder(in_port=gateway.NETWORK_PORT).eth()
               .ipv4(src="8.8.8.8", dst=int_to_ip(gateway.public_ip(1, 0)))
               .tcp(src_port=443).build())
        v = p.process(pkt)
        assert v.output_ports == [gateway.ACCESS_PORT]
        view = parse(pkt)
        assert field_by_name("vlan_vid").extract(view) == gateway.ce_vlan(1)
        assert field_by_name("ipv4_dst").extract(view) == gateway.private_ip(1, 0)

    def test_unprovisioned_punts_to_controller(self):
        p, fib = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=50,
                               provision_users=False)
        pkt = gateway.traffic(fib, 1, n_ce=1, users_per_ce=1)[0]
        assert p.process(pkt.copy()).to_controller

    def test_nat_flow_mods_match_provisioned_entries(self):
        provisioned, fib = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=50)
        empty, _ = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=50,
                                 provision_users=False)
        sw = ESwitch.from_pipeline(empty)
        for mod in gateway.nat_flow_mods(0, 0):
            sw.apply_flow_mod(mod)
        pkt = gateway.traffic(fib, 1, n_ce=1, users_per_ce=1)[0]
        assert (sw.process(pkt.copy()).summary()
                == provisioned.process(pkt.copy()).summary())


class TestAcl:
    def test_rule_count(self):
        table = acl.generate(72)
        assert len(table) == 72 + 1  # + permit catch-all

    def test_rules_exact_or_wildcard(self):
        table = acl.generate(100)
        for entry in table:
            for name, (_v, mask) in entry.match.items():
                from repro.openflow.fields import field_by_name

                assert mask == field_by_name(name).max_value

    def test_deterministic(self):
        a = [e.match for e in acl.generate(30, seed=5)]
        b = [e.match for e in acl.generate(30, seed=5)]
        assert a == b

    def test_decomposable(self):
        from repro.core.decompose import decomposable

        assert decomposable(acl.generate(72))
