"""Fig. 12: load balancer packet rate over 1/10/100 services vs flows.

The single-table policy only stays fast on ESWITCH thanks to automatic
table decomposition (Fig. 7b); the bench also reports the ablated
(decomposition off, linked-list) variant the naive compiler would ship.
"""

from figshared import FLOW_AXIS, fmt_flows, publish, render_table, sweep_flows
from repro.core import CompileConfig, ESwitch
from repro.ovs import OvsSwitch
from repro.usecases import loadbalancer as lb

SERVICE_COUNTS = (1, 10, 100)
LB_FLOW_AXIS = FLOW_AXIS


def test_fig12_load_balancer(benchmark):
    results = {}
    for n_svc in SERVICE_COUNTS:
        results[("ES", n_svc)] = sweep_flows(
            lambda: ESwitch.from_pipeline(lb.build_single_table(n_svc)),
            lambda n: lb.traffic(n_svc, n),
            flow_counts=LB_FLOW_AXIS,
        )
        results[("OVS", n_svc)] = sweep_flows(
            lambda: OvsSwitch(lb.build_single_table(n_svc)),
            lambda n: lb.traffic(n_svc, n),
            flow_counts=LB_FLOW_AXIS,
        )
    # Ablation: decomposition disabled (the naive linked-list compile).
    naive = sweep_flows(
        lambda: ESwitch.from_pipeline(
            lb.build_single_table(100), config=CompileConfig(decompose=False)
        ),
        lambda n: lb.traffic(100, n),
        flow_counts=(1_000,),
    )

    header = ["flows"] + [f"{sw}({n})" for sw in ("ES", "OVS") for n in SERVICE_COUNTS]
    rows = []
    for i, n_flows in enumerate(LB_FLOW_AXIS):
        row = [fmt_flows(n_flows)]
        for sw in ("ES", "OVS"):
            for n in SERVICE_COUNTS:
                row.append(f"{results[(sw, n)][i][1].mpps:.2f}")
        rows.append(row)
    publish(
        "fig12_lb",
        render_table("Fig. 12: load balancer packet rate [Mpps]", header, rows)
        + f"\n  ablation - ES without decomposition, 100 services @1K flows: "
          f"{naive[0][1].mpps:.2f} Mpps",
    )

    for n in SERVICE_COUNTS:
        es = [m.mpps for _f, m in results[("ES", n)]]
        ovs = [m.mpps for _f, m in results[("OVS", n)]]
        assert min(es) > max(es) / 2.5
        assert all(e >= o * 0.95 for e, o in zip(es, ovs))
        assert ovs[-1] < ovs[0] / 2
    # Decomposition is what makes the LB fast: the ablated datapath is
    # at least 2x slower at 100 services.
    es_100 = dict((f, m.mpps) for f, m in results[("ES", 100)])
    assert naive[0][1].mpps < es_100[1_000] / 2

    sw = ESwitch.from_pipeline(lb.build_single_table(10))
    flows = lb.traffic(10, 64)
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 64].copy()))
