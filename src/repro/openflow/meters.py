"""OpenFlow meters: per-flow token-bucket rate limiting (OFPIT_METER).

A flow entry's ``MeterInstruction`` runs before its other instructions;
if the meter's drop band fires, the packet dies there. Meters live in the
pipeline's :class:`MeterTable` and — like groups — are resolved at
execution time, so cached fast paths (ESWITCH outcomes, OVS megaflows)
enforce current rates without any invalidation.

Time is simulation time: every pipeline carries a :class:`SimClock` that
tests and harnesses advance explicitly (measurement harnesses can derive
it from accumulated cycles). Token buckets refill continuously at
``rate_pps`` and hold at most ``burst`` tokens.
"""

from __future__ import annotations

from dataclasses import dataclass


class SimClock:
    """Explicitly advanced simulation time (seconds)."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self.now += seconds
        return self.now

    def set(self, now: float) -> None:
        if now < self.now:
            raise ValueError("time cannot move backwards")
        self.now = now


class MeterError(ValueError):
    """Raised on malformed meters or dangling references."""


@dataclass
class MeterStats:
    packets_in: int = 0
    packets_dropped: int = 0


class Meter:
    """One meter: a drop band implemented as a token bucket."""

    def __init__(self, meter_id: int, rate_pps: float, burst: float = 0.0,
                 clock: "SimClock | None" = None):
        if meter_id < 1:
            raise MeterError(f"invalid meter id {meter_id}")
        if rate_pps <= 0:
            raise MeterError("meter rate must be positive")
        self.meter_id = meter_id
        self.rate_pps = rate_pps
        self.burst = max(burst, 1.0)
        self.clock = clock or SimClock()
        self._tokens = self.burst
        self._last = self.clock.now
        self.stats = MeterStats()

    def allow(self) -> bool:
        """Account one packet; False means the drop band fired."""
        now = self.clock.now
        if now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate_pps)
            self._last = now
        self.stats.packets_in += 1
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.stats.packets_dropped += 1
        return False


class MeterTable:
    """The switch's meter inventory, sharing one simulation clock."""

    def __init__(self, clock: "SimClock | None" = None):
        self.clock = clock or SimClock()
        self._meters: dict[int, Meter] = {}
        self.version = 0

    def add(self, meter_id: int, rate_pps: float, burst: float = 0.0) -> Meter:
        meter = Meter(meter_id, rate_pps, burst, clock=self.clock)
        self._meters[meter_id] = meter
        self.version += 1
        return meter

    def remove(self, meter_id: int) -> bool:
        if self._meters.pop(meter_id, None) is None:
            return False
        self.version += 1
        return True

    def get(self, meter_id: int) -> Meter:
        meter = self._meters.get(meter_id)
        if meter is None:
            raise MeterError(f"no meter with id {meter_id}")
        return meter

    def __contains__(self, meter_id: int) -> bool:
        return meter_id in self._meters

    def __len__(self) -> int:
        return len(self._meters)


@dataclass(frozen=True)
class MeterInstruction:
    """Send matching packets through a meter before other instructions."""

    table: MeterTable
    meter_id: int

    def allow(self) -> bool:
        return self.table.get(self.meter_id).allow()

    def __hash__(self) -> int:
        return hash((id(self.table), self.meter_id))

    def __repr__(self) -> str:
        return f"MeterInstruction(meter={self.meter_id})"
