"""The microflow (exact-match) cache — OVS's EMC.

"The microflow cache stores the forwarding decisions for the least recently
seen transport connections in a very fast collision-free hash … the
microflow cache indexes into the megaflow cache and megaflow cache hits
trigger a microflow cache update." (Section 2.2)

Entries map full exact keys to megaflow-entry references; capacity-bounded
with LRU replacement (the real EMC evicts per hash slot — LRU preserves the
property that matters here: a bounded working set that thrashes once the
active flow count exceeds capacity).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:
    from repro.ovs.megaflow import MegaflowEntry

#: OVS's EMC holds 8192 entries per datapath thread.
DEFAULT_CAPACITY = 8192


class MicroflowCache:
    """Exact-match key -> megaflow entry, LRU-bounded."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: key -> (insertion generation, megaflow ref). A whole-cache
        #: invalidation bumps ``_gen`` instead of clearing the map, so a
        #: reinstall batch of N flow-mods costs N integer increments; the
        #: stale slots die lazily at their next lookup (or at the
        #: telemetry-rate prune in ``__len__``).
        self._entries: "OrderedDict[Hashable, tuple[int, MegaflowEntry]]" = (
            OrderedDict()
        )
        self._gen = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> "MegaflowEntry | None":
        slot = self._entries.get(key)
        if slot is None:
            self.misses += 1
            return None
        gen, entry = slot
        if gen != self._gen or entry.dead:
            del self._entries[key]  # lazy invalidation of dead refs
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def insert(self, key: Hashable, entry: "MegaflowEntry") -> None:
        self._entries[key] = (self._gen, entry)
        self._entries.move_to_end(key)
        self.insertions += 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def slot_of(self, key: Hashable) -> int:
        """Abstract slot index for the cache-line model."""
        return hash(key) % self.capacity

    def invalidate(self) -> None:
        """Flush everything (flow-table revalidation) — O(1), see
        ``_entries``; dead slots are reaped lazily."""
        self._gen += 1

    def __len__(self) -> int:
        """Live occupancy.

        Lazy invalidation leaves dead megaflow references in the map until
        the next lookup touches them; counting those corpses over-reported
        EMC occupancy at exactly the moments the Fig. 3 saturation points
        sample it (right after a flow-mod killed the megaflow generation).
        Prune them here — ``__len__`` runs at telemetry rate, not on the
        packet path.
        """
        entries = self._entries
        gen = self._gen
        dead = [
            key for key, (igen, entry) in entries.items()
            if igen != gen or entry.dead
        ]
        for key in dead:
            del entries[key]
        return len(entries)

    def __repr__(self) -> str:
        return f"MicroflowCache(entries={len(self)}/{self.capacity})"
