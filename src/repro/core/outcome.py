"""Outcomes: the pre-compiled result a table lookup returns.

Template specialization bakes each flow entry's consequences into a single
:class:`Outcome` object referenced as a constant from the generated code —
the analogue of the paper's action templates "collapsed into composite
action sets" and "shared across flows" (interning makes structurally equal
outcomes one object).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.openflow.actions import Action
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
    WriteMetadata,
)

if TYPE_CHECKING:
    pass


class Outcome:
    """What happens after a match (or a miss): actions + the next jump."""

    __slots__ = (
        "apply_actions",
        "write_actions",
        "clear_actions",
        "metadata_write",
        "goto",
        "entry",
        "is_miss",
        "to_controller",
        "meter",
    )

    def __init__(
        self,
        apply_actions: tuple[Action, ...] = (),
        write_actions: tuple[Action, ...] = (),
        clear_actions: bool = False,
        metadata_write: "tuple[int, int] | None" = None,
        goto: "int | None" = None,
        entry: "FlowEntry | None" = None,
        is_miss: bool = False,
        to_controller: bool = False,
        meter=None,
    ):
        self.apply_actions = apply_actions
        self.write_actions = write_actions
        self.clear_actions = clear_actions
        self.metadata_write = metadata_write
        self.goto = goto
        self.entry = entry
        self.is_miss = is_miss
        self.to_controller = to_controller
        #: a MeterInstruction checked before the entry's actions, or None.
        self.meter = meter

    def __repr__(self) -> str:
        if self.is_miss:
            return f"Outcome(miss->{'controller' if self.to_controller else 'drop'})"
        parts = []
        if self.apply_actions:
            parts.append(f"apply={list(self.apply_actions)}")
        if self.write_actions:
            parts.append(f"write={list(self.write_actions)}")
        if self.goto is not None:
            parts.append(f"goto={self.goto}")
        return f"Outcome({', '.join(parts) or 'no-op'})"


def outcome_of(entry: FlowEntry) -> Outcome:
    """Compile one flow entry's instruction list into an outcome."""
    from repro.openflow.meters import MeterInstruction

    apply_actions: tuple[Action, ...] = ()
    write_actions: tuple[Action, ...] = ()
    clear = False
    metadata: "tuple[int, int] | None" = None
    goto: "int | None" = None
    meter = None
    for instr in entry.instructions:
        if isinstance(instr, MeterInstruction):
            meter = instr
        elif isinstance(instr, ApplyActions):
            apply_actions = apply_actions + instr.actions
        elif isinstance(instr, WriteActions):
            write_actions = write_actions + instr.actions
        elif isinstance(instr, ClearActions):
            clear = True
            write_actions = ()
        elif isinstance(instr, WriteMetadata):
            metadata = (instr.value, instr.mask)
        elif isinstance(instr, GotoTable):
            goto = instr.table_id
    return Outcome(
        apply_actions=apply_actions,
        write_actions=write_actions,
        clear_actions=clear,
        metadata_write=metadata,
        goto=goto,
        entry=entry,
        meter=meter,
    )


def miss_outcome(table: FlowTable) -> Outcome:
    """The outcome of a table miss under the table's policy."""
    return Outcome(
        is_miss=True,
        to_controller=table.miss_policy is TableMissPolicy.CONTROLLER,
    )
