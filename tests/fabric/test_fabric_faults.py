"""The fabric fault plan: scripted, deterministic, reversible windows.

Every kind in the matrix (blackout, latency storm, keepalive eclipse,
controller stall) fires at its virtual time, mutates exactly its
target, and heals back to the pre-fault state when its window closes.
"""

import pytest

from repro.controller.channels import LossyChannel
from repro.fabric import (
    FAULT_KINDS,
    Fabric,
    FabricFaultPlan,
    FabricFaultSpec,
    NO_FABRIC_FAULTS,
)


def reliable(role, name, index):
    return LossyChannel(loss=0.0, delay_s=1e-3, seed=8000 + index)


@pytest.fixture()
def fabric():
    with Fabric(
        n_leaves=2, n_spines=1, n_ce=4, users_per_ce=2, n_prefixes=32,
        channel_for=reliable,
    ) as fab:
        yield fab


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FabricFaultSpec(at_s=1.0, target="leaf0", kind="meteor")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FabricFaultSpec(at_s=-1.0, target="leaf0", kind="blackout")
        with pytest.raises(ValueError):
            FabricFaultSpec(
                at_s=1.0, target="leaf0", kind="blackout", duration_s=0
            )
        with pytest.raises(ValueError):
            FabricFaultSpec(
                at_s=1.0, target="leaf0", kind="latency_storm", magnitude=0
            )

    def test_star_target_only_for_stall(self):
        FabricFaultSpec(at_s=1.0, target="*", kind="controller_stall")
        with pytest.raises(ValueError, match='"\\*"'):
            FabricFaultSpec(at_s=1.0, target="*", kind="blackout")

    def test_plan_sorts_specs_and_reports_horizon(self):
        late = FabricFaultSpec(at_s=9.0, target="leaf0", kind="blackout",
                               duration_s=2.0)
        early = FabricFaultSpec(at_s=1.0, target="leaf1", kind="blackout")
        plan = FabricFaultPlan((late, early))
        assert plan.specs[0] is early
        assert plan.horizon_s == 11.0
        assert NO_FABRIC_FAULTS.horizon_s == 0.0


class TestWindows:
    def test_blackout_disconnects_then_heals(self, fabric):
        plan = FabricFaultPlan((
            FabricFaultSpec(at_s=1.0, target="leaf0", kind="blackout",
                            duration_s=2.0),
        ))
        armed = plan.arm(fabric)
        session = fabric.session_of("leaf0")
        armed.tick(0.0)
        assert not session._peer_down
        armed.tick(1.0)
        assert session._peer_down
        assert fabric.session_of("leaf1")._peer_down is False
        armed.tick(3.0)
        assert not session._peer_down
        assert armed.exhausted
        assert [e[1] for e in armed.log] == ["fired", "healed"]

    def test_latency_storm_scales_and_restores_channel(self, fabric):
        channel = fabric.session_of("leaf0").channel
        delay, jitter = channel.delay_s, channel.jitter_s
        armed = FabricFaultPlan((
            FabricFaultSpec(at_s=0.0, target="leaf0", kind="latency_storm",
                            duration_s=1.0, magnitude=10.0),
        )).arm(fabric)
        armed.tick(0.0)
        assert channel.delay_s == pytest.approx(delay * 10)
        assert channel.jitter_s == pytest.approx(jitter * 10)
        armed.tick(1.0)
        assert channel.delay_s == pytest.approx(delay)
        assert channel.jitter_s == pytest.approx(jitter)

    def test_keepalive_eclipse_pins_total_loss(self, fabric):
        channel = fabric.session_of("leaf0").channel
        armed = FabricFaultPlan((
            FabricFaultSpec(at_s=0.0, target="leaf0",
                            kind="keepalive_eclipse", duration_s=1.0),
        )).arm(fabric)
        armed.tick(0.0)
        assert channel.loss == 1.0
        assert all(channel.deliver() is None for _ in range(16))
        armed.tick(1.0)
        assert channel.loss == 0.0

    def test_controller_stall_wedges_faces_star_hits_all(self, fabric):
        armed = FabricFaultPlan((
            FabricFaultSpec(at_s=0.0, target="*", kind="controller_stall",
                            duration_s=1.0),
        )).arm(fabric)
        armed.tick(0.0)
        assert all(leaf.face.stalled for leaf in fabric.leaves)
        fabric.leaves[0].face(object())
        assert fabric.leaves[0].face.stalled_drops == 1
        armed.tick(1.0)
        assert not any(leaf.face.stalled for leaf in fabric.leaves)

    def test_unknown_target_raises_at_fire_time(self, fabric):
        armed = FabricFaultPlan((
            FabricFaultSpec(at_s=0.0, target="leaf7", kind="blackout"),
        )).arm(fabric)
        with pytest.raises(KeyError):
            armed.tick(0.0)

    def test_back_to_back_windows_close_before_open(self, fabric):
        # Second blackout on the same leaf starts from a healed state:
        # its undo must restore "connected", not the first window's
        # mid-fault state.
        armed = FabricFaultPlan((
            FabricFaultSpec(at_s=0.0, target="leaf0", kind="blackout",
                            duration_s=1.0),
            FabricFaultSpec(at_s=1.0, target="leaf0", kind="blackout",
                            duration_s=1.0),
        )).arm(fabric)
        session = fabric.session_of("leaf0")
        armed.tick(0.0)
        assert session._peer_down
        armed.tick(1.0)  # heals #1, fires #2
        assert session._peer_down
        assert armed.fired == 2 and armed.healed == 1
        armed.tick(2.0)
        assert not session._peer_down
        assert armed.exhausted

    def test_every_kind_is_coverable(self, fabric):
        specs = tuple(
            FabricFaultSpec(at_s=float(i), target="leaf0", kind=kind,
                            duration_s=0.5)
            for i, kind in enumerate(FAULT_KINDS)
        )
        armed = FabricFaultPlan(specs).arm(fabric)
        for t in range(len(FAULT_KINDS) + 1):
            armed.tick(float(t))
        assert armed.fired == len(FAULT_KINDS)
        assert armed.healed == len(FAULT_KINDS)
        assert armed.exhausted
