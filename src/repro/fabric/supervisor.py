"""The fabric supervisor: health scoring, outage handling, upgrades.

The PR-4 supervision idioms (deadline-bounded operations, degrade in
place, evidence-based recovery, typed telemetry) applied to the control
plane of a whole fabric:

* **health scoring** — every tick folds each switch's
  :class:`~repro.controller.session.SessionHealth` and (when the switch
  exposes one) engine :class:`~repro.core.eswitch.SwitchHealth` into a
  single ``[0, 1]`` score; a DOWN session scores 0, channel attrition
  (lost echoes, lost punts, failed sends) and engine degradation
  (quarantines, trampoline fallback) take weighted bites out of 1;
* **outage detection** — transitions of the session's ``outages`` /
  ``resyncs`` counters become supervisor events. The affected leaf
  keeps serving in its §6.4 fail mode (that machinery lives in the
  session); the supervisor's job is attribution: per-leaf degraded
  time, resync convergence windows, the event log the soak report
  publishes;
* **rolling upgrades** — :meth:`FabricSupervisor.rolling_upgrade` walks
  the fabric leaf-by-leaf behind epoch barriers: quiesce (barrier),
  apply the upgrade batch through the leaf's own session, re-fuse
  (:meth:`~repro.core.eswitch.ESwitch.warm` — the same ack condition a
  sharded replica answers its epoch broadcast with), then advance that
  leaf's epoch. Any failure — barrier refused, batch rejected, re-fuse
  failed — **aborts and rolls back**: the current leaf and every
  already-upgraded leaf revert to the old epoch's state, so the fabric
  is never left straddling epochs.

``deadlocks`` counts supervisor wedges: a rollback that could not
restore a leaf to the old epoch (nothing recoverable remains to try).
It must be zero in any healthy run — CI asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.match import Match


#: A leaf-side port no workload uses: upgrade marker rules match it so
#: they are verdict-invisible to real traffic (ports 1, 2, uplinks).
UPGRADE_MARKER_PORT = 9999


def default_upgrade_mods(epoch: int) -> list[FlowMod]:
    """The default rolling-upgrade payload: an epoch-marker rule.

    Matches only :data:`UPGRADE_MARKER_PORT`, so the upgraded pipeline
    is verdict-identical for every real packet — which is what lets the
    acceptance check demand *zero* divergence against a pre-upgrade
    replay. ``priority`` encodes the epoch so the marker is inspectable.
    """
    return [
        FlowMod(
            FlowModCommand.ADD,
            0,
            Match(in_port=UPGRADE_MARKER_PORT),
            priority=1 + epoch,
            instructions=(),
        )
    ]


def _inverse_mods(mods, pipeline) -> list[FlowMod]:
    """The rollback batch for ``mods`` against the pre-upgrade pipeline.

    ADD of a rule that did not exist inverts to a strict DELETE; ADD
    that replaced an existing rule inverts to re-ADD of the old entry;
    DELETE inverts to re-ADD of whatever it removed. Computed BEFORE the
    upgrade is applied, against live table state.
    """
    inverse: list[FlowMod] = []
    for mod in mods:
        table = pipeline.get_or_create(mod.table_id)
        if mod.command is FlowModCommand.DELETE:
            priority = mod.priority if mod.strict else None
            for entry in table.entries:
                if entry.match == mod.match and (
                    priority is None or entry.priority == priority
                ):
                    inverse.append(
                        FlowMod(
                            FlowModCommand.ADD,
                            mod.table_id,
                            entry.match,
                            priority=entry.priority,
                            instructions=entry.instructions,
                        )
                    )
            continue
        replaced = None
        for entry in table.entries:
            if entry.match == mod.match and entry.priority == mod.priority:
                replaced = entry
                break
        if replaced is None:
            inverse.append(
                FlowMod(
                    FlowModCommand.DELETE,
                    mod.table_id,
                    mod.match,
                    priority=mod.priority,
                    strict=True,
                )
            )
        else:
            inverse.append(
                FlowMod(
                    FlowModCommand.ADD,
                    mod.table_id,
                    replaced.match,
                    priority=replaced.priority,
                    instructions=replaced.instructions,
                )
            )
    inverse.reverse()
    return inverse


@dataclass
class LeafStatus:
    """One leaf's supervisor-eye view at the last tick."""

    name: str
    score: float = 1.0
    serving: bool = True          #: session UP (DOWN = degraded fail mode)
    outages: int = 0
    resyncs: int = 0
    degraded_time_s: float = 0.0
    convergence_s: "float | None" = None  #: last resync → convergence
    epoch: int = 0


@dataclass
class UpgradeReport:
    """Outcome of one rolling upgrade walk."""

    completed: bool
    epoch: int                      #: fabric epoch after the walk
    upgraded: list[str] = field(default_factory=list)
    aborted_at: "str | None" = None
    abort_reason: str = ""
    rolled_back: list[str] = field(default_factory=list)


class FabricSupervisor:
    """Watches one :class:`~repro.fabric.topology.Fabric` (module doc).

    Drive it with :meth:`tick` from the soak loop; an optional
    :class:`~repro.fabric.faults.ArmedFabricFaults` is ticked first so
    fault windows open before the time they cover is simulated.
    """

    #: score deductions (session DOWN is an immediate 0)
    _ECHO_LOSS_WEIGHT = 0.3
    _PUNT_LOSS_WEIGHT = 0.2
    _SEND_FAIL_WEIGHT = 0.2
    _ENGINE_DEGRADED_CAP = 0.5

    def __init__(self, fabric, faults=None):
        self.fabric = fabric
        self.faults = faults
        self.epoch = 0
        self.deadlocks = 0
        self.events: list[tuple[float, str, str]] = []
        self.status: dict[str, LeafStatus] = {
            leaf.name: LeafStatus(leaf.name) for leaf in fabric.leaves
        }
        #: name -> virtual time of the resync whose convergence is open.
        self._awaiting_convergence: dict[str, float] = {}

    # -- the tick ----------------------------------------------------------

    def tick(self, dt: float) -> None:
        """Advance fault windows + fabric time, then re-score every leaf."""
        if self.faults is not None:
            self.faults.tick(self.fabric.now)
        self.fabric.advance(dt)
        for leaf in self.fabric.leaves:
            self._observe(leaf, dt)

    def _observe(self, leaf, dt: float) -> None:
        health = leaf.session.health()
        status = self.status[leaf.name]
        if health.outages > status.outages:
            # Liveness loss declared since last tick: the leaf is now
            # serving degraded in its fail mode. Detection is the
            # session's (evidence-based); attribution is ours.
            self.events.append((self.fabric.now, leaf.name, "outage"))
        if health.resyncs > status.resyncs:
            self.events.append((self.fabric.now, leaf.name, "resync"))
            self._awaiting_convergence[leaf.name] = self.fabric.now
            status.convergence_s = None
        if not leaf.session.connected:
            status.degraded_time_s += dt
        status.serving = leaf.session.connected
        status.outages = health.outages
        status.resyncs = health.resyncs
        status.score = self._score(leaf, health)

    def awaiting_convergence(self) -> list[str]:
        """Leaves that resynced and whose reactive state has not yet been
        confirmed re-converged by the workload."""
        return sorted(self._awaiting_convergence)

    def note_converged(self, leaf_name: str) -> "float | None":
        """Record that a resynced leaf's reactive state has re-converged.

        The *workload* owns the convergence criterion (e.g. a probe
        burst with zero punts); it reports the fact here and the
        supervisor turns it into an install-convergence time. Returns
        the measured window, or None if no resync was pending.
        """
        since = self._awaiting_convergence.pop(leaf_name, None)
        if since is None:
            return None
        window = self.fabric.now - since
        self.status[leaf_name].convergence_s = window
        self.events.append((self.fabric.now, leaf_name, "converged"))
        return window

    def _score(self, leaf, health) -> float:
        if health.state != "up":
            return 0.0
        score = 1.0
        if health.echo_sent:
            score -= self._ECHO_LOSS_WEIGHT * (
                health.echo_lost / health.echo_sent
            )
        punts = health.punts_delivered + health.punts_lost
        if punts:
            score -= self._PUNT_LOSS_WEIGHT * (health.punts_lost / punts)
        if health.sends:
            score -= self._SEND_FAIL_WEIGHT * (
                health.sends_failed / health.sends
            )
        engine_health = getattr(leaf.switch, "health", None)
        if engine_health is not None and engine_health().degraded:
            score = min(score, self._ENGINE_DEGRADED_CAP)
        return max(score, 0.0)

    def health_scores(self) -> dict[str, float]:
        return {name: s.score for name, s in self.status.items()}

    def degraded_leaves(self) -> list[str]:
        return [n for n, s in self.status.items() if not s.serving]

    # -- rolling upgrades --------------------------------------------------

    def rolling_upgrade(
        self,
        mods_for_leaf=None,
        fail_refuse_on: "str | None" = None,
    ) -> UpgradeReport:
        """Walk the fabric leaf-by-leaf behind epoch barriers (module doc).

        Args:
            mods_for_leaf: ``leaf -> list[FlowMod]`` upgrade payload;
                defaults to :func:`default_upgrade_mods` (the
                verdict-invisible epoch marker).
            fail_refuse_on: leaf name whose re-fuse is forced to fail
                after the batch applies — the injected abort path the
                acceptance criteria exercise.
        """
        new_epoch = self.epoch + 1
        if mods_for_leaf is None:
            def mods_for_leaf(_leaf):
                return default_upgrade_mods(new_epoch)

        report = UpgradeReport(completed=False, epoch=self.epoch)
        undo_stack: list[tuple] = []  # (leaf, inverse_mods)
        for leaf in self.fabric.leaves:
            mods = list(mods_for_leaf(leaf))
            abort = self._upgrade_leaf(
                leaf, mods, new_epoch, undo_stack,
                force_refuse_failure=(leaf.name == fail_refuse_on),
            )
            if abort is not None:
                report.aborted_at = leaf.name
                report.abort_reason = abort
                report.rolled_back = self._rollback(undo_stack)
                self.events.append(
                    (self.fabric.now, leaf.name, f"upgrade-aborted: {abort}")
                )
                return report
            report.upgraded.append(leaf.name)
        self.epoch = new_epoch
        report.completed = True
        report.epoch = new_epoch
        self.events.append((self.fabric.now, "fabric", f"epoch {new_epoch}"))
        return report

    def _upgrade_leaf(
        self, leaf, mods, new_epoch, undo_stack, force_refuse_failure
    ) -> "str | None":
        """Upgrade one leaf; returns an abort reason or None on success."""
        # Epoch barrier: every punt queued before the upgrade must be
        # answered first, so the new epoch starts from quiescence. A
        # refused barrier (session down) aborts — upgrading a dark leaf
        # would race its resync.
        if not leaf.session.barrier():
            return "barrier refused (session down)"
        inverse = _inverse_mods(mods, leaf.switch.pipeline)
        reply = leaf.session.submit_flow_mods(mods)
        if not reply:
            return "upgrade batch rejected: " + "; ".join(
                str(e) for e in reply.errors
            )
        undo_stack.append((leaf, inverse))
        if force_refuse_failure:
            leaf.switch.datapath.force_fuse_failure("injected upgrade fault")
        if not leaf.switch.warm():
            # The new epoch cannot stand its fused driver up: the leaf
            # would serve the upgrade on the trampoline rung. Policy:
            # abort the walk, roll everything back.
            return "re-fuse failed: " + leaf.switch.health().last_fuse_error
        self.status[leaf.name].epoch = new_epoch
        return None

    def _rollback(self, undo_stack) -> list[str]:
        """Restore every touched leaf to the old epoch, newest first.

        Rollback bypasses the lossy channel (``switch.submit_flow_mods``
        directly): it is the supervisor's local recovery action, and it
        must not be able to fail for channel reasons while the fabric is
        mid-abort.
        """
        rolled_back = []
        for leaf, inverse in reversed(undo_stack):
            ok = bool(leaf.switch.submit_flow_mods(inverse)) if inverse else True
            if ok:
                leaf.switch.warm()
                self.status[leaf.name].epoch = self.epoch
                rolled_back.append(leaf.name)
            else:
                # Nothing recoverable remains to try: the supervisor is
                # wedged between epochs. Counted, never silent.
                self.deadlocks += 1
        return rolled_back

    def telemetry(self) -> dict:
        """The supervisor block of the soak report."""
        return {
            "epoch": self.epoch,
            "deadlocks": self.deadlocks,
            "leaves": {
                name: {
                    "score": status.score,
                    "serving": status.serving,
                    "outages": status.outages,
                    "resyncs": status.resyncs,
                    "degraded_time_s": status.degraded_time_s,
                    "convergence_s": status.convergence_s,
                    "epoch": status.epoch,
                }
                for name, status in self.status.items()
            },
            "events": [list(e) for e in self.events],
        }
