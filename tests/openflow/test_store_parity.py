"""Property parity: the tombstone store against the pre-PR list semantics.

Two oracles, both hypothesis-driven over adversarial op sequences
(same-rule duplicates, priority ties, interleaved strict/non-strict
deletes, predicate removals, forced compactions):

* ``add_bulk`` must be observationally identical to sequential ``add`` —
  the same live order, the same ``has_rule``/``full``/``feature_counts``
  answers.
* The tombstone store must present exactly the sorted-insort list
  semantics the previous implementation had: live order (which is also
  lookup probe order), lengths, finds, and version-bump behavior (a
  mutation that changes nothing bumps nothing).
"""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match

#: Small pools so duplicates and priority ties actually happen.
PORTS = list(range(6))
PRIOS = list(range(4))


def mk_entry(prio: int, port: int) -> FlowEntry:
    return FlowEntry(Match(tcp_dst=port), priority=prio, actions=[Output(1)])


entries_st = st.lists(
    st.tuples(st.sampled_from(PRIOS), st.sampled_from(PORTS)),
    min_size=0,
    max_size=24,
)


class ListModel:
    """The pre-PR reference: one sorted list, insort_right adds."""

    def __init__(self):
        self.entries: list[FlowEntry] = []

    def add(self, entry: FlowEntry) -> None:
        for i, e in enumerate(self.entries):
            if e.priority == entry.priority and e.match == entry.match:
                self.entries[i] = entry
                return
        bisect.insort_right(self.entries, entry, key=lambda e: -e.priority)

    def remove(self, match: Match, priority: "int | None") -> int:
        if priority is None:
            keep = [e for e in self.entries if e.match != match]
        else:
            keep = [
                e
                for e in self.entries
                if not (e.priority == priority and e.match == match)
            ]
        removed = len(self.entries) - len(keep)
        self.entries = keep
        return removed

    def remove_if(self, predicate) -> int:
        keep = [e for e in self.entries if not predicate(e)]
        removed = len(self.entries) - len(keep)
        self.entries = keep
        return removed

    def find(self, match: Match) -> "FlowEntry | None":
        for e in self.entries:
            if e.match == match:
                return e
        return None


class TestAddBulkParity:
    @given(batch=entries_st, pre=entries_st)
    @settings(max_examples=150, deadline=None)
    def test_bulk_equals_sequential(self, batch, pre):
        seq = FlowTable(0, max_entries=16)
        bulk = FlowTable(0, max_entries=16)
        for prio, port in pre:
            e = mk_entry(prio, port)
            seq.add(e)
            bulk.add(e)
        batch_entries = [mk_entry(prio, port) for prio, port in batch]
        for e in batch_entries:
            seq.add(e)
        bulk.add_bulk(batch_entries)
        assert bulk.entries == seq.entries  # same objects, same order
        assert len(bulk) == len(seq)
        assert bulk.full == seq.full
        assert bulk.feature_counts() == seq.feature_counts()
        for prio in PRIOS:
            for port in PORTS:
                match = Match(tcp_dst=port)
                assert bulk.has_rule(match, prio) == seq.has_rule(match, prio)
                assert bulk.find(match) is seq.find(match)


ops_st = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"), st.sampled_from(PRIOS), st.sampled_from(PORTS)
        ),
        st.tuples(
            st.just("remove_strict"),
            st.sampled_from(PRIOS),
            st.sampled_from(PORTS),
        ),
        st.tuples(st.just("remove"), st.just(0), st.sampled_from(PORTS)),
        st.tuples(st.just("remove_if"), st.sampled_from(PRIOS), st.just(0)),
        st.tuples(st.just("compact"), st.just(0), st.just(0)),
    ),
    min_size=0,
    max_size=60,
)


class TestStoreParity:
    @given(ops=ops_st)
    @settings(max_examples=150, deadline=None)
    def test_random_ops_match_list_semantics(self, ops):
        store = FlowTable(0)
        model = ListModel()
        for op, prio, port in ops:
            version = store.version
            if op == "add":
                e = mk_entry(prio, port)
                store.add(e)
                model.add(e)
                changed = True
            elif op == "remove_strict":
                got = store.remove(Match(tcp_dst=port), priority=prio)
                want = model.remove(Match(tcp_dst=port), prio)
                assert got == want
                changed = want > 0
            elif op == "remove":
                got = store.remove(Match(tcp_dst=port))
                want = model.remove(Match(tcp_dst=port), None)
                assert got == want
                changed = want > 0
            elif op == "remove_if":
                got = store.remove_if(lambda e: e.priority == prio)
                want = model.remove_if(lambda e: e.priority == prio)
                assert got == want
                changed = want > 0
            else:  # compact: invisible, never a version bump
                store.compact()
                changed = False
            # No-op mods bump nothing; real mods bump exactly once.
            assert store.version == version + (1 if changed else 0)
            # Live order — which is also lookup probe order — matches the
            # insort-list reference, object for object.
            assert store.entries == tuple(model.entries)
            assert len(store) == len(model.entries)
        for port in PORTS:
            assert store.find(Match(tcp_dst=port)) is model.find(
                Match(tcp_dst=port)
            )
