"""A collision-free hash table — the compound hash template's backing store.

The paper's compound hash template uses "a collision free hash; even though
it requires more memory and more time to build, it supports fast constant
time lookups, a key to a robust datapath performance" (Section 3.1), and the
switch rebuilds it "periodically … to minimize hash collisions"
(Section 3.4).

Lookups are a single probe: one seeded mix over the key, then

    bucket = h & bucket_mask
    index  = ((h ^ disp[bucket]) * GOLD mod 2^64) >> shift

where ``disp`` is a small per-bucket displacement (a CHD-style two-level
perfect hash). A colliding ``insert()`` therefore only reseeds the one
bucket it lands in — the displacement search re-homes that bucket's handful
of keys into free slots — instead of re-hashing the whole table. Full
redistributions happen only on geometric growth (table doubles when the
load factor crosses 1/OVERSIZE_FACTOR), so a build-from-empty of n keys
does O(log n) full rebuilds and O(n) total redistributed keys, and the
whole insert sequence is amortized O(n log n) work. The old implementation
reseeded the *entire* table on every collision — a rebuild storm at 10⁶
entries.

Keys are integers or tuples of integers (compound keys: the template "runs
together relevant header fields into a single key").

Adversarial key sets (distinct keys whose mix collides under every seed,
e.g. ``0`` and ``(0,)``) are detected and rejected with a typed
:class:`HashBuildError` after a bounded number of seed attempts instead of
looping forever.
"""

from __future__ import annotations

from typing import Iterator

Key = "int | tuple[int, ...]"

#: Slots per 64-byte cache line assumed by the cost model (16-byte entries).
SLOTS_PER_LINE = 4

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1
#: Fibonacci multiplier for the multiply-shift slot hash (odd, well mixed).
_GOLD = 0x9E3779B97F4A7C15


def _mix(key: "int | tuple[int, ...]", seed: int) -> int:
    """A seeded FNV-1a style mix over the key's integer components."""
    h = (_FNV_OFFSET ^ seed) & _MASK64
    if isinstance(key, int):
        components: tuple[int, ...] = (key,)
    else:
        components = key
    for part in components:
        if part < 0:
            part = -2 * part - 1  # fold into the naturals; >>= below terminates
        while True:
            h = ((h ^ (part & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
            part >>= 32
            if not part:
                break
    h ^= h >> 33
    return h


class RebuildRequired(RuntimeError):
    """Internal signal: no collision-free layout found at the current size."""


class HashBuildError(RuntimeError):
    """No collision-free layout exists within the attempt budget.

    Raised for adversarial key sets — distinct keys whose mix collides
    under every seed — instead of looping forever growing the table.
    """


class CollisionFreeHash:
    """Two-level (bucket-displaced) perfect hash with single-probe lookups."""

    #: Slots allocated per key (the memory-for-speed trade).
    OVERSIZE_FACTOR = 4
    #: Top-level seeds tried per full build before giving up (typed error).
    MAX_SEED_TRIES = 64
    #: Displacement values tried per bucket before escalating to a rebuild.
    MAX_DISP_TRIES = 256
    MIN_SLOTS = 8

    def __init__(self, items: "dict | None" = None):
        self._items: dict = dict(items or {})
        self._seed = 0
        self._slots: list = []
        self._nslots = 0
        self._shift = 64
        self._bmask = 0
        self._disp: list = []
        #: keys per bucket, sparse (only non-empty buckets have an entry)
        self._bucket_keys: dict[int, list] = {}
        # -- telemetry (the cycle model and the scale tests read these) --
        self.rebuild_count = 0  # full redistributions (growth / rebuild())
        self.bucket_reseeds = 0  # bucket-local displacement searches
        self.displaced_keys = 0  # existing keys re-homed by bucket reseeds
        self.seed_attempts = 0  # top-level seeds tried across all builds
        self.reseed_probes = 0  # displacement candidates tried, total
        self.rebuild_keys = 0  # keys redistributed by full rebuilds, total
        self._build()

    # -- lookups ----------------------------------------------------------

    def get(self, key: Key, default: object = None) -> object:
        """Single-probe lookup (the ``_mix`` loop inlined: this runs per
        packet, and the call frame would cost more than the mix itself)."""
        h = (_FNV_OFFSET ^ self._seed) & _MASK64
        for part in (key,) if isinstance(key, int) else key:
            while True:
                h = ((h ^ (part & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
                part >>= 32
                if not part:
                    break
        h ^= h >> 33
        index = ((h ^ self._disp[h & self._bmask]) * _GOLD & _MASK64) >> self._shift
        slot = self._slots[index]
        if slot is not None and slot[0] == key:
            return slot[1]
        return default

    def get_traced(self, key: Key, default: object = None) -> tuple[object, int]:
        """Lookup plus the abstract cache-line id probed (for the cost model)."""
        h = (_FNV_OFFSET ^ self._seed) & _MASK64
        for part in (key,) if isinstance(key, int) else key:
            while True:
                h = ((h ^ (part & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
                part >>= 32
                if not part:
                    break
        h ^= h >> 33
        index = ((h ^ self._disp[h & self._bmask]) * _GOLD & _MASK64) >> self._shift
        line = index // SLOTS_PER_LINE
        slot = self._slots[index]
        if slot is not None and slot[0] == key:
            return slot[1], line
        return default, line

    def __contains__(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def items(self):
        return self._items.items()

    @property
    def slot_count(self) -> int:
        return self._nslots

    @property
    def telemetry(self) -> dict:
        """Counters for the scale tests and bench points."""
        return {
            "rebuild_count": self.rebuild_count,
            "bucket_reseeds": self.bucket_reseeds,
            "displaced_keys": self.displaced_keys,
            "seed_attempts": self.seed_attempts,
            "reseed_probes": self.reseed_probes,
            "rebuild_keys": self.rebuild_keys,
        }

    def footprint(self) -> dict:
        """Estimated resident bytes of the lookup structure.

        Slots are modeled at the cost model's 16 bytes each; the
        displacement array at 8 bytes per bucket; the shadow item dict at
        ~64 bytes per entry (CPython dict overhead, order of magnitude).
        """
        nbuckets = self._bmask + 1
        return {
            "kind": "hash",
            "entries": len(self._items),
            "slots": self._nslots,
            "buckets": nbuckets,
            "bytes": self._nslots * 16 + nbuckets * 8 + len(self._items) * 64,
        }

    # -- updates -------------------------------------------------------------

    def insert(self, key: Key, value: object) -> None:
        """Insert or update. Amortized O(1): in-slot place on the fast path,
        a bucket-local reseed on collision, a full (geometric) rebuild only
        when the load factor crosses 1/OVERSIZE_FACTOR."""
        is_new = key not in self._items
        self._items[key] = value
        if is_new and len(self._items) * self.OVERSIZE_FACTOR > self._nslots:
            self._build()
            return
        h = _mix(key, self._seed)
        bucket = h & self._bmask
        index = ((h ^ self._disp[bucket]) * _GOLD & _MASK64) >> self._shift
        slot = self._slots[index]
        if slot is None or slot[0] == key:
            self._slots[index] = (key, value)
            if is_new:
                self._bucket_keys.setdefault(bucket, []).append(key)
            return
        if is_new:
            self._bucket_keys.setdefault(bucket, []).append(key)
        if not self._reseed_bucket(bucket):
            self._build()

    def remove(self, key: Key) -> bool:
        """Remove a key; no rebuild needed (the slot just empties)."""
        if key not in self._items:
            return False
        del self._items[key]
        h = _mix(key, self._seed)
        bucket = h & self._bmask
        index = ((h ^ self._disp[bucket]) * _GOLD & _MASK64) >> self._shift
        slot = self._slots[index]
        if slot is not None and slot[0] == key:
            self._slots[index] = None
        keys = self._bucket_keys.get(bucket)
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:
                pass
            if not keys:
                del self._bucket_keys[bucket]
        return True

    def rebuild(self) -> None:
        """Force the periodic rebuild of Section 3.4."""
        self._build()

    # -- internals -------------------------------------------------------------

    def _reseed_bucket(self, bucket: int) -> bool:
        """Re-home one bucket's keys under a fresh displacement.

        Only this bucket's keys move; every other bucket's slots are
        untouched. Returns False when no displacement works within the
        budget (caller escalates to a full rebuild).
        """
        keys = self._bucket_keys.get(bucket, [])
        hashes = [_mix(k, self._seed) for k in keys]
        if len(set(hashes)) != len(keys):
            return False  # un-separable within this bucket: escalate
        shift = self._shift
        # Free this bucket's current slots so they count as candidates.
        old_disp = self._disp[bucket]
        for h, k in zip(hashes, keys):
            index = ((h ^ old_disp) * _GOLD & _MASK64) >> shift
            slot = self._slots[index]
            if slot is not None and slot[0] == k:
                self._slots[index] = None
        self.bucket_reseeds += 1
        slots = self._slots
        for disp in range(old_disp + 1, old_disp + 1 + self.MAX_DISP_TRIES):
            self.reseed_probes += 1
            indexes = [((h ^ disp) * _GOLD & _MASK64) >> shift for h in hashes]
            if len(set(indexes)) == len(indexes) and all(
                slots[i] is None for i in indexes
            ):
                items = self._items
                for k, i in zip(keys, indexes):
                    slots[i] = (k, items[k])
                self._disp[bucket] = disp
                self.displaced_keys += max(0, len(keys) - 1)
                return True
        # Nothing worked: restore the old placement minus collisions so the
        # table stays consistent for the full rebuild that follows.
        items = self._items
        for h, k in zip(hashes, keys):
            index = ((h ^ old_disp) * _GOLD & _MASK64) >> shift
            if slots[index] is None:
                slots[index] = (k, items[k])
        return False

    def _build(self) -> None:
        """Full redistribution: pick sizes and a seed, place every key.

        Geometric sizing (power-of-two slots ≥ OVERSIZE_FACTOR·n) bounds
        full rebuilds at O(log n) over any insert sequence. A key set that
        defeats MAX_SEED_TRIES seeds raises :class:`HashBuildError`.
        """
        self.rebuild_count += 1
        n = len(self._items)
        self.rebuild_keys += n
        slot_bits = 3  # MIN_SLOTS == 8
        while (1 << slot_bits) < n * self.OVERSIZE_FACTOR:
            slot_bits += 1
        base_seed = self._seed
        for attempt in range(self.MAX_SEED_TRIES):
            seed = (base_seed + attempt + 1) * _GOLD & _MASK64
            self.seed_attempts += 1
            try:
                self._try_build(slot_bits, seed)
                return
            except RebuildRequired as exc:
                # Growth only helps when keys actually hash apart; a
                # duplicate full hash needs a different seed, not memory.
                if exc.args and exc.args[0] == "grow":
                    slot_bits += 1
        raise HashBuildError(
            f"no collision-free layout for {n} keys after "
            f"{self.MAX_SEED_TRIES} seeds (adversarial key set?)"
        )

    def _try_build(self, slot_bits: int, seed: int) -> None:
        nslots = 1 << slot_bits
        nbuckets = max(2, nslots // self.OVERSIZE_FACTOR)
        bmask = nbuckets - 1
        shift = 64 - slot_bits
        buckets: dict[int, list] = {}
        for key in self._items:
            h = _mix(key, seed)
            buckets.setdefault(h & bmask, []).append((h, key))
        slots: list = [None] * nslots
        disp = [0] * nbuckets
        items = self._items
        # Largest buckets first (classic CHD): they need the most freedom.
        for bucket, members in sorted(
            buckets.items(), key=lambda kv: -len(kv[1])
        ):
            hashes = [h for h, _ in members]
            if len(set(hashes)) != len(hashes):
                raise RebuildRequired("dup")  # same hash: reseed, don't grow
            for d in range(self.MAX_DISP_TRIES):
                self.reseed_probes += 1
                indexes = [((h ^ d) * _GOLD & _MASK64) >> shift for h in hashes]
                if len(set(indexes)) == len(indexes) and all(
                    slots[i] is None for i in indexes
                ):
                    for (_, k), i in zip(members, indexes):
                        slots[i] = (k, items[k])
                    disp[bucket] = d
                    break
            else:
                raise RebuildRequired("grow")
        self._seed = seed
        self._slots = slots
        self._nslots = nslots
        self._shift = shift
        self._bmask = bmask
        self._disp = disp
        self._bucket_keys = {
            b: [k for _, k in members] for b, members in buckets.items()
        }
