"""The differential oracle: one scenario, every backend, zero divergence.

Runs an identical (pipeline, traffic, flow-mod schedule) through:

* ``fused``       — ESwitch, whole-pipeline fusion (the paper's fast path);
* ``trampoline``  — ESwitch, per-table templates behind the dispatch loop;
* ``linked_list`` — ESwitch pinned to the universal linked-list rung
                    (decomposition off): the semantics baseline compiler;
* ``ovs``         — the OVS model (EMC → megaflow → vswitchd slow path);
* ``shardedN``    — ShardedESwitch at workers ∈ {1, 4} (thread backend);

against the **reference interpreter** (``Pipeline.process``), asserting:

* identical per-packet verdicts (output ports, drop, to-controller);
* identical post-action packet bytes (unsharded backends — the engine
  never mutates caller packets, so bytes are unobservable there);
* identical admission decisions and error taxonomies for every flow-mod
  batch across the ESwitch family (the reference and OVS have no
  admission control; they follow the arbiter's accepted batches);
* identical expiry decisions at every clock tick: each backend gets its
  own :class:`ExpiryManager` (expiry is local control-plane behavior,
  not arbitrated), and identical counters under identical clocks must
  expire identical ``(table, match, priority, reason)`` sets;
* identical end-of-run flow counters on every logical entry;
* bit-identical modeled cycle totals where defined: fused ↔ trampoline
  always (fusion's contract), and sharded(workers=1) ↔ fused unless the
  scenario force-quarantines tables (quarantine is applied to the
  unsharded switches only, changing their compiled rungs, not their
  semantics).

Degraded states are part of the matrix, not excluded from it: forced
quarantine and forced fuse-failure must be *semantically invisible*,
which is exactly what the oracle checks.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass

from repro.core import ESwitch
from repro.core.analysis import CompileConfig
from repro.fuzz.scenario import Scenario
from repro.openflow.messages import FlowModCommand
from repro.openflow.timeouts import ExpiryManager, PipelineAdapter
from repro.ovs import OvsSwitch
from repro.parallel import ShardedESwitch, rings
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter

DEFAULT_WORKERS = (1, 4)


@dataclass
class Divergence:
    kind: str  # verdict | bytes | admission | expiry | counters | cycles | crash
    backend: str
    detail: str
    event: int = -1
    packet: int = -1

    def __str__(self) -> str:
        where = ""
        if self.event >= 0:
            where = f" @event {self.event}"
            if self.packet >= 0:
                where += f" pkt {self.packet}"
        return f"[{self.kind}] {self.backend}{where}: {self.detail}"


def _counters(pipeline) -> dict:
    return {
        (table.table_id, i): (entry.counters.packets, entry.counters.bytes)
        for table in pipeline
        for i, entry in enumerate(table.entries)
    }


def _reply_sig(reply) -> tuple:
    codes = tuple(sorted(
        (err.etype.value,
         err.code.value if hasattr(err.code, "value") else str(err.code))
        for err in reply.errors
    ))
    return (bool(reply.accepted), codes)


class _EswitchBackend:
    family = "es"
    compares_bytes = True

    def __init__(self, name: str, scenario: Scenario, config: CompileConfig):
        self.name = name
        self.switch = ESwitch(scenario.build_pipeline(), config=config)
        self.meter = CycleMeter(XEON_E5_2620)
        for tid in scenario.quarantine:
            self.switch.force_quarantine(tid, reason="fuzz: forced")
        if name == "fused" and scenario.degrade_fuse:
            self.switch.warm()
            self.switch.datapath.force_fuse_failure("fuzz: forced degradation")

    @property
    def pipeline(self):
        return self.switch.pipeline

    def burst(self, pkts):
        verdicts = self.switch.process_burst(pkts, self.meter)
        return [v.summary() for v in verdicts], [bytes(p.data) for p in pkts]

    def submit(self, mods):
        return _reply_sig(self.switch.submit_flow_mods(mods))

    def counters(self):
        return _counters(self.switch.pipeline)

    @property
    def cycles(self):
        return self.meter.total_cycles

    def close(self):
        pass


class _OvsBackend:
    family = "follower"
    compares_bytes = True
    name = "ovs"

    def __init__(self, scenario: Scenario):
        self.switch = OvsSwitch(scenario.build_pipeline())

    @property
    def pipeline(self):
        return self.switch.pipeline

    def burst(self, pkts):
        sums = []
        for pkt in pkts:
            sums.append(self.switch.process(pkt).summary())
        return sums, [bytes(p.data) for p in pkts]

    def apply(self, mods):
        # One cache collapse per accepted batch, not per mod — the
        # generation-bump batching the reactive install path relies on.
        self.switch.apply_flow_mods(mods)

    def counters(self):
        return _counters(self.switch.pipeline)

    cycles = None

    def close(self):
        pass


class _ShardedBackend:
    family = "es"
    compares_bytes = False  # the engine never mutates caller packets

    def __init__(self, name: str, scenario: Scenario, workers: int,
                 config: CompileConfig, transport: str = "auto"):
        self.name = name
        self.engine = ShardedESwitch(
            scenario.build_pipeline(), workers=workers, backend="thread",
            config=config, transport=transport,
        )
        self.switch = self.engine  # uniform expiry-manager target
        self.meter = CycleMeter(XEON_E5_2620)

    @property
    def pipeline(self):
        return self.engine.pipeline

    def burst(self, pkts):
        verdicts = self.engine.process_burst(pkts, self.meter)
        return [v.summary() for v in verdicts], None

    def submit(self, mods):
        return _reply_sig(self.engine.submit_flow_mods(mods))

    def counters(self):
        self.engine.sync_flow_stats()
        return _counters(self.engine.pipeline)

    @property
    def cycles(self):
        return self.meter.total_cycles

    def close(self):
        self.engine.close()


def _apply_reference(pipeline, mods):
    """Mirror of ``ESwitch.apply_flow_mod``'s logical-table semantics."""
    for mod in mods:
        table = pipeline.get_or_create(mod.table_id)
        if mod.command is FlowModCommand.DELETE:
            table.remove(mod.match, mod.priority if mod.strict else None)
        else:
            table.add(mod.to_entry())


def _diff_counters(got: dict, want: dict) -> str:
    lines = []
    for key in sorted(set(got) | set(want)):
        g, w = got.get(key), want.get(key)
        if g != w:
            lines.append(f"table {key[0]} entry {key[1]}: {g} != {w}")
    return "; ".join(lines[:8]) or "entry sets differ"


def run_scenario(
    scenario: Scenario, workers: "tuple" = DEFAULT_WORKERS
) -> "list[Divergence]":
    """Execute ``scenario`` across the full backend matrix.

    Returns the (possibly empty) list of divergences. Never raises for a
    backend fault — a backend that crashes is itself a divergence.
    """
    divergences: list[Divergence] = []
    reference = scenario.build_pipeline()

    base = CompileConfig(enable_range=scenario.enable_range)
    if scenario.direct_threshold is not None:
        base = base.with_(direct_threshold=scenario.direct_threshold)
    if scenario.source_budget is not None:
        base = base.with_(source_budget=scenario.source_budget)
    backends: list = [
        _EswitchBackend("fused", scenario, base),
        _EswitchBackend("trampoline", scenario, base.with_(fuse=False)),
        _EswitchBackend(
            "linked_list", scenario,
            base.with_(fuse=False, decompose=False, force_linked_list=True),
        ),
        _OvsBackend(scenario),
    ]
    for n in workers:
        if n > 1 and scenario.tight_meter:
            continue  # replica-local token buckets legitimately diverge
        backends.append(_ShardedBackend(f"sharded{n}", scenario, n, base))
    # The zero-copy transport as its own oracle: the same sharded engine
    # with bursts crossing as packed frames over shared-memory rings —
    # any codec bit-rot shows up as a verdict/counters/cycles divergence.
    if rings.shared_memory_available():
        backends.append(_ShardedBackend(
            "sharded1_rings", scenario, 1, base, transport="ring"
        ))

    dead: set = set()
    # One ExpiryManager per backend plus one over the reference, created
    # on the first "tick" event. Expiry is *local* control-plane behavior
    # (no arbiter): every manager sees the same scenario clock, and since
    # counters are oracle-identical, expiry decisions must be too.
    expiries: dict = {}
    ref_expiry: "ExpiryManager | None" = None

    def _expiry_sig(expired) -> list:
        return [(tid, entry.match, entry.priority, reason)
                for tid, entry, reason in expired]

    def crash(backend, exc, event, kind="crash"):
        divergences.append(Divergence(
            kind, backend.name,
            "".join(traceback.format_exception_only(type(exc), exc)).strip(),
            event=event,
        ))
        dead.add(backend.name)

    try:
        for ei, event in enumerate(scenario.events):
            if "burst" in event:
                ref_pkts = scenario.build_packets(event["burst"])
                ref_sums = [reference.process(p).summary() for p in ref_pkts]
                ref_datas = [bytes(p.data) for p in ref_pkts]
                for backend in backends:
                    if backend.name in dead:
                        continue
                    pkts = scenario.build_packets(event["burst"])
                    try:
                        sums, datas = backend.burst(pkts)
                    except Exception as exc:  # noqa: BLE001 — the oracle
                        crash(backend, exc, ei)
                        continue
                    for pi, (got, want) in enumerate(zip(sums, ref_sums)):
                        if got != want:
                            divergences.append(Divergence(
                                "verdict", backend.name,
                                f"{got} != reference {want}",
                                event=ei, packet=pi,
                            ))
                    if backend.compares_bytes:
                        for pi, (got, want) in enumerate(zip(datas, ref_datas)):
                            if got != want:
                                divergences.append(Divergence(
                                    "bytes", backend.name,
                                    f"{got.hex()} != reference {want.hex()}",
                                    event=ei, packet=pi,
                                ))
            elif "tick" in event:
                now = float(event["tick"])
                if ref_expiry is None:
                    ref_expiry = ExpiryManager(PipelineAdapter(reference))
                want = _expiry_sig(ref_expiry.tick(now))
                for backend in backends:
                    if backend.name in dead:
                        continue
                    manager = expiries.get(backend.name)
                    if manager is None:
                        manager = ExpiryManager(backend.switch)
                        expiries[backend.name] = manager
                    try:
                        got = _expiry_sig(manager.tick(now))
                    except Exception as exc:  # noqa: BLE001
                        crash(backend, exc, ei)
                        continue
                    if got != want:
                        divergences.append(Divergence(
                            "expiry", backend.name,
                            f"{got} != reference {want}", event=ei,
                        ))
            else:
                batch = event["mods"]
                arbiter = next(
                    (b for b in backends
                     if b.family == "es" and b.name not in dead), None
                )
                if arbiter is None:
                    continue
                try:
                    decision = arbiter.submit(
                        scenario.build_mods(batch, arbiter.pipeline)
                    )
                except Exception as exc:  # noqa: BLE001
                    crash(arbiter, exc, ei)
                    continue
                for backend in backends:
                    if (backend is arbiter or backend.family != "es"
                            or backend.name in dead):
                        continue
                    try:
                        sig = backend.submit(
                            scenario.build_mods(batch, backend.pipeline)
                        )
                    except Exception as exc:  # noqa: BLE001
                        crash(backend, exc, ei)
                        continue
                    if sig != decision:
                        divergences.append(Divergence(
                            "admission", backend.name,
                            f"{sig} != {arbiter.name} {decision}",
                            event=ei,
                        ))
                if decision[0]:  # accepted: followers apply verbatim
                    _apply_reference(
                        reference, scenario.build_mods(batch, reference)
                    )
                    for backend in backends:
                        if backend.family == "follower" and backend.name not in dead:
                            try:
                                backend.apply(
                                    scenario.build_mods(batch, backend.pipeline)
                                )
                            except Exception as exc:  # noqa: BLE001
                                crash(backend, exc, ei)

        ref_counts = _counters(reference)
        for backend in backends:
            if backend.name in dead:
                continue
            try:
                got = backend.counters()
            except Exception as exc:  # noqa: BLE001
                crash(backend, exc, -1)
                continue
            if got != ref_counts:
                divergences.append(Divergence(
                    "counters", backend.name, _diff_counters(got, ref_counts)
                ))

        by_name = {b.name: b for b in backends if b.name not in dead}
        fused = by_name.get("fused")
        for other_name in ("trampoline", "sharded1", "sharded1_rings"):
            other = by_name.get(other_name)
            if fused is None or other is None:
                continue
            if other_name.startswith("sharded1") and scenario.quarantine:
                continue  # quarantine shifts unsharded rungs (and costs) only
            if other.cycles != fused.cycles:
                divergences.append(Divergence(
                    "cycles", other_name,
                    f"{other.cycles!r} != fused {fused.cycles!r}",
                ))
    finally:
        for backend in backends:
            try:
                backend.close()
            except Exception:  # noqa: BLE001 — teardown must not mask results
                pass

    return divergences


def run_seed(seed: int, **gen_kwargs):
    """Generate and execute one seed; returns ``(scenario, divergences)``."""
    from repro.fuzz.gen import generate

    scenario = generate(seed, **gen_kwargs)
    return scenario, run_scenario(scenario)


def diverges(obj: dict) -> bool:
    """Shrinker predicate: does this scenario document still fail?

    Invalid candidates (documents that no longer build) count as
    non-failing, so the shrinker backtracks instead of chasing them.
    """
    try:
        scenario = Scenario.from_obj(pickle.loads(pickle.dumps(obj)))
        return bool(run_scenario(scenario))
    except Exception:  # noqa: BLE001 — malformed candidate, not a finding
        return False
