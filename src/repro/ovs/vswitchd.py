"""``vswitchd`` — the complete OpenFlow pipeline (the OVS slow path).

Classifies with per-table tuple space search (:mod:`repro.ovs.classifier`),
applies the OpenFlow instruction semantics, and — the crucial byproduct —
computes the megaflow wildcards for the traversal: every probed subtable's
mask signature is folded into the megaflow mask, keyed on the packet's
*ingress* field values.

Functionally this traversal must agree packet-for-packet with the
reference interpreter (:meth:`repro.openflow.pipeline.Pipeline.process`);
the differential tests enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openflow.actions import Action, Output, SetField
from repro.openflow.fields import field_by_name
from repro.openflow.flow_table import TableMissPolicy
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.meters import MeterInstruction
from repro.openflow.pipeline import MAX_TABLE_HOPS, Pipeline, PipelineError, Verdict
from repro.ovs.classifier import TssClassifier
from repro.ovs.flowkey import extract_key
from repro.ovs.megaflow import MegaflowEntry, _add_prereq_fields
from repro.packet import parser as pp
from repro.packet.packet import Packet


@dataclass
class UpcallResult:
    """Everything one slow-path pass produces."""

    verdict: Verdict
    megaflow: "MegaflowEntry | None"
    subtables_probed: int
    tables_visited: int


class Vswitchd:
    """The slow-path classifier over a pipeline."""

    def __init__(self, pipeline: Pipeline):
        self.pipeline = pipeline
        self._classifiers: dict[int, TssClassifier] = {}
        self.upcalls = 0

    def classifier(self, table_id: int) -> TssClassifier:
        clf = self._classifiers.get(table_id)
        if clf is None:
            clf = self._classifiers[table_id] = TssClassifier(self.pipeline.table(table_id))
        return clf

    def subtable_count(self, table_id: int) -> int:
        return len(self.classifier(table_id).subtables)

    def upcall(
        self,
        pkt: Packet,
        view: "pp.ParsedPacket | None" = None,
        key: "dict | None" = None,
    ) -> UpcallResult:
        """Full pipeline traversal + megaflow generation for one packet.

        ``view``/``key`` let the datapath hand over the parse and key
        extraction it already paid for on the fast-path probe (the key is
        snapshotted before mutation, so callers may pass theirs directly).
        """
        self.upcalls += 1
        verdict = Verdict()
        if view is None:
            view = pp.parse(pkt)
        if key is None:
            key = extract_key(view)
        ingress_key = dict(key)

        mask_bits: dict[str, int] = {}
        steps: list = []  # (meter, actions, entry) replay program steps
        write_set: list[Action] = []
        subtables_probed = 0
        tables_visited = 0
        cacheable = True

        table_id = min(t.table_id for t in self.pipeline.tables)
        hops = 0
        while True:
            hops += 1
            if hops > MAX_TABLE_HOPS:
                raise PipelineError("pipeline loop detected")
            tables_visited += 1
            clf = self.classifier(table_id)
            entry, probed = clf.lookup(key)
            subtables_probed += len(probed)
            for sub in probed:
                for name, mask in sub.sig:
                    mask_bits[name] = mask_bits.get(name, 0) | mask
                    _add_prereq_fields(
                        mask_bits, field_by_name(name).proto_required
                    )
            verdict.path.append((table_id, entry))

            if entry is None:
                verdict.table_miss = True
                table = self.pipeline.table(table_id)
                if table.miss_policy is TableMissPolicy.CONTROLLER:
                    verdict.to_controller = True
                    cacheable = False  # the controller may install new state
                else:
                    verdict.dropped = True
                # Apply-actions already executed stay executed (their
                # outputs have left the switch); only the pending
                # write-action set dies with the packet.
                write_set = []
                break

            entry.counters.record(len(pkt))
            # Meters run before the entry's other instructions. A fired
            # band drops the packet now; the decision is transient, so
            # nothing is cached (the next conforming packet will install
            # the megaflow, meter step included).
            meter = None
            for instr in entry.instructions:
                if isinstance(instr, MeterInstruction):
                    meter = instr
                    break
            if meter is not None and not meter.allow():
                verdict.dropped = True
                cacheable = False
                break

            step_actions: list[Action] = []
            next_table: int | None = None
            for instr in entry.instructions:
                if isinstance(instr, ApplyActions):
                    for action in instr.actions:
                        step_actions.append(action)
                        action.apply(view, verdict)
                        self._refresh_key(action, view, key, verdict)
                elif isinstance(instr, WriteActions):
                    write_set.extend(instr.actions)
                elif isinstance(instr, ClearActions):
                    write_set.clear()
                elif isinstance(instr, WriteMetadata):
                    view.pkt.metadata = (view.pkt.metadata & ~instr.mask) | (
                        instr.value & instr.mask
                    )
                    key["metadata"] = view.pkt.metadata
                elif isinstance(instr, GotoTable):
                    next_table = instr.table_id
            steps.append((meter, tuple(step_actions), entry))
            if verdict.dropped:
                break
            if next_table is None:
                break
            table_id = next_table

        if write_set and not verdict.dropped and not verdict.table_miss:
            ordered = [a for a in write_set if not isinstance(a, Output)] + [
                a for a in write_set if isinstance(a, Output)
            ]
            for action in ordered:
                action.apply(view, verdict)
                self._refresh_key(action, view, key, verdict)
            steps.append((None, tuple(ordered), None))

        megaflow: MegaflowEntry | None = None
        if cacheable:
            sig = tuple(sorted(mask_bits.items()))
            masked_key = tuple(
                (ingress_key.get(name) & mask)
                if ingress_key.get(name) is not None
                else None
                for name, mask in sig
            )
            megaflow = MegaflowEntry(
                sig=sig,
                masked_key=masked_key,
                program=tuple(steps),
                dropped=verdict.dropped,
            )
        return UpcallResult(
            verdict=verdict,
            megaflow=megaflow,
            subtables_probed=subtables_probed,
            tables_visited=tables_visited,
        )

    @staticmethod
    def _refresh_key(action: Action, view, key: dict, verdict: Verdict) -> None:
        """Keep the lookup key coherent with packet mutations."""
        if isinstance(action, SetField):
            key[action.field] = field_by_name(action.field).extract(view)
        elif verdict.reparse_needed:
            # push/pop VLAN moved header offsets: reparse and re-extract.
            new_view = pp.parse(view.pkt)
            view.proto = new_view.proto
            view.l3 = new_view.l3
            view.l4 = new_view.l4
            view.l4_proto = new_view.l4_proto
            key.update(extract_key(view))
            verdict.reparse_needed = False
