"""Ethernet and IPv4 address helpers.

All switch-internal representations use plain integers (48-bit for MAC,
32-bit for IPv4): the fast paths match on integer field values extracted
straight from packet bytes, exactly like the paper's assembly templates
load words from header offsets. The classes here are thin, hashable wrappers
used at API boundaries (flow-table construction, pretty printing).
"""

from __future__ import annotations

import re

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")


def mac_to_int(mac: str) -> int:
    """Convert a ``aa:bb:cc:dd:ee:ff`` string to a 48-bit integer."""
    if not _MAC_RE.match(mac):
        raise ValueError(f"invalid MAC address: {mac!r}")
    return int(mac.replace("-", ":").replace(":", ""), 16)


def int_to_mac(value: int) -> str:
    """Convert a 48-bit integer to ``aa:bb:cc:dd:ee:ff`` notation."""
    if not 0 <= value < (1 << 48):
        raise ValueError(f"MAC integer out of range: {value:#x}")
    raw = value.to_bytes(6, "big")
    return ":".join(f"{b:02x}" for b in raw)


def ip_to_int(ip: str) -> int:
    """Convert dotted-quad IPv4 notation to a 32-bit integer."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address: {ip!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad IPv4 notation."""
    if not 0 <= value < (1 << 32):
        raise ValueError(f"IPv4 integer out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_to_mask(prefix_len: int, width: int = 32) -> int:
    """Return the network mask integer for a prefix length.

    >>> hex(prefix_to_mask(24))
    '0xffffff00'
    """
    if not 0 <= prefix_len <= width:
        raise ValueError(f"prefix length {prefix_len} out of range for /{width}")
    if prefix_len == 0:
        return 0
    full = (1 << width) - 1
    return (full >> (width - prefix_len)) << (width - prefix_len)


def mask_to_prefix(mask: int, width: int = 32) -> int:
    """Return the prefix length of a contiguous mask, or raise ``ValueError``.

    A contiguous (prefix) mask has all its set bits at the most significant
    positions; this is the prerequisite of the paper's LPM table template.
    """
    if not 0 <= mask < (1 << width):
        raise ValueError(f"mask out of range: {mask:#x}")
    prefix = 0
    probe = 1 << (width - 1)
    while probe and (mask & probe):
        prefix += 1
        probe >>= 1
    if mask != prefix_to_mask(prefix, width):
        raise ValueError(f"mask {mask:#x} is not a contiguous prefix mask")
    return prefix


class EthAddr:
    """An immutable, hashable Ethernet (MAC) address."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | EthAddr"):
        if isinstance(value, EthAddr):
            self._value = value._value
        elif isinstance(value, str):
            self._value = mac_to_int(value)
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC integer out of range: {value:#x}")
            self._value = value
        else:
            raise TypeError(f"cannot build EthAddr from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The 48-bit integer form used by the datapath."""
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool(self._value >> 40 & 0x01)

    def packed(self) -> bytes:
        """The 6-byte wire representation."""
        return self._value.to_bytes(6, "big")

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EthAddr):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"EthAddr('{int_to_mac(self._value)}')"

    def __str__(self) -> str:
        return int_to_mac(self._value)


class IPv4Addr:
    """An immutable, hashable IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | IPv4Addr"):
        if isinstance(value, IPv4Addr):
            self._value = value._value
        elif isinstance(value, str):
            self._value = ip_to_int(value)
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 integer out of range: {value:#x}")
            self._value = value
        else:
            raise TypeError(f"cannot build IPv4Addr from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The 32-bit integer form used by the datapath."""
        return self._value

    def packed(self) -> bytes:
        """The 4-byte wire representation."""
        return self._value.to_bytes(4, "big")

    def in_prefix(self, network: "IPv4Addr | int | str", prefix_len: int) -> bool:
        """Check membership in ``network/prefix_len``."""
        net = IPv4Addr(network).value
        mask = prefix_to_mask(prefix_len)
        return (self._value & mask) == (net & mask)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Addr):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"IPv4Addr('{int_to_ip(self._value)}')"

    def __str__(self) -> str:
        return int_to_ip(self._value)
