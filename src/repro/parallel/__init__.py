"""Real-parallel sharded execution: N datapath replicas behind one facade.

Everything else in this repo *models* multicore scaling
(:func:`repro.traffic.measure_multicore` charges an analytic coherence
term per extra core). This package actually runs packets in parallel:
:class:`~repro.parallel.engine.ShardedESwitch` spawns worker processes
(threads as a fallback), each owning a private fused
:class:`~repro.core.eswitch.ESwitch` replica compiled from the same
pipeline — the shared-nothing, run-to-completion shape of a DPDK
per-core datapath (and of OVS's per-PMD-thread datapaths, NSDI'15).

* :mod:`repro.parallel.rss` — the RSS-style 5-tuple hash that scatters
  packets to shards, flow-sticky like a NIC's receive-side scaling,
  plus the NIC-style indirection table the engine remaps to degrade
  around a dead shard;
* :mod:`repro.parallel.wire` — the compact picklable forms packets,
  verdicts, and flow-counter deltas take across the shard boundary;
* :mod:`repro.parallel.frames` — the same wire dialect struct-packed
  into versioned binary frames (columnar, one struct call per section):
  the zero-pickle per-burst codec;
* :mod:`repro.parallel.rings` — persistent shared-memory SPSC ring
  pairs the frames travel through (sequence-number cursors, batched
  acks): the zero-syscall per-burst transport;
* :mod:`repro.parallel.worker` — the shard worker loop (one replica,
  one command channel, one per-core cycle meter);
* :mod:`repro.parallel.faults` — deterministic worker fault injection
  (kill / hang / delay at precise command occurrences), the test
  instrument behind the supervision layer;
* :mod:`repro.parallel.engine` — the scatter/gather facade with
  epoch-synced control-plane broadcast and worker supervision
  (RPC deadlines, crash/hang detection, respawn from the shadow
  snapshot, bounded burst retry, graceful degradation).
"""

from repro.parallel import frames, rings
from repro.parallel.engine import (
    EngineHealth,
    EpochSyncError,
    ShardedESwitch,
    ShardWorkerError,
    WorkerDied,
    WorkerTimeout,
)
from repro.parallel.faults import FaultInjector, FaultSpec
from repro.parallel.rss import RssIndirection, rss_hash, shard_of

__all__ = [
    "EngineHealth",
    "EpochSyncError",
    "FaultInjector",
    "FaultSpec",
    "RssIndirection",
    "ShardWorkerError",
    "ShardedESwitch",
    "WorkerDied",
    "WorkerTimeout",
    "frames",
    "rings",
    "rss_hash",
    "shard_of",
]
