"""The ESWITCH facade: compile a pipeline, run packets, apply updates.

Ties together analysis → (optional) decomposition → specialization →
linking, and implements the update semantics of Section 3.4:

* templates that support it (compound hash, LPM, linked list) are updated
  **non-destructively** in place;
* the direct code template is rebuilt unconditionally, and any update that
  violates the current template's prerequisite triggers a **fallback
  rebuild** — both built side by side and linked in atomically through the
  trampoline;
* batches are **transactional**: a failing flow-mod rolls the whole batch
  back, logical tables and compiled artifacts alike.

Unlike OVS, no update invalidates any datapath state beyond the single
table it touches — the property Fig. 18 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.analysis import (
    CompileConfig,
    DEFAULT_CONFIG,
    TemplateKind,
    select_template,
)
from repro.core.codegen import CompiledTable, compile_table, _build_sig_matcher
from repro.core.datapath import CompiledDatapath, required_layer
from repro.core.decompose import decomposable, decompose_table
from repro.core.outcome import miss_outcome, outcome_of
from repro.dpdk.lpm import LpmFullError
from repro.openflow.flow_table import FlowTable
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline, Verdict
from repro.openflow.stats import BurstStats
from repro.packet.packet import Packet
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.recorder import Meter, NULL_METER


@dataclass
class UpdateStats:
    """How updates were absorbed (Fig. 18's mechanism)."""

    incremental: int = 0
    rebuilds: int = 0
    fallbacks: int = 0
    group_rebuilds: int = 0
    cycles: float = 0.0


@dataclass
class _Group:
    """One logical table's compiled representation."""

    logical_id: int
    compiled_ids: list[int]
    decomposed: bool = False


class ESwitch:
    """An OpenFlow switch with a fully compiled, specialized datapath."""

    def __init__(
        self,
        pipeline: Pipeline,
        config: CompileConfig = DEFAULT_CONFIG,
        costs: CostBook = DEFAULT_COSTS,
        packet_in_handler=None,
    ):
        pipeline.validate()
        self.pipeline = pipeline
        self.config = config
        self.costs = costs
        self.packet_in_handler = packet_in_handler
        self.update_stats = UpdateStats()
        self.burst_stats = BurstStats()
        self._groups: dict[int, _Group] = {}
        #: decomposed groups whose rebuild is deferred to the next packet —
        #: the "constructed side by side with the running datapath"
        #: semantics of Section 3.4: the control path returns immediately,
        #: the old compiled tables keep processing until the swap.
        self._dirty_groups: set[int] = set()
        self._next_internal_id = (
            max((t.table_id for t in pipeline.tables), default=0) + 1
        )
        self.datapath = CompiledDatapath(
            first_table=pipeline.first_table.table_id,
            parser_layer=required_layer(pipeline),
            use_etype=True,
            costs=costs,
            enable_fusion=config.fuse,
        )
        for table in pipeline.tables:
            self._compile_group(table)

    @classmethod
    def from_pipeline(
        cls,
        pipeline: Pipeline,
        config: CompileConfig = DEFAULT_CONFIG,
        costs: CostBook = DEFAULT_COSTS,
        packet_in_handler=None,
    ) -> "ESwitch":
        return cls(pipeline, config, costs, packet_in_handler)

    # -- the fast path ----------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        """Run one packet through the compiled datapath."""
        if self._dirty_groups:
            self._flush_rebuilds()
        verdict = self.datapath.process(pkt, meter)
        if verdict.to_controller and self.packet_in_handler is not None:
            from repro.openflow.messages import PacketIn

            table_id = verdict.path[-1][0] if verdict.path else 0
            self.packet_in_handler(PacketIn(pkt=pkt, table_id=table_id))
        return verdict

    def process_burst(
        self, pkts: "Sequence[Packet]", meter: Meter = NULL_METER
    ) -> list[Verdict]:
        """Run one IO burst through the compiled datapath.

        Semantically identical to calling :meth:`process` on each packet in
        order — packet-ins fire and deferred rebuilds flush *between*
        packets, so a reactive controller's flow-mods take effect for the
        rest of the burst exactly as they would scalar-wise. The per-burst
        IO framework cost is charged once (see
        :meth:`CompiledDatapath.process_burst`).
        """
        if not pkts:
            return []
        if self._dirty_groups:
            self._flush_rebuilds()
        cycles_before = getattr(meter, "total_cycles", 0.0)
        # Without a packet-in handler no between-packet control work can
        # arise mid-burst (deferred rebuilds were flushed above, and only
        # packet-ins can queue new ones), so skip the per-packet callback.
        on_verdict = (
            self._burst_packet_done if self.packet_in_handler is not None else None
        )
        verdicts = self.datapath.process_burst(pkts, meter, on_verdict=on_verdict)
        self.burst_stats.record(
            len(pkts), getattr(meter, "total_cycles", 0.0) - cycles_before
        )
        return verdicts

    def _burst_packet_done(self, pkt: Packet, verdict: Verdict) -> bool:
        """Between-packet control work inside a burst; True = state mutated."""
        mutated = False
        if verdict.to_controller and self.packet_in_handler is not None:
            from repro.openflow.messages import PacketIn

            table_id = verdict.path[-1][0] if verdict.path else 0
            self.packet_in_handler(PacketIn(pkt=pkt, table_id=table_id))
            mutated = True
        if self._dirty_groups:
            self._flush_rebuilds()
            mutated = True
        return mutated

    def warm(self) -> bool:
        """Stand the current pipeline generation up, off the packet path.

        Flushes any deferred side-by-side rebuilds and forces the lazy
        re-fuse now, so the *next* packet runs the fused driver
        immediately instead of paying the compile. This is the epoch-
        barrier hook of the sharded engine: a replica acks a broadcast
        flow-mod batch only after ``warm()`` returns, guaranteeing every
        shard serves the same fused generation before any burst of the
        new epoch is scattered. Returns True when a fused driver is up
        (False means the trampoline serves this shape).
        """
        if self._dirty_groups:
            self._flush_rebuilds()
        return self.datapath.ensure_fused() is not None

    # -- inspection -----------------------------------------------------------

    def table_kinds(self) -> dict[int, str]:
        """Logical table id -> template kind (or 'decomposed[n]')."""
        if self._dirty_groups:
            self._flush_rebuilds()
        out: dict[int, str] = {}
        for logical_id, group in self._groups.items():
            if group.decomposed:
                out[logical_id] = f"decomposed[{len(group.compiled_ids)}]"
            else:
                out[logical_id] = self.datapath.table(logical_id).kind.value
        return out

    def compiled_table(self, table_id: int) -> CompiledTable:
        if self._dirty_groups:
            self._flush_rebuilds()
        return self.datapath.table(table_id)

    def compiled_sources(self) -> dict[int, str]:
        """All generated sources, keyed by compiled table id."""
        return {
            tid: ct.source for tid, ct in sorted(self.datapath.trampoline.items())
        }

    @property
    def compiled_table_count(self) -> int:
        return len(self.datapath.trampoline)

    # -- compilation ---------------------------------------------------------------

    def _take_ids(self, count: int) -> int:
        start = self._next_internal_id
        self._next_internal_id += count
        return start

    def _compile_group(self, table: FlowTable) -> _Group:
        kind = select_template(table.entries, self.config)
        if (
            kind is TemplateKind.LINKED_LIST
            and self.config.decompose
            and decomposable(table)
        ):
            tables = decompose_table(table, self._next_internal_id)
            assert tables is not None
            self._next_internal_id = max(
                self._next_internal_id, max(t.table_id for t in tables) + 1
            )
            for sub in tables:
                self.datapath.install(compile_table(sub, self.config, self.costs))
            group = _Group(
                logical_id=table.table_id,
                compiled_ids=[t.table_id for t in tables],
                decomposed=True,
            )
        else:
            self.datapath.install(
                compile_table(table, self.config, self.costs, kind=kind)
            )
            group = _Group(logical_id=table.table_id, compiled_ids=[table.table_id])
        self._groups[table.table_id] = group
        return group

    def _flush_rebuilds(self) -> None:
        for logical_id in sorted(self._dirty_groups):
            self._rebuild_group(logical_id)
        self._dirty_groups.clear()

    def _rebuild_group(self, logical_id: int) -> None:
        """Side-by-side rebuild of one logical table, then atomic swap."""
        self._dirty_groups.discard(logical_id)
        old = self._groups.get(logical_id)
        table = self.pipeline.table(logical_id)
        new_group = self._compile_group(table)  # installs over/new ids
        if old is not None:
            for tid in old.compiled_ids:
                if tid not in new_group.compiled_ids:
                    self.datapath.uninstall(tid)

    # -- updates ----------------------------------------------------------------------

    def apply_flow_mod(self, mod: FlowMod) -> float:
        """Apply one flow-mod; returns the estimated update cost in cycles."""
        table = self.pipeline.get_or_create(mod.table_id)
        new_table = mod.table_id not in self._groups
        if mod.command is FlowModCommand.DELETE:
            # Only a *strict* delete constrains the priority; priority 0 is
            # a legitimate strict target, not a wildcard (the falsy-zero
            # bug used to delete matching entries at every priority).
            removed = table.remove(mod.match, mod.priority if mod.strict else None)
            if not removed and not new_table:
                # Nothing matched: logical and compiled state are already
                # consistent, and touching the template (e.g. a phantom
                # hash-store removal) would desynchronize them.
                return 0.0
        else:
            table.add(mod.to_entry())
        # Updates can deepen (or shallow) the fields in play: re-plan the
        # parser templates before the next packet.
        layer = required_layer(self.pipeline)
        if layer != self.datapath.parser_layer:
            self.datapath.set_parser_layer(layer)
        cycles = self._recompile_after_update(table, mod, new_table)
        # Incremental updates mutate compiled-table namespaces in place
        # (hash store, LPM slots, linked list entries, _MISS rebinds)
        # without touching the trampoline — invalidate the fused driver
        # explicitly; rebuilds already did via install(). The re-fuse
        # itself is lazy: it runs on the next packet, not here.
        self.datapath.bump_generation()
        self.update_stats.cycles += cycles
        return cycles

    def apply_flow_mods(self, mods: Sequence[FlowMod]) -> float:
        """Transactional batch: either every mod applies or none does."""
        affected = {mod.table_id for mod in mods}
        snapshots: dict[int, "list | None"] = {}
        for tid in affected:
            try:
                snapshots[tid] = list(self.pipeline.table(tid).entries)
            except Exception:
                snapshots[tid] = None  # table does not exist yet
        total = 0.0
        try:
            for mod in mods:
                total += self.apply_flow_mod(mod)
        except Exception:
            for tid, entries in snapshots.items():
                if entries is None:
                    # Roll back a table created inside this transaction.
                    self.pipeline._tables.pop(tid, None)
                    group = self._groups.pop(tid, None)
                    if group is not None:
                        for cid in group.compiled_ids:
                            self.datapath.uninstall(cid)
                    # A deferred rebuild queued for the vanished table must
                    # die with it, or the next packet's flush crashes
                    # looking up a table the rollback removed.
                    self._dirty_groups.discard(tid)
                    continue
                table = self.pipeline.table(tid)
                table._entries = list(entries)
                table.version += 1
                self._rebuild_group(tid)
            raise
        return total

    def _recompile_after_update(
        self, table: FlowTable, mod: FlowMod, new_table: bool
    ) -> float:
        costs = self.costs
        stats = self.update_stats

        if new_table:
            self._compile_group(table)
            stats.rebuilds += 1
            return costs.es_update_rebuild_base + costs.es_update_rebuild_per_entry * len(
                table
            )

        group = self._groups[table.table_id]
        if group.decomposed:
            # Queue a side-by-side rebuild; the control path pays only the
            # enqueue, the compile runs off the update's critical path.
            self._dirty_groups.add(table.table_id)
            stats.group_rebuilds += 1
            return costs.es_update_incremental

        compiled = self.datapath.table(table.table_id)
        new_kind = select_template(table.entries, self.config)
        if new_kind is not compiled.kind:
            # Prerequisite changed: fall back (or upgrade) with a rebuild.
            self._rebuild_group(table.table_id)
            stats.fallbacks += 1
            return costs.es_update_rebuild_base + costs.es_update_rebuild_per_entry * len(
                table
            )

        if self._try_incremental(compiled, table, mod):
            stats.incremental += 1
            return costs.es_update_incremental

        self._rebuild_group(table.table_id)
        stats.rebuilds += 1
        return costs.es_update_rebuild_base + costs.es_update_rebuild_per_entry * len(
            table
        )

    def _try_incremental(
        self, compiled: CompiledTable, table: FlowTable, mod: FlowMod
    ) -> bool:
        """Non-destructive in-place update where the template allows it."""
        if compiled.kind is TemplateKind.DIRECT:
            return False  # "Complete rebuilding happens … unconditionally"

        if compiled.kind is TemplateKind.HASH:
            match = mod.match
            if match.is_catch_all:
                compiled.namespace["_MISS"] = (
                    outcome_of(table.entries[-1])
                    if table.entries and table.entries[-1].match.is_catch_all
                    else miss_outcome(table)
                )
                return True
            if match.fields != compiled.hash_fields or any(
                match.mask_of(name) != mask
                for name, mask in zip(compiled.hash_fields, compiled.hash_masks)
            ):
                return False
            values = tuple(match.value_of(name) for name in compiled.hash_fields)
            key = values[0] if len(values) == 1 else values
            assert compiled.hash_store is not None
            # Same-match duplicates at different priorities are legal (the
            # lower one is shadowed): the slot always holds the outcome of
            # the highest-priority entry that *remains* in the table, so a
            # strict delete of one duplicate reinstates the survivor.
            best = table.find(match)
            if best is None:
                compiled.hash_store.remove(key)
            else:
                compiled.hash_store.insert(key, outcome_of(best))
            compiled.entry_count = len(table)
            return True

        if compiled.kind is TemplateKind.LPM:
            match = mod.match
            assert compiled.lpm_store is not None
            if match.is_catch_all:
                compiled.namespace["_MISS"] = (
                    outcome_of(table.entries[-1])
                    if table.entries and table.entries[-1].match.is_catch_all
                    else miss_outcome(table)
                )
                return True
            if match.fields != (compiled.lpm_field,) or not match.is_prefix(
                compiled.lpm_field
            ):
                return False
            value = match.value_of(compiled.lpm_field)
            depth = match.prefix_len(compiled.lpm_field)
            assert value is not None
            # The outcome list is slot-addressed by the LPM's stored next
            # hop. Slots are recycled through a free list so that add/
            # delete churn (the Fig. 18 route-flap workload) keeps _OUT
            # bounded by the live rule count instead of growing forever.
            store = compiled.lpm_store
            outcomes = compiled.namespace["_OUT"]
            slot = store.get_rule(value, depth)
            best = table.find(match)
            if best is None:
                if slot is not None:
                    store.delete(value, depth)
                    outcomes[slot] = None
                    compiled.lpm_free.append(slot)
            elif slot is not None:
                # Rule replaced (or one duplicate deleted): rebind in place.
                outcomes[slot] = outcome_of(best)
            else:
                if compiled.lpm_free:
                    slot = compiled.lpm_free.pop()
                    outcomes[slot] = outcome_of(best)
                else:
                    slot = len(outcomes)
                    outcomes.append(outcome_of(best))
                try:
                    store.add(value, depth, slot)
                except LpmFullError:
                    outcomes[slot] = None
                    compiled.lpm_free.append(slot)
                    return False  # fall back to a (larger) rebuild
            compiled.entry_count = len(table)
            return True

        if compiled.kind is TemplateKind.LINKED_LIST:
            # Rebuild the entry list in place, reusing the shared matcher
            # functions; the generated code object never changes.
            from repro.core.analysis import split_catch_all

            rules, catch_all = split_catch_all(table.entries)
            compiled.namespace["_MISS"] = (
                outcome_of(catch_all) if catch_all is not None else miss_outcome(table)
            )
            from repro.core.codegen import _guard_masks

            new_entries = []
            for entry in rules:
                sig = tuple((n, m) for n, (_v, m) in entry.match.items())
                fn = compiled.ll_matchers.get(sig)
                if fn is None:
                    fn = _build_sig_matcher(sig, len(compiled.ll_matchers))
                    compiled.ll_matchers[sig] = fn
                values = tuple(v for _n, (v, _m) in entry.match.items())
                new_entries.append(
                    (_guard_masks(entry.match), fn, values, outcome_of(entry))
                )
            assert compiled.ll_entries is not None
            compiled.ll_entries[:] = new_entries
            compiled.entry_count = len(table)
            return True

        return False

    def __repr__(self) -> str:
        return (
            f"ESwitch(tables={len(self._groups)}, "
            f"compiled={self.compiled_table_count})"
        )
