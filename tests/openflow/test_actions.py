"""Tests for actions and action sets."""

import pytest

from repro.openflow.actions import (
    ActionSet,
    Controller,
    DecTtl,
    Drop,
    Flood,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    FLOOD_PORT,
)
from repro.openflow.fields import field_by_name
from repro.openflow.pipeline import Verdict
from repro.packet import PacketBuilder
from repro.packet.parser import parse


def apply_one(action, pkt):
    view = parse(pkt)
    verdict = Verdict()
    action.apply(view, verdict)
    return view, verdict


class TestBasicActions:
    def test_output(self):
        _, v = apply_one(Output(3), PacketBuilder().eth().build())
        assert v.output_ports == [3]

    def test_flood(self):
        _, v = apply_one(Flood(), PacketBuilder().eth().build())
        assert v.output_ports == [FLOOD_PORT]

    def test_drop(self):
        _, v = apply_one(Drop(), PacketBuilder().eth().build())
        assert v.dropped

    def test_controller(self):
        _, v = apply_one(Controller(), PacketBuilder().eth().build())
        assert v.to_controller


class TestSetField:
    def test_rewrites_bytes(self):
        pkt = PacketBuilder().eth().ipv4(dst="10.0.0.1").tcp().build()
        view, _ = apply_one(SetField("ipv4_dst", 0x01020304), pkt)
        assert field_by_name("ipv4_dst").extract(view) == 0x01020304

    def test_absent_header_is_noop(self):
        pkt = PacketBuilder().eth().build()  # no IPv4 header
        before = bytes(pkt.data)
        apply_one(SetField("ipv4_dst", 0x01020304), pkt)
        assert bytes(pkt.data) == before

    def test_rejects_unwritable_field(self):
        with pytest.raises(ValueError):
            SetField("eth_type", 0x0800)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SetField("tcp_dst", 1 << 16)


class TestVlanOps:
    def test_push_then_fields_visible(self):
        pkt = PacketBuilder().eth().ipv4().tcp(dst_port=80).build()
        view, v = apply_one(PushVlan(vid=55, pcp=3), pkt)
        assert v.reparse_needed
        view = parse(pkt)
        assert field_by_name("vlan_vid").extract(view) == 55
        assert field_by_name("vlan_pcp").extract(view) == 3
        assert field_by_name("tcp_dst").extract(view) == 80  # shifted, still right

    def test_pop_restores_original(self):
        pkt = PacketBuilder().eth().vlan(vid=55).ipv4(dst="192.0.2.1").tcp().build()
        apply_one(PopVlan(), pkt)
        view = parse(pkt)
        assert field_by_name("vlan_vid").extract(view) is None
        assert field_by_name("ipv4_dst").extract(view) == 0xC0000201

    def test_pop_untagged_is_noop(self):
        pkt = PacketBuilder().eth().ipv4().build()
        before = bytes(pkt.data)
        apply_one(PopVlan(), pkt)
        assert bytes(pkt.data) == before

    def test_push_pop_roundtrip(self):
        pkt = PacketBuilder().eth().ipv4().udp().build()
        original = bytes(pkt.data)
        apply_one(PushVlan(vid=1), pkt)
        apply_one(PopVlan(), pkt)
        assert bytes(pkt.data) == original


class TestDecTtl:
    def test_decrements(self):
        pkt = PacketBuilder().eth().ipv4(ttl=5).tcp().build()
        view, v = apply_one(DecTtl(), pkt)
        assert pkt.data[14 + 8] == 4
        assert not v.dropped

    def test_expiry_drops(self):
        pkt = PacketBuilder().eth().ipv4(ttl=1).tcp().build()
        _, v = apply_one(DecTtl(), pkt)
        assert v.dropped

    def test_non_ip_noop(self):
        pkt = PacketBuilder().eth().arp().build()
        _, v = apply_one(DecTtl(), pkt)
        assert not v.dropped


class TestActionSet:
    def test_interning_shares_objects(self):
        a = ActionSet.intern([Output(1), Drop()])
        b = ActionSet.intern([Output(1), Drop()])
        assert a is b

    def test_different_sets_distinct(self):
        assert ActionSet.intern([Output(1)]) is not ActionSet.intern([Output(2)])

    def test_is_drop(self):
        assert ActionSet([]).is_drop
        assert ActionSet([Drop()]).is_drop
        assert not ActionSet([Output(1)]).is_drop

    def test_apply_runs_in_order(self):
        pkt = PacketBuilder().eth().ipv4().tcp().build()
        view = parse(pkt)
        verdict = Verdict()
        ActionSet([SetField("ipv4_dst", 7), Output(2)]).apply(view, verdict)
        assert verdict.output_ports == [2]
        assert field_by_name("ipv4_dst").extract(view) == 7

    def test_hashable_and_len(self):
        s = ActionSet([Output(1), Output(2)])
        assert len(s) == 2
        assert hash(s) == hash(ActionSet([Output(1), Output(2)]))
