"""Synthetic snort-style five-tuple ACLs (the Section 3.2 stress test).

The paper feeds its table decomposer "a complete firewall setup, consisting
of arbitrarily wildcarded five-tuple ACLs ('snort community rules v2.9',
stripped to OpenFlow compatible rules)": 72 active rules decomposed into
50 tables; 369 rules (with obsolete ones) into 197.

The original ruleset is not redistributable here, so :func:`generate`
produces rules with the same structural statistics: five columns
(ipv4_src, ipv4_dst, ip_proto, src port, dst port), each independently
exact or wildcarded, with the value diversity snort's HTTP/any-any rule
shapes exhibit — many rules share protocol and server-port values while
source addresses and ports are mostly wildcarded. What the experiment
checks is the *decomposition ratio*: the table count stays well below the
rule count and far below the exponential worst case.
"""

from __future__ import annotations

import random

from repro.openflow.actions import Controller, Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline

#: well-known service ports snort rules concentrate on.
SERVICE_PORTS = (80, 443, 21, 22, 25, 53, 139, 445)


def generate(n_rules: int, seed: int = 37) -> FlowTable:
    """An ACL table of ``n_rules`` exact-or-wildcard five-tuple rules.

    Value pools are fixed-size (a handful of protected servers and client
    subnets, the classic service ports): snort-style rulesets repeat the
    same values across many rules, which is exactly what keeps their
    decomposition compact (Section 3.2).
    """
    rng = random.Random(seed)
    table = FlowTable(0, name="acl")
    servers = [0x0A000000 | rng.randrange(1 << 12) for _ in range(7)]
    clients = [0xC0A80000 | rng.randrange(1 << 8) for _ in range(4)]
    priority = n_rules + 1
    for _ in range(n_rules):
        proto_is_tcp = rng.random() < 0.8
        constraints: dict[str, object] = {"ip_proto": 6 if proto_is_tcp else 17}
        port_field = "tcp_dst" if proto_is_tcp else "udp_dst"
        sport_field = "tcp_src" if proto_is_tcp else "udp_src"
        if rng.random() < 0.9:
            constraints[port_field] = rng.choice(SERVICE_PORTS)
        if rng.random() < 0.3:
            constraints["ipv4_dst"] = rng.choice(servers)
        if rng.random() < 0.04:
            constraints["ipv4_src"] = rng.choice(clients)
        if rng.random() < 0.03:
            constraints[sport_field] = rng.choice(SERVICE_PORTS)
        action = Controller() if rng.random() < 0.3 else Output(0)
        table.add(FlowEntry(Match(**constraints), priority=priority, actions=[action]))
        priority -= 1
    table.add(FlowEntry(Match(), priority=0, actions=[Output(1)]))  # permit
    return table


def build(n_rules: int, seed: int = 37) -> Pipeline:
    return Pipeline([generate(n_rules, seed)])
