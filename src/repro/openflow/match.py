"""OpenFlow matches: sets of (field, value, mask) constraints.

A :class:`Match` maps field names to ``(value, mask)`` pairs. ``mask`` is
always an explicit integer here; an exact match uses the field's full mask.
Values are canonicalized (``value & mask``) on construction so structural
equality means semantic equality field-by-field.

The class supports the relations the classifiers and the decomposition
algorithm need: evaluation against a packet, subset/overlap tests between
matches, and protocol-prerequisite computation.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.net.bits import contiguous_prefix_mask
from repro.openflow.fields import FieldDef, field_by_name
from repro.packet.parser import ParsedPacket


class Match:
    """An immutable set of field constraints.

    Construct from keyword arguments; each value may be:

    * an ``int`` — exact match;
    * a ``(value, mask)`` tuple — masked match;
    * a ``"value/prefix_len"`` or dotted-quad string for address fields.

    >>> Match(ipv4_dst=("0xC0000200", 0xFFFFFF00))     # doctest: +SKIP
    >>> Match(ipv4_dst="192.0.2.0/24", tcp_dst=80)     # doctest: +SKIP
    """

    __slots__ = ("_constraints", "_hash")

    def __init__(self, **constraints: object):
        items: dict[str, tuple[int, int]] = {}
        for name, spec in constraints.items():
            fdef = field_by_name(name)
            value, mask = _parse_spec(fdef, spec)
            if mask == 0:
                continue  # a fully wildcarded field constrains nothing
            items[name] = (value & mask, mask)
        self._constraints = dict(sorted(items.items()))
        self._hash = hash(tuple(self._constraints.items()))

    @classmethod
    def from_pairs(cls, pairs: Mapping[str, tuple[int, int]]) -> "Match":
        """Build from an explicit ``{field: (value, mask)}`` mapping."""
        match = cls()
        items = {}
        for name, (value, mask) in pairs.items():
            fdef = field_by_name(name)
            if not 0 <= mask <= fdef.max_value:
                raise ValueError(f"mask out of range for {name}: {mask:#x}")
            if mask == 0:
                continue
            items[name] = (value & mask, mask)
        match._constraints = dict(sorted(items.items()))
        match._hash = hash(tuple(match._constraints.items()))
        return match

    # -- inspection ---------------------------------------------------------

    @property
    def fields(self) -> tuple[str, ...]:
        """Names of constrained fields, sorted."""
        return tuple(self._constraints)

    def constraint(self, name: str) -> "tuple[int, int] | None":
        """``(value, mask)`` for a field, or None if unconstrained."""
        return self._constraints.get(name)

    def value_of(self, name: str) -> "int | None":
        pair = self._constraints.get(name)
        return pair[0] if pair else None

    def mask_of(self, name: str) -> int:
        pair = self._constraints.get(name)
        return pair[1] if pair else 0

    def is_exact(self, name: str) -> bool:
        """True if the field is constrained by its full mask."""
        pair = self._constraints.get(name)
        if pair is None:
            return False
        return pair[1] == field_by_name(name).max_value

    def is_prefix(self, name: str) -> bool:
        """True if the field's mask is a contiguous prefix mask."""
        pair = self._constraints.get(name)
        if pair is None:
            return True
        fdef = field_by_name(name)
        return contiguous_prefix_mask(pair[1], fdef.width)

    def prefix_len(self, name: str) -> int:
        """Prefix length of a contiguous mask (0 when unconstrained)."""
        pair = self._constraints.get(name)
        if pair is None:
            return 0
        return pair[1].bit_count()

    @property
    def is_catch_all(self) -> bool:
        return not self._constraints

    def required_protos(self) -> int:
        """Union of protocol prerequisites for the constrained fields."""
        bits = 0
        for name in self._constraints:
            bits |= field_by_name(name).proto_required
        return bits

    def items(self) -> Iterator[tuple[str, tuple[int, int]]]:
        return iter(self._constraints.items())

    # -- evaluation -----------------------------------------------------------

    def matches(self, view: ParsedPacket) -> bool:
        """Evaluate against a parsed packet (reference semantics)."""
        for name, (value, mask) in self._constraints.items():
            fdef = field_by_name(name)
            actual = fdef.extract(view)
            if actual is None or (actual & mask) != value:
                return False
        return True

    def matches_key(self, key: Mapping[str, "int | None"]) -> bool:
        """Evaluate against an extracted flow key (OVS-style lookup)."""
        for name, (value, mask) in self._constraints.items():
            actual = key.get(name)
            if actual is None or (actual & mask) != value:
                return False
        return True

    # -- relations -------------------------------------------------------------

    def covers(self, other: "Match") -> bool:
        """True if every packet matching ``other`` also matches ``self``."""
        for name, (value, mask) in self._constraints.items():
            pair = other._constraints.get(name)
            if pair is None:
                return False
            ovalue, omask = pair
            if (omask & mask) != mask or (ovalue & mask) != value:
                return False
        return True

    def overlaps(self, other: "Match") -> bool:
        """True if some packet could match both."""
        for name, (value, mask) in self._constraints.items():
            pair = other._constraints.get(name)
            if pair is None:
                continue
            ovalue, omask = pair
            common = mask & omask
            if (value & common) != (ovalue & common):
                return False
        return True

    def without(self, name: str) -> "Match":
        """A copy with one field's constraint removed (used by DECOMPOSE)."""
        remaining = {k: v for k, v in self._constraints.items() if k != name}
        return Match.from_pairs(remaining)

    def extended(self, name: str, value: int, mask: "int | None" = None) -> "Match":
        """A copy with an additional constraint."""
        fdef = field_by_name(name)
        full = fdef.max_value
        pairs = dict(self._constraints)
        pairs[name] = (value, full if mask is None else mask)
        return Match.from_pairs(pairs)

    # -- dunder -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._constraints == other._constraints

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._constraints:
            return "Match(*)"
        parts = []
        for name, (value, mask) in self._constraints.items():
            fdef = field_by_name(name)
            if mask == fdef.max_value:
                parts.append(f"{name}={value:#x}")
            else:
                parts.append(f"{name}={value:#x}/{mask:#x}")
        return f"Match({', '.join(parts)})"


def _parse_spec(fdef: FieldDef, spec: object) -> tuple[int, int]:
    """Normalize a user-facing constraint spec into ``(value, mask)``."""
    full = fdef.max_value
    if isinstance(spec, bool):
        raise TypeError(f"boolean is not a valid constraint for {fdef.name}")
    if isinstance(spec, int):
        if not 0 <= spec <= full:
            raise ValueError(f"value out of range for {fdef.name}: {spec:#x}")
        return spec, full
    if isinstance(spec, tuple):
        value, mask = spec
        value = _to_int(fdef, value)
        if not 0 <= mask <= full:
            raise ValueError(f"mask out of range for {fdef.name}: {mask:#x}")
        if mask != full and not fdef.maskable:
            raise ValueError(f"field {fdef.name} is not maskable")
        return value, mask
    if isinstance(spec, str):
        if "/" in spec:
            addr, _, plen_str = spec.partition("/")
            value = _to_int(fdef, addr)
            plen = int(plen_str)
            if not 0 <= plen <= fdef.width:
                raise ValueError(f"prefix length {plen} out of range for {fdef.name}")
            mask = ((full >> (fdef.width - plen)) << (fdef.width - plen)) if plen else 0
            if mask != full and not fdef.maskable:
                raise ValueError(f"field {fdef.name} is not maskable")
            return value, mask
        return _to_int(fdef, spec), full
    raise TypeError(f"cannot interpret constraint {spec!r} for field {fdef.name}")


def _to_int(fdef: FieldDef, value: object) -> int:
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        if ":" in value or "-" in value:
            from repro.net.addresses import mac_to_int

            return mac_to_int(value)
        if value.count(".") == 3:
            from repro.net.addresses import ip_to_int

            return ip_to_int(value)
        return int(value, 0)
    raise TypeError(f"cannot convert {value!r} to a value for field {fdef.name}")
