"""Fig. 3: megaflow cache contents depend on packet arrival order.

"The flow table (a) yields 7 megaflow cache entries when the TCP
destination port arrivals are as of seq 1 (for each zero bit in positions
2,…,8), while if destination port 191 arrives first as of seq 2 then only
a single entry arises (matching at position 2, covering all subsequent
packets)."
"""

from figshared import publish, render_table
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.ovs.flowkey import extract_key
from repro.ovs.megaflow import MegaflowCache, WildcardMode, build_megaflow
from repro.packet import PacketBuilder
from repro.packet.parser import parse

SEQ_1 = (190, 189, 187, 183, 175, 159, 191)
SEQ_2 = (191, 190, 189, 187, 183, 175, 159)


def pipeline():
    table = FlowTable(0)
    table.add(FlowEntry(Match(tcp_dst=255), priority=10, actions=[]))
    table.add(FlowEntry(Match(), priority=0, actions=[Output(3)]))
    return Pipeline([table])


def replay(ports):
    p = pipeline()
    cache = MegaflowCache()
    for port in ports:
        pkt = PacketBuilder(in_port=1).eth().ipv4().tcp(dst_port=port).build()
        key = extract_key(parse(pkt))
        if cache.lookup(key)[0] is not None:
            continue
        verdict = p.process(pkt.copy(), trace=True)
        cache.insert(build_megaflow(verdict, key, WildcardMode.BIT_TRACKING))
    return cache


def test_fig03_arrival_order_anomaly(benchmark):
    cache1 = replay(SEQ_1)
    cache2 = replay(SEQ_2)

    rows = [
        ("seq 1 (190 first)", " ".join(map(str, SEQ_1)), len(cache1)),
        ("seq 2 (191 first)", " ".join(map(str, SEQ_2)), len(cache2)),
    ]
    detail = [
        f"  seq1 megaflow masks (tcp_dst): "
        f"{sorted(m for e in cache1.entries() for f, m in e.sig if f == 'tcp_dst')}",
        f"  seq2 megaflow masks (tcp_dst): "
        f"{sorted(m for e in cache2.entries() for f, m in e.sig if f == 'tcp_dst')}",
    ]
    publish(
        "fig03_megaflow_order",
        render_table(
            "Fig. 3: megaflow entries vs packet arrival order (paper: 7 vs 1)",
            ("sequence", "ports", "megaflows"),
            rows,
        )
        + "\n" + "\n".join(detail),
    )
    assert len(cache1) == 7  # exactly the paper's count
    assert len(cache2) == 1
    # seq 1 pins one zero bit in each of positions 2..8.
    masks1 = sorted(m for e in cache1.entries() for f, m in e.sig if f == "tcp_dst")
    assert masks1 == [1 << i for i in range(7)]

    benchmark(lambda: replay(SEQ_1))
