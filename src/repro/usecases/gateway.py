"""The telco access gateway (vPE) use case — Fig. 8.

Users sit behind Customer Endpoints (CEs); each CE is a unique VLAN tag on
the access port, each user a per-CE private IPv4 address. The pipeline:

* **Table 0** splits user→network traffic per CE from network→user
  traffic (here as two stages: an ingress-port split plus a per-CE VLAN
  hash, since untagged network-side packets cannot carry a VLAN match);
* **per-CE tables** (ids 10+ce) identify users by private source address
  and NAT them to a unique public address, then jump to the routing table;
  a miss goes to the controller for admission control;
* **Table 110** routes on 10K IP prefixes (the LPM template);
* **Table 200** maps returning traffic from public address back to the
  right (VLAN, private address) pair.

The paper's standard configuration: 10 CEs, 20 users/CE, 10K prefixes.
"""

from __future__ import annotations

import random

from repro.net.addresses import int_to_ip, ip_to_int
from repro.openflow.actions import Output, PopVlan, PushVlan, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.packet.builder import PacketBuilder
from repro.traffic.flows import FlowSet
from repro.usecases.l3 import synthetic_fib

ACCESS_PORT = 1
NETWORK_PORT = 2
CE_TABLE_BASE = 10
ROUTING_TABLE = 110
REVERSE_TABLE = 200
VLAN_DISPATCH_TABLE = 5


def private_ip(ce: int, user: int) -> int:
    return ip_to_int("10.0.0.0") | (ce << 16) | (user + 1)


def public_ip(ce: int, user: int) -> int:
    return ip_to_int("100.64.0.0") | (ce << 8) | (user + 1)


def ce_vlan(ce: int) -> int:
    return 100 + ce


def build(
    n_ce: int = 10,
    users_per_ce: int = 20,
    n_prefixes: int = 10_000,
    provision_users: bool = True,
    seed: int = 29,
) -> tuple[Pipeline, list[tuple[int, int, int]]]:
    """The vPE pipeline; returns it plus the FIB used for Table 110."""
    t0 = FlowTable(0, name="port-split")
    t0.add(
        FlowEntry(
            Match(in_port=ACCESS_PORT),
            priority=20,
            instructions=(GotoTable(VLAN_DISPATCH_TABLE),),
        )
    )
    t0.add(
        FlowEntry(
            Match(in_port=NETWORK_PORT),
            priority=10,
            instructions=(GotoTable(REVERSE_TABLE),),
        )
    )
    t0.add(FlowEntry(Match(), priority=0, actions=[]))

    t_vlan = FlowTable(VLAN_DISPATCH_TABLE, name="per-ce")
    for ce in range(n_ce):
        t_vlan.add(
            FlowEntry(
                Match(vlan_vid=ce_vlan(ce)),
                priority=10,
                instructions=(GotoTable(CE_TABLE_BASE + ce),),
            )
        )
    t_vlan.add(FlowEntry(Match(), priority=0, actions=[]))

    tables = [t0, t_vlan]
    for ce in range(n_ce):
        tc = FlowTable(
            CE_TABLE_BASE + ce,
            name=f"ce{ce}-nat",
            miss_policy=TableMissPolicy.CONTROLLER,  # admission control
        )
        if provision_users:
            for user in range(users_per_ce):
                tc.add(_nat_entry(ce, user))
        tables.append(tc)

    fib = synthetic_fib(n_prefixes, seed)
    t_rib = FlowTable(ROUTING_TABLE, name="rib")
    for value, depth, _port in fib:
        t_rib.add(
            FlowEntry(
                Match(ipv4_dst=f"{int_to_ip(value)}/{depth}"),
                priority=depth,
                actions=[Output(NETWORK_PORT)],
            )
        )
    t_rib.add(FlowEntry(Match(), priority=0, actions=[]))
    tables.append(t_rib)

    t_rev = FlowTable(
        REVERSE_TABLE, name="reverse-nat", miss_policy=TableMissPolicy.CONTROLLER
    )
    if provision_users:
        for ce in range(n_ce):
            for user in range(users_per_ce):
                t_rev.add(_reverse_entry(ce, user))
    tables.append(t_rev)
    return Pipeline(tables), fib


def _nat_entry(ce: int, user: int) -> FlowEntry:
    return FlowEntry(
        Match(ipv4_src=private_ip(ce, user)),
        priority=10,
        instructions=(
            ApplyActions([PopVlan(), SetField("ipv4_src", public_ip(ce, user))]),
            GotoTable(ROUTING_TABLE),
        ),
    )


def _reverse_entry(ce: int, user: int) -> FlowEntry:
    return FlowEntry(
        Match(ipv4_dst=public_ip(ce, user)),
        priority=10,
        instructions=(
            ApplyActions(
                [
                    SetField("ipv4_dst", private_ip(ce, user)),
                    PushVlan(vid=ce_vlan(ce)),
                    Output(ACCESS_PORT),
                ]
            ),
        ),
    )


def nat_flow_mods(ce: int, user: int) -> list[FlowMod]:
    """The two flow-mods the controller installs per admitted user."""
    nat = _nat_entry(ce, user)
    rev = _reverse_entry(ce, user)
    return [
        FlowMod(
            FlowModCommand.ADD,
            CE_TABLE_BASE + ce,
            nat.match,
            priority=nat.priority,
            instructions=nat.instructions,
        ),
        FlowMod(
            FlowModCommand.ADD,
            REVERSE_TABLE,
            rev.match,
            priority=rev.priority,
            instructions=rev.instructions,
        ),
    ]


def traffic(
    fib: list[tuple[int, int, int]],
    n_flows: int,
    n_ce: int = 10,
    users_per_ce: int = 20,
    seed: int = 31,
) -> FlowSet:
    """User→network flows: ``(CE, user, destination, source port)`` tuples.

    The flow-count sweep varies "the number of per-user flows": flows
    round-robin over the provisioned users while destinations and source
    ports diversify, exactly the axis Figs. 13–16 sweep.
    """
    rng = random.Random(seed)

    def factory(i: int, _rng: random.Random) -> object:
        ce = i % n_ce
        user = (i // n_ce) % users_per_ce
        value, depth, _port = fib[rng.randrange(len(fib))]
        host_bits = 32 - depth
        dst = value | (rng.getrandbits(host_bits) if host_bits else 0)
        return (
            PacketBuilder(in_port=ACCESS_PORT)
            .eth(src="02:00:00:00:02:01", dst="02:00:00:00:02:02")
            .vlan(vid=ce_vlan(ce))
            .ipv4(src=int_to_ip(private_ip(ce, user)), dst=int_to_ip(dst))
            .tcp(src_port=1024 + rng.randrange(60000), dst_port=443)
            .build()
        )

    return FlowSet.build(n_flows, factory, seed=seed, name=f"gw-{n_flows}flows")
