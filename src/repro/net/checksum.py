"""RFC 1071 Internet checksum, used by the IPv4 header builder."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit ones'-complement Internet checksum of ``data``."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
