"""Figs. 5/6: flow table decomposition — greedy column order matters.

The paper's example: decomposing along ``ip_dst`` ("with 3 distinct keys
plus the wildcard") eventually yields **9** tables, while the greedy
minimal-diversity choice terminates with only **4** — and every emitted
table is template-friendly.

Fig. 5a's exact rule values are not recoverable from the paper text, so
this bench uses a three-column table with the same behavior: the greedy
heuristic emits exactly 4 tables, forcing ``ipv4_dst`` first emits exactly
9, and both pipelines are verified semantically equivalent to the input.
"""

import random

from figshared import publish, render_table
from repro.core.analysis import TemplateKind, select_template
from repro.core.decompose import decompose_table
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.packet.builder import PacketBuilder

DST_A, DST_B = 0x0A000001, 0x0A000002
SRC_X, SRC_Y = 0x0B000001, 0x0B000002


def fig5_style_table():
    t = FlowTable(0)
    t.add(FlowEntry(Match(ipv4_dst=DST_B, ipv4_src=SRC_Y, tcp_dst=80),
                    priority=3, actions=[Output(1)]))
    t.add(FlowEntry(Match(ipv4_dst=DST_A, ipv4_src=SRC_Y, tcp_dst=80),
                    priority=2, actions=[Output(2)]))
    t.add(FlowEntry(Match(ipv4_src=SRC_X, tcp_dst=21),
                    priority=1, actions=[Output(3)]))
    return t


def probe_packets(n=200, seed=1):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        dst = rng.choice([DST_A, DST_B, 0x0A000009])
        src = rng.choice([SRC_X, SRC_Y, 0x0B000009])
        port = rng.choice([80, 21, 443])
        out.append(
            PacketBuilder(in_port=1).eth()
            .ipv4(src=f"{src >> 24}.{(src >> 16) & 255}.{(src >> 8) & 255}.{src & 255}",
                  dst=f"{dst >> 24}.{(dst >> 16) & 255}.{(dst >> 8) & 255}.{dst & 255}")
            .tcp(dst_port=port).build()
        )
    return out


def test_fig05_decomposition(benchmark):
    greedy = decompose_table(fig5_style_table(), 100)
    forced = decompose_table(fig5_style_table(), 100, force_first_column="ipv4_dst")
    assert greedy is not None and forced is not None

    original = Pipeline([fig5_style_table()])
    probes = probe_packets()
    for pipeline in (Pipeline(greedy), Pipeline(forced)):
        for pkt in probes:
            assert (pipeline.process(pkt.copy()).summary()
                    == original.process(pkt.copy()).summary())

    root = next(t for t in greedy if t.table_id == 0)
    kinds = sorted({select_template(t.entries).value for t in greedy})
    publish(
        "fig05_decompose",
        render_table(
            "Figs. 5/6: table decomposition (paper: 4 tables greedy vs 9 ip-first)",
            ("strategy", "tables"),
            [
                (f"greedy (min diversity: {root.matched_fields()[0]})", len(greedy)),
                ("forced ipv4_dst first", len(forced)),
            ],
        )
        + f"\n  greedy output templates: {kinds}",
    )
    assert len(greedy) == 4   # the paper's greedy count
    assert len(forced) == 9   # the paper's suboptimal count
    # Every emitted table is single-column, hence template-friendly.
    assert all(
        select_template(t.entries)
        in (TemplateKind.DIRECT, TemplateKind.HASH, TemplateKind.LPM)
        for t in greedy
    )

    benchmark(lambda: decompose_table(fig5_style_table(), 100))
