"""The fabric soak: tenant churn + injected outages + SLO telemetry.

Drives a :class:`~repro.fabric.topology.Fabric` through a deterministic
virtual-time soak and reports against the SLOs of DESIGN §12:

* **served-packet fraction** — of all access-side packets injected in a
  window, how many were forwarded end to end (leaf NAT + spine RIB).
  The acceptance floor applies to the *fault window*: while one leaf is
  dark, the fabric-wide fraction must stay ≥ ``served_floor`` (the
  other leaves are unaffected and the dark leaf's already-admitted
  subscribers keep forwarding in fail-standalone);
* **p99 punt latency** — 99th percentile of one-way punt channel
  crossings across every leaf session (the reactive path's latency);
* **install convergence time** — virtual time from a leaf's resync to
  the first probe burst on it with zero punts (every active subscriber
  re-admitted; reactive state has re-converged);
* **drop budget** — fraction of injected packets dropped outright
  (spine RIB misses, fail-secure kills); punted-but-unserved packets
  are counted separately (they are latency, not loss, unless secure);
* **per-leaf degraded time** — virtual seconds each leaf spent with its
  session DOWN, from the supervisor's attribution.

Tenant churn: subscribers activate staggered over ``arrival_ticks`` and
deactivate ``lifetime_ticks`` later; each active subscriber emits fresh
flows (new destination / source port) every tick, so admission punts,
cache pressure, and ECMP spray all stay live through the soak.

Everything — traffic, channels, faults — replays bit-for-bit from
``seed``; wall-clock shows up only as a throughput observation in the
report, never in behavior.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.controller.session import FailMode
from repro.fabric import (
    Fabric,
    FabricFaultPlan,
    FabricFaultSpec,
    FabricSupervisor,
)
from repro.fabric.topology import BurstOutcome
from repro.net.addresses import int_to_ip
from repro.packet.builder import PacketBuilder
from repro.usecases import gateway


@dataclass
class SoakConfig:
    """Everything one soak run depends on (reportable + replayable)."""

    n_leaves: int = 4
    n_spines: int = 2
    n_ce: int = 8
    users_per_ce: int = 8
    n_prefixes: int = 200
    ticks: int = 48
    tick_s: float = 0.5
    pkts_per_subscriber: int = 2
    arrival_ticks: int = 24       #: staggered subscriber arrivals
    lifetime_ticks: int = 36      #: active window per subscriber
    fail_mode: str = "fail-standalone"
    outage_leaf: str = "leaf1"
    outage_at_s: float = 6.0
    outage_duration_s: float = 6.0
    extra_faults: tuple = ()      #: additional FabricFaultSpec
    upgrade: bool = True          #: run the rolling-upgrade legs
    served_floor: float = 0.7
    drop_budget: float = 0.05
    seed: int = 42

    def as_dict(self) -> dict:
        return {
            "n_leaves": self.n_leaves,
            "n_spines": self.n_spines,
            "n_ce": self.n_ce,
            "users_per_ce": self.users_per_ce,
            "n_prefixes": self.n_prefixes,
            "ticks": self.ticks,
            "tick_s": self.tick_s,
            "pkts_per_subscriber": self.pkts_per_subscriber,
            "arrival_ticks": self.arrival_ticks,
            "lifetime_ticks": self.lifetime_ticks,
            "fail_mode": self.fail_mode,
            "outage_leaf": self.outage_leaf,
            "outage_at_s": self.outage_at_s,
            "outage_duration_s": self.outage_duration_s,
            "upgrade": self.upgrade,
            "served_floor": self.served_floor,
            "drop_budget": self.drop_budget,
            "seed": self.seed,
        }


@dataclass
class _Subscriber:
    ce: int
    user: int
    arrives_tick: int
    leaves_tick: int


def _population(cfg: SoakConfig) -> list[_Subscriber]:
    subs = [
        (ce, user)
        for ce in range(cfg.n_ce)
        for user in range(cfg.users_per_ce)
    ]
    n = len(subs)
    return [
        _Subscriber(
            ce,
            user,
            arrives_tick=(k * cfg.arrival_ticks) // n,
            leaves_tick=(k * cfg.arrival_ticks) // n + cfg.lifetime_ticks,
        )
        for k, (ce, user) in enumerate(subs)
    ]


def _flow_packet(sub: _Subscriber, fib, rng: random.Random):
    value, depth, _port = fib[rng.randrange(len(fib))]
    host_bits = 32 - depth
    dst = value | (rng.getrandbits(host_bits) if host_bits else 0)
    return (
        PacketBuilder(in_port=gateway.ACCESS_PORT)
        .eth(src="02:00:00:00:02:01", dst="02:00:00:00:02:02")
        .vlan(vid=gateway.ce_vlan(sub.ce))
        .ipv4(
            src=int_to_ip(gateway.private_ip(sub.ce, sub.user)),
            dst=int_to_ip(dst),
        )
        .tcp(src_port=1024 + rng.randrange(60000), dst_port=443)
        .build()
    )


def _quantile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def _replay_signature(fabric: Fabric, trace: dict) -> list:
    """Per-packet leaf verdict summaries of a probe trace (fresh copies).

    The divergence oracle of the upgrade legs: an upgrade is only
    accepted when this signature is bit-identical before and after.
    """
    signature = []
    for leaf_name in sorted(trace):
        leaf = fabric.leaf(leaf_name)
        pkts = [p.copy() for p in trace[leaf_name]]
        verdicts = leaf.switch.process_burst(pkts)
        signature.extend(
            (leaf_name, i, v.summary()) for i, v in enumerate(verdicts)
        )
    return signature


def run_fabric_soak(cfg: "SoakConfig | None" = None) -> dict:
    """Run one soak; returns the ``BENCH_fabric_soak.json`` document."""
    cfg = cfg or SoakConfig()
    faults = [
        FabricFaultSpec(
            at_s=cfg.outage_at_s,
            target=cfg.outage_leaf,
            kind="blackout",
            duration_s=cfg.outage_duration_s,
        ),
        *cfg.extra_faults,
    ]
    plan = FabricFaultPlan(tuple(faults))
    fabric = Fabric(
        n_leaves=cfg.n_leaves,
        n_spines=cfg.n_spines,
        n_ce=cfg.n_ce,
        users_per_ce=cfg.users_per_ce,
        n_prefixes=cfg.n_prefixes,
        fail_mode=FailMode(cfg.fail_mode),
    )
    supervisor = FabricSupervisor(fabric, faults=plan.arm(fabric))
    population = _population(cfg)
    rng = random.Random(cfg.seed)

    totals = BurstOutcome()
    fault_window = BurstOutcome()
    declared_window = BurstOutcome()
    per_tick: list[dict] = []
    probe_packets = 0
    fault_ends_s = cfg.outage_at_s + cfg.outage_duration_s
    wall_start = time.perf_counter()

    for tick in range(cfg.ticks):
        supervisor.tick(cfg.tick_s)
        in_fault_window = cfg.outage_at_s <= fabric.now <= (
            fault_ends_s + cfg.tick_s
        )
        declared = bool(supervisor.degraded_leaves())

        tick_outcome = BurstOutcome()
        by_leaf: dict[str, list] = {}
        for sub in population:
            if not sub.arrives_tick <= tick < sub.leaves_tick:
                continue
            leaf = fabric.leaf_of(sub.ce, sub.user)
            by_leaf.setdefault(leaf.name, []).extend(
                _flow_packet(sub, fabric.fib, rng)
                for _ in range(cfg.pkts_per_subscriber)
            )
        for leaf_name, pkts in sorted(by_leaf.items()):
            tick_outcome.absorb(fabric.inject(leaf_name, pkts))

        totals.absorb(tick_outcome)
        if in_fault_window:
            fault_window.absorb(tick_outcome)
        if declared:
            declared_window.absorb(tick_outcome)
        per_tick.append(
            {
                "t_s": fabric.now,
                "injected": tick_outcome.injected,
                "served": tick_outcome.served,
                "punted": tick_outcome.punted,
                "dropped": tick_outcome.dropped,
                "served_fraction": tick_outcome.served_fraction,
                "in_fault_window": in_fault_window,
                "declared_outage": declared,
                "degraded_leaves": supervisor.degraded_leaves(),
            }
        )

        # Convergence probes: a resynced leaf re-learns through re-punts;
        # it has converged when a probe over its *active* subscribers
        # punts nothing and serves everything.
        for leaf_name in supervisor.awaiting_convergence():
            leaf = fabric.leaf(leaf_name)
            probe = [
                _flow_packet(sub, fabric.fib, rng)
                for sub in population
                if sub.arrives_tick <= tick < sub.leaves_tick
                and fabric.leaf_of(sub.ce, sub.user) is leaf
            ]
            if not probe:
                supervisor.note_converged(leaf_name)
                continue
            probe_packets += len(probe)
            outcome = fabric.inject(leaf_name, probe)
            if outcome.punted == 0 and outcome.served == outcome.injected:
                supervisor.note_converged(leaf_name)

    wall_s = time.perf_counter() - wall_start
    punt_samples = [
        s for leaf in fabric.leaves for s in leaf.session.punt_latencies
    ]
    convergence = {
        name: status.convergence_s
        for name, status in supervisor.status.items()
        if status.convergence_s is not None
    }

    report = {
        "config": cfg.as_dict(),
        "totals": {
            "injected": totals.injected,
            "served": totals.served,
            "punted": totals.punted,
            "dropped": totals.dropped,
            "served_fraction": totals.served_fraction,
            "probe_packets": probe_packets,
        },
        "outage": {
            "fault_window": {
                "injected": fault_window.injected,
                "served": fault_window.served,
                "served_fraction": fault_window.served_fraction,
            },
            "declared_window": {
                "injected": declared_window.injected,
                "served": declared_window.served,
                "served_fraction": declared_window.served_fraction,
            },
            "served_floor": cfg.served_floor,
            "fault_log": [list(e) for e in supervisor.faults.log],
        },
        "slo": {
            "p99_punt_latency_s": _quantile(punt_samples, 0.99),
            "p50_punt_latency_s": _quantile(punt_samples, 0.50),
            "punt_samples": len(punt_samples),
            "drop_fraction": (
                totals.dropped / totals.injected if totals.injected else 0.0
            ),
            "drop_budget": cfg.drop_budget,
            "install_convergence_s": convergence,
            "degraded_time_s": {
                name: status.degraded_time_s
                for name, status in supervisor.status.items()
            },
        },
        "supervisor": supervisor.telemetry(),
        "wallclock": {
            "elapsed_s": wall_s,
            "pps": (totals.injected + probe_packets) / wall_s
            if wall_s
            else 0.0,
        },
    }

    if cfg.upgrade:
        report["upgrade"] = _upgrade_legs(cfg, fabric, supervisor, rng)
    fabric.close()
    return report


def _upgrade_legs(cfg, fabric, supervisor, rng) -> dict:
    """Rolling upgrade + injected-abort legs (acceptance criteria)."""
    # A replay trace over admitted subscribers, grouped by home leaf.
    trace: dict[str, list] = {}
    for ce, user in sorted(fabric.controller.admitted):
        leaf = fabric.leaf_of(ce, user)
        sub = _Subscriber(ce, user, 0, 0)
        trace.setdefault(leaf.name, []).append(
            _flow_packet(sub, fabric.fib, rng)
        )

    before = _replay_signature(fabric, trace)
    completed = supervisor.rolling_upgrade()
    after = _replay_signature(fabric, trace)
    divergence = sum(1 for a, b in zip(before, after) if a != b)

    pre_abort_epoch = supervisor.epoch
    abort_on = fabric.leaves[len(fabric.leaves) // 2].name
    aborted = supervisor.rolling_upgrade(fail_refuse_on=abort_on)
    after_abort = _replay_signature(fabric, trace)
    abort_divergence = sum(
        1 for a, b in zip(before, after_abort) if a != b
    )
    leaf_epochs = {
        name: status.epoch for name, status in supervisor.status.items()
    }
    return {
        "rolling": {
            "completed": completed.completed,
            "epoch": completed.epoch,
            "upgraded": completed.upgraded,
            "verdict_divergence": divergence,
            "replayed_packets": len(before),
        },
        "aborted": {
            "completed": aborted.completed,
            "aborted_at": aborted.aborted_at,
            "abort_reason": aborted.abort_reason,
            "rolled_back": aborted.rolled_back,
            "epoch": supervisor.epoch,
            "all_on_old_epoch": all(
                e == pre_abort_epoch for e in leaf_epochs.values()
            ),
            "leaf_epochs": leaf_epochs,
            "verdict_divergence": abort_divergence,
        },
        "deadlocks": supervisor.deadlocks,
    }
