"""Tests for the layered reference parser (parser templates, Section 3.1)."""

from repro.packet import (
    PacketBuilder,
    PROTO_ARP,
    PROTO_ETH,
    PROTO_ICMP,
    PROTO_IPV4,
    PROTO_TCP,
    PROTO_UDP,
    PROTO_VLAN,
)
from repro.packet.packet import Packet
from repro.packet.parser import parse, parse_l2, parse_l3


def tcp_pkt(**kwargs):
    return PacketBuilder().eth().ipv4(**kwargs).tcp(dst_port=80).build()


class TestCombinedParse:
    def test_tcp(self):
        view = parse(tcp_pkt())
        assert view.has(PROTO_ETH) and view.has(PROTO_IPV4) and view.has(PROTO_TCP)
        assert view.l3 == 14 and view.l4 == 34

    def test_udp(self):
        view = parse(PacketBuilder().eth().ipv4().udp().build())
        assert view.has(PROTO_UDP) and not view.has(PROTO_TCP)

    def test_icmp(self):
        view = parse(PacketBuilder().eth().ipv4().icmp().build())
        assert view.has(PROTO_ICMP)

    def test_vlan_shifts_offsets(self):
        view = parse(PacketBuilder().eth().vlan(vid=7).ipv4().tcp().build())
        assert view.has(PROTO_VLAN)
        assert view.l3 == 18 and view.l4 == 38

    def test_double_vlan(self):
        view = parse(PacketBuilder().eth().vlan(vid=1).vlan(vid=2).ipv4().tcp().build())
        assert view.has(PROTO_VLAN) and view.has(PROTO_IPV4)
        assert view.l3 == 22

    def test_arp(self):
        view = parse(PacketBuilder().eth().arp(op=1, spa="10.0.0.1").build())
        assert view.has(PROTO_ARP) and not view.has(PROTO_IPV4)
        assert view.l4 == -1

    def test_unknown_ethertype(self):
        view = parse(PacketBuilder().eth(ethertype=0x88B5).build())
        assert view.has(PROTO_ETH)
        assert not view.has(PROTO_IPV4)
        assert view.l3 == -1

    def test_ip_fragment_has_no_l4(self):
        pkt = tcp_pkt()
        # Set a nonzero fragment offset in the IPv4 header.
        pkt.data[20] = 0x00
        pkt.data[21] = 0x10
        view = parse(pkt)
        assert view.has(PROTO_IPV4) and not view.has(PROTO_TCP)
        assert view.l4 == -1

    def test_ipv4_options_shift_l4(self):
        # Build a 24-byte IPv4 header by hand.
        from repro.packet import headers as hdr

        ip = hdr.IPv4(src=1, dst=2, proto=hdr.IP_PROTO_TCP, header_len=24,
                      total_length=24 + 20)
        raw = hdr.Ethernet(ethertype=hdr.ETH_TYPE_IPV4).pack() + ip.pack() + b"\x00" * 4
        raw += hdr.TCP(dst_port=80).pack()
        view = parse(Packet(raw))
        assert view.has(PROTO_TCP)
        assert view.l4 == 14 + 24


class TestTruncation:
    def test_runt_frame(self):
        view = parse(Packet(b"\x00" * 6))
        assert view.proto == 0

    def test_truncated_ip(self):
        pkt = tcp_pkt()
        view = parse(Packet(bytes(pkt.data[:20]), in_port=1))
        assert view.has(PROTO_ETH) and not view.has(PROTO_IPV4)

    def test_truncated_tcp(self):
        pkt = tcp_pkt()
        view = parse(Packet(bytes(pkt.data[:40]), in_port=1))
        assert view.has(PROTO_IPV4) and not view.has(PROTO_TCP)


class TestLayeredParsers:
    def test_l2_stops_early(self):
        view = parse_l2(tcp_pkt())
        assert view.has(PROTO_ETH)
        assert not view.has(PROTO_IPV4)
        assert view.parsed_layers == 2
        # The l3 offset is recorded so the L3 parser can compose.
        assert view.l3 == 14

    def test_l3_composes_l2(self):
        view = parse_l3(tcp_pkt())
        assert view.has(PROTO_IPV4)
        assert not view.has(PROTO_TCP)
        assert view.parsed_layers == 3

    def test_full_parse_composes_all(self):
        view = parse(tcp_pkt())
        assert view.parsed_layers == 4
