"""Tests for megaflow generation — including the exact Fig. 3 anomaly."""

from hypothesis import given, settings

import strategies as sts

from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.ovs.flowkey import extract_key
from repro.ovs.megaflow import (
    MegaflowCache,
    WildcardMode,
    build_megaflow,
    wildcards_from_trace,
)
from repro.packet import PacketBuilder
from repro.packet.parser import parse


def port_pkt(dport):
    return PacketBuilder(in_port=1).eth().ipv4().tcp(dst_port=dport).build()


def fig3_pipeline():
    """One exact rule the trace packets all miss, plus a catch-all."""
    t = FlowTable(0)
    t.add(FlowEntry(Match(tcp_dst=255), priority=10, actions=[]))
    t.add(FlowEntry(Match(), priority=0, actions=[Output(3)]))
    return Pipeline([t])


def replay(pipeline, ports, mode):
    """Replay a port sequence, building megaflows like the OVS slow path."""
    cache = MegaflowCache()
    for port in ports:
        pkt = port_pkt(port)
        view = parse(pkt)
        key = extract_key(view)
        entry, _probed = cache.lookup(key)
        if entry is not None:
            continue  # covered by an earlier megaflow
        verdict = pipeline.process(pkt.copy(), trace=True)
        cache.insert(build_megaflow(verdict, key, mode))
    return cache


SEQ_1 = [190, 189, 187, 183, 175, 159, 191]
SEQ_2 = [191, 190, 189, 187, 183, 175, 159]


class TestFig3:
    def test_seq1_yields_seven_entries(self):
        cache = replay(fig3_pipeline(), SEQ_1, WildcardMode.BIT_TRACKING)
        assert len(cache) == 7

    def test_seq2_yields_one_entry(self):
        cache = replay(fig3_pipeline(), SEQ_2, WildcardMode.BIT_TRACKING)
        assert len(cache) == 1

    def test_seq1_entries_pin_one_zero_bit_each(self):
        """Fig. 3's caption: one megaflow per zero bit in positions 2–8."""
        cache = replay(fig3_pipeline(), SEQ_1, WildcardMode.BIT_TRACKING)
        masks = sorted(
            mask for entry in cache.entries() for name, mask in entry.sig
            if name == "tcp_dst"
        )
        # Single-bit masks at bit positions 2..8 (values 1,2,4,...,64).
        assert masks == [1 << i for i in range(7)]

    def test_seq2_entry_matches_at_position_2(self):
        cache = replay(fig3_pipeline(), SEQ_2, WildcardMode.BIT_TRACKING)
        (entry,) = cache.entries()
        sig = dict(entry.sig)
        assert sig["tcp_dst"] == 1 << 6  # position 2 of a 16-bit... 8-bit port space
        # The masked key requires a zero at that position.
        assert entry.masked_key[list(dict(entry.sig)).index("tcp_dst")] == 0

    def test_field_mode_is_order_insensitive(self):
        a = replay(fig3_pipeline(), SEQ_1, WildcardMode.FIELD)
        b = replay(fig3_pipeline(), SEQ_2, WildcardMode.FIELD)
        assert len(a) == 7 and len(b) == 7  # one exact entry per port


class TestWildcardComputation:
    def test_matched_entry_unwildcards_all_bits(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        p = Pipeline([t])
        pkt = port_pkt(80)
        verdict = p.process(pkt.copy(), trace=True)
        key = extract_key(parse(pkt))
        sig = dict(wildcards_from_trace(verdict, key, WildcardMode.BIT_TRACKING))
        assert sig["tcp_dst"] == 0xFFFF

    def test_prereq_fields_included(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        p = Pipeline([t])
        pkt = port_pkt(80)
        verdict = p.process(pkt.copy(), trace=True)
        sig = dict(wildcards_from_trace(verdict, extract_key(parse(pkt))))
        assert "eth_type" in sig and "ip_proto" in sig

    def test_absent_header_proof(self):
        # A UDP packet misses a TCP rule: the proof is the protocol itself.
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1, actions=[Output(1)]))
        t.add(FlowEntry(Match(), priority=0, actions=[Output(2)]))
        p = Pipeline([t])
        pkt = PacketBuilder().eth().ipv4().udp().build()
        verdict = p.process(pkt.copy(), trace=True)
        sig = dict(
            wildcards_from_trace(
                verdict, extract_key(parse(pkt)), WildcardMode.BIT_TRACKING
            )
        )
        assert sig.get("ip_proto") == 0xFF
        assert "tcp_dst" not in sig


class TestMegaflowConsistency:
    """Megaflow caching must never change a packet's fate."""

    @settings(max_examples=40, deadline=None)
    @given(sts.pipelines(), sts.packets(), sts.packets())
    def test_cached_decision_matches_slow_path(self, pipeline, pkt_a, pkt_b):
        cache = MegaflowCache()
        for pkt in (pkt_a, pkt_b):
            view = parse(pkt)
            key = extract_key(view)
            entry, _ = cache.lookup(key)
            expected = pipeline.process(pkt.copy()).summary()
            if entry is None:
                verdict = pipeline.process(pkt.copy(), trace=True)
                if verdict.to_controller:
                    continue  # OVS does not cache controller punts
                cache.insert(build_megaflow(verdict, key))
                continue
            # Replay the cached actions on a fresh copy of the packet.
            from repro.openflow.pipeline import Verdict

            replay_view = parse(pkt.copy())
            v = Verdict()
            for action in entry.actions:
                action.apply(replay_view, v)
                if v.reparse_needed:
                    replay_view = parse(replay_view.pkt)
                    v.reparse_needed = False
            if entry.dropped:
                v.dropped = True
            assert v.summary() == expected


class TestCacheMechanics:
    def make_entry(self, port):
        pkt = port_pkt(port)
        verdict = fig3_pipeline().process(pkt.copy(), trace=True)
        return build_megaflow(verdict, extract_key(parse(pkt)))

    def test_capacity_eviction(self):
        cache = MegaflowCache(capacity=3)
        for port in (80, 81, 82, 83):
            cache.insert(self.make_entry(port))
        assert len(cache) == 3
        assert cache.evictions == 1

    def test_evicted_entries_marked_dead(self):
        cache = MegaflowCache(capacity=1)
        first = self.make_entry(80)
        cache.insert(first)
        cache.insert(self.make_entry(81))
        assert first.dead

    def test_invalidate_flushes_and_kills(self):
        cache = MegaflowCache()
        entry = self.make_entry(80)
        cache.insert(entry)
        cache.invalidate()
        assert len(cache) == 0
        assert entry.dead
        assert cache.invalidations == 1

    def test_hit_miss_counters(self):
        cache = MegaflowCache()
        pkt = port_pkt(80)
        key = extract_key(parse(pkt))
        assert cache.lookup(key)[0] is None
        cache.insert(self.make_entry(80))
        assert cache.lookup(key)[0] is not None
        assert cache.hits == 1 and cache.misses == 1
