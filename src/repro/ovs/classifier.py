"""Per-table tuple-space-search classifier (the vswitchd lookup engine).

``vswitchd`` is "a fully blown realization of the OpenFlow pipeline" using
tuple space search with *tuple priority sorting* "to cut down on pipeline
stage iterations" (Section 2.2). This classifier implements exactly that:

* entries are grouped into **subtables** by mask signature (the combination
  of ``(field, mask)`` pairs they match on);
* each subtable is a hash from masked key values to its best entry;
* lookup probes subtables in decreasing order of their maximum priority and
  stops early once the best match found outranks everything remaining.

Besides being how OVS actually classifies, this is what makes the Python
slow path tractable for large tables: an LPM table of 10K prefixes has at
most 32 subtables (one per prefix length), not 10K linear probes.

The lookup reports which subtables were probed — their mask signatures are
precisely the wildcards megaflow generation must unwildcard ("all header
fields from all flow entries a packet traverses, those that caused a match
as well as those higher priority ones that did not").
"""

from __future__ import annotations

from typing import Mapping

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable

#: A mask signature: sorted ``(field, mask)`` pairs.
MaskSig = tuple[tuple[str, int], ...]


class Subtable:
    """All entries of one table sharing a mask signature."""

    __slots__ = ("sig", "entries", "positions", "max_priority", "hits")

    def __init__(self, sig: MaskSig):
        self.sig = sig
        # masked key tuple -> best (highest-priority, earliest) entry
        self.entries: dict[tuple, FlowEntry] = {}
        self.positions: dict[tuple, int] = {}
        self.max_priority = 0
        self.hits = 0

    def key_of(self, key: Mapping[str, "int | None"]) -> "tuple | None":
        """Mask the flow key down to this subtable's fields.

        Returns None when a required header is absent (the subtable cannot
        match the packet at all).
        """
        out = []
        for name, mask in self.sig:
            value = key.get(name)
            if value is None:
                return None
            out.append(value & mask)
        return tuple(out)

    def add(self, entry: FlowEntry, position: int) -> None:
        """Insert an entry at its table ``position`` (ties: earlier wins).

        Entries within a table are priority-descending, so the first entry
        seen for a masked key is automatically the winner.
        """
        masked = tuple(entry.match.value_of(name) for name, _ in self.sig)
        if masked not in self.entries:
            self.entries[masked] = entry
            self.positions[masked] = position
        self.max_priority = max(self.max_priority, entry.priority)

    def __len__(self) -> int:
        return len(self.entries)


class TssClassifier:
    """Tuple space search over one flow table, rebuilt when the table changes."""

    def __init__(self, table: FlowTable):
        self.table = table
        self._version = -1
        self._subtables: list[Subtable] = []
        self._rebuild()

    def _rebuild(self) -> None:
        by_sig: dict[MaskSig, Subtable] = {}
        # Table position resolves priority ties exactly like the linear
        # interpreter's stable scan does.
        self._order: dict[int, int] = {}
        for position, entry in enumerate(self.table):
            self._order[entry.entry_id] = position
            sig: MaskSig = tuple(
                (name, mask) for name, (_value, mask) in entry.match.items()
            )
            sub = by_sig.get(sig)
            if sub is None:
                sub = by_sig[sig] = Subtable(sig)
            sub.add(entry, position)
        # Tuple priority sorting: probe high-priority subtables first.
        self._subtables = sorted(by_sig.values(), key=lambda s: -s.max_priority)
        self._version = self.table.version

    def refresh(self) -> None:
        if self._version != self.table.version:
            self._rebuild()

    @property
    def subtables(self) -> list[Subtable]:
        self.refresh()
        return self._subtables

    def lookup(
        self, key: Mapping[str, "int | None"]
    ) -> tuple["FlowEntry | None", list[Subtable]]:
        """Best-match entry plus the subtables probed along the way."""
        self.refresh()
        best: FlowEntry | None = None
        best_pos = 1 << 60
        probed: list[Subtable] = []
        for sub in self._subtables:
            # Tuple priority sorting: stop once nothing better remains.
            # Equal-priority subtables must still be probed — the linear
            # interpreter resolves priority ties by table order, and a
            # tied entry in a later subtable may precede the current best.
            if best is not None and best.priority > sub.max_priority:
                break
            probed.append(sub)
            masked = sub.key_of(key)
            if masked is None:
                continue
            entry = sub.entries.get(masked)
            if entry is None:
                continue
            position = sub.positions[masked]
            if best is None or entry.priority > best.priority or (
                entry.priority == best.priority and position < best_pos
            ):
                # key_of already guarantees header presence, so the dict
                # hit is a true match.
                best = entry
                best_pos = position
                sub.hits += 1
        return best, probed
