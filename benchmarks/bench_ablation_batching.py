"""Ablation: IO burst size (the DPDK batching the substrate relies on).

Section 4.2 credits the DPDK substrate's "batch processing" (and OVS its
"extensive batching"). This bench sweeps the burst size around the
DPDK-typical 32: per-burst framework costs (PMD poll, doorbells) amortize
across the burst, so tiny bursts crater throughput while growth beyond ~32
shows diminishing returns — the classic throughput/latency knob.
"""

from figshared import publish, render_table
from repro.core import ESwitch
from repro.traffic import measure
from repro.usecases import l2

BATCH_AXIS = (1, 4, 8, 32, 128, 256)


def test_ablation_batching(benchmark):
    _p, macs = l2.build(100)
    flows = l2.traffic(macs, 200)

    rows = []
    rates = {}
    for batch in BATCH_AXIS:
        m = measure(
            ESwitch.from_pipeline(l2.build(100)[0]),
            flows,
            n_packets=6_000,
            warmup=1_000,
            batch_size=batch,
        )
        rates[batch] = m.pps
        rows.append((batch, f"{m.mpps:.2f}", f"{m.cycles_per_packet:.0f}"))
    publish(
        "ablation_batching",
        render_table(
            "Ablation: IO burst size vs throughput (calibration burst = 32)",
            ("burst", "Mpps", "cycles/pkt"),
            rows,
        ),
    )

    # Monotone: bigger bursts never hurt throughput.
    ordered = [rates[b] for b in BATCH_AXIS]
    assert all(a <= b * 1.001 for a, b in zip(ordered, ordered[1:]))
    # Unbatched IO is crippling (the reason every fast datapath bursts).
    assert rates[1] < rates[32] * 0.45
    # Diminishing returns past the calibration burst.
    assert rates[256] < rates[32] * 1.15

    sw = ESwitch.from_pipeline(l2.build(100)[0])
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 200].copy()))
