"""Corpus curation: pick seeds that pin every template rung and
degradation state, verify them against the full backend matrix, and
write them to ``tests/fuzz_corpus/``.

Run as ``python -m repro.fuzz.curate [corpus_dir]``. Curation is
deterministic — it scans seeds upward from zero and takes the first
scenario satisfying each slot's requirement — so re-running it after a
generator change rebuilds an equivalent corpus rather than a drifted
one. Scenarios that encode *fixed bugs* (``regression-*.json``) are not
rebuilt here: they were minimized against the pre-fix tree and are
pinned by hand, with provenance in their ``note`` field.
"""

from __future__ import annotations

import sys

from repro.core.analysis import TemplateKind
from repro.core.eswitch import CompileConfig, ESwitch
from repro.fuzz.diff import run_scenario
from repro.fuzz.gen import RUNGS, GenerationError, generate, generate_churn
from repro.fuzz.scenario import Scenario

_KIND_OF = {
    "direct": TemplateKind.DIRECT,
    "hash": TemplateKind.HASH,
    "lpm": TemplateKind.LPM,
    "range": TemplateKind.RANGE,
    "linked_list": TemplateKind.LINKED_LIST,
}


def _compiled_kinds(scenario: Scenario) -> set:
    switch = ESwitch(
        scenario.build_pipeline(),
        config=CompileConfig(enable_range=scenario.enable_range),
    )
    switch.warm()
    return {c.kind for c in switch.datapath.trampoline.values()}


def _rung_hit(scenario: Scenario, rung: str) -> bool:
    kinds = _compiled_kinds(scenario)
    if rung == "decompose":
        # Decomposition compiles *into* dispatch+leaf tables; success
        # shows up as extra compiled tables, all non-linked-list.
        n_logical = len(scenario.build_pipeline().tables)
        switch = ESwitch(
            scenario.build_pipeline(),
            config=CompileConfig(enable_range=scenario.enable_range),
        )
        switch.warm()
        return len(switch.datapath.trampoline) > n_logical
    return _KIND_OF[rung] in kinds


def _find(requirement, *, max_seed: int = 2000, **gen_kwargs) -> Scenario:
    """First seed whose clean-running scenario satisfies ``requirement``."""
    for seed in range(max_seed):
        try:
            scenario = generate(seed, **gen_kwargs)
        except GenerationError:
            continue
        try:
            if not requirement(scenario):
                continue
        except Exception:
            continue
        if not run_scenario(scenario):
            return scenario
    raise SystemExit(f"no clean seed < {max_seed} satisfies {requirement}")


def curate(corpus_dir: str) -> list[str]:
    import os

    os.makedirs(corpus_dir, exist_ok=True)
    written = []

    def save(name: str, scenario: Scenario, note: str) -> None:
        scenario.name = name
        scenario.note = note
        path = os.path.join(corpus_dir, f"{name}.json")
        scenario.save(path)
        written.append(path)
        print(f"  {name}: seed {scenario.seed}, {scenario.total_packets()} pkts")

    quiet = dict(
        allow_quarantine=False, allow_degrade=False, allow_tight_meter=False
    )
    for rung in RUNGS:
        save(
            f"rung-{rung}",
            _find(lambda s, r=rung: _rung_hit(s, r),
                  force_rungs=(rung,), max_tables=2, **quiet),
            f"every table targets the {rung} template rung",
        )

    save(
        "state-degrade-fuse",
        _find(lambda s: s.degrade_fuse, allow_quarantine=False),
        "fusion forced to fail: fused backend runs on the trampoline",
    )
    save(
        "state-quarantine",
        _find(lambda s: s.quarantine, allow_degrade=False),
        "quarantined tables compile to the universal linked list",
    )
    save(
        "traffic-flow-mod-churn",
        _find(
            lambda s: sum(1 for e in s.events if "mods" in e) >= 2,
            allow_quarantine=False, allow_degrade=False,
        ),
        "mid-stream flow-mod batches between bursts, rejections included",
    )
    save(
        "traffic-tight-meter",
        _find(lambda s: s.tight_meter, allow_quarantine=False,
              allow_degrade=False),
        "meters tight enough to fire (sharded@4 excluded by design)",
    )
    save(
        "traffic-malformed",
        _find(
            lambda s: any(
                len(bytes.fromhex(p["data"])) < 34
                for e in s.events for p in e.get("burst", ())
            ),
            **quiet,
        ),
        "burst includes truncated/garbage frames",
    )
    for seed in range(64):
        scenario = generate_churn(seed)
        if not run_scenario(scenario):
            save(
                "traffic-churn-expiry",
                scenario,
                "churn wall: a strict-delete storm crosses the tombstone "
                "compaction threshold, expiry-clock ticks drive every "
                "backend's ExpiryManager (idle, hard, and refresh paths), "
                "and no-op re-deletes of expired rules bump nothing",
            )
            break
    else:
        raise SystemExit("no clean churn seed < 64")
    return written


if __name__ == "__main__":
    corpus = sys.argv[1] if len(sys.argv) > 1 else "tests/fuzz_corpus"
    files = curate(corpus)
    print(f"wrote {len(files)} scenarios to {corpus}")
