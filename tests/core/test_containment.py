"""Compile-failure containment (ISSUE 5 tentpole).

Template selection or codegen raising must never crash the control path
or the datapath: the offending table is quarantined onto the linked-list
universal template, reported through health(), and healed by the next
clean rebuild. Whole-pipeline fusion failures degrade to the trampoline.
The per-batch compile budget defers over-budget rebuilds to the
side-by-side path without ever serving a stale lookup.
"""

import pickle

import repro.core.eswitch as eswitch_mod
import repro.core.fuse as fuse_mod
from repro.core import ESwitch
from repro.core.analysis import CompileConfig, TemplateKind
from repro.openflow.actions import Output
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.pipeline import Pipeline
from repro.parallel import ShardedESwitch
from repro.usecases import l2


def add_mod(table_id=0, priority=9, port=7, **match):
    return FlowMod(FlowModCommand.ADD, table_id, Match(**match),
                   priority=priority,
                   instructions=(ApplyActions([Output(port)]),))


def reference_summaries(pipeline_blob, pkts):
    ref = pickle.loads(pipeline_blob)
    return [ref.process(p.copy()).summary() for p in pkts]


class TestQuarantine:
    def test_select_template_failure_pins_linked_list(self, monkeypatch):
        pipeline, macs = l2.build(16)
        blob = pickle.dumps(pipeline)

        def boom(entries, config):
            raise RuntimeError("synthetic template-selection fault")

        monkeypatch.setattr(eswitch_mod, "select_template", boom)
        sw = ESwitch(pipeline)  # must not raise: containment, not crash

        health = sw.health()
        assert health.degraded
        assert health.compile_failures == len(sw.pipeline.tables)
        assert dict(health.quarantined).keys() == {
            t.table_id for t in sw.pipeline.tables
        }
        assert all("RuntimeError" in why for _, why in health.quarantined)
        assert set(sw.table_kinds().values()) == {
            TemplateKind.LINKED_LIST.value
        }
        # The quarantined switch still answers correctly — degraded in
        # speed, never in semantics.
        probe = l2.traffic(macs, 24)
        got = [sw.process(p.copy()).summary() for p in probe]
        assert got == reference_summaries(blob, probe)

    def test_codegen_failure_pins_linked_list(self, monkeypatch):
        pipeline, macs = l2.build(16)
        blob = pickle.dumps(pipeline)
        real = eswitch_mod.compile_table

        def flaky(table, config, costs, kind=None):
            if kind is not TemplateKind.LINKED_LIST:
                raise ValueError("synthetic codegen fault")
            return real(table, config, costs, kind=kind)

        monkeypatch.setattr(eswitch_mod, "compile_table", flaky)
        sw = ESwitch(pipeline)
        assert sw.health().degraded
        assert len(sw.quarantined) >= 1
        probe = l2.traffic(macs, 16)
        got = [sw.process(p.copy()).summary() for p in probe]
        assert got == reference_summaries(blob, probe)

    def test_clean_rebuild_heals_the_quarantine(self, monkeypatch):
        pipeline, macs = l2.build(16)

        def boom(entries, config):
            raise RuntimeError("synthetic fault")

        monkeypatch.setattr(eswitch_mod, "select_template", boom)
        sw = ESwitch(pipeline)
        assert 0 in sw.quarantined
        monkeypatch.undo()  # the "bug" is fixed

        # The next update to table 0 sees a template-kind change
        # (linked list -> the real selection) and rebuilds cleanly.
        sw.apply_flow_mod(add_mod(0, eth_dst=0x02_0000_BEEF))
        assert 0 not in sw.quarantined
        health = sw.health()
        assert 0 not in dict(health.quarantined)
        assert sw.table_kinds()[0] == TemplateKind.HASH.value
        # The failure history stays on the books.
        assert health.compile_failures >= 1

    def test_update_time_failure_is_contained_too(self, monkeypatch):
        # A healthy switch whose codegen starts failing *at update time*:
        # the rebuild the update triggers is contained the same way.
        t0 = FlowTable(0)
        t0.add(FlowEntry(Match(in_port=1), priority=5,
                         instructions=(ApplyActions([Output(2)]),)))
        sw = ESwitch(Pipeline([t0]))  # tiny table -> DIRECT, rebuilds on add
        assert not sw.health().degraded
        real = eswitch_mod.compile_table

        def flaky(table, config, costs, kind=None):
            if kind is not TemplateKind.LINKED_LIST:
                raise ValueError("synthetic codegen fault at update time")
            return real(table, config, costs, kind=kind)

        monkeypatch.setattr(eswitch_mod, "compile_table", flaky)
        # submit path: the batch is *accepted* (degrade, don't refuse) and
        # the failing table lands in quarantine on the linked-list rung.
        reply = sw.submit_flow_mods([add_mod(0, port=8, in_port=3)])
        assert reply.accepted
        assert 0 in sw.quarantined
        assert sw.table_kinds()[0] == TemplateKind.LINKED_LIST.value
        monkeypatch.undo()
        from repro.packet import PacketBuilder

        verdict = sw.process(PacketBuilder(in_port=3).eth().ipv4().udp()
                             .build())
        assert verdict.output_ports == [8]  # the new rule is live


class TestFuseContainment:
    def test_fuse_failure_degrades_to_trampoline(self, monkeypatch):
        pipeline, macs = l2.build(16)
        blob = pickle.dumps(pipeline)
        sw = ESwitch(pipeline)

        def boom(dp):
            raise RuntimeError("synthetic fusion fault")

        monkeypatch.setattr(fuse_mod, "fuse_datapath", boom)
        assert sw.warm() is False  # no fused driver came up
        health = sw.health()
        assert health.fuse_failures >= 1
        assert "RuntimeError" in health.last_fuse_error
        assert not health.fused_active
        # The trampoline serves the exact same answers.
        probe = l2.traffic(macs, 24)
        got = [sw.process(p.copy()).summary() for p in probe]
        assert got == reference_summaries(blob, probe)

    def test_fusion_recovers_on_next_generation(self, monkeypatch):
        pipeline, _ = l2.build(8)
        sw = ESwitch(pipeline)

        def boom(dp):
            raise RuntimeError("synthetic fusion fault")

        monkeypatch.setattr(fuse_mod, "fuse_datapath", boom)
        assert sw.warm() is False
        monkeypatch.undo()
        sw.apply_flow_mod(add_mod(0, eth_dst=0x02_0000_BEEF))
        assert sw.warm() is True
        health = sw.health()
        assert health.fused_active
        assert health.fuse_failures >= 1  # history preserved

    def test_generated_driver_load_failure_is_a_fuse_error(self, monkeypatch):
        # fuse_datapath wraps compile/exec of its generated source: a
        # driver that fails to load raises FuseError (and the datapath
        # then degrades to the trampoline), never a bare SyntaxError.
        pipeline, _ = l2.build(8)
        sw = ESwitch(pipeline)
        real_compile = compile

        def bad_compile(src, name, mode):
            if "fused" in name:
                raise SyntaxError("synthetic codegen corruption")
            return real_compile(src, name, mode)

        monkeypatch.setattr(fuse_mod, "compile", bad_compile, raising=False)
        assert sw.warm() is False
        assert "synthetic codegen corruption" in sw.health().last_fuse_error


class TestCompileBudget:
    def two_direct_tables(self):
        # Two tiny tables, both under direct_threshold -> DIRECT kind,
        # whose every update is an unconditional rebuild — the costliest
        # control-path shape, exactly what the budget bounds.
        t0 = FlowTable(0)
        t0.add(FlowEntry(Match(in_port=1), priority=5,
                         instructions=(ApplyActions([Output(2)]),)))
        t0.add(FlowEntry(Match(), priority=0,
                         instructions=(ApplyActions([Output(3)]),)))
        t1 = FlowTable(5)
        t1.add(FlowEntry(Match(in_port=2), priority=5,
                         instructions=(ApplyActions([Output(4)]),)))
        t1.add(FlowEntry(Match(), priority=0,
                         instructions=(ApplyActions([Output(5)]),)))
        return Pipeline([t0, t1])

    def test_over_budget_rebuilds_defer_not_reject(self):
        sw = ESwitch(self.two_direct_tables(),
                     config=CompileConfig(compile_budget=1))
        assert sw.table_kinds() == {0: "direct", 5: "direct"}
        reply = sw.submit_flow_mods([
            add_mod(0, port=8, in_port=3),
            add_mod(5, port=9, in_port=4),
        ])
        assert reply.accepted  # the budget defers, it never refuses
        assert sw.budget_deferrals >= 1
        assert sw._dirty_groups  # the deferred rebuild is queued

    def test_deferred_rebuild_is_flushed_before_any_lookup(self):
        from repro.packet import PacketBuilder

        sw = ESwitch(self.two_direct_tables(),
                     config=CompileConfig(compile_budget=1))
        sw.submit_flow_mods([
            add_mod(0, port=8, in_port=3),
            add_mod(5, port=9, in_port=4),
        ])
        assert sw.budget_deferrals >= 1
        # The very next packet must see the new rule: the pre-packet
        # flush ran before the lookup, so deferral is invisible in the
        # answers.
        verdict = sw.process(PacketBuilder(in_port=3).eth().ipv4().udp()
                             .build())
        assert verdict.output_ports == [8]
        assert not sw._dirty_groups
        assert sw.health().budget_deferrals >= 1

    def test_no_budget_means_no_deferrals(self):
        sw = ESwitch(self.two_direct_tables(),
                     config=CompileConfig(compile_budget=None))
        sw.submit_flow_mods([
            add_mod(0, port=8, in_port=3),
            add_mod(5, port=9, in_port=4),
        ])
        assert sw.budget_deferrals == 0
        assert not sw._dirty_groups

    def test_budget_exempts_new_tables(self):
        # A batch minting a table its goto needs cannot defer the new
        # table's compile — goto resolution needs it installed now.
        sw = ESwitch(self.two_direct_tables(),
                     config=CompileConfig(compile_budget=1))
        reply = sw.submit_flow_mods(
            [add_mod(9, port=2, in_port=6) for _ in range(1)]
            + [add_mod(10, port=3, in_port=7)]
        )
        assert reply.accepted
        assert sw.table_kinds()[9] == "direct"
        assert sw.table_kinds()[10] == "direct"


class TestShardedContainment:
    def test_quarantined_compile_is_consistent_across_shards(self, monkeypatch):
        # Thread workers share the patched module: every replica (and the
        # shadow) quarantines the same tables the same way, the engine
        # reports it through health(), and the answers stay correct.
        pipeline, macs = l2.build(16)
        blob = pickle.dumps(pipeline)

        def boom(entries, config):
            raise RuntimeError("synthetic fault")

        monkeypatch.setattr(eswitch_mod, "select_template", boom)
        with ShardedESwitch(pipeline, workers=2, backend="thread") as eng:
            health = eng.health()
            assert health.degraded
            assert health.switch_health is not None
            assert health.switch_health.quarantined
            assert health.as_dict()["switch"]["quarantined"]
            probe = l2.traffic(macs, 24)
            got = [v.summary() for v in
                   eng.process_burst([p.copy() for p in probe])]
            assert got == reference_summaries(blob, probe)

    def test_engine_health_carries_worker_error_counter(self):
        pipeline, _ = l2.build(8)
        with ShardedESwitch(pipeline, workers=2, backend="thread") as eng:
            health = eng.health()
            assert health.worker_errors == 0
            assert not health.degraded
            d = health.as_dict()
            assert d["worker_errors"] == 0
            assert d["switch"]["quarantined"] == {}
