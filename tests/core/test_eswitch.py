"""Tests for the ESwitch facade: compilation, dispatch, parser layers."""

import pytest
from hypothesis import given, settings

import strategies as sts

from repro.core import CompileConfig, ESwitch
from repro.core.datapath import required_layer
from repro.openflow.actions import DecTtl, Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline, PipelineError
from repro.packet import PacketBuilder
from repro.usecases import firewall, gateway, l2, l3, loadbalancer


class TestCompilation:
    def test_l2_compiles_to_hash(self):
        """Section 4.1: 'the L2 pipeline compiles into the hash table
        template, effectively reducing into a conventional Ethernet
        software switch'."""
        p, _macs = l2.build(100)
        assert ESwitch.from_pipeline(p).table_kinds() == {0: "hash"}

    def test_l3_compiles_to_lpm(self):
        """'the L3 pipeline is compiled into the LPM template yielding a
        datapath identical to that of an IP softrouter'."""
        p, _fib = l3.build(100)
        assert ESwitch.from_pipeline(p).table_kinds() == {0: "lpm"}

    def test_lb_single_table_decomposed(self):
        sw = ESwitch.from_pipeline(loadbalancer.build_single_table(10))
        kinds = sw.table_kinds()
        assert kinds[0].startswith("decomposed[")
        assert sw.compiled_table_count > 1

    def test_decomposition_can_be_disabled(self):
        sw = ESwitch.from_pipeline(
            loadbalancer.build_single_table(10), config=CompileConfig(decompose=False)
        )
        assert sw.table_kinds() == {0: "linked_list"}

    def test_gateway_template_mix(self):
        """Section 4.1: 'the hash template for each table except for Table
        110 that is mapped to the LPM store'."""
        p, _fib = gateway.build(n_ce=10, users_per_ce=20, n_prefixes=500)
        kinds = ESwitch.from_pipeline(p).table_kinds()
        assert kinds[gateway.ROUTING_TABLE] == "lpm"
        assert kinds[gateway.REVERSE_TABLE] == "hash"
        for ce in range(10):
            assert kinds[gateway.CE_TABLE_BASE + ce] == "hash"

    def test_invalid_pipeline_rejected(self):
        from repro.openflow.instructions import GotoTable

        t = FlowTable(0)
        t.add(FlowEntry(Match(), priority=1, instructions=(GotoTable(42),)))
        with pytest.raises(PipelineError):
            ESwitch.from_pipeline(Pipeline([t]))


class TestParserSpecialization:
    def test_pure_l2_skips_upper_layers(self):
        p, _macs = l2.build(10)
        sw = ESwitch.from_pipeline(p)
        assert sw.datapath.parser_layer == 2

    def test_l3_pipeline_parses_to_l3(self):
        p, _fib = l3.build(10)
        assert ESwitch.from_pipeline(p).datapath.parser_layer == 3

    def test_l4_matches_force_full_parse(self):
        assert (
            ESwitch.from_pipeline(firewall.build_single_stage()).datapath.parser_layer
            == 4
        )

    def test_actions_count_toward_parser_depth(self):
        t = FlowTable(0)
        t.add(
            FlowEntry(
                Match(eth_dst=1),
                priority=1,
                actions=[SetField("tcp_dst", 8080), Output(1)],
            )
        )
        assert required_layer(Pipeline([t])) == 4

    def test_dec_ttl_needs_l3(self):
        t = FlowTable(0)
        t.add(FlowEntry(Match(eth_dst=1), priority=1, actions=[DecTtl(), Output(1)]))
        assert required_layer(Pipeline([t])) == 3

    def test_l2_switch_still_forwards_ip_traffic(self):
        p, macs = l2.build(5)
        sw = ESwitch.from_pipeline(p)
        pkt = PacketBuilder().eth(dst=macs[0]).ipv4().tcp().build()
        assert sw.process(pkt).forwarded


class TestProcessing:
    @settings(max_examples=60, deadline=None)
    @given(sts.pipelines(), sts.packets())
    def test_differential_vs_interpreter(self, pipeline, pkt):
        sw = ESwitch.from_pipeline(pipeline)
        assert sw.process(pkt.copy()).summary() == pipeline.process(pkt.copy()).summary()

    @settings(max_examples=30, deadline=None)
    @given(sts.pipelines(), sts.packets())
    def test_differential_without_decomposition(self, pipeline, pkt):
        sw = ESwitch.from_pipeline(pipeline, config=CompileConfig(decompose=False))
        assert sw.process(pkt.copy()).summary() == pipeline.process(pkt.copy()).summary()

    def test_counters_recorded(self):
        p = firewall.build_single_stage()
        sw = ESwitch.from_pipeline(p)
        pkt = (PacketBuilder(in_port=firewall.INTERNAL).eth().ipv4().tcp().build())
        sw.process(pkt)
        assert p.table(0).entries[0].counters.packets == 1

    def test_packet_in_handler_called(self):
        from repro.openflow.flow_table import TableMissPolicy

        t = FlowTable(0, miss_policy=TableMissPolicy.CONTROLLER)
        punted = []
        sw = ESwitch.from_pipeline(Pipeline([t]), packet_in_handler=punted.append)
        sw.process(PacketBuilder().eth().build())
        assert len(punted) == 1

    def test_gateway_nat_rewrites_packet(self):
        p, fib = gateway.build(n_ce=1, users_per_ce=1, n_prefixes=100)
        sw = ESwitch.from_pipeline(p)
        pkt = gateway.traffic(fib, 1, n_ce=1, users_per_ce=1)[0].copy()
        verdict = sw.process(pkt)
        if verdict.forwarded:
            src = int.from_bytes(pkt.data[26:30], "big")
            assert src == gateway.public_ip(0, 0)
            # The VLAN tag was popped on the way out.
            assert (pkt.data[12] << 8) | pkt.data[13] != 0x8100
