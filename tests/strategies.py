"""Shared hypothesis strategies and helpers for property-based tests."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.openflow.actions import Controller, Drop, Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable, TableMissPolicy
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.packet.builder import PacketBuilder
from repro.packet.packet import Packet

#: Fields random pipelines draw from, with their widths. Small value
#: domains make rule/packet collisions likely — that's the point.
V6_A = 0x20010DB8000000000000000000000001
V6_B = 0x20010DB8000000000000000000000002

FIELD_DOMAINS: dict[str, list[int]] = {
    "in_port": [1, 2, 3],
    "eth_dst": [0x0200_0000_0001, 0x0200_0000_0002, 0x0200_0000_0003],
    "ipv4_src": [0x0A000001, 0x0A000002, 0xC0A80001],
    "ipv4_dst": [0xC0000201, 0xC0000202, 0x08080808],
    "ipv6_dst": [V6_A, V6_B],
    "ip_proto": [6, 17],
    "tcp_dst": [22, 80, 443],
    "udp_dst": [53, 123],
    "vlan_vid": [100, 200],
}

MASKS = {
    "ipv4_src": [0xFFFFFFFF, 0xFFFFFF00, 0xFFFF0000, 0x80000000],
    "ipv4_dst": [0xFFFFFFFF, 0xFFFFFF00, 0xFFFF0000],
    "ipv6_dst": [(1 << 128) - 1, ((1 << 64) - 1) << 64],  # exact and /64
    "eth_dst": [0xFFFFFFFFFFFF],
}


@st.composite
def matches(draw) -> Match:
    """A random match over a small field/value domain."""
    names = draw(
        st.lists(
            st.sampled_from(sorted(FIELD_DOMAINS)), min_size=0, max_size=3, unique=True
        )
    )
    pairs = {}
    for name in names:
        value = draw(st.sampled_from(FIELD_DOMAINS[name]))
        mask_options = MASKS.get(name)
        if mask_options and draw(st.booleans()):
            mask = draw(st.sampled_from(mask_options))
            pairs[name] = (value, mask)
        else:
            pairs[name] = value
    return Match(**pairs)


@st.composite
def actions(draw, allow_rewrites: bool = True):
    choice = draw(st.integers(0, 3 if allow_rewrites else 2))
    if choice == 0:
        return Output(draw(st.integers(1, 4)))
    if choice == 1:
        return Drop()
    if choice == 2:
        return Controller()
    return SetField("ipv4_dst", draw(st.sampled_from(FIELD_DOMAINS["ipv4_dst"])))


@st.composite
def flow_tables(draw, table_id: int = 0, max_entries: int = 8, goto_ids=()):
    table = FlowTable(
        table_id,
        miss_policy=draw(st.sampled_from(list(TableMissPolicy))),
    )
    n = draw(st.integers(1, max_entries))
    for i in range(n):
        match = draw(matches())
        instrs: list = [ApplyActions([draw(actions())])]
        if goto_ids and draw(st.booleans()):
            instrs.append(GotoTable(draw(st.sampled_from(list(goto_ids)))))
        table.add(
            FlowEntry(match, priority=draw(st.integers(0, 20)), instructions=instrs)
        )
    return table


@st.composite
def pipelines(draw, max_tables: int = 3):
    n = draw(st.integers(1, max_tables))
    tables = []
    for i in range(n):
        goto_targets = range(i + 1, n)
        tables.append(draw(flow_tables(table_id=i, goto_ids=tuple(goto_targets))))
    return Pipeline(tables)


@st.composite
def packets(draw) -> Packet:
    """A random packet whose fields collide with FIELD_DOMAINS values."""
    builder = PacketBuilder(in_port=draw(st.sampled_from(FIELD_DOMAINS["in_port"])))
    builder.eth(
        src=0x0200_0000_0099,
        dst=draw(st.sampled_from(FIELD_DOMAINS["eth_dst"] + [0x0200_0000_00FF])),
    )
    if draw(st.booleans()):
        builder.vlan(vid=draw(st.sampled_from(FIELD_DOMAINS["vlan_vid"] + [300])))
    l3 = draw(st.integers(0, 3))
    if l3 == 0:
        return builder.build()  # L2-only frame
    if l3 == 3:
        builder.ipv6(dst=draw(st.sampled_from(FIELD_DOMAINS["ipv6_dst"] + [V6_A + 99])))
    else:
        builder.ipv4(
            src=draw(st.sampled_from(FIELD_DOMAINS["ipv4_src"] + [0x0A0000FF])),
            dst=draw(st.sampled_from(FIELD_DOMAINS["ipv4_dst"] + [0x01010101])),
        )
    l4 = draw(st.integers(0, 2))
    if l4 == 0:
        builder.tcp(
            src_port=draw(st.integers(1024, 1030)),
            dst_port=draw(st.sampled_from(FIELD_DOMAINS["tcp_dst"] + [9999])),
        )
    elif l4 == 1:
        builder.udp(
            src_port=draw(st.integers(1024, 1030)),
            dst_port=draw(st.sampled_from(FIELD_DOMAINS["udp_dst"] + [9999])),
        )
    return builder.build()


def random_packet(rng: random.Random) -> Packet:
    """Non-hypothesis random packet for plain randomized tests."""
    builder = PacketBuilder(in_port=rng.choice(FIELD_DOMAINS["in_port"]))
    builder.eth(src=0x0200_0000_0099, dst=rng.choice(FIELD_DOMAINS["eth_dst"]))
    if rng.random() < 0.3:
        builder.vlan(vid=rng.choice(FIELD_DOMAINS["vlan_vid"]))
    l3_roll = rng.random()
    if l3_roll < 0.7:
        builder.ipv4(
            src=rng.choice(FIELD_DOMAINS["ipv4_src"]),
            dst=rng.choice(FIELD_DOMAINS["ipv4_dst"]),
        )
    elif l3_roll < 0.9:
        builder.ipv6(dst=rng.choice(FIELD_DOMAINS["ipv6_dst"]))
    else:
        return builder.build()  # L2-only frame
    roll = rng.random()
    if roll < 0.45:
        builder.tcp(dst_port=rng.choice(FIELD_DOMAINS["tcp_dst"]))
    elif roll < 0.9:
        builder.udp(dst_port=rng.choice(FIELD_DOMAINS["udp_dst"]))
    return builder.build()
