"""Round-trip tests for pipeline JSON serialization."""

import random

import pytest
from hypothesis import given, settings

import strategies as sts

from repro.openflow import serialize
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.usecases import firewall, gateway, l3, loadbalancer


def equivalent(a: Pipeline, b: Pipeline, packets) -> bool:
    return all(
        a.process(p.copy()).summary() == b.process(p.copy()).summary()
        for p in packets
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            firewall.build_single_stage,
            firewall.build_multi_stage,
            lambda: loadbalancer.build_single_table(5),
            lambda: l3.build(40)[0],
            lambda: gateway.build(n_ce=2, users_per_ce=2, n_prefixes=30)[0],
        ],
    )
    def test_usecase_pipelines(self, factory):
        original = factory()
        restored = serialize.loads(serialize.dumps(original))
        assert len(restored) == len(original)
        rng = random.Random(1)
        packets = [sts.random_packet(rng) for _ in range(60)]
        assert equivalent(original, restored, packets)

    def test_structural_stability(self):
        """dump(load(dump(p))) == dump(p): the format is a fixpoint."""
        text = serialize.dumps(firewall.build_single_stage())
        assert serialize.dumps(serialize.loads(text)) == text

    @settings(max_examples=40, deadline=None)
    @given(sts.pipelines(max_tables=3), sts.packets())
    def test_random_pipelines(self, pipeline, pkt):
        restored = serialize.loads(serialize.dumps(pipeline))
        assert (restored.process(pkt.copy()).summary()
                == pipeline.process(pkt.copy()).summary())

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "pipeline.json"
        serialize.save(firewall.build_single_stage(), str(path))
        restored = serialize.load(str(path))
        assert len(restored.table(0)) == 3


class TestHumanSpellings:
    def test_addresses_pretty_printed(self):
        text = serialize.dumps(firewall.build_single_stage())
        assert "192.0.2.1" in text

    def test_prefixes_pretty_printed(self):
        p, _fib = l3.build(5)
        text = serialize.dumps(p)
        assert "/" in text

    def test_load_accepts_strings_and_ints(self):
        doc = """
        {"tables": [{"id": 0, "entries": [
          {"priority": 5,
           "match": {"ipv4_dst": "10.0.0.0/8", "eth_dst": "02:00:00:00:00:01",
                     "tcp_dst": 80},
           "apply": [{"output": 1}, "dec_ttl"],
           "goto": 1},
          {"priority": 0, "match": {}, "apply": ["drop"]}
        ]}, {"id": 1, "miss": "controller", "entries": []}]}
        """
        pipeline = serialize.loads(doc)
        entry = pipeline.table(0).entries[0]
        assert entry.match.mask_of("ipv4_dst") == 0xFF000000
        assert entry.goto_table == 1
        assert pipeline.table(1).miss_policy.value == "controller"

    def test_masked_match_object(self):
        doc = ('{"tables": [{"id": 0, "entries": [{"priority": 1, '
               '"match": {"ipv4_src": {"value": 0, "mask": 2147483648}}, '
               '"apply": [{"output": 1}]}]}]}')
        pipeline = serialize.loads(doc)
        assert pipeline.table(0).entries[0].match.mask_of("ipv4_src") == 1 << 31


class TestErrors:
    @pytest.mark.parametrize(
        "doc",
        [
            "not json",
            "{}",
            '{"tables": [{"entries": []}]}',  # missing id
            '{"tables": [{"id": 0, "entries": [{"match": {"bogus": 1}}]}]}',
            '{"tables": [{"id": 0, "entries": [{"match": {}, "apply": ["zap"]}]}]}',
            '{"tables": [{"id": 0, "entries": [{"match": {}, '
            '"apply": [{"set": {"eth_type": 5}}]}]}]}',  # unwritable field
        ],
    )
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises((serialize.SerializationError, ValueError)):
            serialize.loads(doc)

    def test_match_value_spellings(self):
        m = serialize.match_from_obj({"ipv4_dst": "192.0.2.0/24"})
        assert m == Match(ipv4_dst="192.0.2.0/24")


class TestIpv6Serialization:
    def test_v6_match_round_trip(self):
        import ipaddress

        from repro.openflow.flow_entry import FlowEntry
        from repro.openflow.flow_table import FlowTable
        from repro.openflow.actions import Output

        v6 = int(ipaddress.IPv6Address("2001:db8::1"))
        t = FlowTable(0)
        t.add(FlowEntry(Match(ipv6_dst=v6), priority=2, actions=[Output(1)]))
        t.add(FlowEntry(Match(ipv6_dst=(v6, ((1 << 64) - 1) << 64)), priority=1,
                        actions=[Output(2)]))
        text = serialize.dumps(Pipeline([t]))
        restored = serialize.loads(text)
        entries = restored.table(0).entries
        assert entries[0].match.value_of("ipv6_dst") == v6
        assert entries[1].match.mask_of("ipv6_dst") == ((1 << 64) - 1) << 64


class TestGroupSerialization:
    def test_group_pipeline_round_trip(self):
        from repro.openflow.actions import Output
        from repro.openflow.flow_entry import FlowEntry
        from repro.openflow.flow_table import FlowTable
        from repro.openflow.groups import Bucket, Group, GroupAction, GroupType
        from repro.packet import PacketBuilder

        pipeline = Pipeline()
        pipeline.groups.add(Group(7, GroupType.SELECT, [
            Bucket([Output(1)], weight=2), Bucket([Output(2)]),
        ]))
        t = FlowTable(0)
        t.add(FlowEntry(Match(tcp_dst=80), priority=1,
                        actions=[GroupAction(pipeline.groups, 7)]))
        pipeline.add_table(t)

        restored = serialize.loads(serialize.dumps(pipeline))
        assert len(restored.groups) == 1
        assert restored.groups.get(7).buckets[0].weight == 2
        pkt = PacketBuilder().eth().ipv4().tcp(dst_port=80, src_port=999).build()
        assert (restored.process(pkt.copy()).summary()
                == pipeline.process(pkt.copy()).summary())

    def test_group_action_without_groups_section_rejected(self):
        doc = ('{"tables": [{"id": 0, "entries": [{"priority": 1, "match": {}, '
               '"apply": [{"group": 3}]}]}]}')
        # The group table exists (empty) but the reference dangles only at
        # execution time, matching OpenFlow's late-binding semantics; the
        # document itself loads.
        pipeline = serialize.loads(doc)
        from repro.openflow.groups import GroupError
        from repro.packet import PacketBuilder

        with pytest.raises(GroupError):
            pipeline.process(PacketBuilder().eth().build())


class TestMeterAndTimeoutSerialization:
    def test_meter_round_trip(self):
        from repro.openflow.actions import Output
        from repro.openflow.flow_entry import FlowEntry
        from repro.openflow.flow_table import FlowTable
        from repro.openflow.instructions import ApplyActions
        from repro.openflow.meters import MeterInstruction
        from repro.packet import PacketBuilder

        pipeline = Pipeline()
        pipeline.meters.add(3, rate_pps=5.0, burst=2.0)
        t = FlowTable(0)
        t.add(FlowEntry(
            Match(tcp_dst=80), priority=1,
            instructions=(MeterInstruction(pipeline.meters, 3),
                          ApplyActions([Output(1)])),
            idle_timeout=30, hard_timeout=120,
        ))
        pipeline.add_table(t)

        restored = serialize.loads(serialize.dumps(pipeline))
        entry = restored.table(0).entries[0]
        assert entry.idle_timeout == 30 and entry.hard_timeout == 120
        assert restored.meters.get(3).rate_pps == 5.0

        # The restored pipeline rate-limits just like the original.
        pkt = PacketBuilder().eth().ipv4().tcp(dst_port=80).build()
        forwarded = sum(restored.process(pkt.copy()).forwarded for _ in range(5))
        assert forwarded == 2  # the burst

    def test_meter_instruction_without_table_rejected(self):
        doc = ('{"tables": [{"id": 0, "entries": [{"priority": 1, "match": {}, '
               '"meter": 1, "apply": [{"output": 1}]}]}]}')
        # The document declares no meter; the reference dangles at runtime.
        pipeline = serialize.loads(doc)
        from repro.openflow.meters import MeterError
        from repro.packet import PacketBuilder

        with pytest.raises(MeterError):
            pipeline.process(PacketBuilder().eth().build())
