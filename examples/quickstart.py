#!/usr/bin/env python3
"""Quickstart: compile the Fig. 1 firewall and push packets through it.

Builds the paper's running example — a single-table firewall guarding a web
server — compiles it with ESWITCH, prints the generated fast-path code, and
processes a few packets, comparing against the Open vSwitch baseline and
the reference interpreter.

Run:  python examples/quickstart.py
"""

from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.usecases import firewall


def main() -> None:
    pipeline = firewall.build_single_stage()
    print("=== the OpenFlow pipeline (Fig. 1a) ===")
    for table in pipeline:
        print(f"table {table.table_id} ({table.name}):")
        for entry in table:
            print(f"  prio={entry.priority:<3} {entry.match!r} -> {list(entry.instructions)}")

    switch = ESwitch.from_pipeline(firewall.build_single_stage())
    print("\n=== template selection ===")
    print(switch.table_kinds())

    print("\n=== the specialized fast path (generated code) ===")
    for tid, source in switch.compiled_sources().items():
        print(f"--- compiled table {tid} ---")
        print(source)

    ovs = OvsSwitch(firewall.build_single_stage())
    reference = firewall.build_single_stage()

    packets = {
        "HTTP to the server (admit)": PacketBuilder(in_port=firewall.EXTERNAL)
        .eth()
        .ipv4(src="198.51.100.7", dst=firewall.SERVER_IP)
        .tcp(dst_port=80)
        .build(),
        "SSH to the server (drop)": PacketBuilder(in_port=firewall.EXTERNAL)
        .eth()
        .ipv4(src="198.51.100.7", dst=firewall.SERVER_IP)
        .tcp(dst_port=22)
        .build(),
        "server-to-world (forward)": PacketBuilder(in_port=firewall.INTERNAL)
        .eth()
        .ipv4(src=firewall.SERVER_IP, dst="198.51.100.7")
        .tcp(src_port=80)
        .build(),
    }

    print("=== packet verdicts (ESWITCH / OVS / reference interpreter) ===")
    for label, pkt in packets.items():
        v_es = switch.process(pkt.copy())
        v_ovs = ovs.process(pkt.copy())
        v_ref = reference.process(pkt.copy())
        agree = v_es.summary() == v_ovs.summary() == v_ref.summary()
        print(f"{label:32} -> {v_es!r}   (all datapaths agree: {agree})")


if __name__ == "__main__":
    main()
