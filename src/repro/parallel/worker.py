"""The shard worker: one datapath replica, one command channel.

Each worker owns a **private** fused :class:`ESwitch` replica built from
a pickled pipeline snapshot — shared-nothing by construction, whether
the worker is a forked process or (fallback) a thread. The loop serves
the engine's commands:

``("burst", epoch, mode, wires, seq)``
    Run one RSS sub-burst through the replica. ``mode`` is ``"null"``
    (functional, :data:`NULL_METER`) or ``"cycle"`` (the worker's
    persistent per-core :class:`CycleMeter` — private caches, exactly
    the per-core meters :func:`repro.traffic.measure_multicore` models).
    Replies ``("burst", epoch, verdicts, cycles, packets, llc, deltas,
    seq)`` with the meter deltas (``cycles`` is None in null mode) and
    the flow-counter deltas of every logical entry the burst touched
    (see :func:`repro.parallel.wire.counter_deltas` — what makes
    engine-side flow stats exact across worker deaths). The reply
    echoes the worker's *applied* epoch so the engine can prove no
    gathered burst mixed pipeline generations, and the engine's ``seq``
    tag so a double-buffered gather can pair replies with submissions.

    With the **ring transport** (:mod:`repro.parallel.rings`) the same
    burst crosses as a packed binary frame (:mod:`repro.parallel.
    frames`) over a shared-memory ring pair instead — zero pickle, zero
    syscalls — and the pipe carries only control traffic. A frame too
    large for the ring (or unencodable) degrades to the pipe tuple
    above, per message; replies pick their channel the same way.

``("mods", epoch, flow_mods)``
    Apply a flow-mod batch transactionally, then **stand the new
    generation up** (flush deferred rebuilds, re-fuse) before acking —
    the ack is the worker's half of the epoch barrier, so by the time
    the engine releases the next burst every replica is already serving
    the new fused datapath.

``("stats",)``
    Ship the replica's :class:`BurstStats` and its per-entry flow
    counters (addressed by logical table position, see
    :mod:`repro.parallel.wire`). The engine keeps its own fault-proof
    ledgers and uses this only as a cross-check / debug pull.

``("reset_stats",)`` / ``("ping",)`` / ``("stop",)``
    Housekeeping; ``ping`` echoes the applied epoch (the engine's
    deadline-bounded liveness probe).

Any exception is caught and reported as ``("error", message, traceback)``
— the loop keeps serving, the engine decides whether to raise.

Supervision hooks: a worker is spawned with its shard ``index``, a
``start_epoch`` (a respawned replacement is forked from the engine's
shadow snapshot *at the current epoch*, so it never replays history),
and an optional :class:`~repro.parallel.faults.FaultInjector` whose
armed plan fires deterministically before/after each command — a
``kill`` there ends the worker the way a crash would: process workers
``os._exit`` (no cleanup, no reply), thread workers close their channel
and return, and in both cases the engine observes a dead channel.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback

from repro.core.analysis import CompileConfig
from repro.core.eswitch import ESwitch
from repro.openflow.stats import BurstStats
from repro.parallel import frames, rings
from repro.parallel.faults import NO_FAULTS, WorkerKilled
from repro.parallel.wire import (
    EntryIndexCache,
    counter_deltas,
    decode_packets,
    encode_verdicts,
)
from repro.simcpu.recorder import CycleMeter, NULL_METER


def _die(conn) -> None:
    """End this worker the way a crash would (no reply, dead channel)."""
    if isinstance(conn, ThreadChannel):
        conn.close()  # the engine's next recv on its end raises EOFError
        return
    os._exit(13)  # a process worker dies for real: no atexit, no flush


def _wait_for_work(ring_pair, conn):
    """Block until a burst frame or a pipe message is ready.

    Returns ``("frame", bytes)`` or ``("msg", obj)``; raises EOFError
    when the pipe dies (the worker's signal to wind down). The ring is
    always drained first — the engine guarantees it never queues a pipe
    burst behind an outstanding ring burst, so ring-before-pipe keeps
    sub-burst order exact.
    """
    delays = (0.0, 0.0, 0.0001, 0.0005, 0.002)
    i = 0
    while True:
        frame = ring_pair.req.pop()
        if frame is not None:
            ring_pair.req.commit_reads()  # one ack per drained burst
            return ("frame", frame)
        if conn.poll(0):
            return ("msg", conn.recv())
        delay = delays[i] if i < len(delays) else 0.002
        i += 1
        if delay:
            time.sleep(delay)


def _run_burst(switch, meter, cache, shipped, pkts, mode):
    """Execute one sub-burst; returns the reply body (minus epoch/seq)."""
    if mode == "null":
        verdicts = switch.process_burst(pkts, NULL_METER)
        cycles = None
        llc = 0
    else:
        cycles0 = meter.total_cycles
        llc0 = meter.cache.stats.llc_misses
        verdicts = switch.process_burst(pkts, meter)
        cycles = meter.total_cycles - cycles0
        llc = meter.cache.stats.llc_misses - llc0
    return (
        encode_verdicts(verdicts, cache),
        cycles,
        len(pkts),
        llc,
        counter_deltas(verdicts, cache, shipped),
    )


def shard_worker_main(
    conn,
    pipeline_blob: bytes,
    config: CompileConfig,
    costs,
    platform,
    index: int = 0,
    start_epoch: int = 0,
    injector=None,
    generation: int = 0,
    ring_names=None,
) -> None:
    """Entry point of one shard worker (process target or thread body).

    ``ring_names`` selects the ring transport: a ``(req, rep)`` name
    tuple makes a process worker attach the engine's shared-memory pair
    (untracked — the engine owns the segments); a ready
    :class:`~repro.parallel.rings.RingPair` object is used directly
    (thread backend, same address space). ``None`` means pipe-only.
    """
    faults = injector.arm(index, generation) if injector is not None else NO_FAULTS
    ring_pair = None
    owns_mapping = False
    try:
        faults.fire("spawn", "before")
        if ring_names is not None:
            if isinstance(ring_names, rings.RingPair):
                ring_pair = ring_names  # thread backend: shared object
            else:
                # Forked workers share the engine's resource tracker, so
                # un-registering here would strip the engine's own claim
                # (its unlink would then double-unregister); only spawn
                # platforms — separate per-process trackers whose exit
                # cleanup would unlink the engine's live segments —
                # need the untrack workaround.
                ring_pair = rings.attach_pair(
                    ring_names, untrack=not hasattr(os, "fork")
                )
                owns_mapping = True
        pipeline = pickle.loads(pipeline_blob)
        switch = ESwitch(pipeline, config=config, costs=costs)
        switch.warm()  # replica construction includes the fused driver
        cache = EntryIndexCache(switch.pipeline)
        meter = CycleMeter(platform)
        epoch = start_epoch
        # id(entry) -> counters already reported. Seeded with the
        # snapshot's baseline: pre-existing history is the engine
        # ledger's business, only counts earned HERE ship as deltas.
        shipped: dict = {
            id(entry): (entry.counters.packets, entry.counters.bytes)
            for table in switch.pipeline
            for entry in table.entries
            if entry.counters.packets or entry.counters.bytes
        }
        faults.fire("spawn", "after")
        conn.send(("ready", epoch))
    except WorkerKilled:
        _die(conn)
        return
    except Exception as exc:  # pragma: no cover - construction failures
        conn.send(("error", repr(exc), traceback.format_exc()))
        return

    try:
        _serve(conn, ring_pair, faults, switch, meter, cache, shipped, epoch)
    finally:
        if owns_mapping and ring_pair is not None:
            ring_pair.close()


def _send_reply(conn, ring_pair, via_ring, epoch, seq, body) -> None:
    """Ship one burst reply, preferring the channel the request used.

    A reply that will not fit its ring (or will not encode) degrades to
    the pipe tuple — the engine's gather accepts either channel and
    pairs by seq.
    """
    verdict_wires, cycles, packets, llc, deltas = body
    if via_ring:
        try:
            frame = frames.reply_from_wires(
                epoch, seq, cycles, packets, llc, verdict_wires, deltas
            )
            if ring_pair.rep.fits(len(frame)):
                ring_pair.rep.push(frame)
                return
        except (frames.FrameError, rings.RingFull):
            pass  # degrade this one message to the pipe
    conn.send(
        ("burst", epoch, verdict_wires, cycles, packets, llc, deltas, seq)
    )


def _serve(conn, ring_pair, faults, switch, meter, cache, shipped, epoch):
    """The worker's command loop (both transports)."""
    while True:
        frame = None
        try:
            if ring_pair is not None:
                kind, payload = _wait_for_work(ring_pair, conn)
                if kind == "frame":
                    frame = payload
                    msg = None
                else:
                    msg = payload
            else:
                msg = conn.recv()
        except (EOFError, OSError, rings.RingError):
            return
        try:
            if frame is not None:
                faults.fire("burst", "before")
                req, _ = frames.unpack_request(frame)
                if req.epoch != epoch:
                    conn.send((
                        "error",
                        f"epoch desync: burst tagged {req.epoch}, "
                        f"replica at {epoch}",
                        "",
                    ))
                    continue
                body = _run_burst(
                    switch, meter, cache, shipped, req.packets(), req.mode
                )
                faults.fire("burst", "after")
                _send_reply(conn, ring_pair, True, epoch, req.seq, body)
                continue
            cmd = msg[0]
            faults.fire(cmd, "before")
            if cmd == "burst":
                _, burst_epoch, mode, wires, seq = msg
                if burst_epoch != epoch:
                    conn.send((
                        "error",
                        f"epoch desync: burst tagged {burst_epoch}, "
                        f"replica at {epoch}",
                        "",
                    ))
                    continue
                body = _run_burst(
                    switch, meter, cache, shipped, decode_packets(wires), mode
                )
                faults.fire(cmd, "after")
                _send_reply(conn, ring_pair, False, epoch, seq, body)
            elif cmd == "mods":
                _, new_epoch, mods = msg
                cycles = switch.apply_flow_mods(mods)
                # Swap in the new generation *inside* the barrier: the
                # ack promises the replica's fused datapath is current.
                switch.warm()
                epoch = new_epoch
                # Flow-mods can swap entry objects; prune the shipped
                # baselines so a recycled id() can't corrupt deltas.
                live_index, _ = cache.maps()
                shipped = {
                    eid: val for eid, val in shipped.items() if eid in live_index
                }
                faults.fire(cmd, "after")
                conn.send(("mods", epoch, cycles))
            elif cmd == "stats":
                counters = []
                for table in switch.pipeline:
                    for idx, entry in enumerate(table.entries):
                        c = entry.counters
                        if c.packets or c.bytes:
                            counters.append(
                                (table.table_id, idx, c.packets, c.bytes)
                            )
                faults.fire(cmd, "after")
                # Ship a merged copy, not the live ledger: the thread
                # backend passes objects by reference, and the worker
                # keeps mutating its own BurstStats after the send.
                conn.send(
                    ("stats", BurstStats.merged([switch.burst_stats]), counters)
                )
            elif cmd == "reset_stats":
                switch.burst_stats.reset()
                meter.reset()
                shipped = {}
                for table in switch.pipeline:
                    for entry in table.entries:
                        entry.counters.packets = 0
                        entry.counters.bytes = 0
                conn.send(("ok",))
            elif cmd == "ping":
                faults.fire(cmd, "after")
                conn.send(("pong", epoch))
            elif cmd == "stop":
                conn.send(("ok",))
                return
            else:
                conn.send(("error", f"unknown command {cmd!r}", ""))
        except WorkerKilled:
            _die(conn)
            return
        except Exception as exc:
            # A hung worker may wake after the engine reaped its channel;
            # reporting then fails too, and the worker just winds down.
            try:
                conn.send(("error", repr(exc), traceback.format_exc()))
            except (OSError, BrokenPipeError):
                return


_NOTHING = object()


class ThreadChannel:
    """A duplex, Connection-shaped channel over two queues (thread mode).

    Messages cross **by reference** — no pickle round-trip. That is
    safe because the wire dialect is immutable by construction (packet
    and verdict wires are tuples of ``bytes``/ints, acks are tuples),
    the pipeline replica still boots from its own pickled snapshot, and
    the one mutable reply (the ``stats`` pull's :class:`BurstStats`) is
    copied by the worker before sending. Thread workers thus stay
    observably shared-nothing while skipping the serialization tax the
    transport exists to remove. Like ``multiprocessing.Connection`` it
    supports ``poll(timeout)``, which the engine's RPC deadlines bound.
    """

    def __init__(self, inbox, outbox):
        self._inbox = inbox
        self._outbox = outbox
        self._peeked = _NOTHING

    def send(self, obj) -> None:
        self._outbox.put(obj)

    def poll(self, timeout: "float | None" = None) -> bool:
        """True when a message (or EOF) is ready within ``timeout``."""
        import queue

        if self._peeked is not _NOTHING:
            return True
        try:
            self._peeked = (
                self._inbox.get(timeout=timeout)
                if timeout is not None
                else self._inbox.get_nowait()
            )
        except queue.Empty:
            return False
        return True

    def recv(self):
        if self._peeked is not _NOTHING:
            obj, self._peeked = self._peeked, _NOTHING
        else:
            obj = self._inbox.get()
        if obj is None:
            raise EOFError
        return obj

    def close(self) -> None:
        self._outbox.put(None)


def thread_channel_pair() -> tuple[ThreadChannel, ThreadChannel]:
    """(engine side, worker side) of one duplex thread channel."""
    import queue

    a, b = queue.Queue(), queue.Queue()
    return ThreadChannel(a, b), ThreadChannel(b, a)
