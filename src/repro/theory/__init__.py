"""The Appendix: hardness of flow-table decomposition (REGDECOMP)."""

from repro.theory.regdecomp import (
    AbstractTable,
    brute_force_satisfiable,
    evaluate,
    is_regular,
    reduction_table,
    single_regular_equivalent,
)

__all__ = [
    "AbstractTable",
    "brute_force_satisfiable",
    "evaluate",
    "is_regular",
    "reduction_table",
    "single_regular_equivalent",
]
