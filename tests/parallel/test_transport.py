"""The transport contract: zero pickle per burst, parity across wires.

ISSUE 7's acceptance bar, as executable checks:

* with ring transport, a storm of bursts crosses the shard boundary
  with **zero** pickle calls on the datapath (pickle remains only for
  the one-time snapshot at spawn and rare control messages);
* ring and pipe transports are bit-identical in verdicts, counters,
  and modeled cycles — the codec is a re-encoding, not a re-semantics;
* the double-buffered path (``submit_burst``/``collect``) returns
  exactly what the sequential path returns, in order;
* the thread backend's by-reference channel is unobservable: caller
  packets are never mutated, replies never alias worker state.
"""

import pickle

import pytest

from repro.core import ESwitch
from repro.parallel import ShardedESwitch, rings
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter
from repro.usecases import gateway

from test_sharded import add_mod, summarize

needs_shm = pytest.mark.skipif(
    not rings.shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


def scenario():
    pipeline, fib = gateway.build(n_ce=2, users_per_ce=8, n_prefixes=16)
    pkts = gateway.traffic(fib, 96, n_ce=2, users_per_ce=8)
    return pipeline, pkts


def bursts_of(pkts, size=16):
    return [pkts[i:i + size] for i in range(0, len(pkts), size)]


class _PickleTap:
    """Counts every route into pickle the transports can take: the
    stdlib module functions, and ``multiprocessing.reduction.
    ForkingPickler`` — the class ``Connection.send``/``recv`` actually
    ride (its ``dumps``/``loads`` class attributes are looked up at
    call time, so patching the class intercepts every pipe message)."""

    def __init__(self, monkeypatch):
        from multiprocessing import reduction

        self.calls = 0

        def count(fn):
            def wrapped(*a, **k):
                self.calls += 1
                return fn(*a, **k)
            return wrapped

        monkeypatch.setattr(pickle, "dumps", count(pickle.dumps))
        monkeypatch.setattr(pickle, "loads", count(pickle.loads))
        monkeypatch.setattr(
            reduction.ForkingPickler, "dumps",
            count(reduction.ForkingPickler.dumps),
        )
        monkeypatch.setattr(
            reduction.ForkingPickler, "loads",
            staticmethod(count(reduction.ForkingPickler.loads)),
        )


@needs_shm
class TestZeroPickleDatapath:
    def test_burst_storm_never_pickles(self, monkeypatch):
        """Thread backend + ring transport puts both halves of the
        conversation in this process: if either the scatter or the
        gather side touched pickle, the tap would see it."""
        pipeline, pkts = scenario()
        with ShardedESwitch(pipeline, workers=2, backend="thread",
                            transport="ring") as eng:
            assert eng.transport == "ring"
            eng.process_burst([p.copy() for p in pkts[:16]])  # warm lanes
            tap = _PickleTap(monkeypatch)
            for burst in bursts_of(pkts):
                eng.process_burst([p.copy() for p in burst])
            assert tap.calls == 0, (
                f"{tap.calls} pickle call(s) on the per-burst datapath"
            )

    def test_pipe_transport_does_pickle(self, monkeypatch):
        """The tap itself works: the process+pipe wire visibly pickles
        (engine side of every burst), so zero on rings is meaningful."""
        pipeline, pkts = scenario()
        with ShardedESwitch(pipeline, workers=2, backend="process",
                            transport="pipe") as eng:
            eng.process_burst([p.copy() for p in pkts[:16]])
            tap = _PickleTap(monkeypatch)
            eng.process_burst([p.copy() for p in pkts[:16]])
            assert tap.calls > 0

    def test_process_engine_side_never_pickles(self, monkeypatch):
        """Process backend: the engine half of the ring conversation
        (this process) stays pickle-free per burst too."""
        pipeline, pkts = scenario()
        with ShardedESwitch(pipeline, workers=2, backend="process",
                            transport="ring") as eng:
            assert eng.transport == "ring"
            eng.process_burst([p.copy() for p in pkts[:16]])
            tap = _PickleTap(monkeypatch)
            for burst in bursts_of(pkts):
                eng.process_burst([p.copy() for p in burst])
            assert tap.calls == 0


class TestTransportParity:
    @needs_shm
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_ring_equals_pipe(self, backend):
        pipeline, pkts = scenario()
        results = {}
        for transport in ("ring", "pipe"):
            eng = ShardedESwitch(
                pickle.loads(pickle.dumps(pipeline)), workers=2,
                backend=backend, transport=transport,
            )
            try:
                assert eng.transport == transport
                meter = CycleMeter(XEON_E5_2620)
                sums = []
                for burst in bursts_of(pkts):
                    verdicts = eng.process_burst(
                        [p.copy() for p in burst], meter
                    )
                    sums.append(summarize(verdicts, eng.pipeline))
                add_mod(eng)
                for burst in bursts_of(pkts, 24):
                    verdicts = eng.process_burst(
                        [p.copy() for p in burst], meter
                    )
                    sums.append(summarize(verdicts, eng.pipeline))
                eng.sync_flow_stats()
                counts = {
                    (t.table_id, i): (e.counters.packets, e.counters.bytes)
                    for t in eng.pipeline for i, e in enumerate(t.entries)
                }
                results[transport] = (sums, counts, meter.total_cycles)
            finally:
                eng.close()
        assert results["ring"] == results["pipe"]

    @needs_shm
    def test_workers1_ring_matches_sequential(self):
        pipeline, pkts = scenario()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        sm = CycleMeter(XEON_E5_2620)
        em = CycleMeter(XEON_E5_2620)
        with ShardedESwitch(pipeline, workers=1, backend="process",
                            transport="ring") as eng:
            for burst in bursts_of(pkts):
                sv = seq.process_burst([p.copy() for p in burst], sm)
                ev = eng.process_burst([p.copy() for p in burst], em)
                assert summarize(ev, eng.pipeline) == summarize(sv, seq.pipeline)
            assert em.total_cycles == sm.total_cycles  # bit-exact, Fraction


class TestDoubleBuffer:
    @needs_shm
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_submit_collect_matches_sequential(self, backend):
        """Depth-2 pipelining (submit N+1 before collecting N) returns
        the same verdicts in the same order as one-at-a-time."""
        pipeline, pkts = scenario()
        seq = ESwitch(pickle.loads(pickle.dumps(pipeline)))
        want = [
            summarize(seq.process_burst([p.copy() for p in b]), seq.pipeline)
            for b in bursts_of(pkts)
        ]
        with ShardedESwitch(pipeline, workers=2, backend=backend,
                            transport="ring") as eng:
            handles = []
            got = []
            for burst in bursts_of(pkts):
                handle = eng.submit_burst([p.copy() for p in burst])
                handles.append(handle)
                if len(handles) > 1:  # keep two in flight
                    got.append(summarize(
                        eng.collect(handles.pop(0)), eng.pipeline
                    ))
            while handles:
                got.append(summarize(eng.collect(handles.pop(0)), eng.pipeline))
            assert got == want
            eng.sync_flow_stats()
        assert (
            {(t.table_id, i): (e.counters.packets, e.counters.bytes)
             for t in eng.pipeline for i, e in enumerate(t.entries)}
            == {(t.table_id, i): (e.counters.packets, e.counters.bytes)
                for t in seq.pipeline for i, e in enumerate(t.entries)}
        )

    @needs_shm
    def test_collect_is_idempotent_and_out_of_order(self):
        pipeline, pkts = scenario()
        with ShardedESwitch(pipeline, workers=2, backend="thread",
                            transport="ring") as eng:
            h1 = eng.submit_burst([p.copy() for p in pkts[:16]])
            h2 = eng.submit_burst([p.copy() for p in pkts[16:32]])
            v2 = eng.collect(h2)      # out of order: forces FIFO drain of h1
            v1 = eng.collect(h1)
            assert eng.collect(h1) is v1   # idempotent
            assert eng.collect(h2) is v2
            assert len(v1) == 16 and len(v2) == 16


class TestThreadByReference:
    def test_caller_packets_never_mutated(self):
        """The thread channel hands packet objects across by reference;
        the worker runs them through replicas that rewrite headers — the
        caller's own packets must come back byte-identical anyway."""
        pipeline, pkts = scenario()
        with ShardedESwitch(pipeline, workers=2, backend="thread",
                            transport="pipe") as eng:
            originals = [bytes(p.data) for p in pkts]
            for burst in bursts_of(pkts):
                eng.process_burst(burst)   # no defensive copies by caller
            assert [bytes(p.data) for p in pkts] == originals

    def test_thread_matches_process_backend(self):
        pipeline, pkts = scenario()
        results = {}
        for backend in ("thread", "process"):
            eng = ShardedESwitch(
                pickle.loads(pickle.dumps(pipeline)), workers=2,
                backend=backend,
            )
            try:
                meter = CycleMeter(XEON_E5_2620)
                sums = [
                    summarize(
                        eng.process_burst([p.copy() for p in b], meter),
                        eng.pipeline,
                    )
                    for b in bursts_of(pkts)
                ]
                results[backend] = (sums, meter.total_cycles)
            finally:
                eng.close()
        assert results["thread"] == results["process"]
