"""The ``repro`` command line: inspect, compile, run, and model pipelines.

Usage (also via ``python -m repro``)::

    repro show     pipeline.json
    repro compile  pipeline.json [--no-decompose] [--range] [--sources]
    repro run      pipeline.json --pkt in_port=1,ipv4_dst=192.0.2.1,tcp_dst=80 ...
    repro model    pipeline.json
    repro bench    pipeline.json [--flows N] [--packets M] [--seed S] [--burst B]
    repro bench    --wallclock [--cores 1,2,4] [--out BENCH_wallclock.json] ...
    repro fuzz     --seed N [--count K] [--minimize] [--out FILE]
    repro fuzz     --replay tests/fuzz_corpus/case.json

``run`` drives the packet through all three datapaths (ESWITCH, the OVS
baseline, and the reference interpreter) and reports disagreement loudly —
the command-line version of the repo's differential testing. ``fuzz`` is
the heavy-calibre version: seeded random pipelines and traffic through
the full five-backend matrix (see :mod:`repro.fuzz`), with deterministic
replay and failure minimization.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core import CompileConfig, ESwitch
from repro.core.autoderive import derive_model
from repro.openflow import serialize
from repro.openflow.pipeline import Pipeline
from repro.ovs import OvsSwitch
from repro.packet.builder import PacketBuilder
from repro.packet.packet import Packet
from repro.simcpu.platform import XEON_E5_2620
from repro.traffic import FlowSet, measure


def _load(path: str) -> Pipeline:
    try:
        return serialize.load(path)
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {path}")
    except serialize.SerializationError as exc:
        raise SystemExit(f"error: {exc}")


def _config(args: argparse.Namespace) -> CompileConfig:
    return CompileConfig(
        decompose=not getattr(args, "no_decompose", False),
        enable_range=getattr(args, "range", False),
    )


def cmd_show(args: argparse.Namespace) -> int:
    pipeline = _load(args.pipeline)
    for table in pipeline:
        print(f"table {table.table_id} ({table.name}), miss={table.miss_policy.value}:")
        for entry in table:
            print(f"  prio={entry.priority:<5} {entry.match!r}")
            for instr in entry.instructions:
                print(f"      {instr!r}")
    print(f"\n{len(pipeline)} tables, {pipeline.total_entries()} entries, "
          f"fields: {', '.join(pipeline.matched_fields()) or '(none)'}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    pipeline = _load(args.pipeline)
    switch = ESwitch.from_pipeline(pipeline, config=_config(args))
    print("template selection (logical table -> template):")
    for tid, kind in sorted(switch.table_kinds().items()):
        print(f"  table {tid:<4} -> {kind}")
    print(f"compiled tables: {switch.compiled_table_count}, "
          f"parser depth: L2–L{switch.datapath.parser_layer}")
    if args.sources:
        for tid, source in switch.compiled_sources().items():
            print(f"\n--- compiled table {tid} "
                  f"({switch.compiled_table(tid).kind.value}) ---")
            print(source, end="")
    return 0


def parse_packet_spec(spec: str) -> Packet:
    """``key=value,key=value`` packet spec -> Packet.

    Keys: in_port, eth_src, eth_dst, vlan, ipv4_src, ipv4_dst, ipv6_src,
    ipv6_dst, proto (tcp|udp|icmp|icmpv6), sport, dport, ttl.
    """
    fields: dict[str, str] = {}
    for part in spec.split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        if not value:
            raise SystemExit(f"error: malformed packet spec item {part!r}")
        fields[key.strip()] = value.strip()

    builder = PacketBuilder(in_port=int(fields.pop("in_port", 0)))
    builder.eth(
        src=fields.pop("eth_src", "02:00:00:00:00:01"),
        dst=fields.pop("eth_dst", "02:00:00:00:00:02"),
    )
    if "vlan" in fields:
        builder.vlan(vid=int(fields.pop("vlan")))
    proto = fields.pop("proto", None)
    is_v6 = any(k in fields for k in ("ipv6_src", "ipv6_dst")) or proto == "icmpv6"
    has_l3 = proto or is_v6 or any(
        k in fields for k in ("ipv4_src", "ipv4_dst", "ttl")
    )
    if has_l3:
        if is_v6:
            builder.ipv6(
                src=fields.pop("ipv6_src", "2001:db8::1"),
                dst=fields.pop("ipv6_dst", "2001:db8::2"),
                hop_limit=int(fields.pop("ttl", 64)),
            )
        else:
            builder.ipv4(
                src=fields.pop("ipv4_src", "10.0.0.1"),
                dst=fields.pop("ipv4_dst", "10.0.0.2"),
                ttl=int(fields.pop("ttl", 64)),
            )
        sport = int(fields.pop("sport", 1024))
        dport = int(fields.pop("dport", 80))
        if proto in (None, "tcp"):
            builder.tcp(src_port=sport, dst_port=dport)
        elif proto == "udp":
            builder.udp(src_port=sport, dst_port=dport)
        elif proto == "icmp":
            builder.icmp()
        elif proto == "icmpv6":
            builder.icmpv6()
        else:
            raise SystemExit(f"error: unknown proto {proto!r}")
    if fields:
        raise SystemExit(f"error: unknown packet spec keys: {', '.join(fields)}")
    return builder.build()


def cmd_run(args: argparse.Namespace) -> int:
    pipeline_es = _load(args.pipeline)
    es = ESwitch.from_pipeline(pipeline_es, config=_config(args))
    ovs = OvsSwitch(_load(args.pipeline))
    reference = _load(args.pipeline)

    disagreements = 0
    for spec in args.pkt:
        pkt = parse_packet_spec(spec)
        v_es = es.process(pkt.copy())
        v_ovs = ovs.process(pkt.copy())
        v_ref = reference.process(pkt.copy())
        agree = v_es.summary() == v_ovs.summary() == v_ref.summary()
        marker = "" if agree else "  << DISAGREE"
        print(f"{spec}")
        print(f"  eswitch:   {v_es!r}")
        print(f"  ovs:       {v_ovs!r}")
        print(f"  reference: {v_ref!r}{marker}")
        if not agree:
            disagreements += 1
    return 1 if disagreements else 0


def cmd_model(args: argparse.Namespace) -> int:
    pipeline = _load(args.pipeline)
    switch = ESwitch.from_pipeline(pipeline, config=_config(args))
    model = derive_model(switch)
    print("auto-derived performance model (longest table path):")
    for name, cycles, comment in model.rundown():
        print(f"  {name:24} {cycles:12}  {comment}")
    lo, hi = model.cycle_bounds()
    lb, ub = model.bounds()
    print(f"\ncycles/packet: {lo:.0f} (all-L1) … {hi:.0f} (all-L3)")
    print(f"packet rate:   {ub / 1e6:.1f} Mpps (model-ub) … "
          f"{lb / 1e6:.1f} Mpps (model-lb)  [{XEON_E5_2620.name}]")
    return 0


def parse_flow_count(spec: str) -> int:
    """``--flows 1e6`` / ``1_000_000`` / ``1000`` -> int, validated."""
    try:
        count = int(spec)
    except ValueError:
        try:
            as_float = float(spec)
        except ValueError:
            raise SystemExit(f"error: malformed --flows value {spec!r}")
        count = int(as_float)
        if count != as_float:
            raise SystemExit(f"error: --flows must be a whole number, got {spec!r}")
    if count < 1:
        raise SystemExit(f"error: --flows must be positive, got {spec!r}")
    return count


def cmd_bench(args: argparse.Namespace) -> int:
    args.flows = parse_flow_count(args.flows)
    if args.burst < 0:
        raise SystemExit(f"error: --burst must be >= 0, got {args.burst}")
    if args.wire_micro:
        return cmd_bench_wire_micro(args)
    if args.megascale:
        return cmd_bench_megascale(args)
    if args.fabric_soak:
        return cmd_bench_fabric_soak(args)
    if args.wallclock:
        return cmd_bench_wallclock(args)
    if args.pipeline is None:
        raise SystemExit("error: a pipeline file is required (or use --wallclock)")
    rng = random.Random(args.seed)
    pipeline = _load(args.pipeline)
    fields = pipeline.matched_fields()

    def factory(i: int, _rng) -> Packet:
        builder = PacketBuilder(in_port=rng.choice([1, 2, 3]))
        builder.eth(src=rng.getrandbits(46) * 4 + 2, dst=rng.getrandbits(46) * 4 + 2)
        builder.ipv4(src=rng.getrandbits(32), dst=rng.getrandbits(32))
        if rng.random() < 0.7:
            builder.tcp(src_port=rng.randrange(1024, 65000),
                        dst_port=rng.choice([80, 443, 22, rng.randrange(1, 65000)]))
        else:
            builder.udp(src_port=rng.randrange(1024, 65000), dst_port=53)
        return builder.build()

    flows = FlowSet.build(args.flows, factory, seed=args.seed)
    print(f"pipeline: {len(pipeline)} tables, {pipeline.total_entries()} entries, "
          f"matched fields: {', '.join(fields) or '(none)'}")
    workload = f"workload: {args.flows} random flows, {args.packets} packets"
    if args.burst:
        workload += f", IO burst {args.burst}"
    print(workload + "\n")
    for name, switch in (
        ("ESWITCH", ESwitch.from_pipeline(_load(args.pipeline), config=_config(args))),
        ("OVS", OvsSwitch(_load(args.pipeline))),
    ):
        m = measure(switch, flows, n_packets=args.packets,
                    warmup=min(args.flows + 500, args.packets),
                    batch_size=args.burst or None)
        line = (f"{name:8} {m.mpps:8.2f} Mpps   {m.cycles_per_packet:8.0f} cyc/pkt   "
                f"LLC {m.llc_misses_per_packet:.2f}/pkt   "
                f"fwd/drop/ctrl {m.forwarded}/{m.dropped}/{m.to_controller}")
        burst = m.extra.get("burst")
        if burst:
            line += (f"   bursts {burst['bursts']} "
                     f"(mean {burst['mean_burst_size']:.1f} pkts, "
                     f"{burst['cycles_per_burst']:.0f} cyc/burst)")
        print(line)
    return 0


def parse_cores(spec: str) -> tuple[int, ...]:
    """``--cores 1,2,4`` -> (1, 2, 4); validated, order-preserving."""
    try:
        cores = tuple(int(part) for part in spec.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"error: malformed --cores spec {spec!r}")
    if not cores or any(c < 1 for c in cores):
        raise SystemExit(f"error: --cores needs positive worker counts, got {spec!r}")
    return cores


def cmd_bench_wire_micro(args: argparse.Namespace) -> int:
    """The shard-wire serialization microbench (``--wire-micro``).

    Packed binary frames over a shared-memory ring vs pickled tuples
    over a Pipe, on the canonical 32-packet burst — and a smoke check:
    the zero-copy channel must beat the fd round-trip, and the full
    frame transport must at least match the pickle stack it replaced.
    """
    import json

    from repro.parallel.wire_micro import run_wire_micro

    doc = run_wire_micro(repeats=args.repeats * 50)
    print(f"canonical burst: {doc['burst']} pkts x {doc['payload']}B  "
          f"(frame {doc['frame_bytes']}B, pickle {doc['pickle_bytes']}B)")
    for section in ("codec", "transport", "channel"):
        s = doc[section]
        ratio = s["ring_vs_pipe"] if "ring_vs_pipe" in s else s["frame_vs_pickle"]
        ring_key = "ring_us" if "ring_us" in s else "frame_us"
        pipe_key = "pipe_us" if "pipe_us" in s else "pickle_us"
        ring = s[ring_key]
        print(f"{section:10} pickle/pipe {s[pipe_key]:8.2f} us   "
              f"frames/ring {ring if ring is not None else float('nan'):8.2f} us   "
              f"ratio {ratio if ratio is not None else float('nan'):.2f}x")
    out = args.out if args.out != "BENCH_wallclock.json" else "BENCH_wire_micro.json"
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"wrote {out}")
    if doc["channel"]["ring_vs_pipe"] is None:
        print("shared memory unavailable: ring legs skipped, smoke not asserted")
        return 0
    ok = (doc["channel"]["ring_vs_pipe"] > 1.0
          and doc["transport"]["ring_vs_pipe"] > 0.9)
    if not ok:
        print("FAIL: the packed-frame transport did not beat the pickle stack")
        return 1
    print(f"OK: channel {doc['channel']['ring_vs_pipe']:.2f}x, "
          f"transport {doc['transport']['ring_vs_pipe']:.2f}x vs pickle/pipe")
    return 0


def cmd_bench_wallclock(args: argparse.Namespace) -> int:
    """Wall-clock pkts/sec of the simulator itself (fused vs trampoline
    vs OVS, plus real-parallel sharded scaling with ``--cores``), written
    to ``BENCH_wallclock.json`` — the axes EXPERIMENTS.md keeps separate
    from the cycle model's Mpps."""
    import json

    from repro.traffic.wallclock import run_wallclock

    cores = parse_cores(args.cores) if args.cores else ()
    doc = run_wallclock(
        n_flows=args.flows,
        n_packets=args.packets,
        burst=args.burst or 32,
        repeats=args.repeats,
        cores=cores,
        control_faults=args.control_faults,
        transport=args.transport,
    )
    print(f"{'case':8} {'variant':11} {'mode':6} {'wall pps':>12} {'us/pkt':>8}")
    for point in doc["points"]:
        modeled = (
            f"   modeled {point['modeled_pps'] / 1e6:.2f} Mpps"
            if "modeled_pps" in point
            else ""
        )
        print(
            f"{point['case']:8} {point['variant']:11} {point['mode']:6} "
            f"{point['wall_pps']:12,.0f} {point['usec_per_pkt']:8.2f}{modeled}"
        )
    if doc["multicore"]:
        print(f"\n{'case':8} {'variant':11} {'workers':>7} {'backend':8} "
              f"{'wire':6} {'wall pps':>12} {'us/pkt':>8}  health")
        for point in doc["multicore"]:
            health = point.get("health")
            if health is None:
                status = "-"
            elif health["degraded_shards"]:
                status = (
                    f"DEGRADED shards={health['degraded_shards']} "
                    f"live={health['live_workers']}/{health['workers']} "
                    f"faults={health['faults_detected']}"
                )
            elif health["faults_detected"]:
                status = (
                    f"recovered faults={health['faults_detected']} "
                    f"respawns={health['respawns']} "
                    f"retries={health['retries']}"
                )
            else:
                status = f"ok live={health['live_workers']}/{health['workers']}"
            if point.get("oversubscribed"):
                status += " (oversubscribed host)"
            print(
                f"{point['case']:8} {point['variant']:11} {point['workers']:7} "
                f"{point['backend']:8} {point.get('transport', '-'):6} "
                f"{point['wall_pps']:12,.0f} "
                f"{point['usec_per_pkt']:8.2f}  {status}"
            )
        degraded = [
            p for p in doc["multicore"]
            if p.get("health", {}).get("degraded_shards")
        ]
        if degraded:
            print(
                "\nWARNING: sharded points above ran DEGRADED (dead shards "
                "remapped onto survivors); their pps undercounts a healthy "
                "engine of the same worker count."
            )
    if doc.get("control_plane"):
        print(f"\n{'fail mode':16} {'phase':10} {'wall pps':>12}  session")
        for point in doc["control_plane"]:
            session = point["session"]
            status = (
                f"outages={session['outages']} resyncs={session['resyncs']} "
                f"suppressed={session['punts_suppressed']} "
                f"secure_drops={session['secure_drops']} "
                f"queue_drops={session['punt_queue_drops']}"
            )
            for i, phase in enumerate(point["phases"]):
                print(
                    f"{point['fail_mode']:16} {phase['phase']:10} "
                    f"{phase['wall_pps']:12,.0f}  {status if i == 0 else ''}"
                )
    print()
    for key, ratios in doc["speedups"].items():
        pairs = "  ".join(f"{k}={v:.2f}x" for k, v in ratios.items())
        print(f"{key:14} {pairs}")
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"\nwrote {args.out}")
    return 0


def cmd_bench_megascale(args: argparse.Namespace) -> int:
    """The million-flow rig (``--megascale``): every template rung at
    ``--flows`` entries (wall pps + footprint), the Fig. 3 OVS cache
    collapse across a distinct-flow axis, and sustained flow-mod churn —
    written to ``BENCH_megascale.json``. All legs are time-boxed at
    ``--rung-seconds``."""
    import json

    from repro.traffic.megascale import run_megascale

    doc = run_megascale(
        n_flows=args.flows,
        n_packets=args.packets,
        burst=args.burst or 32,
        churn_mods=args.churn_mods,
        rung_seconds=args.rung_seconds,
    )
    print(f"{'rung':8} {'wall pps':>12} {'pkts':>8} {'build s':>8} "
          f"{'compile s':>9} {'MB':>8}  templates")
    for p in doc["rungs"]:
        kinds = ",".join(sorted(set(p["table_kinds"].values())))
        if p["data_driven"]:
            kinds += " (data-driven)"
        print(f"{p['rung']:8} {p['wall_pps']:12,.0f} {p['packets']:8} "
              f"{p['build_table_s']:8.1f} {p['compile_s']:9.1f} "
              f"{p['footprint_bytes'] / 1e6:8.1f}  {kinds}")
    print(f"\n{'flows':>9} {'variant':8} {'modeled Mpps':>12} "
          f"{'wall pps':>12}  cache hit rates")
    for p in doc["collapse"]:
        rates = p.get("cache_rates")
        cache = (
            "  ".join(f"{k}={v:.2f}" for k, v in rates.items()) if rates else "-"
        )
        print(f"{p['flows']:9} {p['variant']:8} {p['modeled_pps'] / 1e6:12.2f} "
              f"{p['wall_pps']:12,.0f}  {cache}")
    print(f"\n{'rung':8} {'mods':>8} {'wall mods/s':>12} "
          f"{'modeled mods/s':>14}  mechanism")
    for p in doc["churn"]:
        modeled = p.get("modeled_entries_per_sec")
        modeled_s = f"{modeled:,.0f}" if modeled else "-"
        mech = ""
        if "incremental" in p:
            mech = (f"incr={p['incremental']} rebuilds={p['rebuilds']} "
                    f"skips={p['kind_stable_skips']}")
        print(f"{p['rung']:8} {p['mods_applied']:8} "
              f"{p['entries_per_sec']:12,.0f} {modeled_s:>14}  "
              f"{mech or p.get('note', '')}")
    out = args.out if args.out != "BENCH_wallclock.json" else "BENCH_megascale.json"
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"\nwrote {out}")
    return 0


def cmd_bench_fabric_soak(args: argparse.Namespace) -> int:
    """The fabric soak (``--fabric-soak``): a leaf–spine fabric under one
    control plane, soaked with tenant churn while a scripted blackout
    takes one leaf dark, then the rolling-upgrade and aborted-upgrade
    legs — SLO telemetry written to ``BENCH_fabric_soak.json``."""
    import json

    from repro.traffic.fabric_soak import SoakConfig, run_fabric_soak

    cfg = SoakConfig(
        ticks=args.soak_ticks,
        arrival_ticks=max(2, args.soak_ticks // 2),
        lifetime_ticks=max(3, (3 * args.soak_ticks) // 4),
        outage_at_s=0.125 * args.soak_ticks,
        outage_duration_s=0.125 * args.soak_ticks,
        seed=args.seed or 42,
    )
    doc = run_fabric_soak(cfg)
    totals, outage, slo = doc["totals"], doc["outage"], doc["slo"]
    fw = outage["fault_window"]
    print(f"soak: {totals['injected']} pkts over {cfg.ticks} ticks, "
          f"served {totals['served_fraction']:.3f} "
          f"(fault window {fw['served_fraction']:.3f}, "
          f"floor {cfg.served_floor})")
    print(f"punt latency p50/p99 {slo['p50_punt_latency_s'] * 1e3:.3f}/"
          f"{slo['p99_punt_latency_s'] * 1e3:.3f} ms over "
          f"{slo['punt_samples']} samples; "
          f"drops {slo['drop_fraction']:.4f} (budget {slo['drop_budget']})")
    for name, leaf in doc["supervisor"]["leaves"].items():
        line = (f"{name:8} score {leaf['score']:.2f}  "
                f"outages {leaf['outages']}  resyncs {leaf['resyncs']}  "
                f"degraded {leaf['degraded_time_s']:.1f}s")
        if leaf["convergence_s"] is not None:
            line += f"  converged in {leaf['convergence_s']:.2f}s"
        print(line)
    up = doc["upgrade"]
    print(f"rolling upgrade: "
          f"{'ok' if up['rolling']['completed'] else 'FAILED'} "
          f"(epoch {up['rolling']['epoch']}, divergence "
          f"{up['rolling']['verdict_divergence']}); aborted leg: "
          f"{'rolled back' if up['aborted']['all_on_old_epoch'] else 'STRADDLED'}"
          f" ({', '.join(up['aborted']['rolled_back'])}); "
          f"deadlocks {up['deadlocks']}")
    out = args.out if args.out != "BENCH_wallclock.json" else (
        "BENCH_fabric_soak.json"
    )
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(f"wrote {out}")
    floor_ok = fw["served_fraction"] >= cfg.served_floor
    return 0 if (floor_ok and up["deadlocks"] == 0) else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: run seeds (or replay a pinned case)."""
    from repro.fuzz import Scenario, diverges, generate, minimize, run_scenario
    from repro.fuzz.shrink import size_of

    if args.replay:
        failures = 0
        for path in args.replay:
            try:
                scenario = Scenario.load(path)
            except (OSError, serialize.SerializationError, KeyError) as exc:
                raise SystemExit(f"error: cannot load {path}: {exc}")
            divergences = run_scenario(scenario)
            label = scenario.name or path
            if divergences:
                failures += 1
                print(f"FAIL {label}: {len(divergences)} divergence(s)")
                for div in divergences:
                    print(f"  {div}")
            else:
                print(f"ok   {label}")
        return 1 if failures else 0

    first_failure = None
    for seed in range(args.seed, args.seed + args.count):
        scenario = generate(seed)
        divergences = run_scenario(scenario)
        if not divergences:
            print(f"ok   seed {seed}")
            continue
        print(f"FAIL seed {seed}: {len(divergences)} divergence(s)")
        for div in divergences:
            print(f"  {div}")
        obj = scenario.to_obj()
        if args.minimize:
            before = size_of(obj)
            obj = minimize(obj, diverges)
            print(f"  minimized {before} -> {size_of(obj)} bytes")
        if first_failure is None:
            first_failure = obj
        print("  ready-to-paste corpus entry (tests/fuzz_corpus/):")
        import json as _json

        print(_json.dumps(obj, indent=2))
        if args.fail_fast:
            break
    if first_failure is not None and args.out:
        import json as _json

        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(first_failure, fh, indent=2)
            fh.write("\n")
        print(f"wrote failing scenario to {args.out}")
    return 1 if first_failure is not None else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ESWITCH (SIGCOMM 2016) reproduction toolbox",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_show = sub.add_parser("show", help="pretty-print a pipeline document")
    p_show.add_argument("pipeline")
    p_show.set_defaults(fn=cmd_show)

    p_compile = sub.add_parser("compile", help="compile and report templates")
    p_compile.add_argument("pipeline")
    p_compile.add_argument("--no-decompose", action="store_true",
                           help="disable flow table decomposition")
    p_compile.add_argument("--range", action="store_true",
                           help="enable the range table template")
    p_compile.add_argument("--sources", action="store_true",
                           help="print the generated fast-path code")
    p_compile.set_defaults(fn=cmd_compile)

    p_run = sub.add_parser("run", help="run packets through all datapaths")
    p_run.add_argument("pipeline")
    p_run.add_argument("--pkt", action="append", required=True,
                       metavar="k=v,k=v", help="packet spec (repeatable)")
    p_run.add_argument("--no-decompose", action="store_true")
    p_run.add_argument("--range", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_model = sub.add_parser("model", help="auto-derive the performance model")
    p_model.add_argument("pipeline")
    p_model.add_argument("--no-decompose", action="store_true")
    p_model.add_argument("--range", action="store_true")
    p_model.set_defaults(fn=cmd_model)

    p_bench = sub.add_parser("bench", help="quick simulated measurement")
    p_bench.add_argument("pipeline", nargs="?", default=None)
    p_bench.add_argument("--wallclock", action="store_true",
                         help="measure the simulator's own wall-clock pkts/sec "
                              "(fused vs trampoline vs OVS) over the built-in "
                              "use cases instead of a pipeline file")
    p_bench.add_argument("--out", default="BENCH_wallclock.json",
                         help="output JSON for --wallclock")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="best-of repeats per --wallclock point")
    p_bench.add_argument("--cores", default="", metavar="N,N,...",
                         help="with --wallclock: also measure ShardedESwitch "
                              "real-parallel scaling at these worker counts "
                              "(e.g. 1,2,4)")
    p_bench.add_argument("--wire-micro", action="store_true",
                         help="serialization microbench: packed frames over "
                              "a shared-memory ring vs pickle over a Pipe on "
                              "the canonical burst (writes "
                              "BENCH_wire_micro.json; exits 1 if the packed "
                              "transport loses)")
    p_bench.add_argument("--transport", default="auto",
                         choices=("auto", "ring", "pipe"),
                         help="with --wallclock --cores: shard burst "
                              "transport for ShardedESwitch points")
    p_bench.add_argument("--control-faults", action="store_true",
                         help="with --wallclock: add the control-plane fault "
                              "leg — wall-clock forwarding through a "
                              "controller outage in both OpenFlow 1.3 §6.4 "
                              "fail modes, with session health telemetry")
    p_bench.add_argument("--megascale", action="store_true",
                         help="the million-flow rig: every template rung at "
                              "--flows entries, the Fig. 3 OVS cache "
                              "collapse, and sustained flow-mod churn "
                              "(writes BENCH_megascale.json; all legs "
                              "time-boxed at --rung-seconds)")
    p_bench.add_argument("--rung-seconds", type=float, default=30.0,
                         help="with --megascale: time budget per measured "
                              "leg — slow rungs measure fewer packets "
                              "instead of hanging")
    p_bench.add_argument("--churn-mods", type=int, default=2_000,
                         help="with --megascale: flow-mods per churn rung")
    p_bench.add_argument("--fabric-soak", action="store_true",
                         help="soak a 4-leaf/2-spine fabric under one "
                              "control plane: tenant churn, a scripted "
                              "leaf blackout, SLO telemetry, and the "
                              "rolling/aborted upgrade legs (writes "
                              "BENCH_fabric_soak.json; exits 1 if the "
                              "served-fraction floor is broken or the "
                              "supervisor deadlocks)")
    p_bench.add_argument("--soak-ticks", type=int, default=48,
                         help="with --fabric-soak: soak length in "
                              "0.5 s virtual-time ticks")
    p_bench.add_argument("--flows", default="1000", metavar="N",
                         help="flow count; scientific notation accepted "
                              "(1e6 = a million flows)")
    p_bench.add_argument("--packets", type=int, default=10_000)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--burst", type=int, default=0, metavar="B",
                         help="drive the datapaths in IO bursts of B packets "
                              "(0 = scalar calls at the calibration burst)")
    p_bench.add_argument("--no-decompose", action="store_true")
    p_bench.add_argument("--range", action="store_true")
    p_bench.set_defaults(fn=cmd_bench)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing across the five-backend matrix"
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="first seed of the deterministic run")
    p_fuzz.add_argument("--count", type=int, default=1,
                        help="number of consecutive seeds to run")
    p_fuzz.add_argument("--minimize", action="store_true",
                        help="shrink each failure to a minimal scenario")
    p_fuzz.add_argument("--out", default=None, metavar="FILE",
                        help="write the first failing scenario JSON here "
                             "(after --minimize, if given)")
    p_fuzz.add_argument("--fail-fast", action="store_true",
                        help="stop at the first failing seed")
    p_fuzz.add_argument("--replay", nargs="+", default=None, metavar="FILE",
                        help="replay pinned scenario file(s) instead of "
                             "generating from seeds")
    p_fuzz.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
