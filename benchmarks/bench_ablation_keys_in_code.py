"""Ablation: flow keys patched into code vs fetched from data memory.

Section 3.3: "we found that standard OpenFlow datapath processing burdens
the CPU data caches extensively, but compiling match keys right into the
code directs some of this load to the CPU instruction caches, which gives
greater locality, better distribution of CPU cache load, and hence faster
processing."

With ``keys_in_code=False`` every matcher evaluation fetches its key from
a key table in data memory — extra cache lines that compete with the rest
of the per-packet working set. This bench measures both variants under
data-cache pressure.
"""

from figshared import publish, render_table
from repro.core.analysis import CompileConfig
from repro.core.codegen import compile_table
from repro.openflow.actions import Output
from repro.openflow.fields import field_by_name
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.match import Match
from repro.packet import PacketBuilder
from repro.packet.parser import parse
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter

N_ENTRIES = 4  # stays on the direct-code template


def make_table():
    t = FlowTable(0)
    for i in range(N_ENTRIES):
        t.add(
            FlowEntry(
                Match(ipv4_dst=0x0A000000 + i, tcp_dst=1000 + i),
                priority=1,
                actions=[Output(1)],
            )
        )
    return t


def measure_variant(keys_in_code: bool, pressure_lines: int) -> float:
    compiled = compile_table(make_table(), CompileConfig(keys_in_code=keys_in_code))
    pkt = (PacketBuilder().eth()
           .ipv4(dst="10.0.0.3").tcp(dst_port=1003).build())
    view = parse(pkt)
    etype = field_by_name("eth_type").extract(view) or 0
    meter = CycleMeter(XEON_E5_2620)
    evict = 0
    for round_no in range(400):
        meter.begin_packet()
        compiled.fn(pkt.data, pkt, view.l3, view.l4, view.proto, etype, view.l4_proto, meter)
        meter.end_packet()
        # Unrelated per-packet data-cache traffic (other flows' state).
        # The pool exceeds L1 so heavy pressure actually evicts the key
        # lines between packets.
        for _ in range(pressure_lines):
            evict += 1
            meter.cache.access(("noise", evict % 8192))
    return meter.mean_cycles_per_packet


def test_ablation_keys_in_code(benchmark):
    rows = []
    deltas = {}
    for pressure in (0, 128, 768):
        in_code = measure_variant(True, pressure)
        in_data = measure_variant(False, pressure)
        deltas[pressure] = in_data - in_code
        rows.append((pressure, f"{in_code:.1f}", f"{in_data:.1f}",
                     f"{in_data - in_code:+.1f}"))
    publish(
        "ablation_keys_in_code",
        render_table(
            "Ablation: keys in code vs keys in data memory "
            "(cycles/lookup under D-cache pressure)",
            ("pressure lines/pkt", "keys in code", "keys in data", "delta"),
            rows,
        ),
    )

    # Keys-in-code never loses, and the win grows with data-cache pressure
    # (the paper's stated motivation for patching keys into the code).
    assert all(d >= 0 for d in deltas.values())
    assert deltas[768] > deltas[0]

    benchmark(lambda: measure_variant(True, 8))
