"""A collision-free hash table — the compound hash template's backing store.

The paper's compound hash template uses "a collision free hash; even though
it requires more memory and more time to build, it supports fast constant
time lookups, a key to a robust datapath performance" (Section 3.1), and the
switch rebuilds it "periodically … to minimize hash collisions"
(Section 3.4).

This implementation searches for a seed under which every key occupies a
distinct slot (perfect hashing by seed search over an oversized table).
Lookups are therefore a single probe: hash, compare, done. Inserting a key
that would collide triggers a rebuild with a fresh seed (growing the table
when the load factor demands it) — build cost is paid at update time, never
at lookup time, exactly the trade the paper makes.

Keys are integers or tuples of integers (compound keys: the template "runs
together relevant header fields into a single key").
"""

from __future__ import annotations

from typing import Iterator

Key = "int | tuple[int, ...]"

#: Slots per 64-byte cache line assumed by the cost model (16-byte entries).
SLOTS_PER_LINE = 4

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _mix(key: "int | tuple[int, ...]", seed: int) -> int:
    """A seeded FNV-1a style mix over the key's integer components."""
    h = (_FNV_OFFSET ^ seed) & _MASK64
    if isinstance(key, int):
        components: tuple[int, ...] = (key,)
    else:
        components = key
    for part in components:
        while True:
            h = ((h ^ (part & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
            part >>= 32
            if not part:
                break
    h ^= h >> 33
    return h


class RebuildRequired(RuntimeError):
    """Internal signal: no collision-free seed found at the current size."""


class CollisionFreeHash:
    """Perfect-hash-by-seed-search table with single-probe lookups."""

    #: Slots allocated per key (the memory-for-speed trade).
    OVERSIZE_FACTOR = 4
    #: Seeds tried per size before growing the table.
    MAX_SEED_TRIES = 64
    MIN_SLOTS = 8

    def __init__(self, items: "dict | None" = None):
        self._items: dict = dict(items or {})
        self._seed = 0
        self._slots: list = []
        self._nslots = 0
        self.rebuild_count = 0
        self._build()

    # -- lookups ----------------------------------------------------------

    def get(self, key: Key, default: object = None) -> object:
        """Single-probe lookup (the ``_mix`` loop inlined: this runs per
        packet, and the call frame would cost more than the mix itself)."""
        if not self._nslots:
            return default
        h = (_FNV_OFFSET ^ self._seed) & _MASK64
        for part in (key,) if isinstance(key, int) else key:
            while True:
                h = ((h ^ (part & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
                part >>= 32
                if not part:
                    break
        h ^= h >> 33
        slot = self._slots[h % self._nslots]
        if slot is not None and slot[0] == key:
            return slot[1]
        return default

    def get_traced(self, key: Key, default: object = None) -> tuple[object, int]:
        """Lookup plus the abstract cache-line id probed (for the cost model)."""
        if not self._nslots:
            return default, 0
        h = (_FNV_OFFSET ^ self._seed) & _MASK64
        for part in (key,) if isinstance(key, int) else key:
            while True:
                h = ((h ^ (part & 0xFFFFFFFF)) * _FNV_PRIME) & _MASK64
                part >>= 32
                if not part:
                    break
        h ^= h >> 33
        index = h % self._nslots
        line = index // SLOTS_PER_LINE
        slot = self._slots[index]
        if slot is not None and slot[0] == key:
            return slot[1], line
        return default, line

    def __contains__(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def items(self):
        return self._items.items()

    @property
    def slot_count(self) -> int:
        return self._nslots

    # -- updates -------------------------------------------------------------

    def insert(self, key: Key, value: object) -> None:
        """Insert or update; rebuilds (new seed / larger table) on collision."""
        self._items[key] = value
        if self._nslots:
            index = _mix(key, self._seed) % self._nslots
            slot = self._slots[index]
            if slot is None or slot[0] == key:
                self._slots[index] = (key, value)
                return
        self._build()

    def remove(self, key: Key) -> bool:
        """Remove a key; no rebuild needed (the slot just empties)."""
        if key not in self._items:
            return False
        del self._items[key]
        index = _mix(key, self._seed) % self._nslots
        slot = self._slots[index]
        if slot is not None and slot[0] == key:
            self._slots[index] = None
        return True

    def rebuild(self) -> None:
        """Force the periodic rebuild of Section 3.4."""
        self._build()

    # -- internals -------------------------------------------------------------

    def _build(self) -> None:
        self.rebuild_count += 1
        n = len(self._items)
        nslots = max(self.MIN_SLOTS, n * self.OVERSIZE_FACTOR)
        while True:
            try:
                self._try_build(nslots)
                return
            except RebuildRequired:
                nslots *= 2

    def _try_build(self, nslots: int) -> None:
        for attempt in range(self.MAX_SEED_TRIES):
            seed = (self._seed + attempt + 1) * 0x9E3779B97F4A7C15 & _MASK64
            slots: list = [None] * nslots
            for key, value in self._items.items():
                index = _mix(key, seed) % nslots
                if slots[index] is not None:
                    break
                slots[index] = (key, value)
            else:
                self._seed = seed
                self._slots = slots
                self._nslots = nslots
                return
        raise RebuildRequired
