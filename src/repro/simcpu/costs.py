"""Cycle-cost atoms for every datapath building block.

The ESWITCH atoms transcribe the paper's Fig. 20 performance model and the
Fig. 9 template calibration:

* packet IO: "a generic DPDK packet IO takes about 40-50 CPU cycles";
* parsing: 28 cycles combined L2–L4, split 12/8/8 across the per-layer
  parser templates so pipelines that skip layers pay less (Section 3.1);
* hash template: ``8 + Lx`` — 8 fixed cycles plus one memory access;
* LPM template: ``13 + 2*Lx`` — DIR-24-8 needs one or two accesses;
* actions: 25 cycles per action-set execution;
* direct code / linked list: linear in entries examined, calibrated so the
  direct-code/hash crossover lands at 4 entries as in Fig. 9.

The OVS atoms are calibration constants chosen to land the baseline at the
paper's measured operating points (Section 4.3): ~12 Mpps when everything
hits the microflow cache, a few Mpps from the megaflow cache, and ~90 Kpps
when every packet takes an upcall to ``vswitchd`` (the gateway at 1M
flows). The *shape* of every figure comes from which of these paths fire,
not from the constants themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostBook:
    """All fixed per-operation cycle costs in one place."""

    # -- shared packet IO (DPDK) -----------------------------------------
    pkt_in: float = 40.0
    pkt_out: float = 40.0
    #: Framework overhead of the l2fwd reference loop: with pkt_in/pkt_out
    #: it reproduces the 15.7 Mpps platform ceiling of Section 4.2
    #: (2e9 / 15.7e6 ≈ 127 cycles/packet).
    l2fwd_overhead: float = 47.4
    #: Per-burst IO framework cost (PMD poll, doorbells, descriptor ring
    #: maintenance), amortized across the burst. ``pkt_in``/``pkt_out``
    #: are calibrated at the DPDK-typical burst of ``reference_burst``
    #: packets; smaller bursts pay ``io_burst_cost/B`` extra per packet.
    io_burst_cost: float = 384.0
    reference_burst: int = 32

    #: ESWITCH per-packet runtime dispatch (batch iteration, trampoline
    #: entry) — keeps even a one-entry direct-code pipeline a bit below
    #: the raw l2fwd loop, as the paper measures (ES tops out ~14 Mpps).
    es_dispatch: float = 10.0

    # -- ESWITCH parser templates -----------------------------------------
    parser_l2: float = 12.0
    parser_l3: float = 8.0
    parser_l4: float = 8.0

    # -- ESWITCH table templates -------------------------------------------
    direct_base: float = 2.0
    direct_per_entry: float = 2.5
    hash_base: float = 8.0
    lpm_base: float = 13.0
    linked_list_base: float = 6.5
    linked_list_per_entry: float = 3.0
    #: range template (optional extension): binary search over intervals.
    range_base: float = 9.0
    range_per_level: float = 2.0
    goto_trampoline: float = 2.0
    table_miss: float = 5.0

    # -- ESWITCH actions ------------------------------------------------------
    action_set: float = 25.0

    # -- OVS datapath ----------------------------------------------------------
    #: flow-key extraction (full parse + key build), paid on every packet.
    ovs_key_extract: float = 55.0
    #: microflow (EMC) probe: hash + compare, plus two memory touches
    #: (the miniflow key spans more than one line).
    ovs_emc_probe: float = 15.0
    #: per-subtable megaflow probe: mask application + hash, plus touches.
    ovs_megaflow_per_subtable: float = 24.0
    #: megaflow hit bookkeeping (action fetch, stats update, EMC insert
    #: preparation) — dpcls hits cost roughly twice an EMC hit.
    ovs_megaflow_hit_extra: float = 70.0
    #: upcall to vswitchd: encapsulation, queueing, context switches,
    #: and the return trip (the dominant term of the ~13 us worst-case
    #: latency in Fig. 16).
    ovs_upcall: float = 15000.0
    #: vswitchd classifier work per entry probed (staged lookup machinery).
    ovs_vswitchd_per_entry: float = 20.0
    #: computing + installing a megaflow entry.
    ovs_megaflow_install: float = 3000.0
    #: installing a microflow (EMC) entry.
    ovs_emc_install: float = 60.0
    #: per-packet batching overhead.
    ovs_batch_overhead: float = 15.0
    #: replaying one cached action beyond the first (ESWITCH folds its
    #: action sets into straight-line code; OVS interprets an action list).
    ovs_per_action: float = 10.0
    #: flow-dependent translation state lines touched per upcall (xlate
    #: context, megaflow allocation, stats) — the source of OVS's large
    #: out-of-cache footprint in Fig. 15.
    ovs_upcall_touch_lines: int = 8

    # -- ESWITCH updates (Section 3.4, Figs. 17/18) --------------------------------
    #: non-destructive incremental update (hash insert, LPM add, list edit).
    es_update_incremental: float = 300.0
    #: side-by-side template rebuild: fixed part (codegen, linking, swap).
    es_update_rebuild_base: float = 500.0
    #: side-by-side template rebuild: per compiled entry.
    es_update_rebuild_per_entry: float = 120.0

    # -- multi-core (Fig. 19) ----------------------------------------------------
    #: extra cycles per packet per active core OVS pays for cache-coherent
    #: shared-state bookkeeping (megaflow cache is shared across threads,
    #: Section 2.3: "fine-grained locking, impeding multi-core scalability").
    ovs_coherence_per_core: float = 14.0
    #: ESWITCH shares only read-only compiled code between cores.
    eswitch_coherence_per_core: float = 2.0

    extras: dict = field(default_factory=dict)

    @property
    def parser_combined(self) -> float:
        """The combined L2–L4 parse the prototype defaults to (28 cycles)."""
        return self.parser_l2 + self.parser_l3 + self.parser_l4

    @property
    def io_burst_share(self) -> float:
        """Per-packet slice of ``io_burst_cost`` baked into the calibration.

        The per-packet IO atoms (``pkt_in``/``pkt_out``) are calibrated at
        the DPDK-typical ``reference_burst``; a burst driver charges
        ``io_burst_cost`` once per poll and credits this share back per
        packet, so a burst of exactly ``reference_burst`` packets costs the
        same as that many scalar calls.
        """
        return self.io_burst_cost / self.reference_burst

    def direct_code(self, entries_examined: int) -> float:
        return self.direct_base + self.direct_per_entry * entries_examined

    def linked_list(self, entries_examined: int) -> float:
        return self.linked_list_base + self.linked_list_per_entry * entries_examined


DEFAULT_COSTS = CostBook()
