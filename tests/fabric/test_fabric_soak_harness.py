"""The soak harness itself, at smoke size: report shape + SLO wiring.

The full acceptance run lives in ``benchmarks/bench_fabric_soak.py``;
this keeps the harness honest at tier-1 speed — the report documents
what happened, the floors hold at tiny scale, and the whole run is
deterministic under its seed.
"""

from repro.traffic.fabric_soak import SoakConfig, run_fabric_soak

SMOKE = dict(
    ticks=24, arrival_ticks=12, lifetime_ticks=18,
    n_ce=4, users_per_ce=2, n_prefixes=32,
    outage_at_s=3.0, outage_duration_s=3.0,
)


def test_soak_report_covers_the_slos():
    rep = run_fabric_soak(SoakConfig(**SMOKE))
    totals, outage, slo = rep["totals"], rep["outage"], rep["slo"]
    assert totals["injected"] > 0
    assert totals["served"] + totals["punted"] <= totals["injected"] + (
        totals["dropped"]
    )
    assert outage["fault_window"]["injected"] > 0
    assert outage["fault_window"]["served_fraction"] >= rep["config"][
        "served_floor"
    ]
    assert [e[1] for e in outage["fault_log"]] == ["fired", "healed"]
    assert slo["drop_fraction"] <= rep["config"]["drop_budget"]
    assert slo["punt_samples"] > 0
    assert slo["p99_punt_latency_s"] >= slo["p50_punt_latency_s"] >= 0.0
    dark = rep["config"]["outage_leaf"]
    assert rep["supervisor"]["leaves"][dark]["outages"] == 1
    assert rep["supervisor"]["leaves"][dark]["resyncs"] == 1
    assert slo["degraded_time_s"][dark] > 0.0
    assert dark in slo["install_convergence_s"]


def test_soak_upgrade_legs():
    rep = run_fabric_soak(SoakConfig(**SMOKE))
    up = rep["upgrade"]
    assert up["rolling"]["completed"]
    assert up["rolling"]["verdict_divergence"] == 0
    assert up["rolling"]["replayed_packets"] > 0
    assert not up["aborted"]["completed"]
    assert up["aborted"]["all_on_old_epoch"]
    assert up["aborted"]["verdict_divergence"] == 0
    assert up["deadlocks"] == 0


def test_soak_is_deterministic_under_its_seed():
    a = run_fabric_soak(SoakConfig(upgrade=False, **SMOKE))
    b = run_fabric_soak(SoakConfig(upgrade=False, **SMOKE))
    # Wall-clock is the only nondeterministic block.
    a.pop("wallclock"), b.pop("wallclock")
    assert a == b


def test_soak_without_upgrade_leg():
    rep = run_fabric_soak(SoakConfig(upgrade=False, **SMOKE))
    assert "upgrade" not in rep
