"""Update-channel models for the Fig. 17 setup-time experiment.

Two ways to feed flow-mods to a switch, as in the paper:

* **CLI** (``ovs-ofctl``-style): a thin per-invocation overhead; total time
  is dominated by switch-side update processing — where ESWITCH's
  template compilation is about five times cheaper than OVS's
  transaction + revalidation machinery;
* **controller** (Ryu/ODL-style): a per-message protocol/serialization
  latency that dwarfs either switch's processing — "it is the OpenFlow
  controller, rather than ESWITCH itself, that bottlenecks update rates".

Switch-side cost comes from the switch object itself:
:func:`apply_and_cost_cycles` returns a typed
:class:`~repro.openflow.messages.FlowModReply` on **every** branch —
accepted mods carry their modeled switch cycles, rejected mods carry the
switch's error list and zero cycles. :func:`setup_time` therefore counts a
rejected mod's channel latency (the message still traveled the wire) but
none of the switch-side processing it never received.

:class:`LossyChannel` extends the fixed-latency model with message loss
and delay jitter — the substrate of the fail-static controller session
(:mod:`repro.controller.session`). It is deterministic under a seed so
soak tests replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.eswitch import ESwitch
from repro.openflow.messages import (
    ErrorMsg,
    ErrorType,
    FlowMod,
    FlowModFailed,
    FlowModFailedCode,
    FlowModReply,
)
from repro.ovs.switch import OvsSwitch
from repro.simcpu.platform import Platform, XEON_E5_2620


@dataclass(frozen=True)
class UpdateChannel:
    """A flow-mod delivery path with a fixed per-message latency."""

    name: str
    per_message_s: float


CLI_CHANNEL = UpdateChannel("CLI", per_message_s=150e-6)
CONTROLLER_CHANNEL = UpdateChannel("ctrl", per_message_s=1e-3)

#: vswitchd work per flow-mod: ofproto transaction, classifier insertion,
#: and kicking the revalidators (calibrated to the ~5x CLI gap of Fig. 17).
OVS_FLOW_MOD_CYCLES = 1.2e6


@dataclass
class LossyChannel:
    """A controller↔switch link that loses and delays messages.

    Each :meth:`deliver` models one message crossing the link: it returns
    the one-way latency in seconds, or None when the message was lost.
    Deterministic for a given ``seed`` and call sequence, so fault soaks
    replay bit-for-bit.

    Attributes:
        loss: per-message drop probability (0 = reliable).
        delay_s: base one-way latency.
        jitter_s: maximum uniform jitter added on top of ``delay_s``.
    """

    loss: float = 0.0
    delay_s: float = CONTROLLER_CHANNEL.per_message_s
    jitter_s: float = 0.0
    seed: int = 0
    messages: int = field(default=0, init=False)
    lost: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.delay_s < 0 or self.jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        self._rng = random.Random(self.seed)

    def deliver(self) -> "float | None":
        """One message crossing: latency in seconds, or None if lost."""
        self.messages += 1
        if self.loss and self._rng.random() < self.loss:
            self.lost += 1
            return None
        latency = self.delay_s
        if self.jitter_s:
            latency += self._rng.random() * self.jitter_s
        return latency


RELIABLE_CHANNEL = LossyChannel(loss=0.0, delay_s=0.0, jitter_s=0.0)


def apply_and_cost_cycles(switch, mod: FlowMod) -> FlowModReply:
    """Apply one flow-mod; return a typed accept/reject reply + cycles.

    Every branch propagates a :class:`FlowModReply`: switches with
    admission control (``submit_flow_mods``) answer through it; legacy
    ``apply_flow_mod``-only switches get their exceptions converted to
    typed rejections here, so a malformed mod can never crash a setup-time
    sweep or a controller session.
    """
    submit = getattr(switch, "submit_flow_mods", None)
    if submit is not None:
        return submit([mod])
    try:
        if isinstance(switch, ESwitch):
            return FlowModReply(accepted=True, cycles=switch.apply_flow_mod(mod))
        switch.apply_flow_mod(mod)
    except FlowModFailed as exc:
        return FlowModReply(accepted=False, errors=(exc.error,))
    except Exception as exc:
        return FlowModReply(
            accepted=False,
            errors=(
                ErrorMsg(
                    ErrorType.FLOW_MOD_FAILED,
                    FlowModFailedCode.UNKNOWN,
                    f"{type(exc).__name__}: {exc}",
                    data=mod,
                ),
            ),
        )
    if isinstance(switch, OvsSwitch):
        return FlowModReply(accepted=True, cycles=OVS_FLOW_MOD_CYCLES)
    return FlowModReply(accepted=True, cycles=0.0)


def setup_time(
    switch,
    mods: Sequence[FlowMod],
    channel: UpdateChannel,
    platform: Platform = XEON_E5_2620,
) -> float:
    """Total seconds to push ``mods`` through ``channel`` into ``switch``.

    A rejected mod still pays the channel's per-message latency (the
    message traveled and the error reply came back) but contributes no
    switch-side cycles — the switch refused it at admission.
    """
    cycles = 0.0
    for mod in mods:
        reply = apply_and_cost_cycles(switch, mod)
        cycles += reply.cycles
    return len(mods) * channel.per_message_s + cycles / platform.freq_hz
