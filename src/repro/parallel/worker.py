"""The shard worker: one datapath replica, one command channel.

Each worker owns a **private** fused :class:`ESwitch` replica built from
a pickled pipeline snapshot — shared-nothing by construction, whether
the worker is a forked process or (fallback) a thread. The loop serves
the engine's commands:

``("burst", epoch, mode, wires)``
    Run one RSS sub-burst through the replica. ``mode`` is ``"null"``
    (functional, :data:`NULL_METER`) or ``"cycle"`` (the worker's
    persistent per-core :class:`CycleMeter` — private caches, exactly
    the per-core meters :func:`repro.traffic.measure_multicore` models).
    Replies ``("burst", epoch, verdicts, cycles, packets, llc, deltas)``
    with the meter deltas (``cycles`` is None in null mode) and the
    flow-counter deltas of every logical entry the burst touched (see
    :func:`repro.parallel.wire.counter_deltas` — what makes engine-side
    flow stats exact across worker deaths). The reply echoes the
    worker's *applied* epoch so the engine can prove no gathered burst
    mixed pipeline generations.

``("mods", epoch, flow_mods)``
    Apply a flow-mod batch transactionally, then **stand the new
    generation up** (flush deferred rebuilds, re-fuse) before acking —
    the ack is the worker's half of the epoch barrier, so by the time
    the engine releases the next burst every replica is already serving
    the new fused datapath.

``("stats",)``
    Ship the replica's :class:`BurstStats` and its per-entry flow
    counters (addressed by logical table position, see
    :mod:`repro.parallel.wire`). The engine keeps its own fault-proof
    ledgers and uses this only as a cross-check / debug pull.

``("reset_stats",)`` / ``("ping",)`` / ``("stop",)``
    Housekeeping; ``ping`` echoes the applied epoch (the engine's
    deadline-bounded liveness probe).

Any exception is caught and reported as ``("error", message, traceback)``
— the loop keeps serving, the engine decides whether to raise.

Supervision hooks: a worker is spawned with its shard ``index``, a
``start_epoch`` (a respawned replacement is forked from the engine's
shadow snapshot *at the current epoch*, so it never replays history),
and an optional :class:`~repro.parallel.faults.FaultInjector` whose
armed plan fires deterministically before/after each command — a
``kill`` there ends the worker the way a crash would: process workers
``os._exit`` (no cleanup, no reply), thread workers close their channel
and return, and in both cases the engine observes a dead channel.
"""

from __future__ import annotations

import os
import pickle
import traceback

from repro.core.analysis import CompileConfig
from repro.core.eswitch import ESwitch
from repro.parallel.faults import NO_FAULTS, WorkerKilled
from repro.parallel.wire import (
    EntryIndexCache,
    counter_deltas,
    decode_packets,
    encode_verdicts,
)
from repro.simcpu.recorder import CycleMeter, NULL_METER


def _die(conn) -> None:
    """End this worker the way a crash would (no reply, dead channel)."""
    if isinstance(conn, ThreadChannel):
        conn.close()  # the engine's next recv on its end raises EOFError
        return
    os._exit(13)  # a process worker dies for real: no atexit, no flush


def shard_worker_main(
    conn,
    pipeline_blob: bytes,
    config: CompileConfig,
    costs,
    platform,
    index: int = 0,
    start_epoch: int = 0,
    injector=None,
    generation: int = 0,
) -> None:
    """Entry point of one shard worker (process target or thread body)."""
    faults = injector.arm(index, generation) if injector is not None else NO_FAULTS
    try:
        faults.fire("spawn", "before")
        pipeline = pickle.loads(pipeline_blob)
        switch = ESwitch(pipeline, config=config, costs=costs)
        switch.warm()  # replica construction includes the fused driver
        cache = EntryIndexCache(switch.pipeline)
        meter = CycleMeter(platform)
        epoch = start_epoch
        # id(entry) -> counters already reported. Seeded with the
        # snapshot's baseline: pre-existing history is the engine
        # ledger's business, only counts earned HERE ship as deltas.
        shipped: dict = {
            id(entry): (entry.counters.packets, entry.counters.bytes)
            for table in switch.pipeline
            for entry in table.entries
            if entry.counters.packets or entry.counters.bytes
        }
        faults.fire("spawn", "after")
        conn.send(("ready", epoch))
    except WorkerKilled:
        _die(conn)
        return
    except Exception as exc:  # pragma: no cover - construction failures
        conn.send(("error", repr(exc), traceback.format_exc()))
        return

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        cmd = msg[0]
        try:
            faults.fire(cmd, "before")
            if cmd == "burst":
                _, burst_epoch, mode, wires = msg
                if burst_epoch != epoch:
                    conn.send((
                        "error",
                        f"epoch desync: burst tagged {burst_epoch}, "
                        f"replica at {epoch}",
                        "",
                    ))
                    continue
                pkts = decode_packets(wires)
                if mode == "null":
                    verdicts = switch.process_burst(pkts, NULL_METER)
                    reply = (
                        "burst",
                        epoch,
                        encode_verdicts(verdicts, cache),
                        None,
                        len(pkts),
                        0,
                        counter_deltas(verdicts, cache, shipped),
                    )
                else:
                    cycles0 = meter.total_cycles
                    llc0 = meter.cache.stats.llc_misses
                    verdicts = switch.process_burst(pkts, meter)
                    reply = (
                        "burst",
                        epoch,
                        encode_verdicts(verdicts, cache),
                        meter.total_cycles - cycles0,
                        len(pkts),
                        meter.cache.stats.llc_misses - llc0,
                        counter_deltas(verdicts, cache, shipped),
                    )
                faults.fire(cmd, "after")
                conn.send(reply)
            elif cmd == "mods":
                _, new_epoch, mods = msg
                cycles = switch.apply_flow_mods(mods)
                # Swap in the new generation *inside* the barrier: the
                # ack promises the replica's fused datapath is current.
                switch.warm()
                epoch = new_epoch
                # Flow-mods can swap entry objects; prune the shipped
                # baselines so a recycled id() can't corrupt deltas.
                live_index, _ = cache.maps()
                shipped = {
                    eid: val for eid, val in shipped.items() if eid in live_index
                }
                faults.fire(cmd, "after")
                conn.send(("mods", epoch, cycles))
            elif cmd == "stats":
                counters = []
                for table in switch.pipeline:
                    for idx, entry in enumerate(table.entries):
                        c = entry.counters
                        if c.packets or c.bytes:
                            counters.append(
                                (table.table_id, idx, c.packets, c.bytes)
                            )
                faults.fire(cmd, "after")
                conn.send(("stats", switch.burst_stats, counters))
            elif cmd == "reset_stats":
                switch.burst_stats.reset()
                meter.reset()
                shipped = {}
                for table in switch.pipeline:
                    for entry in table.entries:
                        entry.counters.packets = 0
                        entry.counters.bytes = 0
                conn.send(("ok",))
            elif cmd == "ping":
                faults.fire(cmd, "after")
                conn.send(("pong", epoch))
            elif cmd == "stop":
                conn.send(("ok",))
                return
            else:
                conn.send(("error", f"unknown command {cmd!r}", ""))
        except WorkerKilled:
            _die(conn)
            return
        except Exception as exc:
            # A hung worker may wake after the engine reaped its channel;
            # reporting then fails too, and the worker just winds down.
            try:
                conn.send(("error", repr(exc), traceback.format_exc()))
            except (OSError, BrokenPipeError):
                return


_NOTHING = object()


class ThreadChannel:
    """A duplex, Connection-shaped channel over two queues (thread mode).

    Objects still cross by value: sends pickle and receives unpickle, so
    a thread worker is exactly as shared-nothing as a process worker —
    the only difference is the GIL (correctness everywhere, speedup only
    with processes). Like ``multiprocessing.Connection`` it supports
    ``poll(timeout)``, which is what the engine's RPC deadlines bound.
    """

    def __init__(self, inbox, outbox):
        self._inbox = inbox
        self._outbox = outbox
        self._peeked = _NOTHING

    def send(self, obj) -> None:
        self._outbox.put(pickle.dumps(obj))

    def poll(self, timeout: "float | None" = None) -> bool:
        """True when a message (or EOF) is ready within ``timeout``."""
        import queue

        if self._peeked is not _NOTHING:
            return True
        try:
            self._peeked = (
                self._inbox.get(timeout=timeout)
                if timeout is not None
                else self._inbox.get_nowait()
            )
        except queue.Empty:
            return False
        return True

    def recv(self):
        if self._peeked is not _NOTHING:
            blob, self._peeked = self._peeked, _NOTHING
        else:
            blob = self._inbox.get()
        if blob is None:
            raise EOFError
        return pickle.loads(blob)

    def close(self) -> None:
        self._outbox.put(None)


def thread_channel_pair() -> tuple[ThreadChannel, ThreadChannel]:
    """(engine side, worker side) of one duplex thread channel."""
    import queue

    a, b = queue.Queue(), queue.Queue()
    return ThreadChannel(a, b), ThreadChannel(b, a)
