"""DIR-24-8 longest prefix match — a reimplementation of DPDK's ``rte_lpm``.

The structure holds a direct-indexed table over the top 24 address bits
(``tbl24``) plus overflow groups of 256 entries for deeper prefixes
(``tbl8``). A lookup costs one memory access for prefixes up to /24 and two
for longer ones — exactly the 1-or-2 access profile the paper's LPM cost
atom charges (``13 + 2*Lx`` cycles, Fig. 20).

Incremental add/delete follow the DPDK algorithm: each entry remembers the
depth of the rule that wrote it, so a new rule only overwrites entries
written by shorter prefixes, and deletion substitutes the next-shorter
covering rule.

Entry encoding (numpy ``int32``): ``0`` invalid, ``> 0`` next hop + 1,
``< 0`` extended — ``-(tbl8 group + 1)``.
"""

from __future__ import annotations

import numpy as np

TBL8_GROUP_SIZE = 256
#: 4-byte entries per 64-byte cache line — for cache-simulator line ids.
ENTRIES_PER_LINE = 16


class LpmFullError(RuntimeError):
    """No free tbl8 groups remain."""


class Dir24_8Lpm:
    """DIR-24-8 LPM table over 32-bit keys.

    Args:
        max_tbl8_groups: number of overflow groups for /25+ prefixes.
    """

    def __init__(self, max_tbl8_groups: int = 256):
        self._tbl24 = np.zeros(1 << 24, dtype=np.int32)
        self._tbl24_depth = np.zeros(1 << 24, dtype=np.uint8)
        self._tbl8 = np.zeros(max_tbl8_groups * TBL8_GROUP_SIZE, dtype=np.int32)
        self._tbl8_depth = np.zeros(max_tbl8_groups * TBL8_GROUP_SIZE, dtype=np.uint8)
        self._tbl8_used = [False] * max_tbl8_groups
        self._rules: dict[tuple[int, int], int] = {}  # (prefix, depth) -> next hop

    # -- rule management ----------------------------------------------------

    def add(self, ip: int, depth: int, next_hop: int) -> None:
        """Insert (or update) the rule ``ip/depth -> next_hop``."""
        self._check(ip, depth)
        if next_hop < 0:
            raise ValueError("next hop must be non-negative")
        prefix = self._prefix(ip, depth)
        self._rules[(prefix, depth)] = next_hop
        if depth <= 24:
            self._add_depth_small(prefix, depth, next_hop)
        else:
            self._add_depth_big(prefix, depth, next_hop)

    def delete(self, ip: int, depth: int) -> bool:
        """Remove the rule ``ip/depth``. Returns False if it did not exist."""
        self._check(ip, depth)
        prefix = self._prefix(ip, depth)
        if (prefix, depth) not in self._rules:
            return False
        del self._rules[(prefix, depth)]
        parent = self._find_parent(prefix, depth)
        if parent is None:
            sub_hop, sub_depth = 0, 0  # invalidate
            sub_valid = False
        else:
            (_, sub_depth), sub_hop = parent
            sub_valid = True
        if depth <= 24:
            self._delete_depth_small(prefix, depth, sub_valid, sub_hop, sub_depth)
        else:
            self._delete_depth_big(prefix, depth, sub_valid, sub_hop, sub_depth)
        return True

    def get_rule(self, ip: int, depth: int) -> "int | None":
        """The next hop stored for exactly ``ip/depth`` (no LPM semantics)."""
        self._check(ip, depth)
        return self._rules.get((self._prefix(ip, depth), depth))

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> dict[tuple[int, int], int]:
        """A copy of the rule set as ``{(prefix, depth): next_hop}``."""
        return dict(self._rules)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, ip: int) -> "int | None":
        """Longest-prefix match; returns the next hop or None."""
        entry = int(self._tbl24[ip >> 8])
        if entry > 0:
            return entry - 1
        if entry == 0:
            return None
        group = -entry - 1
        sub = int(self._tbl8[group * TBL8_GROUP_SIZE + (ip & 0xFF)])
        return sub - 1 if sub > 0 else None

    def lookup_traced(self, ip: int) -> tuple["int | None", tuple[int, ...]]:
        """Lookup plus the abstract cache-line ids it touched.

        Line-id namespaces: tbl24 lines are non-negative, tbl8 lines are
        offset past the tbl24 range — disjoint addresses for the cache
        simulator.
        """
        idx24 = ip >> 8
        lines = [idx24 // ENTRIES_PER_LINE]
        entry = int(self._tbl24[idx24])
        if entry > 0:
            return entry - 1, (lines[0],)
        if entry == 0:
            return None, (lines[0],)
        group = -entry - 1
        idx8 = group * TBL8_GROUP_SIZE + (ip & 0xFF)
        tbl8_line = (1 << 24) // ENTRIES_PER_LINE + idx8 // ENTRIES_PER_LINE
        sub = int(self._tbl8[idx8])
        return (sub - 1 if sub > 0 else None), (lines[0], tbl8_line)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check(ip: int, depth: int) -> None:
        if not 0 <= ip < (1 << 32):
            raise ValueError(f"IPv4 key out of range: {ip:#x}")
        if not 1 <= depth <= 32:
            raise ValueError(f"depth out of range: {depth}")

    @staticmethod
    def _prefix(ip: int, depth: int) -> int:
        mask = ((1 << depth) - 1) << (32 - depth)
        return ip & mask

    def _find_parent(self, prefix: int, depth: int) -> "tuple[tuple[int, int], int] | None":
        """The longest remaining rule strictly shorter than ``depth`` covering it."""
        for d in range(depth - 1, 0, -1):
            candidate = self._prefix(prefix, d)
            hop = self._rules.get((candidate, d))
            if hop is not None:
                return (candidate, d), hop
        return None

    def _add_depth_small(self, prefix: int, depth: int, next_hop: int) -> None:
        start = prefix >> 8
        count = 1 << (24 - depth)
        t24 = self._tbl24[start : start + count]
        d24 = self._tbl24_depth[start : start + count]
        # Extended entries (rare) are walked one by one; the rest vectorize.
        for off in np.nonzero(t24 < 0)[0]:
            group = -int(t24[off]) - 1
            base = group * TBL8_GROUP_SIZE
            sel = self._tbl8_depth[base : base + TBL8_GROUP_SIZE] <= depth
            self._tbl8[base : base + TBL8_GROUP_SIZE][sel] = next_hop + 1
            self._tbl8_depth[base : base + TBL8_GROUP_SIZE][sel] = depth
        sel24 = (t24 >= 0) & (d24 <= depth)
        t24[sel24] = next_hop + 1
        d24[sel24] = depth

    def _add_depth_big(self, prefix: int, depth: int, next_hop: int) -> None:
        idx24 = prefix >> 8
        entry = int(self._tbl24[idx24])
        if entry >= 0:
            group = self._alloc_tbl8()
            base = group * TBL8_GROUP_SIZE
            # Seed the group with the shallower tbl24 entry it replaces.
            self._tbl8[base : base + TBL8_GROUP_SIZE] = entry
            self._tbl8_depth[base : base + TBL8_GROUP_SIZE] = (
                self._tbl24_depth[idx24] if entry > 0 else 0
            )
            self._tbl24[idx24] = -(group + 1)
            self._tbl24_depth[idx24] = 0
        else:
            group = -entry - 1
            base = group * TBL8_GROUP_SIZE
        low = prefix & 0xFF
        count = 1 << (32 - depth)
        sel = self._tbl8_depth[base + low : base + low + count] <= depth
        self._tbl8[base + low : base + low + count][sel] = next_hop + 1
        self._tbl8_depth[base + low : base + low + count][sel] = depth

    def _delete_depth_small(
        self, prefix: int, depth: int, sub_valid: bool, sub_hop: int, sub_depth: int
    ) -> None:
        start = prefix >> 8
        count = 1 << (24 - depth)
        new24 = sub_hop + 1 if sub_valid else 0
        t24 = self._tbl24[start : start + count]
        d24 = self._tbl24_depth[start : start + count]
        for off in np.nonzero(t24 < 0)[0]:
            group = -int(t24[off]) - 1
            base = group * TBL8_GROUP_SIZE
            sel = self._tbl8_depth[base : base + TBL8_GROUP_SIZE] == depth
            self._tbl8[base : base + TBL8_GROUP_SIZE][sel] = new24
            self._tbl8_depth[base : base + TBL8_GROUP_SIZE][sel] = sub_depth
            self._maybe_recycle(start + int(off), group)
        sel24 = (t24 >= 0) & (d24 == depth)
        t24[sel24] = new24
        d24[sel24] = sub_depth

    def _delete_depth_big(
        self, prefix: int, depth: int, sub_valid: bool, sub_hop: int, sub_depth: int
    ) -> None:
        idx24 = prefix >> 8
        entry = int(self._tbl24[idx24])
        if entry >= 0:
            return  # rule was never materialized (shouldn't happen)
        group = -entry - 1
        base = group * TBL8_GROUP_SIZE
        low = prefix & 0xFF
        count = 1 << (32 - depth)
        sel = self._tbl8_depth[base + low : base + low + count] == depth
        self._tbl8[base + low : base + low + count][sel] = sub_hop + 1 if sub_valid else 0
        self._tbl8_depth[base + low : base + low + count][sel] = sub_depth
        self._maybe_recycle(idx24, group)

    def _alloc_tbl8(self) -> int:
        for group, used in enumerate(self._tbl8_used):
            if not used:
                self._tbl8_used[group] = True
                return group
        raise LpmFullError("out of tbl8 groups")

    def _maybe_recycle(self, idx24: int, group: int) -> None:
        """Collapse a tbl8 group back into tbl24 if it became uniform."""
        base = group * TBL8_GROUP_SIZE
        values = self._tbl8[base : base + TBL8_GROUP_SIZE]
        depths = self._tbl8_depth[base : base + TBL8_GROUP_SIZE]
        if not bool((depths > 24).any()):
            first = int(values[0])
            if bool((values == first).all()) and bool((depths == depths[0]).all()):
                self._tbl24[idx24] = first
                self._tbl24_depth[idx24] = int(depths[0])
                values[:] = 0
                depths[:] = 0
                self._tbl8_used[group] = False
