"""Fail-secure × resync: what an outage costs, and what recovery owes.

OpenFlow 1.3 §6.4 fail-secure during a declared outage: packets that
would go to the controller are **dropped**, not queued — the punt queue
must stay empty and nothing may be replayed later from stale state.
After the resync, reactive re-admission must converge the dark leaf to
exactly the table state (and verdicts) of a fabric that never
disconnected: the outage may cost packets, never correctness.
"""

import random

from repro.controller.channels import LossyChannel
from repro.controller.session import FailMode
from repro.fabric import Fabric
from repro.net.addresses import int_to_ip
from repro.packet import PacketBuilder
from repro.usecases import gateway


def reliable(role, name, index):
    return LossyChannel(loss=0.0, delay_s=1e-3, seed=3000 + index)


def make_secure():
    return Fabric(
        n_leaves=2, n_spines=1, n_ce=4, users_per_ce=4, n_prefixes=32,
        fail_mode=FailMode.SECURE, channel_for=reliable,
    )


def subscriber_pkt(ce, user, fib, rng):
    value, depth, _port = fib[rng.randrange(len(fib))]
    host_bits = 32 - depth
    dst = value | (rng.getrandbits(host_bits) if host_bits else 0)
    return (
        PacketBuilder(in_port=gateway.ACCESS_PORT)
        .eth()
        .vlan(vid=gateway.ce_vlan(ce))
        .ipv4(
            src=int_to_ip(gateway.private_ip(ce, user)),
            dst=int_to_ip(dst),
        )
        .tcp(src_port=1024 + rng.randrange(60000), dst_port=443)
        .build()
    )


def take_down(fabric, name):
    fabric.session_of(name).disconnect()
    while fabric.session_of(name).connected:
        fabric.advance(1.0)


def bring_back(fabric, name):
    fabric.session_of(name).reconnect()
    while not fabric.session_of(name).connected:
        fabric.advance(1.0)


def table_state(leaf):
    """Every (table, match, priority) triple currently installed."""
    return {
        (table.table_id, entry.match, entry.priority)
        for table in leaf.switch.pipeline.tables
        for entry in table.entries
    }


class TestFailSecureOutage:
    def test_punts_during_outage_are_dropped_not_queued(self):
        with make_secure() as fab:
            rng = random.Random(11)
            # Admit users 0-1 of CE 0 (home: leaf0) while healthy.
            fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (0, 1)
            ])
            admitted_before = set(fab.controller.admitted)
            take_down(fab, "leaf0")
            session = fab.session_of("leaf0")
            suppressed_before = session.punts_suppressed

            # Un-admitted users arrive mid-outage: fail-secure drops the
            # to-controller packets at the verdict and queues nothing.
            out = fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (2, 3)
            ])
            assert out.punted == 2
            assert out.dropped == 2, "fail-secure must kill suppressed punts"
            assert out.served == 0
            assert len(session.punt_queue) == 0, "punts were queued"
            assert session.punts_suppressed == suppressed_before + 2
            assert session.secure_drops >= 2
            # The controller never heard about them.
            assert set(fab.controller.admitted) == admitted_before

    def test_admitted_flows_keep_serving_during_secure_outage(self):
        # §6.4 fail-secure only drops the *to-controller* path; installed
        # flows keep forwarding — the outage is not a leaf blackout.
        with make_secure() as fab:
            rng = random.Random(12)
            fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (0, 1)
            ])
            take_down(fab, "leaf0")
            out = fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (0, 1)
            ])
            assert out.served == 2
            assert out.dropped == 0

    def test_nothing_is_replayed_at_resync(self):
        # The drop is final: recovery must not resurrect mid-outage
        # arrivals from some hidden buffer. Only fresh packets re-punt.
        with make_secure() as fab:
            rng = random.Random(13)
            take_down(fab, "leaf0")
            fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (0, 1)
            ])
            bring_back(fab, "leaf0")
            assert fab.session_of("leaf0").resyncs == 1
            # No queued punt was delivered at recovery -> not admitted.
            assert (0, 0) not in fab.controller.admitted
            assert (0, 1) not in fab.controller.admitted
            ce_table = fab.leaf("leaf0").switch.pipeline.get_or_create(
                gateway.CE_TABLE_BASE + 0
            )
            assert not ce_table.entries


class TestResyncParity:
    def _drive(self, fab, blackout: bool):
        """One deterministic schedule; optionally a mid-schedule outage.

        Returns the final probe's verdict summaries. The rng is owned by
        the caller's fabric so packet bytes are identical across runs.
        """
        rng = random.Random(99)
        waves = [
            [(0, 0), (0, 1), (2, 0)],     # pre-outage arrivals
            [(0, 2), (2, 1)],             # arrive mid-outage (if any)
            [(0, 3), (2, 2)],             # post-recovery arrivals
        ]
        for i, wave in enumerate(waves):
            if blackout and i == 1:
                take_down(fab, "leaf0")
            pkts = [subscriber_pkt(ce, u, fab.fib, rng) for ce, u in wave]
            fab.inject("leaf0", pkts)
            if blackout and i == 1:
                bring_back(fab, "leaf0")
                assert fab.session_of("leaf0").resyncs == 1
        # Convergence round: every subscriber sends again; mid-outage
        # arrivals re-punt and get admitted now.
        all_subs = [s for wave in waves for s in wave]
        fab.inject(
            "leaf0", [subscriber_pkt(ce, u, fab.fib, rng) for ce, u in all_subs]
        )
        probe = [subscriber_pkt(ce, u, fab.fib, rng) for ce, u in all_subs]
        return [
            v.summary()
            for v in fab.leaf("leaf0").switch.process_burst(probe)
        ]

    def test_post_resync_state_equals_never_disconnected_run(self):
        with make_secure() as healthy, make_secure() as outaged:
            baseline = self._drive(healthy, blackout=False)
            recovered = self._drive(outaged, blackout=True)
            assert baseline == recovered, (
                "post-resync verdicts diverge from the never-disconnected run"
            )
            assert table_state(outaged.leaf("leaf0")) == table_state(
                healthy.leaf("leaf0")
            ), "post-resync table state diverges"
            assert set(outaged.controller.admitted) == set(
                healthy.controller.admitted
            )

    def test_outage_cost_is_packets_not_correctness(self):
        # The outaged run dropped the mid-outage wave (fail-secure) but
        # test_post_resync_* proved the end state converged: quantify
        # the cost side here so the invariant is pinned from both ends.
        with make_secure() as fab:
            rng = random.Random(99)
            take_down(fab, "leaf0")
            out = fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (0, 1, 2)
            ])
            assert out.dropped == 3
            bring_back(fab, "leaf0")
            out2 = fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (0, 1, 2)
            ])
            assert out2.punted == 3 and out2.dropped == 0
            out3 = fab.inject("leaf0", [
                subscriber_pkt(0, u, fab.fib, rng) for u in (0, 1, 2)
            ])
            assert out3.served == 3
