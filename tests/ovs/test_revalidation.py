"""Tests for the partial-invalidation (revalidation) mode."""

import pytest

from repro.openflow.actions import Output
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.usecases import firewall, l3


def http_pkt(src="198.51.100.9"):
    return (PacketBuilder(in_port=firewall.EXTERNAL).eth()
            .ipv4(src=src, dst=firewall.SERVER_IP).tcp(dst_port=80).build())


class TestRevalidateMode:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            OvsSwitch(firewall.build_single_stage(), invalidation="bogus")

    def test_unrelated_update_keeps_cache(self):
        sw = OvsSwitch(firewall.build_single_stage(), invalidation="revalidate")
        sw.process(http_pkt())
        assert len(sw.megaflow) == 1
        # A rule for a totally different destination does not overlap.
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, 0, Match(ipv4_dst="203.0.113.7"),
                    priority=25, instructions=(ApplyActions([Output(9)]),))
        )
        assert len(sw.megaflow) == 1
        sw.process(http_pkt())
        assert sw.stats.microflow_hits == 1  # still cached

    def test_overlapping_update_kills_entry(self):
        sw = OvsSwitch(firewall.build_single_stage(), invalidation="revalidate")
        sw.process(http_pkt())
        sw.apply_flow_mod(
            FlowMod(
                FlowModCommand.ADD, 0,
                Match(ipv4_dst=firewall.SERVER_IP, tcp_dst=80),
                priority=40,  # outranks the old rule: behavior changes
                instructions=(ApplyActions([Output(7)]),),
            )
        )
        assert len(sw.megaflow) == 0
        # The next packet relearns the new behavior.
        assert sw.process(http_pkt()).output_ports == [7]

    def test_full_mode_still_flushes_everything(self):
        sw = OvsSwitch(firewall.build_single_stage(), invalidation="full")
        sw.process(http_pkt())
        sw.apply_flow_mod(
            FlowMod(FlowModCommand.ADD, 0, Match(ipv4_dst="203.0.113.7"),
                    priority=25, instructions=(ApplyActions([Output(9)]),))
        )
        assert len(sw.megaflow) == 0

    def test_revalidation_correctness_under_route_churn(self):
        """Partial invalidation must never serve stale decisions."""
        p, fib = l3.build(60)
        sw = OvsSwitch(l3.build(60)[0], invalidation="revalidate")
        flows = l3.traffic(fib, 20)
        for i in range(20):
            sw.process(flows[i].copy())
        # Install a more specific route shadowing one flow's prefix.
        value, depth, _port = fib[0]
        from repro.net.addresses import int_to_ip

        new_depth = min(depth + 4, 32)
        mod = FlowMod(
            FlowModCommand.ADD, 0,
            Match(ipv4_dst=f"{int_to_ip(value)}/{new_depth}"),
            priority=new_depth,
            instructions=(ApplyActions([Output(15)]),),
        )
        sw.apply_flow_mod(mod)
        p.table(0).add(mod.to_entry())  # mirror into the oracle pipeline
        for i in range(20):
            pkt = flows[i]
            assert (sw.process(pkt.copy()).summary()
                    == p.process(pkt.copy()).summary()), i
