"""ShardedESwitch: N replicas, one facade — scatter, gather, epoch-sync,
and a supervision layer that keeps the facade standing when replicas die.

The engine owns:

* **N shard workers** (processes when the platform allows, threads as a
  degraded-but-correct fallback), each running a private fused
  :class:`ESwitch` replica (:mod:`repro.parallel.worker`);
* a **shadow replica** in the engine's own process — the authoritative
  control-plane state. Flow-mods apply to the shadow *first* (its
  transactional semantics validate the batch before anything is
  broadcast), inspection (``table_kinds``, flow stats) reads it, and
  gathered verdict paths re-bind to its entries;
* the **RSS scatter** (:mod:`repro.parallel.rss`): each packet of a
  burst hashes through an indirection table to a shard, sub-bursts ship
  to the workers, and verdicts gather back **in input order** — callers
  see exactly the ``process_burst`` contract of a single switch;
* the **epoch barrier**: every ``apply_flow_mod(s)`` broadcast bumps the
  engine epoch and blocks until all workers ack — and a worker only
  acks after its replica has applied the batch, flushed deferred
  rebuilds, and re-fused. Bursts are tagged with the engine epoch and
  workers refuse mismatched tags, so **no gathered burst can mix
  verdicts from two pipeline generations** (Section 3.4's atomic
  non-destructive update story, extended across cores).

Supervision (what makes the facade *fault-tolerant*):

* every pipe round-trip — burst, flow-mod broadcast, liveness ping,
  stats pull — is **deadline-bounded** (``rpc_deadline`` seconds);
  a worker that neither answers nor dies within the deadline is
  treated exactly like a dead one: reaped and never spoken to again
  (a late reply from a zombie must never poison the stream);
* a dead or deadline-blown worker is **respawned** from a snapshot of
  the shadow pipeline *at the engine's current epoch* — replacements
  are born current and never replay history. During a flow-mod
  broadcast the shadow has already applied the batch, so a worker that
  dies *inside* the barrier is replaced by one born at the new epoch
  with the full batch applied: the barrier cannot wedge and no
  half-applied generation can ack;
* a sub-burst lost to a fault is **retried with bounded backoff** —
  re-scattered through the (possibly remapped) RSS table onto the
  respawned worker or the survivors — so callers still see the
  single-switch contract. Metering stays exact: a failed attempt never
  shipped its meter delta, so only the successful attempt is absorbed;
* after ``max_respawns`` failed resurrections a shard slot **degrades**:
  its RSS slots remap over the survivors
  (:class:`~repro.parallel.rss.RssIndirection`) and the engine keeps
  serving, surfacing the state through :meth:`health`.

Fault-exactness of the numbers (why a kill is unobservable in them):

* **flow counters** — every burst reply carries the per-entry counter
  deltas the sub-burst earned (:func:`repro.parallel.wire.
  counter_deltas`); the engine folds them into a ledger keyed by shadow
  entry. A worker that dies holding an unsent reply takes exactly its
  unacked deltas with it, and the retry re-earns them — so
  :meth:`sync_flow_stats` is exact across deaths, needs no RPC, and
  cannot itself fault;
* **burst telemetry** — the engine records every *acked* sub-burst into
  a per-slot :class:`BurstStats` ledger, so :meth:`merged_burst_stats`
  survives worker loss bit for bit;
* **modeled cycles** — each worker meters on its own persistent
  per-core :class:`CycleMeter`; the gather folds the acked shard deltas
  into the caller's meter via :meth:`CycleMeter.absorb`, summing with
  ``math.fsum`` so the merged total is exact and independent of shard
  enumeration order. A respawned replica starts a fresh per-core meter
  (cold private caches — a freshly booted core), and for ``workers=1``
  without faults the total is bit-identical to a single ``ESwitch``.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.core.analysis import CompileConfig, DEFAULT_CONFIG
from repro.core.eswitch import ESwitch, SwitchHealth
from repro.openflow.messages import (
    ErrorMsg,
    ErrorType,
    FlowMod,
    FlowModFailed,
    FlowModFailedCode,
    FlowModReply,
)
from repro.openflow.pipeline import Pipeline, Verdict
from repro.openflow.stats import BurstStats
from repro.packet.packet import Packet
from repro.parallel import frames, rings
from repro.parallel.rss import RssIndirection
from repro.parallel.wire import EntryIndexCache, decode_verdicts, encode_packets
from repro.parallel.worker import shard_worker_main, thread_channel_pair
from repro.simcpu.costs import CostBook, DEFAULT_COSTS
from repro.simcpu.platform import Platform, XEON_E5_2620
from repro.simcpu.recorder import Meter, NULL_METER, NullMeter


class ShardWorkerError(RuntimeError):
    """A shard worker reported an exception (its traceback is attached)."""


class WorkerDied(ShardWorkerError):
    """A worker's channel went dead mid-RPC (crash, OOM kill, exit)."""


class WorkerTimeout(ShardWorkerError):
    """A worker blew the RPC deadline (hang, livelock, swap storm)."""


class EpochSyncError(RuntimeError):
    """A gathered burst spanned two pipeline generations (should be
    impossible: the broadcast barrier exists to prevent exactly this)."""


@dataclass(frozen=True)
class EngineHealth:
    """A point-in-time snapshot of the engine's supervision telemetry."""

    workers: int                       #: configured shard count
    live_workers: int                  #: shards currently serving
    faults_detected: int               #: deaths + blown deadlines observed
    respawns: int                      #: replacement workers forked
    retries: int                       #: sub-burst re-execution rounds
    degraded_shards: tuple[int, ...]   #: slots permanently remapped away
    liveness: tuple[bool, ...]         #: per-slot: is a worker serving it
    epoch: int                         #: current pipeline generation
    #: workers that answered a broadcast with a logic error (e.g. an
    #: injected compile fault) and were replaced from the shadow.
    worker_errors: int = 0
    #: the shadow replica's own fail-static snapshot (quarantines,
    #: contained compile/fuse failures) — the control-plane half of the
    #: engine's health.
    switch_health: "SwitchHealth | None" = None
    #: resolved burst transport: ``ring`` (shared-memory frames) or
    #: ``pipe`` (pickled tuples over the control channel).
    transport: str = "pipe"

    @property
    def degraded(self) -> bool:
        # Quarantined tables degrade the whole engine (every replica runs
        # the same quarantined build); the shadow's fused_active does not —
        # the shadow is control-plane-only and fuses lazily.
        return bool(self.degraded_shards) or bool(
            self.switch_health is not None and self.switch_health.quarantined
        )

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "live_workers": self.live_workers,
            "faults_detected": self.faults_detected,
            "respawns": self.respawns,
            "retries": self.retries,
            "degraded_shards": list(self.degraded_shards),
            "liveness": list(self.liveness),
            "epoch": self.epoch,
            "worker_errors": self.worker_errors,
            "transport": self.transport,
            "switch": (
                self.switch_health.as_dict()
                if self.switch_health is not None
                else None
            ),
        }


class _ProcessShard:
    """One worker process plus its engine-side pipe end (and rings)."""

    def __init__(self, index, blob, config, costs, platform,
                 start_epoch=0, injector=None, generation=0, ring_pair=None):
        import multiprocessing as mp

        ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
        self.rings = ring_pair
        ring_names = ring_pair.names if ring_pair is not None else None
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, blob, config, costs, platform,
                  index, start_epoch, injector, generation, ring_names),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def poll(self, timeout: float) -> bool:
        return self.conn.poll(timeout)

    def alive(self) -> bool:
        return self.proc.is_alive()

    def _destroy_rings(self) -> None:
        # The engine owns the segments: unlink here so a stopped *or
        # reaped* worker never leaks /dev/shm names (teardown hygiene).
        if self.rings is not None:
            try:
                self.rings.destroy()
            except Exception:  # pragma: no cover - defensive
                pass
            self.rings = None

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        self.conn.close()
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join(timeout=5)
        self._destroy_rings()

    def reap(self) -> None:
        """Put down a dead or unresponsive worker, no questions asked."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.proc.terminate()
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.kill()
            self.proc.join(timeout=5)
        self._destroy_rings()


class _ThreadShard:
    """One worker thread plus its engine-side channel end (fallback)."""

    def __init__(self, index, blob, config, costs, platform,
                 start_epoch=0, injector=None, generation=0, ring_pair=None):
        import threading

        # Threads share the address space: the worker maps the same
        # RingPair object directly (SPSC roles touch disjoint cursors).
        self.rings = ring_pair
        self.conn, child_conn = thread_channel_pair()
        self.proc = threading.Thread(
            target=shard_worker_main,
            args=(child_conn, blob, config, costs, platform,
                  index, start_epoch, injector, generation, ring_pair),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self.proc.start()

    def poll(self, timeout: float) -> bool:
        return self.conn.poll(timeout)

    def alive(self) -> bool:
        return self.proc.is_alive()

    def _destroy_rings(self) -> None:
        if self.rings is not None:
            try:
                self.rings.destroy()
            except Exception:  # pragma: no cover - defensive
                pass
            self.rings = None

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (OSError, EOFError):
            pass
        self.proc.join(timeout=5)
        self._destroy_rings()

    def reap(self) -> None:
        # A hung thread cannot be killed; closing the channel makes its
        # next recv raise EOFError and the (daemon) thread wind down.
        self.conn.close()
        self._destroy_rings()


class _PendingBurst:
    """One submitted burst's in-flight state (the double-buffer handle).

    Returned by :meth:`ShardedESwitch.submit_burst`; opaque to callers
    except as a token for :meth:`ShardedESwitch.collect`. ``active``
    rows carry the *shard object* each lane shipped to, not just the
    slot — if supervision replaces the worker before the gather, the
    stale row is recognized (``slot.shard is not shard``) and the lane
    goes straight to the retry list instead of waiting on a replacement
    that never saw the sub-burst.
    """

    __slots__ = ("pkts", "meter", "mode", "verdicts", "deltas", "epochs",
                 "failed", "active", "gathered", "result")

    def __init__(self, pkts, meter) -> None:
        self.pkts = pkts
        self.meter = meter
        self.mode = "null"
        self.verdicts: list = []
        self.deltas: list = []          #: acked (cycles, packets, llc)
        self.epochs: list[int] = []     #: the atomicity witness
        self.failed: list[int] = []     #: input positions lost to faults
        #: (slot, shard-at-send-time, input positions, seq) per sent lane
        self.active: list = []
        self.gathered = False
        self.result: "list | None" = None


class _ShardSlot:
    """Engine-side state of one RSS shard position.

    The slot outlives any single worker: its :class:`BurstStats` ledger
    accumulates every sub-burst the engine successfully gathered for
    this position, across respawns, and survives degradation.
    """

    __slots__ = ("index", "shard", "respawns", "stats", "degraded")

    def __init__(self, index: int, shard) -> None:
        self.index = index
        self.shard = shard          # None once degraded
        self.respawns = 0
        self.stats = BurstStats()
        self.degraded = False


class ShardedESwitch:
    """An OpenFlow switch whose datapath is N parallel fused replicas.

    Duck-type compatible with :class:`ESwitch` where the measurement
    harnesses care (``process``, ``process_burst``, ``apply_flow_mod``,
    ``apply_flow_mods``, ``burst_stats``, ``pipeline``, ``table_kinds``)
    — :func:`repro.traffic.measure` and the wall-clock rig drive it
    unchanged. Reactive ``packet_in_handler`` callbacks are deliberately
    unsupported: a controller callback would have to preempt remote
    replicas mid-burst; punted packets still come back with
    ``to_controller`` set for the caller to handle at the gather.

    Supervision knobs (see the module docstring for semantics):

    * ``rpc_deadline`` — seconds any worker round-trip may take
      (``None`` disables deadlines: block forever, pre-supervision
      behavior);
    * ``max_retries`` — re-execution rounds for a faulted sub-burst
      before the burst errors out;
    * ``retry_backoff`` — base seconds slept before a retry round,
      doubling each round (bounded exponential backoff);
    * ``max_respawns`` — replacement workers per shard slot before the
      slot degrades (0 disables respawn: first fault degrades);
    * ``fault_injector`` — a :class:`~repro.parallel.faults.
      FaultInjector` test hook wired into every worker.

    Transport (see :mod:`repro.parallel.frames` / ``rings``):

    * ``transport="auto"`` (default) puts bursts on shared-memory ring
      pairs as packed binary frames for the process backend (falling
      back to the pickled pipe when shared memory is unavailable) and
      on the pipe for the thread backend; ``"ring"``/``"pipe"`` force a
      transport (``"ring"`` raises if shared memory cannot be mapped).
      Control traffic (mods, pings, stats, errors) always rides the
      pipe — pickle survives only off the per-burst path.
    * ``ring_capacity`` — bytes per ring buffer direction.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        workers: "int | None" = None,
        *,
        config: CompileConfig = DEFAULT_CONFIG,
        costs: CostBook = DEFAULT_COSTS,
        platform: Platform = XEON_E5_2620,
        backend: str = "auto",
        transport: str = "auto",
        ring_capacity: int = rings.DEFAULT_CAPACITY,
        rss_seed: int = 0,
        rpc_deadline: "float | None" = 30.0,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        max_respawns: int = 2,
        fault_injector=None,
    ):
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        if workers < 1:
            raise ValueError("need at least one shard worker")
        if backend not in ("auto", "process", "thread"):
            raise ValueError(f"unknown backend {backend!r}")
        if transport not in ("auto", "ring", "pipe"):
            raise ValueError(f"unknown transport {transport!r}")
        if rpc_deadline is not None and rpc_deadline <= 0:
            raise ValueError("rpc_deadline must be positive (or None)")
        if max_retries < 0 or max_respawns < 0 or retry_backoff < 0:
            raise ValueError("supervision knobs must be non-negative")
        pipeline.validate()
        self.workers = workers
        self.rss_seed = rss_seed
        self.rpc_deadline = rpc_deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.max_respawns = max_respawns
        self.fault_injector = fault_injector
        self.epoch = 0
        self.burst_stats = BurstStats()
        self.faults_detected = 0
        self.respawns = 0
        self.retries = 0
        self.worker_errors = 0
        #: epochs reported by the shards of the most recent gather — the
        #: atomicity witness (all equal, and equal to ``self.epoch``).
        self.last_gather_epochs: tuple[int, ...] = ()
        blob = pickle.dumps(pipeline)
        # The shadow is built from its own snapshot: the engine never
        # mutates the caller's pipeline object.
        self.shadow = ESwitch(pickle.loads(blob), config=config, costs=costs)
        self._config, self._costs, self._platform = config, costs, platform
        self._decode_cache = EntryIndexCache(self.shadow.pipeline)
        self._rss = RssIndirection(workers, seed=rss_seed)
        #: shadow entry_id -> [packets, bytes]: flow counters earned by
        #: every *acked* sub-burst (the fault-exact statistics ledger).
        #: Seeded with the construction-time baseline so a pipeline that
        #: arrives with history keeps it (workers seed their ``shipped``
        #: baselines the same way and never re-report it).
        self._counter_ledger: dict[int, list[int]] = {
            entry.entry_id: [entry.counters.packets, entry.counters.bytes]
            for table in self.shadow.pipeline
            for entry in table.entries
            if entry.counters.packets or entry.counters.bytes
        }
        self._slots: list[_ShardSlot] = []
        self._ring_capacity = ring_capacity
        #: double-buffering state: bursts submitted but not yet collected,
        #: in submission order, plus the engine-global sequence counter
        #: that pairs ring/pipe replies with their submissions.
        self._inflight: "deque[_PendingBurst]" = deque()
        self._seq = 0
        self.backend, self.transport = self._spawn(backend, transport, blob)
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _make_shard(self, index, blob, start_epoch, generation):
        """Spawn one shard on the resolved backend/transport combo.

        Creates a fresh ring pair per worker when the transport is
        ``ring`` — respawned replacements never reuse a dead worker's
        segments (whose cursors are in an unknown state)."""
        ring_pair = None
        if self._use_rings:
            ring_pair = rings.RingPair.create(self._ring_capacity)
        cls = _ProcessShard if self._backend_kind == "process" else _ThreadShard
        try:
            return cls(index, blob, self._config, self._costs, self._platform,
                       start_epoch, self.fault_injector, generation, ring_pair)
        except BaseException:
            if ring_pair is not None:
                ring_pair.destroy()
            raise

    def _spawn(self, backend, transport, blob) -> "tuple[str, str]":
        kinds = ["process", "thread"] if backend == "auto" else [backend]
        combos: list[tuple[str, bool]] = []
        for kind in kinds:
            if transport == "ring":
                wants = [True]
            elif transport == "pipe":
                wants = [False]
            else:  # auto: rings for processes, pipe for threads
                wants = [True, False] if kind == "process" else [False]
            combos.extend((kind, w) for w in wants)
        shm_ok = rings.shared_memory_available() if any(
            w for _k, w in combos
        ) else False
        combos = [(k, w) for k, w in combos if not w or shm_ok]
        if not combos:
            raise ShardWorkerError(
                "ring transport requested but shared memory is unavailable"
            )
        last_error: "Exception | None" = None
        for kind, use_rings in combos:
            self._backend_kind = kind
            self._use_rings = use_rings
            shards: list = []
            try:
                for i in range(self.workers):
                    shards.append(self._make_shard(i, blob, 0, 0))
                for shard in shards:
                    reply = shard.conn.recv()
                    if reply[0] != "ready":
                        raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
                self._slots = [_ShardSlot(i, s) for i, s in enumerate(shards)]
                return kind, ("ring" if use_rings else "pipe")
            except ShardWorkerError:
                for shard in shards:
                    shard.reap()
                raise  # the replica itself failed to build: not a backend issue
            except Exception as exc:  # pragma: no cover - platform dependent
                last_error = exc
                for shard in shards:
                    shard.stop()
        raise ShardWorkerError(
            f"could not start any shard backend: {last_error!r}"
        )  # pragma: no cover

    def close(self) -> None:
        """Stop all shard workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._drain_inflight()
        except Exception:  # best effort: close must not raise on a fault
            pass
        self._inflight.clear()
        for slot in self._slots:
            if slot.shard is not None:
                slot.shard.stop()
                slot.shard = None

    def __enter__(self) -> "ShardedESwitch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- supervision -------------------------------------------------------

    def health(self) -> EngineHealth:
        """The engine's current supervision telemetry snapshot."""
        liveness = tuple(slot.shard is not None for slot in self._slots)
        return EngineHealth(
            workers=self.workers,
            live_workers=sum(liveness),
            faults_detected=self.faults_detected,
            respawns=self.respawns,
            retries=self.retries,
            degraded_shards=tuple(
                slot.index for slot in self._slots if slot.degraded
            ),
            liveness=liveness,
            epoch=self.epoch,
            worker_errors=self.worker_errors,
            switch_health=self.shadow.health(),
            transport=self.transport,
        )

    def ping(self) -> dict[int, int]:
        """Deadline-bounded liveness probe: ``{slot index: applied epoch}``.

        A shard that fails the probe is handled like any other fault
        (respawn or degrade), so the returned map covers exactly the
        workers that are *proven* responsive right now.
        """
        self._drain_inflight()
        out: dict[int, int] = {}
        for slot in self._live_slots():
            try:
                slot.shard.conn.send(("ping",))
                reply = self._rpc_recv(slot)
                out[slot.index] = reply[1]
            except (WorkerDied, WorkerTimeout):
                self._handle_fault(slot, self.epoch)
        return out

    def _live_slots(self) -> list[_ShardSlot]:
        return [slot for slot in self._slots if slot.shard is not None]

    def _rpc_recv(self, slot: _ShardSlot):
        """One deadline-bounded receive; raises typed supervision errors."""
        shard = slot.shard
        deadline = self.rpc_deadline
        if deadline is not None and not shard.poll(deadline):
            raise WorkerTimeout(
                f"shard {slot.index} blew the {deadline}s RPC deadline"
            )
        try:
            reply = shard.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerDied(f"shard {slot.index} died mid-RPC: {exc!r}")
        if reply[0] == "error":
            # The worker is alive and reported a logic error: that is an
            # invariant violation to raise, not a fault to supervise.
            raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
        return reply

    def _respawn_blob(self) -> bytes:
        """The shadow pipeline, counters zeroed: what a replacement runs.

        A replacement's flow counters must start from nothing — the
        engine's ledger already holds everything the dead worker acked,
        and the replica will re-earn (and re-report) only what it
        actually processes.
        """
        pl = pickle.loads(pickle.dumps(self.shadow.pipeline))
        for table in pl:
            for entry in table.entries:
                entry.counters.packets = 0
                entry.counters.bytes = 0
        return pickle.dumps(pl)

    def _handle_fault(self, slot: _ShardSlot, epoch: int) -> bool:
        """Reap a faulted worker; respawn it at ``epoch`` or degrade.

        Returns True when a replacement is serving the slot, False when
        the slot degraded (its RSS slots now route to survivors).
        """
        self.faults_detected += 1
        if slot.shard is not None:
            slot.shard.reap()
            slot.shard = None
        blob = None
        while slot.respawns < self.max_respawns:
            slot.respawns += 1
            self.respawns += 1
            if blob is None:
                blob = self._respawn_blob()
            try:
                shard = self._make_shard(
                    slot.index, blob, epoch, slot.respawns
                )
                deadline = self.rpc_deadline if self.rpc_deadline is not None else 30.0
                if not shard.poll(deadline):
                    shard.reap()
                    raise WorkerTimeout(
                        f"shard {slot.index} replacement missed the ready handshake"
                    )
                reply = shard.conn.recv()
                if reply[0] != "ready":
                    shard.reap()
                    raise ShardWorkerError(f"{reply[1]}\n{reply[2]}")
            except (WorkerDied, WorkerTimeout, EOFError, OSError,
                    rings.RingError):
                # The replacement itself failed to come up: count it and
                # spend another respawn (or fall through to degradation).
                self.faults_detected += 1
                continue
            slot.shard = shard
            return True
        self._degrade(slot)
        return False

    def _degrade(self, slot: _ShardSlot) -> None:
        """Remap a dead slot's RSS slots over the survivors — for good."""
        slot.degraded = True
        slot.shard = None
        survivors = [s.index for s in self._live_slots()]
        if not survivors:
            raise ShardWorkerError(
                "every shard worker is lost; the engine cannot degrade further"
            )
        self._rss.remap(slot.index, survivors)

    # -- the fast path -----------------------------------------------------

    def process(self, pkt: Packet, meter: Meter = NULL_METER) -> Verdict:
        """Run one packet through its RSS shard (a burst of one)."""
        return self.process_burst([pkt], meter)[0]

    def process_burst(
        self, pkts: "Sequence[Packet]", meter: Meter = NULL_METER
    ) -> list[Verdict]:
        """Scatter one burst over the shards, gather in input order.

        Survives worker faults mid-burst: lost sub-bursts are retried
        (on a respawned worker or rerouted to survivors) under bounded
        backoff, and only successfully gathered attempts contribute
        verdicts, cycles, counters, and telemetry.
        """
        return self.collect(self.submit_burst(pkts, meter))

    def submit_burst(
        self, pkts: "Sequence[Packet]", meter: Meter = NULL_METER
    ) -> "_PendingBurst":
        """Scatter a burst and return without waiting for the verdicts.

        The double-buffering half of the transport: scattering burst N+1
        while burst N is still computing keeps every shard busy across
        the gather. Pass the handle to :meth:`collect` for the verdicts;
        handles must be collected in submission order (``collect``
        drains any earlier handle first). Control-plane calls
        (flow-mods, pings, stats pulls) drain all in-flight bursts
        before touching the workers, preserving the epoch barrier.
        """
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        p = _PendingBurst(pkts, meter)
        if not pkts:
            p.gathered = True
            p.result = []
            return p
        p.mode = "null" if isinstance(meter, NullMeter) else "cycle"
        p.verdicts = [None] * len(pkts)
        self._scatter(p, range(len(pkts)))
        self._inflight.append(p)
        return p

    def collect(self, p: "_PendingBurst") -> list[Verdict]:
        """Gather a submitted burst's verdicts (in input order).

        Idempotent: collecting an already-collected handle returns the
        cached verdict list. Earlier in-flight bursts are gathered
        first — replies are strictly FIFO per worker.
        """
        if p.result is not None:
            return p.result
        while self._inflight and self._inflight[0] is not p:
            self._gather(self._inflight.popleft())
        if self._inflight and self._inflight[0] is p:
            self._inflight.popleft()
        if not p.gathered:
            self._gather(p)
        return self._finalize(p)

    def _finalize(self, p: "_PendingBurst") -> list[Verdict]:
        """Retry faulted lanes, enforce the epoch witness, absorb cycles."""
        pending = p.failed
        p.failed = []
        attempt = 0
        while pending:
            attempt += 1
            if attempt > self.max_retries:
                raise ShardWorkerError(
                    f"burst lost {len(pending)} packets to worker faults and "
                    f"exhausted {self.max_retries} retries"
                )
            self.retries += 1
            if self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            # Retries are synchronous rounds: nothing else may be in
            # flight or the re-scattered lanes would queue behind it.
            self._drain_inflight()
            self._scatter(p, pending)
            self._gather(p)
            pending = p.failed
            p.failed = []

        self.last_gather_epochs = tuple(p.epochs)
        epoch = self.epoch
        if any(e != epoch for e in p.epochs):
            raise EpochSyncError(
                f"gather saw epochs {p.epochs}, engine at {epoch}"
            )
        deltas = p.deltas
        total = math.fsum(d for d, _n, _l in deltas) if deltas else 0.0
        if deltas:
            metered_packets = sum(n for _d, n, _l in deltas)
            llc = sum(l for _d, _n, l in deltas)
            meter = p.meter
            absorb = getattr(meter, "absorb", None)
            if absorb is not None:
                absorb(total, packets=metered_packets, llc_misses=llc)
            else:  # a plain Meter: cycles arrive pre-factored
                meter.charge(total)
        self.burst_stats.record(len(p.pkts), total)
        p.result = p.verdicts
        return p.result

    def _drain_inflight(self) -> None:
        """Gather every in-flight burst (without finalizing it).

        Runs before control-plane RPCs (the pipe must hold no pending
        burst replies), before retry rounds, and on close. A drained
        burst finalizes — retries, meter absorb — when its handle is
        eventually collected.
        """
        while self._inflight:
            self._gather(self._inflight.popleft())

    def _scatter(self, p: "_PendingBurst", pending) -> None:
        """Send one round of sub-bursts; extends ``p.active``/``p.failed``."""
        pkts = p.pkts
        shard_for = self._rss.shard_for
        lanes: dict[int, list[int]] = {}
        if len(self._slots) == 1 and not self._slots[0].degraded:
            lanes[0] = list(pending)
        else:
            for i in pending:
                lanes.setdefault(shard_for(pkts[i].data), []).append(i)
        epoch = self.epoch
        # All sends before any receive: the workers run their sub-bursts
        # genuinely in parallel.
        for sidx, lane in lanes.items():
            slot = self._slots[sidx]
            seq = self._seq
            self._seq += 1
            shard = slot.shard
            try:
                self._send_burst(slot, epoch, seq, p.mode,
                                 [pkts[i] for i in lane])
            except (OSError, BrokenPipeError, ValueError, rings.RingError):
                self._handle_fault(slot, epoch)
                p.failed.extend(lane)
                continue
            p.active.append((slot, shard, lane, seq))
        p.gathered = False

    def _send_burst(self, slot, epoch, seq, mode, lane_pkts) -> None:
        """Ship one sub-burst over the slot's transport.

        Ring path: pack a binary frame and push it — zero pickle, zero
        syscalls. A frame the codec cannot express or that exceeds the
        ring's safe margin degrades to the pipe for that burst only —
        after draining the slot's in-flight lanes, so the worker never
        sees the pipe burst ahead of an earlier ring burst.
        """
        shard = slot.shard
        pair = shard.rings
        if pair is not None:
            frame = None
            try:
                frame = frames.request_from_packets(epoch, seq, mode, lane_pkts)
            except frames.FrameError:
                pass  # unpackable (oversized field): pipe fallback below
            if frame is not None and pair.req.fits(len(frame)):
                pair.req.push(frame)
                return
            self._drain_slot(slot)
        shard.conn.send(
            ("burst", epoch, mode, encode_packets(lane_pkts), seq)
        )

    def _drain_slot(self, slot) -> None:
        """Gather until ``slot`` has no in-flight lane (ordering guard)."""
        while self._inflight and any(
            s is slot for s, _sh, _l, _q in self._inflight[0].active
        ):
            self._gather(self._inflight.popleft())

    def _gather(self, p: "_PendingBurst") -> None:
        """Receive every active lane of one burst; faults feed ``p.failed``."""
        epoch = self.epoch
        cache = self._decode_cache
        for slot, shard, lane, seq in p.active:
            if slot.shard is not shard:
                # The worker this lane shipped to was reaped (a fault on
                # an earlier burst sharing the slot): the lane is lost.
                p.failed.extend(lane)
                continue
            try:
                (shard_epoch, wire_verdicts, cycles, packets, shard_llc,
                 counter_deltas) = self._recv_burst(slot, shard, seq)
            except (WorkerDied, WorkerTimeout):
                self._handle_fault(slot, epoch)
                p.failed.extend(lane)
                continue
            p.epochs.append(shard_epoch)
            for i, verdict in zip(lane, decode_verdicts(wire_verdicts, cache)):
                p.verdicts[i] = verdict
            self._absorb_counters(counter_deltas)
            slot.stats.record(len(lane), cycles if cycles is not None else 0.0)
            if cycles is not None:
                p.deltas.append((cycles, packets, shard_llc))
        p.active = []
        p.gathered = True

    def _recv_burst(self, slot, shard, seq):
        """One deadline-bounded burst receive on the slot's transport.

        Returns ``(epoch, verdict_wires, cycles, packets, llc, deltas)``
        from either a ring frame or a pipe tuple, paired to ``seq``.
        Raises the same typed supervision errors as :meth:`_rpc_recv`;
        a desynchronized sequence number or corrupt frame is treated as
        a worker fault (the replica's stream can no longer be trusted).
        """
        pair = shard.rings
        if pair is None:
            reply = self._rpc_recv(slot)
            if reply[0] != "burst" or reply[7] != seq:
                raise WorkerDied(
                    f"shard {slot.index} desynchronized: got "
                    f"{reply[0]!r}/seq {reply[7] if len(reply) > 7 else '?'}, "
                    f"expected burst/seq {seq}"
                )
            return reply[1:7]
        deadline = self.rpc_deadline
        end = None if deadline is None else time.monotonic() + deadline
        delays = (0.0, 0.0, 0.0001, 0.0005, 0.002)
        spin = 0
        while True:
            try:
                if pair.rep.readable():
                    frame = pair.rep.pop()
                    pair.rep.commit_reads()
                    if frame is not None:
                        return self._decode_rep_frame(slot, frame, seq)
            except rings.RingError as exc:
                raise WorkerDied(
                    f"shard {slot.index} reply ring failed: {exc!r}"
                )
            # Error replies (and per-burst pipe degradation) arrive on
            # the control pipe even under ring transport.
            if shard.conn.poll(0):
                reply = self._rpc_recv(slot)
                if reply[0] != "burst" or reply[7] != seq:
                    raise WorkerDied(
                        f"shard {slot.index} desynchronized on the pipe: "
                        f"got {reply[0]!r}, expected burst/seq {seq}"
                    )
                return reply[1:7]
            if not shard.alive():
                # One last look: the worker may have pushed its reply
                # and exited between our ring check and the liveness
                # probe (a drain race, not a death).
                if not pair.rep.readable() and not shard.conn.poll(0):
                    raise WorkerDied(f"shard {slot.index} died mid-burst")
                continue
            if end is not None and time.monotonic() > end:
                raise WorkerTimeout(
                    f"shard {slot.index} blew the {deadline}s RPC deadline"
                )
            time.sleep(delays[spin] if spin < len(delays) else delays[-1])
            spin += 1

    def _decode_rep_frame(self, slot, frame, seq):
        try:
            rep, _ = frames.unpack_reply(frame)
        except frames.FrameError as exc:
            raise WorkerDied(
                f"shard {slot.index} sent a corrupt reply frame: {exc!r}"
            )
        if rep.seq != seq:
            raise WorkerDied(
                f"shard {slot.index} desynchronized: reply seq {rep.seq}, "
                f"expected {seq}"
            )
        return (rep.epoch, rep.verdicts, rep.cycles, rep.packets,
                rep.llc, rep.deltas)

    def _absorb_counters(self, wire_deltas) -> None:
        """Fold one acked sub-burst's counter deltas into the ledger."""
        if not wire_deltas:
            return
        _, entries_by = self._decode_cache.maps()
        ledger = self._counter_ledger
        for ltid, idx, d_packets, d_bytes in wire_deltas:
            entries = entries_by.get(ltid)
            if entries is None or idx >= len(entries):  # pragma: no cover
                continue  # entry vanished (cannot happen within an epoch)
            cell = ledger.setdefault(entries[idx].entry_id, [0, 0])
            cell[0] += d_packets
            cell[1] += d_bytes

    # -- control plane -----------------------------------------------------

    def apply_flow_mod(self, mod: FlowMod) -> float:
        """Apply one flow-mod everywhere; one epoch, one barrier."""
        return self.apply_flow_mods([mod])

    def apply_flow_mods(self, mods: Sequence[FlowMod]) -> float:
        """Transactional batch broadcast under the epoch barrier.

        The shadow validates first: a failing batch raises here, rolls
        back locally, and is **never broadcast** — replicas cannot
        diverge through a rejected update. On success every worker
        applies the same batch, swaps its fused datapath, and acks; only
        then does the engine epoch advance and the next burst flow.

        A worker that dies or hangs *inside* the barrier cannot wedge
        it: the deadline bounds the wait, and the replacement is forked
        from the shadow — which already holds the full batch — at the
        new epoch. Every surviving and respawned worker therefore ends
        the call on the same epoch with the whole batch applied; a
        half-applied replica can only ever be a corpse.

        Returns the shadow's modeled update cost in cycles (one core's
        control-plane work, comparable to ``ESwitch.apply_flow_mods``);
        per-replica costs are summed in ``update_stats`` terms on each
        worker.
        """
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        mods = list(mods)
        if not mods:
            return 0.0
        # The barrier must not race an in-flight burst: gather first, so
        # every worker is idle and tagged with the pre-mod epoch.
        self._drain_inflight()
        cycles = self.shadow.apply_flow_mods(mods)  # validates; may raise
        self.shadow.warm()
        new_epoch = self.epoch + 1
        waiting: list[_ShardSlot] = []
        for slot in self._live_slots():
            try:
                slot.shard.conn.send(("mods", new_epoch, mods))
            except (OSError, BrokenPipeError, ValueError):
                # Died before the batch even arrived: the replacement is
                # born from the shadow at the new epoch, nothing to ack.
                self._handle_fault(slot, new_epoch)
                continue
            waiting.append(slot)
        for slot in waiting:
            try:
                reply = self._rpc_recv(slot)
            except (WorkerDied, WorkerTimeout):
                self._handle_fault(slot, new_epoch)
                continue
            except ShardWorkerError:
                # The replica errored applying a batch the shadow already
                # accepted (e.g. an injected compile fault): it is
                # logically diverged and must not serve another burst.
                # Replace it from the shadow — which holds the batch — at
                # the new epoch; the barrier still ends with every live
                # shard on the same generation.
                self.worker_errors += 1
                self._handle_fault(slot, new_epoch)
                continue
            if reply[0] != "mods" or reply[1] != new_epoch:
                raise EpochSyncError(
                    f"worker acked {reply[:2]}, expected ('mods', {new_epoch})"
                )
        self.epoch = new_epoch
        return cycles

    def admit_flow_mods(self, mods: Sequence[FlowMod]) -> list[ErrorMsg]:
        """Validate a batch against the shadow replica without touching it."""
        return self.shadow.admit_flow_mods(mods)

    def submit_flow_mods(self, mods: Sequence[FlowMod]) -> FlowModReply:
        """Admission-controlled broadcast: the control-plane entry point.

        Admission runs on the shadow replica first; a rejected batch is
        answered with typed errors, never broadcast, and leaves the
        engine bit-untouched — the epoch does not advance and every
        worker keeps serving the prior pipeline generation, so batch
        invisibility extends across shards. An accepted batch runs the
        epoch-barrier broadcast of :meth:`apply_flow_mods`.
        """
        if self._closed:
            raise RuntimeError("ShardedESwitch is closed")
        mods = list(mods)
        if not mods:
            return FlowModReply(accepted=True)
        errors = self.shadow.admit_flow_mods(mods)
        if errors:
            return FlowModReply(accepted=False, errors=tuple(errors))
        try:
            cycles = self.apply_flow_mods(mods)
        except FlowModFailed as exc:
            return FlowModReply(accepted=False, errors=(exc.error,))
        except Exception as exc:  # contained: the control plane never raises
            return FlowModReply(
                accepted=False,
                errors=(
                    ErrorMsg(
                        ErrorType.FLOW_MOD_FAILED,
                        FlowModFailedCode.UNKNOWN,
                        f"{type(exc).__name__}: {exc}",
                    ),
                ),
            )
        return FlowModReply(accepted=True, cycles=cycles)

    # -- statistics --------------------------------------------------------

    def shard_burst_stats(self) -> list[BurstStats]:
        """Each shard slot's :class:`BurstStats` ledger (engine-side).

        The ledgers count every sub-burst the engine successfully
        gathered, so they are complete even across worker deaths,
        respawns, and degradation — a killed worker's unacked attempt
        was retried elsewhere and is counted exactly once.
        """
        return [BurstStats.merged([slot.stats]) for slot in self._slots]

    def merged_burst_stats(self) -> BurstStats:
        """All shards' burst telemetry, merged order-independently."""
        return BurstStats.merged(self.shard_burst_stats())

    def pull_worker_stats(self) -> list["BurstStats | None"]:
        """Debug pull of each live worker's *own* telemetry over the pipe.

        Deadline-bounded like every RPC; a faulted worker yields None
        (and is respawned or degraded). The engine-side ledgers are the
        authoritative numbers — this exists to cross-check them.
        """
        self._drain_inflight()
        out: list = [None] * len(self._slots)
        for slot in self._live_slots():
            try:
                slot.shard.conn.send(("stats",))
                reply = self._rpc_recv(slot)
            except (WorkerDied, WorkerTimeout, OSError, BrokenPipeError):
                self._handle_fault(slot, self.epoch)
                continue
            out[slot.index] = reply[1]
        return out

    def sync_flow_stats(self) -> None:
        """Write the counter ledger onto the shadow pipeline's entries.

        After this, ``collect_flow_stats(engine.pipeline)`` reports the
        cross-shard totals — exactly the counters a sequential run over
        the same packets would have recorded (counting is commutative,
        and the ledger absorbs only acked sub-bursts, so worker deaths
        and retries cannot skew it). Purely local: no worker RPC, no
        deadline, no fault path — safe to call from an expiry sweep at
        any time. (In-flight submitted bursts are *not* drained: their
        counters land when they are collected.)
        """
        ledger = self._counter_ledger
        for table in self.shadow.pipeline:
            for entry in table.entries:
                packets, nbytes = ledger.get(entry.entry_id, (0, 0))
                entry.counters.packets = packets
                entry.counters.bytes = nbytes

    # -- inspection (delegated to the shadow) ------------------------------

    @property
    def pipeline(self) -> Pipeline:
        return self.shadow.pipeline

    @property
    def update_stats(self):
        return self.shadow.update_stats

    def table_kinds(self) -> dict[int, str]:
        return self.shadow.table_kinds()

    def __repr__(self) -> str:
        health = self.health()
        degraded = (
            f", degraded={health.degraded_shards}" if health.degraded else ""
        )
        return (
            f"ShardedESwitch(workers={self.workers}, backend={self.backend}, "
            f"epoch={self.epoch}, live={health.live_workers}{degraded})"
        )
