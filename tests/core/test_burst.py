"""The burst execution layer: ``process_burst`` must be indistinguishable
from repeated scalar ``process`` calls (verdicts, controller interaction,
and — at the calibration burst — cycles), while amortizing the per-burst
IO framework cost and recording telemetry.
"""

import copy

import pytest
from hypothesis import given, settings, strategies as st

import strategies as sts

from repro.controller.learning_switch import LearningSwitch, build_pipeline
from repro.core import ESwitch
from repro.openflow.stats import BurstStats, collect_burst_stats
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.simcpu.platform import XEON_E5_2620
from repro.simcpu.recorder import CycleMeter
from repro.traffic import DirectSwitch, measure
from repro.usecases import l2

SWITCH_MAKERS = (
    ("eswitch", lambda p: ESwitch.from_pipeline(p)),
    ("ovs", lambda p: OvsSwitch(p)),
    ("direct", lambda p: DirectSwitch(p)),
)


def l2_packets(n=64, n_macs=50):
    _p, macs = l2.build(n_macs)
    flows = l2.traffic(macs, n)
    return [flows[i] for i in range(n)]


class TestBurstEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        pipeline=sts.pipelines(),
        pkts=st.lists(sts.packets(), min_size=1, max_size=24),
        burst=st.integers(1, 8),
    )
    def test_burst_equals_scalar(self, pipeline, pkts, burst):
        """Chunking a packet stream into bursts of any size changes no
        verdict, on any of the three datapaths."""
        for name, make in SWITCH_MAKERS:
            scalar_sw = make(copy.deepcopy(pipeline))
            burst_sw = make(copy.deepcopy(pipeline))
            scalar = [scalar_sw.process(p.copy()).summary() for p in pkts]
            bursted = []
            for i in range(0, len(pkts), burst):
                chunk = [p.copy() for p in pkts[i : i + burst]]
                bursted.extend(v.summary() for v in burst_sw.process_burst(chunk))
            assert bursted == scalar, name

    def test_reactive_updates_land_mid_burst(self):
        """A controller's flow-mods triggered by packet k must affect packet
        k+1 of the *same* burst, exactly as scalar processing would."""
        a, b = 0x0200_0000_00AA, 0x0200_0000_00BB

        def stream():
            return [
                PacketBuilder(in_port=1).eth(src=a, dst=b).build(),
                PacketBuilder(in_port=2).eth(src=b, dst=a).build(),
                # By now both stations are learned: must go unicast, which
                # only happens if the in-burst packet-ins were serviced.
                PacketBuilder(in_port=1).eth(src=a, dst=b).build(),
                PacketBuilder(in_port=2).eth(src=b, dst=a).build(),
            ]

        def run(in_bursts):
            sw = ESwitch.from_pipeline(build_pipeline())
            ctl = LearningSwitch(sw)
            sw.packet_in_handler = ctl
            pkts = stream()
            if in_bursts:
                verdicts = sw.process_burst(pkts)
            else:
                verdicts = [sw.process(p) for p in pkts]
            return [v.summary() for v in verdicts], dict(ctl.mac_table)

        scalar_verdicts, scalar_macs = run(in_bursts=False)
        burst_verdicts, burst_macs = run(in_bursts=True)
        assert burst_verdicts == scalar_verdicts
        assert burst_macs == scalar_macs == {a: 1, b: 2}
        # And the last two packets really were unicast, not flooded.
        assert burst_verdicts[2] == scalar_verdicts[2]
        assert scalar_verdicts[2] != scalar_verdicts[0]


class TestBurstCycles:
    def _run_scalar(self, pkts):
        sw = ESwitch.from_pipeline(l2.build(50)[0])
        meter = CycleMeter(XEON_E5_2620)
        for pkt in pkts:
            meter.begin_packet()
            sw.process(pkt.copy(), meter)
            meter.end_packet()
        return meter

    def _run_bursts(self, pkts, burst):
        sw = ESwitch.from_pipeline(l2.build(50)[0])
        meter = CycleMeter(XEON_E5_2620)
        for i in range(0, len(pkts), burst):
            sw.process_burst([p.copy() for p in pkts[i : i + burst]], meter)
        return meter

    def test_reference_burst_matches_scalar_cycles(self):
        """Scalar per-packet costs are calibrated at the reference burst:
        driving the same stream in bursts of 32 must cost exactly the same
        total cycles (the per-burst charge cancels the per-packet credits).
        """
        pkts = l2_packets(64)
        scalar = self._run_scalar(pkts)
        bursted = self._run_bursts(pkts, 32)
        assert bursted.total_cycles == pytest.approx(scalar.total_cycles)
        assert bursted.packets == scalar.packets == 64

    def test_small_bursts_cost_more(self):
        pkts = l2_packets(64)
        totals = {
            burst: self._run_bursts(pkts, burst).total_cycles
            for burst in (4, 16, 32)
        }
        assert totals[4] > totals[16] > totals[32]


class TestBurstTelemetry:
    def test_burst_stats_accumulate(self):
        sw = ESwitch.from_pipeline(l2.build(20)[0])
        pkts = l2_packets(12, n_macs=20)
        sw.process_burst(pkts[:8])
        sw.process_burst(pkts[8:])
        stats = sw.burst_stats
        assert stats.bursts == 2
        assert stats.packets == 12
        assert stats.histogram == {8: 1, 4: 1}
        assert stats.mean_burst_size == 6.0

    def test_burst_cycles_metered(self):
        sw = ESwitch.from_pipeline(l2.build(20)[0])
        meter = CycleMeter(XEON_E5_2620)
        sw.process_burst([p.copy() for p in l2_packets(8, n_macs=20)], meter)
        assert sw.burst_stats.cycles == pytest.approx(meter.total_cycles)
        assert sw.burst_stats.cycles_per_burst > 0

    def test_empty_burst_records_nothing(self):
        sw = ESwitch.from_pipeline(l2.build(20)[0])
        assert sw.process_burst([]) == []
        assert sw.burst_stats.bursts == 0

    def test_collect_burst_stats_duck_typed(self):
        pipeline, _ = l2.build(10)
        for _name, make in SWITCH_MAKERS:
            sw = make(copy.deepcopy(pipeline))
            assert collect_burst_stats(sw) is sw.burst_stats
        assert collect_burst_stats(object()) is None

    def test_snapshot_and_reset(self):
        stats = BurstStats()
        stats.record(32, 1000.0)
        snap = stats.snapshot()
        assert snap["bursts"] == 1
        assert snap["mean_burst_size"] == 32.0
        assert snap["cycles_per_burst"] == 1000.0
        stats.reset()
        assert stats.bursts == 0 and stats.histogram == {}


class TestMeasureBatch:
    def setup_method(self):
        _p, macs = l2.build(20)
        self.flows = l2.traffic(macs, 40)

    def test_measure_drives_real_bursts(self):
        sw = ESwitch.from_pipeline(l2.build(20)[0])
        m = measure(sw, self.flows, n_packets=400, warmup=80, batch_size=16)
        burst = m.extra["burst"]
        assert burst["bursts"] == 25  # 400 measured packets / 16
        assert burst["mean_burst_size"] == 16.0
        assert burst["cycles_per_burst"] > 0

    def test_measure_scalar_has_no_burst_extra(self):
        sw = ESwitch.from_pipeline(l2.build(20)[0])
        m = measure(sw, self.flows, n_packets=200, warmup=40)
        assert "burst" not in m.extra

    def test_measure_batch_requires_burst_driver(self):
        class ScalarOnly:
            def process(self, pkt, meter=None):
                raise AssertionError("unreachable")

        with pytest.raises(TypeError, match="process_burst"):
            measure(ScalarOnly(), self.flows, n_packets=10, warmup=0, batch_size=8)

    def test_measure_batch_must_be_positive(self):
        sw = ESwitch.from_pipeline(l2.build(20)[0])
        with pytest.raises(ValueError):
            measure(sw, self.flows, n_packets=10, warmup=0, batch_size=0)
