"""Control-plane models: reactive controllers, update channels, and the
fail-static controller session (lossy channel, §6.4 fail modes)."""

from repro.controller.channels import (
    CLI_CHANNEL,
    CONTROLLER_CHANNEL,
    LossyChannel,
    RELIABLE_CHANNEL,
    UpdateChannel,
    apply_and_cost_cycles,
    setup_time,
)
from repro.controller.gateway_controller import GatewayController
from repro.controller.learning_switch import LearningSwitch
from repro.controller.session import (
    ControllerSession,
    FailMode,
    SessionHealth,
    SessionState,
)

__all__ = [
    "UpdateChannel",
    "LossyChannel",
    "CLI_CHANNEL",
    "CONTROLLER_CHANNEL",
    "RELIABLE_CHANNEL",
    "apply_and_cost_cycles",
    "setup_time",
    "GatewayController",
    "LearningSwitch",
    "ControllerSession",
    "FailMode",
    "SessionHealth",
    "SessionState",
]
