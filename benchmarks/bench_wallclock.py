"""Wall-clock throughput of the simulator itself: fused vs trampoline vs OVS.

Unlike every ``bench_figXX`` module, which reports *modeled* Mpps, this
one times the Python datapath with a real clock. It is the first point of
the repo's own performance trajectory and the enforcement site of the
fusion layer's acceptance bar: the fused driver must beat the trampoline
by ``GATEWAY_SPEEDUP_FLOOR`` on the multi-table gateway in NullMeter
(functional) mode.

Sizes are smoke-level so the full benchmark suite (and CI) stays fast;
``repro bench --wallclock`` runs the same rig at configurable sizes.
"""

import json
import os

from figshared import RESULTS_DIR, publish, render_table
from repro.traffic.wallclock import GATEWAY_SPEEDUP_FLOOR, run_wallclock


def test_wallclock():
    doc = run_wallclock(n_flows=128, n_packets=2_000, repeats=3, warmup=512)

    rows = []
    for point in doc["points"]:
        rows.append(
            (
                point["case"],
                point["variant"],
                point["mode"],
                f"{point['wall_pps']:,.0f}",
                f"{point['usec_per_pkt']:.2f}",
                f"{point['modeled_pps'] / 1e6:.2f}" if "modeled_pps" in point else "-",
            )
        )
    publish(
        "wallclock",
        render_table(
            "Simulator wall-clock throughput (real pkts/sec; modeled Mpps "
            "is the cycle model's separate axis)",
            ("case", "variant", "mode", "wall pps", "us/pkt", "modeled Mpps"),
            rows,
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_wallclock.json"), "w") as fh:
        json.dump(doc, fh, indent=2)

    # Acceptance bar (ISSUE 2): fusion pays on the deepest pipeline.
    gateway_null = doc["speedups"]["gateway/null"]["fused_vs_trampoline"]
    assert gateway_null >= GATEWAY_SPEEDUP_FLOOR, (
        f"fused/trampoline wall-clock speedup {gateway_null:.2f}x on "
        f"gateway (null mode) is below the {GATEWAY_SPEEDUP_FLOOR}x floor"
    )
    # Fusion must never lose to the trampoline anywhere.
    for key, ratios in doc["speedups"].items():
        assert ratios["fused_vs_trampoline"] > 0.9, (key, ratios)
    # And the cycle model must be meter-independent: modeled pps identical
    # between fused and trampoline (the parity tests assert exact cycle
    # equality; this guards the benchmark wiring end to end).
    modeled = {
        (p["case"], p["variant"]): p["modeled_pps"]
        for p in doc["points"]
        if p["mode"] == "cycle" and p["variant"] in ("fused", "trampoline")
    }
    for case in ("l2", "l3", "gateway", "lb"):
        assert modeled[(case, "fused")] == modeled[(case, "trampoline")], case
