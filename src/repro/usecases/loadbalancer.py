"""The load balancer use case — Fig. 7.

A web frontend distributing HTTP traffic for ``n_services`` web services
(each at its own virtual IP) between two backends per service, chosen by
the **first bit of the source IP address**. Ingress admits only web
traffic; the reverse direction forwards unconditionally.

The natural single-table expression (Fig. 7a) matches on four columns —
``in_port``, ``ipv4_dst``, ``ipv4_src/1``, ``tcp_dst`` — with a uniform
mask per column, so a naive compiler lands the slow linked-list template
while ESWITCH's table decomposition recovers the efficient multi-stage
pipeline of Fig. 7b automatically. Both forms are built here so the
experiments can compare them.
"""

from __future__ import annotations

import random

from repro.net.addresses import int_to_ip, ip_to_int
from repro.openflow.actions import Output, SetField
from repro.openflow.flow_entry import FlowEntry
from repro.openflow.flow_table import FlowTable
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.match import Match
from repro.openflow.pipeline import Pipeline
from repro.packet.builder import PacketBuilder
from repro.traffic.flows import FlowSet

EXTERNAL = 1
INTERNAL = 2
#: mask selecting the first bit of the source address.
SRC_BIT = 1 << 31


def service_vip(i: int) -> int:
    """The virtual IP of service ``i`` (198.18.0.0/15 benchmarking space)."""
    return ip_to_int("198.18.0.0") + i


def backend_ip(i: int, half: int) -> int:
    """Backend address for service ``i``, source-bit ``half`` (0 or 1)."""
    return ip_to_int("10.128.0.0") + i * 2 + half


def build_single_table(n_services: int) -> Pipeline:
    """Fig. 7a: the whole policy in one flow table."""
    table = FlowTable(0, name="lb")
    table.add(
        FlowEntry(Match(in_port=INTERNAL), priority=500, actions=[Output(EXTERNAL)])
    )
    # Service rows are mutually disjoint (distinct VIPs; the two halves of
    # one service differ in the source bit), so they share one priority.
    for i in range(n_services):
        for half in (0, 1):
            table.add(
                FlowEntry(
                    Match(
                        in_port=EXTERNAL,
                        ipv4_dst=service_vip(i),
                        ipv4_src=(SRC_BIT if half else 0, SRC_BIT),
                        tcp_dst=80,
                    ),
                    priority=400,
                    actions=[
                        SetField("ipv4_dst", backend_ip(i, half)),
                        Output(INTERNAL),
                    ],
                )
            )
    table.add(FlowEntry(Match(), priority=0, actions=[]))  # drop the rest
    return Pipeline([table])


def build_multi_stage(n_services: int) -> Pipeline:
    """Fig. 7b: the hand-decomposed equivalent (ports → VIP → source bit)."""
    t0 = FlowTable(0, name="ports")
    t0.add(FlowEntry(Match(in_port=INTERNAL), priority=20, actions=[Output(EXTERNAL)]))
    t0.add(FlowEntry(Match(in_port=EXTERNAL), priority=10, instructions=(GotoTable(1),)))
    t0.add(FlowEntry(Match(), priority=0, actions=[]))

    t1 = FlowTable(1, name="vip")
    for i in range(n_services):
        t1.add(
            FlowEntry(
                Match(ipv4_dst=service_vip(i), tcp_dst=80),
                priority=10,
                instructions=(GotoTable(2 + i),),
            )
        )
    t1.add(FlowEntry(Match(), priority=0, actions=[]))

    tables = [t0, t1]
    for i in range(n_services):
        ti = FlowTable(2 + i, name=f"svc{i}")
        for half in (0, 1):
            ti.add(
                FlowEntry(
                    Match(ipv4_src=(SRC_BIT if half else 0, SRC_BIT)),
                    priority=1,
                    instructions=(
                        ApplyActions(
                            [SetField("ipv4_dst", backend_ip(i, half)), Output(INTERNAL)]
                        ),
                    ),
                )
            )
        tables.append(ti)
    return Pipeline(tables)


def traffic(n_services: int, n_flows: int, seed: int = 23) -> FlowSet:
    """Half the packets hit a random service over HTTP; half get dropped
    (non-HTTP ports or unknown destinations), per Section 4.1."""
    rng = random.Random(seed)

    def factory(i: int, _rng: random.Random) -> object:
        src = rng.getrandbits(32)
        sport = 1024 + rng.randrange(60000)
        if i % 2 == 0:
            dst = service_vip(rng.randrange(n_services))
            dport = 80
        elif i % 4 == 1:
            dst = service_vip(rng.randrange(n_services))
            dport = 8080  # web service, wrong port -> drop
        else:
            dst = ip_to_int("203.0.113.1") + rng.randrange(1000)  # unknown VIP
            dport = 80
        return (
            PacketBuilder(in_port=EXTERNAL)
            .eth(src="02:00:00:00:01:01", dst="02:00:00:00:01:02")
            .ipv4(src=int_to_ip(src), dst=int_to_ip(dst))
            .tcp(src_port=sport, dst_port=dport)
            .build()
        )

    return FlowSet.build(n_flows, factory, seed=seed, name=f"lb-{n_flows}flows")
