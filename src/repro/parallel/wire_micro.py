"""The serialization microbench: packed frames vs pickle, measured honestly.

One canonical burst (32 TCP/UDP packets, the wallclock rig's default
burst size) crosses the shard boundary through both stacks, end to end:

* **pickle over a pipe** — the pre-ISSUE-7 wire: ``encode_packets`` →
  ``pickle.dumps`` → ``multiprocessing.Pipe`` → ``pickle.loads`` →
  ``decode_packets`` (one syscall each way, a copy per hop);
* **frames over a ring** — the zero-copy transport: ``request_from_
  packets`` → shared-memory ring push/pop (no syscall) →
  ``unpack_request`` → ``.packets()``.

Both paths start from real :class:`Packet` objects and end with real
``Packet`` objects, so the ratio is the per-burst tax each transport
actually charges the engine — not a codec-only microbenchmark flattering
whichever side skipped its shims.  The codec-only round-trips are also
reported separately (CPython's pickle is C; a pure-Python struct codec
reaching parity there is the honest expectation — the transport win
comes from never crossing a file descriptor and acking once per burst).

``oversubscribed`` records whether the host had fewer than 2 CPUs; on
such hosts the *scaling* benches gate their speedup bars and point here:
the transport ratio below is scheduling-free evidence the zero-copy wire
is cheaper per burst regardless of core count.
"""

from __future__ import annotations

import os
import pickle
import time

from repro.packet.builder import PacketBuilder
from repro.parallel import frames, rings
from repro.parallel.wire import decode_packets, encode_packets

CANONICAL_BURST = 32
CANONICAL_PAYLOAD = 64


def canonical_burst(
    n: int = CANONICAL_BURST, payload: int = CANONICAL_PAYLOAD, seed: int = 7
) -> list:
    """The canonical burst: n small TCP/UDP packets, deterministic."""
    import random

    rng = random.Random(seed)
    pkts = []
    for i in range(n):
        b = PacketBuilder(in_port=1 + i % 4)
        b.eth(src=rng.getrandbits(46) * 4 + 2, dst=rng.getrandbits(46) * 4 + 2)
        b.ipv4(src=rng.getrandbits(32), dst=rng.getrandbits(32))
        if i % 3:
            b.tcp(src_port=1024 + i, dst_port=80)
        else:
            b.udp(src_port=1024 + i, dst_port=53)
        pkt = b.build()
        pad = payload - len(pkt.data)
        if pad > 0:
            pkt.data.extend(bytes(pad))
        pkts.append(pkt)
    return pkts


def _best_us(fn, repeats: int, inner: int = 32) -> float:
    """Best-of mean microseconds per call (min over ``repeats`` blocks)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / inner * 1e6


def run_wire_micro(
    burst: int = CANONICAL_BURST,
    payload: int = CANONICAL_PAYLOAD,
    repeats: int = 200,
) -> dict:
    """Measure both stacks; returns the ``BENCH_wire_micro.json`` doc."""
    pkts = canonical_burst(burst, payload)

    # -- codec-only round-trips (Packets in, Packets out) ------------------
    def pickle_codec():
        blob = pickle.dumps(("burst", 3, "null", encode_packets(pkts), 11))
        msg = pickle.loads(blob)
        return decode_packets(msg[3])

    def frame_codec():
        frame = frames.request_from_packets(3, 11, "null", pkts)
        req, _ = frames.unpack_request(frame)
        return req.packets()

    pickle_codec_us = _best_us(pickle_codec, repeats)
    frame_codec_us = _best_us(frame_codec, repeats)

    # -- full transport round-trips (codec + channel), and the channel
    # crossing alone (same bytes both ways: what the fd costs) -------------
    import multiprocessing as mp

    blob = frames.request_from_packets(3, 11, "null", pkts)
    a, b = mp.Pipe(duplex=True)
    try:
        def pipe_rt():
            a.send(("burst", 3, "null", encode_packets(pkts), 11))
            return decode_packets(b.recv()[3])

        def pipe_channel():
            a.send_bytes(blob)
            return b.recv_bytes()

        pipe_rt_us = _best_us(pipe_rt, repeats)
        pipe_channel_us = _best_us(pipe_channel, repeats)
    finally:
        a.close()
        b.close()

    ring_rt_us = ring_channel_us = None
    if rings.shared_memory_available():
        pair = rings.RingPair.create(1 << 20)
        try:
            ring = pair.req

            def ring_rt():
                ring.push(frames.request_from_packets(3, 11, "null", pkts))
                frame = ring.pop()
                ring.commit_reads()
                req, _ = frames.unpack_request(frame)
                return req.packets()

            def ring_channel():
                ring.push(blob)
                out = ring.pop()
                ring.commit_reads()
                return out

            ring_rt_us = _best_us(ring_rt, repeats)
            ring_channel_us = _best_us(ring_channel, repeats)
        finally:
            pair.destroy()

    frame_len = len(frames.request_from_packets(3, 11, "null", pkts))
    pickle_len = len(
        pickle.dumps(("burst", 3, "null", encode_packets(pkts), 11))
    )
    doc = {
        "burst": burst,
        "payload": payload,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "oversubscribed": (os.cpu_count() or 1) < 2,
        "frame_bytes": frame_len,
        "pickle_bytes": pickle_len,
        "codec": {
            "pickle_us": pickle_codec_us,
            "frame_us": frame_codec_us,
            "frame_vs_pickle": pickle_codec_us / frame_codec_us,
        },
        "transport": {
            "pipe_us": pipe_rt_us,
            "ring_us": ring_rt_us,
            "ring_vs_pipe": (
                pipe_rt_us / ring_rt_us if ring_rt_us else None
            ),
        },
        "channel": {
            "pipe_us": pipe_channel_us,
            "ring_us": ring_channel_us,
            "ring_vs_pipe": (
                pipe_channel_us / ring_channel_us if ring_channel_us else None
            ),
        },
        "note": (
            "codec = Packets->bytes->Packets round-trip, both stacks "
            "including their shims; transport = codec + channel crossing "
            "(Pipe send/recv vs shared-memory ring push/pop+ack); channel "
            "= the crossing alone, same bytes both ways. Acceptance: "
            "channel.ring_vs_pipe (the fd round-trip the ring removes, "
            "per burst) and transport.ring_vs_pipe >= parity."
        ),
    }
    return doc
