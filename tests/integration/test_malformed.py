"""Failure injection: malformed and hostile packets must never crash a
datapath, and all three datapaths must agree on their fate."""

import random


from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.packet import PacketBuilder
from repro.packet.packet import Packet
from repro.usecases import firewall, gateway


def switches():
    return (
        ESwitch.from_pipeline(firewall.build_single_stage()),
        OvsSwitch(firewall.build_single_stage()),
        firewall.build_single_stage(),
    )


def agree(pkt):
    es, ovs, ref = switches()
    expected = ref.process(pkt.copy()).summary()
    assert es.process(pkt.copy()).summary() == expected
    assert ovs.process(pkt.copy()).summary() == expected
    return expected


class TestMalformedPackets:
    def test_runt_frame(self):
        agree(Packet(b"\x00" * 10, in_port=1))

    def test_empty_frame(self):
        agree(Packet(b"", in_port=1))

    def test_truncated_ip_header(self):
        full = PacketBuilder(in_port=1).eth().ipv4().tcp().build()
        agree(Packet(bytes(full.data[:18]), in_port=1))

    def test_truncated_l4(self):
        full = PacketBuilder(in_port=1).eth().ipv4().tcp().build()
        agree(Packet(bytes(full.data[:36]), in_port=1))

    def test_bogus_ihl(self):
        pkt = PacketBuilder(in_port=1).eth().ipv4().tcp().build()
        pkt.data[14] = 0x4F  # ihl = 15 words = 60 bytes > frame remainder
        agree(pkt)

    def test_ipv6_version_nibble(self):
        pkt = PacketBuilder(in_port=1).eth().ipv4().tcp().build()
        pkt.data[14] = 0x60
        agree(pkt)

    def test_vlan_tag_without_payload(self):
        raw = bytes.fromhex("02000000000202000000000181000064")  # eth + tag only
        agree(Packet(raw, in_port=1))

    def test_random_garbage_never_crashes(self):
        rng = random.Random(5)
        es, ovs, ref = switches()
        for _ in range(200):
            raw = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 80)))
            pkt = Packet(raw, in_port=rng.choice([1, 2, 9]))
            expected = ref.process(pkt.copy()).summary()
            assert es.process(pkt.copy()).summary() == expected
            assert ovs.process(pkt.copy()).summary() == expected

    def test_bitflip_fuzzing(self):
        """Flip every byte of a valid packet, one at a time."""
        base = (PacketBuilder(in_port=firewall.EXTERNAL).eth()
                .ipv4(dst=firewall.SERVER_IP).tcp(dst_port=80).build())
        es, ovs, ref = switches()
        for pos in range(len(base.data)):
            pkt = base.copy()
            pkt.data[pos] ^= 0xFF
            expected = ref.process(pkt.copy()).summary()
            assert es.process(pkt.copy()).summary() == expected, pos
            assert ovs.process(pkt.copy()).summary() == expected, pos


class TestHostileGatewayTraffic:
    def test_garbage_into_complex_pipeline(self):
        rng = random.Random(6)
        p, _fib = gateway.build(n_ce=2, users_per_ce=2, n_prefixes=100)
        es = ESwitch.from_pipeline(gateway.build(n_ce=2, users_per_ce=2,
                                                 n_prefixes=100)[0])
        ovs = OvsSwitch(gateway.build(n_ce=2, users_per_ce=2, n_prefixes=100)[0])
        for _ in range(150):
            raw = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 96)))
            pkt = Packet(raw, in_port=rng.choice([1, 2]))
            expected = p.process(pkt.copy()).summary()
            assert es.process(pkt.copy()).summary() == expected
            assert ovs.process(pkt.copy()).summary() == expected
