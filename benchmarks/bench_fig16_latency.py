"""Fig. 16: per-packet latency (mean CPU cycles) on the gateway pipeline.

Paper: "For ESWITCH, we get about 0.1 usec packet processing time
independently of the active flow set, while latency for OVS varies between
0.2–13 usec" — i.e. ~200 cycles vs 400–26,000 cycles at 2 GHz, with the
ESWITCH curve inside the Section 4.4 model band.
"""

from figshared import FLOW_AXIS, fmt_flows, publish, render_table, sweep_flows
from repro.core import ESwitch
from repro.ovs import OvsSwitch
from repro.simcpu.model import gateway_model
from repro.simcpu.platform import XEON_E5_2620
from repro.usecases import gateway

N_CE, USERS, PREFIXES = 10, 20, 10_000


def build():
    return gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)[0]


def test_fig16_latency(benchmark):
    _p, fib = gateway.build(n_ce=N_CE, users_per_ce=USERS, n_prefixes=PREFIXES)
    make_flows = lambda n: gateway.traffic(fib, n, n_ce=N_CE, users_per_ce=USERS)

    es = sweep_flows(lambda: ESwitch.from_pipeline(build()), make_flows)
    ovs = sweep_flows(lambda: OvsSwitch(build()), make_flows)
    model = gateway_model()
    best, worst = model.cycle_bounds()

    rows = []
    for i, n in enumerate(FLOW_AXIS):
        es_c = es[i][1].cycles_per_packet
        ovs_c = ovs[i][1].cycles_per_packet
        rows.append(
            (
                fmt_flows(n),
                f"{best:.0f}",
                f"{es_c:.0f}",
                f"{worst:.0f}",
                f"{ovs_c:.0f}",
                f"{es_c / XEON_E5_2620.freq_hz * 1e6:.2f}",
                f"{ovs_c / XEON_E5_2620.freq_hz * 1e6:.2f}",
            )
        )
    publish(
        "fig16_latency",
        render_table(
            "Fig. 16: cycles/packet (gateway; paper: ES ~200, OVS 400-26000)",
            ("flows", "model-ub", "ES", "model-lb", "OVS", "ES[us]", "OVS[us]"),
            rows,
        ),
    )

    es_cycles = [m.cycles_per_packet for _f, m in es]
    ovs_cycles = [m.cycles_per_packet for _f, m in ovs]
    # ESWITCH latency small and stable, near the model band.
    assert max(es_cycles) < worst * 1.35
    assert min(es_cycles) > best * 0.9
    assert max(es_cycles) / min(es_cycles) < 2.0
    # OVS latency explodes with the flow set (paper: ~65x spread).
    assert max(ovs_cycles) / min(ovs_cycles) > 20
    assert max(ovs_cycles) > 10_000

    sw = ESwitch.from_pipeline(build())
    flows = make_flows(64)
    counter = iter(range(10**9))
    benchmark(lambda: sw.process(flows[next(counter) % 64].copy()))
