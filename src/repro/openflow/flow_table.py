"""Flow tables: priority-ordered entry lists with lookup and modification.

Lookup walks entries in decreasing priority, the direct-datapath semantics
of Section 2.1; the fast switches (:mod:`repro.core`, :mod:`repro.ovs`)
build their own specialized structures from the same entries. The table
records *which entries were probed* during a lookup — the megaflow
wildcard computation in :mod:`repro.ovs.megaflow` needs the non-matching
higher-priority entries too ("those that caused a match as well as those
higher priority ones that did not", Section 2.2).
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Mapping

from repro.openflow.flow_entry import FlowEntry
from repro.openflow.match import Match
from repro.packet.parser import ParsedPacket


class TableMissPolicy(enum.Enum):
    """What happens to packets missing every entry (switch configuration)."""

    DROP = "drop"
    CONTROLLER = "controller"


class FlowTable:
    """A single pipeline stage: a priority-sorted list of flow entries."""

    def __init__(
        self,
        table_id: int = 0,
        name: str = "",
        miss_policy: TableMissPolicy = TableMissPolicy.DROP,
        max_entries: "int | None" = None,
    ):
        if table_id < 0:
            raise ValueError(f"invalid table id {table_id}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.table_id = table_id
        self.name = name or f"table{table_id}"
        self.miss_policy = miss_policy
        #: advertised capacity (OpenFlow table-features ``max_entries``);
        #: None = unbounded. The table itself stays permissive — admission
        #: control (``ESwitch.admit_flow_mods``) is what surfaces an
        #: over-capacity flow-mod as ``OFPFMFC_TABLE_FULL``.
        self.max_entries = max_entries
        self._entries: list[FlowEntry] = []  # kept sorted: priority desc, stable
        self.version = 0  # bumped on every modification (for cache invalidation)

    # -- modification ---------------------------------------------------------

    def add(self, entry: FlowEntry) -> FlowEntry:
        """Insert an entry; replaces an existing entry with the same rule."""
        for i, existing in enumerate(self._entries):
            if existing.same_rule(entry):
                self._entries[i] = entry
                self.version += 1
                return entry
        # Stable insert: after all entries with priority >= entry.priority.
        index = len(self._entries)
        for i, existing in enumerate(self._entries):
            if existing.priority < entry.priority:
                index = i
                break
        self._entries.insert(index, entry)
        self.version += 1
        return entry

    def remove(self, match: Match, priority: "int | None" = None) -> int:
        """Remove entries with the given match (and priority, if given)."""
        before = len(self._entries)
        self._entries = [
            e
            for e in self._entries
            if not (e.match == match and (priority is None or e.priority == priority))
        ]
        removed = before - len(self._entries)
        if removed:
            self.version += 1
        return removed

    def find(self, match: Match) -> "FlowEntry | None":
        """The highest-priority entry whose match *equals* ``match``.

        Entries are priority-sorted, so the first hit is the one a lookup
        would prefer among same-match duplicates.
        """
        for entry in self._entries:
            if entry.match == match:
                return entry
        return None

    def has_rule(self, match: Match, priority: int) -> bool:
        """True when an entry with exactly this rule (match + priority)
        exists — the ADD-replaces case capacity checks must not count."""
        return any(
            e.priority == priority and e.match == match for e in self._entries
        )

    @property
    def full(self) -> bool:
        """True when the table is at (or past) its advertised capacity."""
        return self.max_entries is not None and len(self._entries) >= self.max_entries

    def remove_if(self, predicate: Callable[[FlowEntry], bool]) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        removed = before - len(self._entries)
        if removed:
            self.version += 1
        return removed

    def clear(self) -> None:
        if self._entries:
            self.version += 1
        self._entries.clear()

    # -- lookup -----------------------------------------------------------------

    def lookup(
        self,
        view: ParsedPacket,
        probed: "list[FlowEntry] | None" = None,
    ) -> "FlowEntry | None":
        """Highest-priority matching entry, or None (table miss).

        If ``probed`` is given, every entry examined — including the ones
        that failed to match — is appended to it.
        """
        for entry in self._entries:
            if probed is not None:
                probed.append(entry)
            if entry.match.matches(view):
                return entry
        return None

    def lookup_key(
        self,
        key: Mapping[str, "int | None"],
        probed: "list[FlowEntry] | None" = None,
    ) -> "FlowEntry | None":
        """Like :meth:`lookup` but over an extracted flow key."""
        for entry in self._entries:
            if probed is not None:
                probed.append(entry)
            if entry.match.matches_key(key):
                return entry
        return None

    # -- inspection ---------------------------------------------------------------

    @property
    def entries(self) -> tuple[FlowEntry, ...]:
        """Entries in decreasing order of priority (insertion-stable)."""
        return tuple(self._entries)

    def matched_fields(self) -> tuple[str, ...]:
        """Union of fields any entry matches on, sorted."""
        names: set[str] = set()
        for entry in self._entries:
            names.update(entry.match.fields)
        return tuple(sorted(names))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return f"FlowTable(id={self.table_id}, entries={len(self._entries)})"
