"""Automatic derivation of analytic performance models from compiled
datapaths — the extension the paper sketches in Section 5:

  "In the future ESWITCH could be easily taught to derive such models
  automatically, by programmatically composing template model 'atoms' …
  This would make it possible to not only produce efficient specialized
  datapaths but also to deliver reliable performance promises for these
  datapaths in real time."

:func:`derive_model` walks a compiled switch's trampoline along a given
table path (or the longest goto chain when none is given) and composes the
per-template cost atoms into an :class:`~repro.simcpu.model.AnalyticModel`,
exactly the way Section 4.4 builds the gateway model by hand. The switch
can thus quote model-lb/model-ub packet-rate promises for its *current*
configuration, and re-quote after every update.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.analysis import TemplateKind
from repro.core.eswitch import ESwitch
from repro.simcpu.model import AnalyticModel, StageCost
from repro.simcpu.platform import Platform, XEON_E5_2620


def _longest_goto_chain(switch: ESwitch) -> list[int]:
    """The deepest table path a packet can take, by goto-DAG DFS."""
    trampoline = switch.datapath.trampoline
    successors: dict[int, set[int]] = {tid: set() for tid in trampoline}
    for tid, compiled in trampoline.items():
        targets: set[int] = set()
        if compiled.kind is TemplateKind.DIRECT or compiled.kind is None:
            pass
        for out in _outcomes_of(compiled):
            if out is not None and out.goto is not None:
                targets.add(out.goto)
        successors[tid] = targets

    first = switch.datapath.first_table
    best: list[int] = []
    stack: list[tuple[int, list[int]]] = [(first, [first])]
    while stack:
        node, path = stack.pop()
        if len(path) > len(best):
            best = path
        for nxt in successors.get(node, ()):
            if nxt not in path and nxt in successors:  # goto DAG: no cycles
                stack.append((nxt, path + [nxt]))
    return best


def _outcomes_of(compiled) -> list:
    """All outcomes a compiled table can return (template-specific)."""
    import re

    out = [compiled.miss]
    if compiled.kind is TemplateKind.HASH:
        assert compiled.hash_store is not None
        out.extend(v for _k, v in compiled.hash_store.items())
    elif compiled.kind is TemplateKind.LPM:
        out.extend(compiled.namespace.get("_OUT", ()))
    elif compiled.kind is TemplateKind.RANGE:
        for run in compiled.namespace.get("_OUTS", ()):
            out.extend(run)  # _OUTS is per-run lists of per-port outcomes
    elif compiled.kind is TemplateKind.LINKED_LIST:
        out.extend(entry[3] for entry in compiled.ll_entries or ())
    else:  # direct code: outcomes live as _O<i> constants
        out.extend(
            v
            for k, v in compiled.namespace.items()
            if re.fullmatch(r"_O\d+", k)
        )
    return out


def derive_model(
    switch: ESwitch,
    path: "Sequence[int] | None" = None,
    platform: Platform = XEON_E5_2620,
) -> AnalyticModel:
    """Compose an analytic model for one table path of a compiled switch.

    Args:
        switch: a compiled :class:`ESwitch`.
        path: compiled-table ids the modeled packet traverses; defaults to
            the longest goto chain from the first table (the deepest, and
            typically dominant, pipeline direction).
    """
    costs = switch.costs
    if path is None:
        path = _longest_goto_chain(switch)

    stages: list[StageCost] = [
        StageCost("PKT_IN", costs.pkt_in, 0, "DPDK packet receive IO"),
        StageCost("dispatch", costs.es_dispatch, 0, "runtime dispatch"),
    ]
    layer = switch.datapath.parser_layer
    parser = costs.parser_l2
    if layer >= 3:
        parser += costs.parser_l3
    if layer >= 4:
        parser += costs.parser_l4
    stages.append(StageCost("parser template", parser, 0, f"L2–L{layer} parse"))

    for hop, tid in enumerate(path):
        compiled = switch.datapath.table(tid)
        n = max(compiled.entry_count, 1)
        if compiled.kind is TemplateKind.DIRECT:
            # Expected entries examined: half the table on average.
            examined = (n + 1) / 2
            stages.append(
                StageCost(
                    f"direct code [{tid}]",
                    costs.direct_base + costs.direct_per_entry * examined,
                    0,
                    f"{n} entries, keys in code",
                )
            )
        elif compiled.kind is TemplateKind.HASH:
            stages.append(
                StageCost(f"hash template [{tid}]", costs.hash_base, 1,
                          f"{n} entries, collision-free hash")
            )
        elif compiled.kind is TemplateKind.LPM:
            stages.append(
                StageCost(f"LPM template [{tid}]", costs.lpm_base, 2,
                          f"{n} prefixes, DIR-24-8")
            )
        elif compiled.kind is TemplateKind.RANGE:
            levels = max(1, math.ceil(math.log2(n + 1)))
            stages.append(
                StageCost(
                    f"range template [{tid}]",
                    costs.range_base + costs.range_per_level * levels,
                    1,
                    f"{n} entries, interval binary search",
                )
            )
        else:
            examined = (n + 1) / 2
            stages.append(
                StageCost(
                    f"linked list [{tid}]",
                    costs.linked_list_base + costs.linked_list_per_entry * examined,
                    max(1, math.ceil(examined / 4)),
                    f"{n} entries, tuple space search",
                )
            )
        if hop + 1 < len(path):
            stages.append(
                StageCost("goto trampoline", costs.goto_trampoline, 0, "")
            )

    stages.append(StageCost("action templates", costs.action_set, 0,
                            "action set processing"))
    stages.append(StageCost("PKT_OUT", costs.pkt_out, 0, "DPDK packet transmit IO"))
    return AnalyticModel(stages, platform)
