"""An inclusive, fully-associative LRU cache-hierarchy simulator.

Datapaths report memory touches as abstract cache-line ids (any hashable
value; the conventions use small tuples like ``("lpm24", 1234)``). The
hierarchy resolves each touch to the level it hits and returns the access
latency, maintaining LRU state in all three levels.

Full associativity is a simplification over the SUT's real set-associative
caches, but the quantity the paper's model cares about — *which level the
working set fits in* (Section 4.4) — depends on capacities, which are exact
(Table 1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.simcpu.platform import Platform

DRAM_LEVEL = 4


class CacheStats:
    """Hit counters per level plus derived rates."""

    __slots__ = ("accesses", "l1_hits", "l2_hits", "l3_hits", "dram_accesses")

    def __init__(self) -> None:
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.l3_hits = 0
        self.dram_accesses = 0

    @property
    def llc_misses(self) -> int:
        """Last-level-cache misses (what Fig. 15 plots per packet)."""
        return self.dram_accesses

    def reset(self) -> None:
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.l3_hits = 0
        self.dram_accesses = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(n={self.accesses}, L1={self.l1_hits}, "
            f"L2={self.l2_hits}, L3={self.l3_hits}, DRAM={self.dram_accesses})"
        )


class CacheHierarchy:
    """Three-level inclusive LRU cache fed with abstract line ids."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self._l1: OrderedDict[Hashable, None] = OrderedDict()
        self._l2: OrderedDict[Hashable, None] = OrderedDict()
        self._l3: OrderedDict[Hashable, None] = OrderedDict()
        self.stats = CacheStats()

    def access(self, line: Hashable) -> int:
        """Touch one line; returns the access latency in cycles."""
        stats = self.stats
        stats.accesses += 1
        platform = self.platform

        if line in self._l1:
            self._l1.move_to_end(line)
            stats.l1_hits += 1
            return platform.lat_l1

        if line in self._l2:
            self._l2.move_to_end(line)
            stats.l2_hits += 1
            level_latency = platform.lat_l2
        elif line in self._l3:
            self._l3.move_to_end(line)
            stats.l3_hits += 1
            level_latency = platform.lat_l3
        else:
            stats.dram_accesses += 1
            level_latency = platform.lat_dram

        self._fill(line)
        return level_latency

    def install_l3(self, line: Hashable) -> None:
        """Place a line in L3 without an access — models NIC DDIO, which
        "loads the packet directly into the L3 cache" (Section 4.4)."""
        self._l3[line] = None
        self._l3.move_to_end(line)
        if len(self._l3) > self.platform.l3_lines:
            self._l3.popitem(last=False)

    def _fill(self, line: Hashable) -> None:
        self._l1[line] = None
        if len(self._l1) > self.platform.l1_lines:
            self._l1.popitem(last=False)
        self._l2[line] = None
        self._l2.move_to_end(line)
        if len(self._l2) > self.platform.l2_lines:
            self._l2.popitem(last=False)
        self._l3[line] = None
        self._l3.move_to_end(line)
        if len(self._l3) > self.platform.l3_lines:
            self._l3.popitem(last=False)

    def warm(self, lines: "list[Hashable]") -> None:
        """Pre-touch lines without counting stats (warm-up phases)."""
        saved = self.stats
        self.stats = CacheStats()
        for line in lines:
            self.access(line)
        self.stats = saved

    def clear(self) -> None:
        self._l1.clear()
        self._l2.clear()
        self._l3.clear()
        self.stats.reset()
