"""Tests for flow-key and EMC-key extraction."""

from repro.ovs.flowkey import EMC_KEY_FIELDS, KEY_FIELDS, emc_key, extract_key
from repro.packet import PacketBuilder
from repro.packet.parser import parse


class TestExtractKey:
    def test_all_key_fields_present(self):
        view = parse(PacketBuilder().eth().ipv4().tcp().build())
        key = extract_key(view)
        assert set(key) == set(KEY_FIELDS)

    def test_absent_layers_are_none(self):
        view = parse(PacketBuilder().eth().build())
        key = extract_key(view)
        assert key["ipv4_dst"] is None
        assert key["tcp_dst"] is None
        assert key["eth_dst"] is not None

    def test_values_match_packet(self):
        view = parse(
            PacketBuilder(in_port=4).eth().vlan(vid=9)
            .ipv4(src="10.0.0.1", dst="10.0.0.2").udp(dst_port=53).build()
        )
        key = extract_key(view)
        assert key["in_port"] == 4
        assert key["vlan_vid"] == 9
        assert key["udp_dst"] == 53
        assert key["tcp_dst"] is None


class TestEmcKey:
    def test_includes_ttl(self):
        assert len(EMC_KEY_FIELDS) == len(KEY_FIELDS) + 1
        a = PacketBuilder().eth().ipv4(ttl=64).tcp().build()
        b = PacketBuilder().eth().ipv4(ttl=63).tcp().build()
        assert emc_key(parse(a)) != emc_key(parse(b))

    def test_same_packet_same_key(self):
        a = PacketBuilder().eth().ipv4().tcp().build()
        assert emc_key(parse(a)) == emc_key(parse(a.copy()))

    def test_key_is_hashable(self):
        view = parse(PacketBuilder().eth().ipv4().tcp().build())
        hash(emc_key(view))

    def test_precomputed_key_reused(self):
        view = parse(PacketBuilder().eth().ipv4().tcp().build())
        key = extract_key(view)
        assert emc_key(view, key) == emc_key(view)
