"""Seeded scenario generation: rung-targeted pipelines, boundary-biased
traffic, and mid-stream flow-mod schedules.

``generate(seed)`` is a pure function of its arguments — same seed,
same scenario, byte for byte — which is what makes ``repro fuzz --seed``
replayable and the CI smoke leg a fixed corpus in disguise.

Pipelines are generated *per template rung*: every table aims at one
rung of the ESWITCH lattice (direct / hash / LPM / range / linked list /
decomposable), so a short fuzz run still visits every code generator.
Traffic is biased toward match/miss boundaries (off-by-one values,
in-mask and off-mask bit flips near installed rules) plus a tail of
malformed frames; flow-mod batches land between bursts, including
batches built to be *rejected* by admission control.
"""

from __future__ import annotations

import random

from repro.fuzz import domain
from repro.fuzz.scenario import Scenario, packet_to_obj
from repro.openflow.flow_table import TableMissPolicy
from repro.openflow.groups import GroupType
from repro.openflow.timeouts import ExpiryManager, PipelineAdapter

RUNGS = ("direct", "hash", "lpm", "range", "linked_list", "decompose")

_MISS_POLICIES = [p.value for p in TableMissPolicy]
_GROUP_TYPES = [g.value for g in GroupType]


class GenerationError(RuntimeError):
    """The generator could not produce a valid scenario for a seed."""


def _match_obj(fields: dict) -> dict:
    out = {}
    for name, (value, mask) in fields.items():
        if mask == domain.full_mask(name):
            out[name] = value
        else:
            out[name] = {"value": value, "mask": mask}
    return out


def _actions(rng, group_ids) -> list:
    acts: list = []
    n = 1 + (rng.random() < 0.3)
    for _ in range(n):
        roll = rng.random()
        if roll < 0.55:
            acts.append({"output": rng.randint(1, 4)})
        elif roll < 0.65:
            acts.append("drop")
        elif roll < 0.72:
            acts.append("controller")
        elif roll < 0.82:
            field = rng.choice(["eth_dst", "ipv4_dst", "tcp_dst"])
            acts.append({"set": {field: domain.domain_value(rng, field)}})
        elif roll < 0.87:
            acts.append("dec_ttl")
        elif roll < 0.90:
            acts.append("pop_vlan")
        elif roll < 0.93:
            acts.append({"push_vlan": {"vid": rng.randint(1, 4094)}})
        elif group_ids and roll < 0.97:
            acts.append({"group": rng.choice(group_ids)})
        else:
            acts.append("flood")
    return acts


def _entry_obj(rng, fields, priority, later_ids, group_ids, meter_ids) -> dict:
    obj: dict = {
        "priority": priority,
        "match": _match_obj(fields),
        "apply": _actions(rng, group_ids),
    }
    if rng.random() < 0.15:
        obj["write"] = _actions(rng, group_ids)[:1]
    if rng.random() < 0.05:
        obj["clear"] = True
    if later_ids and rng.random() < 0.3:
        obj["goto"] = rng.choice(later_ids)
    if meter_ids and rng.random() < 0.25:
        obj["meter"] = rng.choice(meter_ids)
    return obj


# -- per-rung table builders -------------------------------------------------
#
# Each returns (table_obj, profiles): the serialize-dialect table document
# plus the field-constraint maps of its entries, which the traffic
# generator later aims packets at.


def _build_direct(rng, tid, later, groups, meters):
    profiles = [domain.random_fields(rng) for _ in range(rng.randint(1, 4))]
    entries = [
        _entry_obj(rng, f, rng.randint(0, 7), later, groups, meters)
        for f in profiles
    ]
    return entries, profiles


def _build_hash(rng, tid, later, groups, meters):
    profile = rng.choice(["l2", "v4", "v4tcp", "v4udp", "v6"])
    names = rng.sample(
        list(domain.PROFILES[profile]), rng.randint(1, 2)
    )
    mask_of = {n: domain.random_mask(rng, n) for n in names}
    entries, profiles, seen = [], [], set()
    for _ in range(rng.randint(5, 10)):
        fields = {
            n: (domain.domain_value(rng, n) & mask_of[n], mask_of[n])
            for n in names
        }
        key = tuple(sorted(fields.items()))
        if key in seen:
            continue  # CollisionFreeHash needs distinct keys
        seen.add(key)
        entries.append(
            _entry_obj(rng, fields, rng.randint(1, 7), later, groups, meters)
        )
        profiles.append(fields)
    if rng.random() < 0.3:  # split-off catch-all (strictly lowest priority)
        entries.append(_entry_obj(rng, {}, 0, later, groups, meters))
    return entries, profiles


def _build_lpm(rng, tid, later, groups, meters):
    field = rng.choice(["ipv4_src", "ipv4_dst"])
    full = domain.full_mask(field)
    entries, profiles, seen = [], [], set()
    for _ in range(rng.randint(5, 10)):
        plen = rng.choice([8, 16, 24, 32, rng.randint(1, 32)])
        mask = (full << (32 - plen)) & full
        value = domain.domain_value(rng, field) & mask
        if (value, plen) in seen:
            continue
        seen.add((value, plen))
        fields = {field: (value, mask)}
        # LPM consistency: priority must equal prefix length.
        entries.append(_entry_obj(rng, fields, plen, later, groups, meters))
        profiles.append(fields)
    if rng.random() < 0.4:
        entries.append(_entry_obj(rng, {}, 0, later, groups, meters))
    return entries, profiles


def _build_range(rng, tid, later, groups, meters):
    field = rng.choice(["tcp_dst", "udp_dst", "tcp_src", "udp_src"])
    full = domain.full_mask(field)
    entries, profiles = [], []
    start = rng.randint(1, 1000)
    for _run in range(rng.randint(2, 3)):
        length = rng.randint(9, 14)
        acts = _actions(rng, groups)
        run_obj: dict = {"apply": acts}
        if later and rng.random() < 0.3:
            run_obj["goto"] = rng.choice(later)
        for port in range(start, start + length):
            fields = {field: (port & full, full)}
            entry = {"priority": 5, "match": _match_obj(fields)}
            entry.update(run_obj)  # identical instructions merge into a run
            entries.append(entry)
            profiles.append(fields)
        start += length + rng.randint(2, 50)  # gap: runs stay disjoint
    if rng.random() < 0.3:
        entries.append(_entry_obj(rng, {}, 0, later, groups, meters))
    return entries, profiles


def _build_linked_list(rng, tid, later, groups, meters):
    entries, profiles = [], []
    for _ in range(rng.randint(5, 10)):
        fields = domain.random_fields(rng)
        entries.append(
            _entry_obj(rng, fields, rng.choice([3, 3, 5, 5, rng.randint(0, 9)]),
                       later, groups, meters)
        )
        profiles.append(fields)
    # Defeat decomposition: one column, two different masks.
    for mask in (0xFFFFFF00, 0xFFFF0000):
        fields = {"ipv4_src": (domain.domain_value(rng, "ipv4_src") & mask, mask)}
        entries.append(_entry_obj(rng, fields, 3, later, groups, meters))
        profiles.append(fields)
    return entries, profiles


def _build_decompose(rng, tid, later, groups, meters):
    profile = rng.choice(["v4", "v4tcp", "v4udp"])
    names = list(domain.PROFILES[profile])
    mask_of = {n: domain.random_mask(rng, n) for n in names}
    entries, profiles = [], []
    for _ in range(rng.randint(5, 9)):
        k = rng.randint(1, min(3, len(names)))
        chosen = rng.sample(names, k)
        fields = {
            n: (domain.domain_value(rng, n) & mask_of[n], mask_of[n])
            for n in chosen
        }
        if "ip_proto" in fields:
            if any(f.startswith("tcp_") for f in fields):
                fields["ip_proto"] = (6, domain.full_mask("ip_proto"))
            elif any(f.startswith("udp_") for f in fields):
                fields["ip_proto"] = (17, domain.full_mask("ip_proto"))
        entries.append(
            _entry_obj(rng, fields, rng.randint(0, 7), later, groups, meters)
        )
        profiles.append(fields)
    return entries, profiles


_BUILDERS = {
    "direct": _build_direct,
    "hash": _build_hash,
    "lpm": _build_lpm,
    "range": _build_range,
    "linked_list": _build_linked_list,
    "decompose": _build_decompose,
}


# -- traffic and flow-mod schedules ------------------------------------------


def _burst(rng, profiles, size, allow_malformed) -> list:
    out = []
    for _ in range(size):
        roll = rng.random()
        if profiles and roll < 0.70:
            fields = dict(rng.choice(profiles))
            if rng.random() < 0.5:
                fields = domain.perturb_fields(rng, fields)
            pkt = domain.packet_for_fields(rng, fields)
        elif allow_malformed and roll > 0.85:
            pkt = domain.malformed_packet(rng)
        else:
            pkt = domain.packet_for_fields(rng, domain.random_fields(rng))
        out.append(packet_to_obj(pkt))
    return out


def _mods_batch(rng, tids, profiles, group_ids, meter_ids, quarantine) -> list:
    batch = []
    for _ in range(rng.randint(1, 3)):
        # Bias toward quarantined tables: a clean rebuild heals them, and
        # post-heal parity is exactly what the fuzzer is hunting.
        tid = (rng.choice(list(quarantine))
               if quarantine and rng.random() < 0.4 else rng.choice(tids))
        later = [t for t in tids if t > tid]
        if profiles and rng.random() < 0.35:
            fields = dict(rng.choice(profiles))
            obj = {
                "cmd": "delete",
                "table": tid,
                "match": _match_obj(fields),
                "priority": rng.randint(0, 9),
                "strict": rng.random() < 0.5,
            }
        else:
            fields = domain.random_fields(rng)
            obj = _entry_obj(rng, fields, rng.randint(0, 9), later,
                             group_ids, meter_ids)
            obj["cmd"] = rng.choice(["add", "add", "modify"])
            obj["table"] = tid
            profiles.append(fields)
        batch.append(obj)
    if rng.random() < 0.25:
        # A poison mod: admission must reject the whole batch, leaving
        # every backend bit-identical to the no-op.
        poison = rng.randrange(3)
        obj = {
            "cmd": "add",
            "table": rng.choice(tids),
            "match": {},
            "priority": 1,
            "apply": [{"output": 1}],
        }
        if poison == 0:
            obj["table"] = 300  # beyond the 255-table id space
        elif poison == 1:
            obj["goto"] = 250  # resolvable id space, nonexistent table
        else:
            obj["priority"] = 0x10000  # out of OpenFlow's 16-bit range
        batch.insert(rng.randrange(len(batch) + 1), obj)
    return batch


# -- the generator -----------------------------------------------------------


def generate(
    seed: int,
    *,
    max_tables: int = 4,
    force_rungs: "tuple | None" = None,
    allow_quarantine: bool = True,
    allow_degrade: bool = True,
    allow_malformed: bool = True,
    allow_mods: bool = True,
    allow_tight_meter: bool = True,
) -> Scenario:
    """One scenario, deterministically, from ``seed``.

    ``force_rungs`` pins the per-table template targets (cycled when
    shorter than the table count) — how the corpus curation script gets
    one scenario per lattice rung.
    """
    for attempt in range(10):
        scenario = _generate_once(
            random.Random(f"{seed}/{attempt}"), seed, max_tables, force_rungs,
            allow_quarantine, allow_degrade, allow_malformed, allow_mods,
            allow_tight_meter,
        )
        if _sane(scenario):
            return scenario
    raise GenerationError(f"seed {seed}: no valid scenario in 10 attempts")


def _generate_once(
    rng, seed, max_tables, force_rungs, allow_quarantine, allow_degrade,
    allow_malformed, allow_mods, allow_tight_meter,
) -> Scenario:
    n_tables = (len(force_rungs) if force_rungs
                else rng.randint(1, max_tables))
    rungs = [
        force_rungs[i % len(force_rungs)] if force_rungs
        else rng.choice(RUNGS)
        for i in range(n_tables)
    ]

    group_ids: list = []
    groups_obj = []
    if rng.random() < 0.3:
        for gid in range(1, rng.randint(2, 3)):
            gtype = rng.choice(_GROUP_TYPES)
            n_buckets = 1 if gtype == "indirect" else rng.randint(1, 3)
            buckets = [
                {"weight": rng.randint(1, 4),
                 "actions": [{"output": rng.randint(1, 4)}]}
                for _ in range(n_buckets)
            ]
            groups_obj.append(
                {"id": gid, "type": gtype, "buckets": buckets}
            )
            group_ids.append(gid)

    meter_ids: list = []
    meters_obj = []
    tight_meter = False
    if rng.random() < 0.25:
        tight_meter = allow_tight_meter and rng.random() < 0.3
        meters_obj.append({"id": 1, "rate_pps": 1000.0, "burst": 1})
        meter_ids.append(1)

    tables_obj, profiles = [], []
    tids = list(range(n_tables))
    for tid, rung in zip(tids, rungs):
        later = [t for t in tids if t > tid]
        entries, table_profiles = _BUILDERS[rung](
            rng, tid, later, group_ids, meter_ids
        )
        tables_obj.append({
            "id": tid,
            "name": f"t{tid}-{rung}",
            "miss": rng.choice(_MISS_POLICIES),
            "entries": entries,
        })
        profiles.extend(table_profiles)

    quarantine: tuple = ()
    if allow_quarantine and rng.random() < 0.2:
        quarantine = (rng.choice(tids),)
    degrade_fuse = allow_degrade and rng.random() < 0.15

    events: list = []
    for i in range(rng.randint(1, 4)):
        if i and allow_mods and rng.random() < 0.5:
            events.append({"mods": _mods_batch(
                rng, tids, profiles, group_ids, meter_ids, quarantine
            )})
        events.append({"burst": _burst(
            rng, profiles, rng.randint(2, 12), allow_malformed
        )})

    scenario = Scenario(
        pipeline_obj={
            **({"groups": groups_obj} if groups_obj else {}),
            **({"meters": meters_obj} if meters_obj else {}),
            "tables": tables_obj,
        },
        events=events,
        seed=seed,
        enable_range=("range" in rungs) or rng.random() < 0.1,
        quarantine=quarantine,
        degrade_fuse=degrade_fuse,
        tight_meter=tight_meter,
    )
    if meters_obj and not tight_meter:
        # A meter that can never fire: rate-limit state stays identical
        # across sharded replicas, keeping workers>1 comparable.
        meters_obj[0]["burst"] = scenario.total_packets() + 16
    return scenario


def generate_large(seed: int, n_entries: int = 96) -> Scenario:
    """The large-cardinality scenario class, scaled by argument.

    Three chained tables at ``n_entries`` entries each cover the scale
    rungs the megascale rig exercises, differentially:

    * **hash** — exact ``eth_dst`` keys (the incremental perfect-hash
      store, grown further by the churn schedule);
    * **LPM** — nested /16 + /24 ``ipv4_dst`` prefixes (tbl8 allocation
      and the depth-consistency prerequisite);
    * **direct, over budget** — ``direct_threshold`` pins the last table
      onto the direct-code rung while a deliberately small
      ``source_budget`` forces its data-driven fallback, so the fallback
      executes against every other backend.

    Between bursts, ADD/strict-DELETE batches churn the hash and LPM
    tables — the incremental update paths (hash-store inserts, slot
    recycling, shape-stability skips) run under the oracle, not just
    under the benchmark. CI keeps ``n_entries`` small; the class scales
    to 10⁴–10⁵ by argument, not by new code.
    """
    if n_entries < 40:
        raise ValueError("generate_large needs n_entries >= 40")
    # ``direct_threshold`` is a global knob: it must sit *between* the
    # direct table's size and the hash/LPM tables' sizes, or every table
    # would land on the direct rung.
    n_direct = n_entries // 2
    rng = random.Random(f"large/{seed}")
    full_mac = domain.full_mask("eth_dst")
    full_ip = domain.full_mask("ipv4_dst")

    hash_profiles, hash_entries = [], []
    for i in range(n_entries):
        fields = {"eth_dst": ((0x02 << 40) | (0xAB << 32) | i, full_mac)}
        hash_profiles.append(fields)
        hash_entries.append({
            "priority": 1,
            "match": _match_obj(fields),
            "apply": [{"output": 1 + (i & 3)}],
            "goto": 1,
        })
    hash_entries.append(
        {"priority": 0, "match": {}, "apply": [{"output": 1}], "goto": 1}
    )

    lpm_profiles, lpm_entries = [], []
    for i in range(n_entries):
        if i % 4 == 0:  # nested shorter prefixes among the /24s
            plen, value = 16, (10 << 24) | ((i & 0xFF) << 16)
        else:
            plen, value = 24, (10 << 24) | ((i >> 8) << 16) | ((i & 0xFF) << 8)
        mask = (full_ip << (32 - plen)) & full_ip
        fields = {"ipv4_dst": (value & mask, mask)}
        lpm_profiles.append(fields)
        lpm_entries.append({
            "priority": plen,  # LPM consistency: priority = prefix length
            "match": _match_obj(fields),
            "apply": [{"output": 1 + (i & 3)}],
            "goto": 2,
        })
    lpm_entries.append(
        {"priority": 0, "match": {}, "apply": [{"output": 2}], "goto": 2}
    )

    direct_profiles, direct_entries = [], []
    for i in range(n_direct):
        fields = {"ipv4_src": ((192 << 24) | (168 << 16) | i, full_ip)}
        direct_profiles.append(fields)
        direct_entries.append({
            "priority": 2,
            "match": _match_obj(fields),
            "apply": [{"output": 1 + (i & 3)}],
        })
    direct_entries.append({"priority": 0, "match": {}, "apply": ["drop"]})

    def aimed_burst(size: int) -> list:
        out = []
        for _ in range(size):
            fields = dict(rng.choice(hash_profiles))
            fields.update(rng.choice(lpm_profiles))
            fields.update(rng.choice(direct_profiles))
            if rng.random() < 0.3:
                fields = domain.perturb_fields(rng, fields)
            out.append(packet_to_obj(domain.packet_for_fields(rng, fields)))
        return out

    def churn_batch(index: int) -> list:
        mac_fields = {
            "eth_dst": ((0x02 << 40) | (0xCD << 32) | index, full_mac)
        }
        plen, mask = 24, (full_ip << 8) & full_ip
        pfx_fields = {
            "ipv4_dst": (((172 << 24) | (index << 8)) & mask, mask)
        }
        batch = [
            {"cmd": "add", "table": 0, "priority": 1,
             "match": _match_obj(mac_fields),
             "apply": [{"output": 4}], "goto": 1},
            {"cmd": "add", "table": 1, "priority": plen,
             "match": _match_obj(pfx_fields),
             "apply": [{"output": 4}], "goto": 2},
        ]
        if index % 2:  # delete the previous round's adds: sustained churn
            prev_mac = {
                "eth_dst": ((0x02 << 40) | (0xCD << 32) | (index - 1), full_mac)
            }
            prev_pfx = {
                "ipv4_dst": (((172 << 24) | ((index - 1) << 8)) & mask, mask)
            }
            batch.append({"cmd": "delete", "table": 0, "priority": 1,
                          "match": _match_obj(prev_mac), "strict": True})
            batch.append({"cmd": "delete", "table": 1, "priority": plen,
                          "match": _match_obj(prev_pfx), "strict": True})
        hash_profiles.append(mac_fields)
        lpm_profiles.append(pfx_fields)
        return batch

    events: list = [{"burst": aimed_burst(8)}]
    for index in range(4):
        events.append({"mods": churn_batch(index)})
        events.append({"burst": aimed_burst(6)})

    return Scenario(
        pipeline_obj={"tables": [
            {"id": 0, "name": "t0-hash-large", "miss": "drop",
             "entries": hash_entries},
            {"id": 1, "name": "t1-lpm-large", "miss": "drop",
             "entries": lpm_entries},
            {"id": 2, "name": "t2-direct-budget", "miss": "drop",
             "entries": direct_entries},
        ]},
        events=events,
        seed=seed,
        name=f"large-{n_entries}",
        note="large-cardinality class: hash growth, LPM growth, "
             "data-driven direct rung",
        direct_threshold=n_direct + 8,
        source_budget=2_048,
    )


def generate_churn(seed: int, n_entries: int = 160) -> Scenario:
    """The churn-wall scenario class: tombstones, compaction, expiry.

    A hash-rung table whose flow population is stressed exactly the way
    the entry store's bug class manifests, differentially:

    * **idle expiry** — one cohort gets traffic only before the first
      clock tick and idle-expires at the second;
    * **activity refresh** — a keep-alive cohort is fed every inter-tick
      window, so its idle deadlines keep moving and it must survive;
    * **hard-beats-idle** — a cohort carrying *both* timeouts stays
      active right up to its hard deadline and must expire ``"hard"``;
    * **tombstone storm** — a single strict-delete batch kills a cohort
      larger than ``COMPACT_MIN_DEAD``, driving the dead fraction over
      the amortized-compaction threshold mid-batch, with aimed traffic
      before and after the compaction;
    * **no-op deletes** — strict deletes re-targeting already-expired
      rules remove nothing and must bump nothing anywhere.

    Every backend runs its own :class:`ExpiryManager` against the shared
    event clock, so expiry decisions are themselves an oracle output.
    """
    if n_entries < 160:
        # The storm cohort (2/5 of the population) must cross the
        # compaction floor (COMPACT_MIN_DEAD = 64) in one batch.
        raise ValueError("generate_churn needs n_entries >= 160")
    rng = random.Random(f"churn/{seed}")
    full_mac = domain.full_mask("eth_dst")
    full_ip = domain.full_mask("ipv4_dst")

    n5 = n_entries // 5
    idle_victims = range(0, n5)                   # expire idle at t=6
    keepalive = range(n5, 2 * n5)                 # fed every window
    hard_both = range(2 * n5, 2 * n5 + n5 // 2)   # active to the end: hard
    hard_solo = range(2 * n5 + n5 // 2, 3 * n5)   # no idle, no traffic
    storm = range(3 * n5, n_entries)              # strict-delete storm

    def mac_fields(i: int) -> dict:
        return {"eth_dst": ((0x02 << 40) | (0xEE << 32) | i, full_mac)}

    hash_entries = []
    for i in range(n_entries):
        obj = {
            "priority": 1,
            "match": _match_obj(mac_fields(i)),
            "apply": [{"output": 1 + (i & 3)}],
            "goto": 1,
        }
        if i in idle_victims or i in keepalive or i in hard_both:
            obj["idle_timeout"] = 4.0
        if i in hard_both or i in hard_solo:
            obj["hard_timeout"] = 12.0
        hash_entries.append(obj)
    hash_entries.append(
        {"priority": 0, "match": {}, "apply": [{"output": 1}], "goto": 1}
    )

    lpm_profiles, lpm_entries = [], []
    for i in range(16):
        if i % 4 == 0:
            plen, value = 16, (10 << 24) | (i << 16)
        else:
            plen, value = 24, (10 << 24) | ((i & 3) << 16) | (i << 8)
        mask = (full_ip << (32 - plen)) & full_ip
        fields = {"ipv4_dst": (value & mask, mask)}
        lpm_profiles.append(fields)
        lpm_entries.append({
            "priority": plen,  # LPM consistency: priority = prefix length
            "match": _match_obj(fields),
            "apply": [{"output": 1 + (i & 3)}],
        })
    lpm_entries.append({"priority": 0, "match": {}, "apply": ["drop"]})

    def aimed_burst(indices) -> list:
        out = []
        for i in indices:
            fields = dict(mac_fields(i))
            fields.update(rng.choice(lpm_profiles))
            out.append(packet_to_obj(domain.packet_for_fields(rng, fields)))
        return out

    mask24 = (full_ip << 8) & full_ip

    def churn_batch(index: int) -> list:
        mac = {"eth_dst": ((0x02 << 40) | (0xDD << 32) | index, full_mac)}
        pfx = {"ipv4_dst": (((172 << 24) | (index << 8)) & mask24, mask24)}
        batch = [
            {"cmd": "add", "table": 0, "priority": 1,
             "match": _match_obj(mac), "apply": [{"output": 4}], "goto": 1},
            {"cmd": "add", "table": 1, "priority": 24,
             "match": _match_obj(pfx), "apply": [{"output": 4}]},
        ]
        if index % 2:  # delete the previous round's adds: sustained churn
            prev_mac = {
                "eth_dst": ((0x02 << 40) | (0xDD << 32) | (index - 1), full_mac)
            }
            prev_pfx = {
                "ipv4_dst": (((172 << 24) | ((index - 1) << 8)) & mask24, mask24)
            }
            batch.append({"cmd": "delete", "table": 0, "priority": 1,
                          "match": _match_obj(prev_mac), "strict": True})
            batch.append({"cmd": "delete", "table": 1, "priority": 24,
                          "match": _match_obj(prev_pfx), "strict": True})
        return batch

    storm_batch = [
        {"cmd": "delete", "table": 0, "priority": 1,
         "match": _match_obj(mac_fields(i)), "strict": True}
        for i in storm
    ]
    noop_batch = [
        # Re-deleting rules the t=6 tick already expired: pure no-ops.
        {"cmd": "delete", "table": 0, "priority": 1,
         "match": _match_obj(mac_fields(i)), "strict": True}
        for i in list(idle_victims)[:4]
    ]

    fed = list(keepalive) + list(hard_both)
    events: list = [
        {"burst": aimed_burst(list(idle_victims)[:8] + fed)},
        {"tick": 1.0},   # first observe: timed cohorts start tracking
        {"mods": churn_batch(0)},
        {"mods": churn_batch(1)},
        {"burst": aimed_burst(fed)},
        {"tick": 6.0},   # idle victims (quiet since before t=1) expire
        {"mods": noop_batch},
        {"mods": churn_batch(2)},
        {"burst": aimed_burst(fed)},
        {"mods": storm_batch},  # tombstones cross the compaction threshold
        {"burst": aimed_burst(list(keepalive)[:12])},
        {"tick": 14.0},  # hard deadlines due; refreshed idle flows survive
        {"burst": aimed_burst(list(keepalive)[:8] + list(storm)[:4])},
    ]

    return Scenario(
        pipeline_obj={"tables": [
            {"id": 0, "name": "t0-hash-churn", "miss": "drop",
             "entries": hash_entries},
            {"id": 1, "name": "t1-lpm-churn", "miss": "drop",
             "entries": lpm_entries},
        ]},
        events=events,
        seed=seed,
        name=f"churn-{n_entries}",
        note="churn-wall class: tombstone storms, amortized compaction, "
             "idle+hard expiry ticks, no-op strict deletes",
    )


def generate_fabric_outage(seed: int, n_cohorts: int = 12) -> Scenario:
    """The fabric-outage scenario class: blackout mid flow-mod storm.

    The control session goes dark in the middle of a sustained flow-mod
    storm, reconnects, the controller re-delivers what was lost (the
    resync), and after convergence the table state — and therefore every
    verdict — must be indistinguishable from a run that never
    disconnected. That is exactly the invariant the fabric supervisor's
    recovery path leans on, pinned here differentially:

    * the **storm**: ``n_cohorts`` flow-mod batches; batch *i* admits
      cohort *i* (4 MAC rules into the hash table, 1 prefix into the
      LPM table) and strict-deletes cohort *i - 2* — sustained add +
      delete churn, the worst case for replaying out of order;
    * the **outage window** (``scenario.outage``): the middle third of
      the storm. The parity harness submits those batches against a
      DOWN session (typed ``CHANNEL_DOWN`` rejects, nothing applied)
      and re-delivers them, in order, after the evidence-based resync;
    * aimed **probe bursts** between batches keep the caches hot across
      the window, and a final all-cohort probe is the convergence
      oracle both runs must agree on.

    The differential matrix runs the same scenario with every batch
    delivered — the never-disconnected baseline — so the corpus entry
    also keeps all five backends honest about the storm itself.
    """
    if n_cohorts < 6:
        raise ValueError("generate_fabric_outage needs n_cohorts >= 6")
    rng = random.Random(f"fabric-outage/{seed}")
    full_mac = domain.full_mask("eth_dst")
    full_ip = domain.full_mask("ipv4_dst")
    mask24 = (full_ip << 8) & full_ip

    def mac_fields(cohort: int, i: int) -> dict:
        return {
            "eth_dst": ((0x02 << 40) | (0xFA << 32) | (cohort << 8) | i,
                        full_mac)
        }

    def pfx_fields(cohort: int) -> dict:
        return {"ipv4_dst": (((192 << 24) | (cohort << 8)) & mask24, mask24)}

    # A small steady population so the pipeline is never empty: cohort
    # numbering starts after it and never collides.
    steady = list(range(n_cohorts, n_cohorts + 8))
    hash_entries = [
        {"priority": 1, "match": _match_obj(mac_fields(c, 0)),
         "apply": [{"output": 1 + (c & 3)}], "goto": 1}
        for c in steady
    ]
    hash_entries.append({"priority": 0, "match": {}, "apply": ["controller"]})
    lpm_entries = [
        {"priority": 24, "match": _match_obj(pfx_fields(c)),
         "apply": [{"output": 1 + (c & 3)}]}
        for c in steady
    ]
    lpm_entries.append({"priority": 0, "match": {}, "apply": ["drop"]})

    def storm_batch(cohort: int) -> list:
        batch = [
            {"cmd": "add", "table": 0, "priority": 1,
             "match": _match_obj(mac_fields(cohort, i)),
             "apply": [{"output": 1 + ((cohort + i) & 3)}], "goto": 1}
            for i in range(4)
        ]
        batch.append(
            {"cmd": "add", "table": 1, "priority": 24,
             "match": _match_obj(pfx_fields(cohort)),
             "apply": [{"output": 1 + (cohort & 3)}]}
        )
        if cohort >= 2:  # sustained churn: evict the -2 cohort
            batch.extend(
                {"cmd": "delete", "table": 0, "priority": 1,
                 "match": _match_obj(mac_fields(cohort - 2, i)),
                 "strict": True}
                for i in range(4)
            )
            batch.append(
                {"cmd": "delete", "table": 1, "priority": 24,
                 "match": _match_obj(pfx_fields(cohort - 2)),
                 "strict": True}
            )
        return batch

    def aimed_burst(cohorts) -> list:
        out = []
        for c in cohorts:
            fields = dict(mac_fields(c, rng.randrange(4)))
            fields.update(pfx_fields(rng.choice(steady)))
            out.append(packet_to_obj(domain.packet_for_fields(rng, fields)))
        return out

    begin, end = n_cohorts // 3, (2 * n_cohorts) // 3
    events: list = [{"burst": aimed_burst(steady)}]
    for cohort in range(n_cohorts):
        events.append({"mods": storm_batch(cohort)})
        # Probes aimed at the latest cohort and at one the storm already
        # evicted: both the add and the delete side stay observable.
        events.append({"burst": aimed_burst([cohort, max(0, cohort - 2)])})
    # The convergence oracle: every cohort ever admitted, the survivors
    # (last two) forwarding, everything evicted punting at the miss rule.
    events.append({"burst": aimed_burst(list(range(n_cohorts)) + steady)})

    return Scenario(
        pipeline_obj={"tables": [
            {"id": 0, "name": "t0-hash-fabric", "miss": "drop",
             "entries": hash_entries},
            {"id": 1, "name": "t1-lpm-fabric", "miss": "drop",
             "entries": lpm_entries},
        ]},
        events=events,
        seed=seed,
        name=f"fabric-outage-{n_cohorts}",
        note="fabric-outage class: session blackout + resync during a "
             "flow-mod storm; verdict parity with the never-disconnected "
             "run after convergence",
        outage=(begin, end),
    )


def _sane(scenario: Scenario) -> bool:
    """Dry-run the reference interpreter: a scenario whose *reference*
    crashes is a generator bug, not a differential finding."""
    try:
        pipeline = scenario.build_pipeline()
        pipeline.validate()
        expiry = None
        for event in scenario.events:
            if "burst" in event:
                for pkt in scenario.build_packets(event["burst"]):
                    pipeline.process(pkt)
            elif "tick" in event:
                if expiry is None:
                    expiry = ExpiryManager(PipelineAdapter(pipeline))
                expiry.tick(float(event["tick"]))
            else:
                scenario.build_mods(event["mods"], pipeline)
        return True
    except Exception:
        return False
